//! Differential property tests for the SIMD-lowered batched tier: full
//! blocks run their generator blocks as fixed-trip lane loops (branchless
//! blends, lane-order folds), and every result must stay bit-identical to
//! the scalar bytecode kernel and the tree-walking reference — across
//! lane-width boundary sizes, all-true/all-false/mixed selection vectors,
//! partial tail blocks, and injected chunk faults under work stealing.
//!
//! Each test also pins that the SIMD path actually ran by watching the
//! monotonic global `simd_blocks` counter (full 1024-element blocks run
//! 128 lane-chunks of 8; any partial block falls back to gathered lanes).

use dmll_core::{LayoutHint, Ty};
use dmll_frontend::{Stage, Val};
use dmll_interp::{
    eval_parallel_report, eval_tree_walk, tier_totals, ChunkFaults, Interp, ParallelOptions, Value,
};
use proptest::prelude::*;

/// Sizes that straddle the 8-lane chunk width and the 1024-element block
/// width: exact multiples, one element either side, and odd tails.
const BOUNDARY_OFFSETS: [usize; 9] = [0, 1, 7, 8, 9, 15, 16, 17, 511];

/// Run batched (SIMD), scalar bytecode, and tree-walker; demand
/// bit-identical outputs and that full blocks went down the SIMD path.
fn assert_simd_tiers_identical(
    p: &dmll_core::Program,
    inputs: &[(&str, Value)],
) -> Result<(), TestCaseError> {
    let before = tier_totals();
    let (batched, report) = Interp::new(p).run_report(inputs).expect("batched run");
    let after = tier_totals();
    prop_assert!(report.compiled_loops >= 1, "no loop compiled: {report:?}");
    prop_assert!(
        after.simd_blocks > before.simd_blocks,
        "no full block took the SIMD path"
    );
    let (scalar, _) = Interp::new(p)
        .without_batched_tier()
        .run_report(inputs)
        .expect("scalar kernel run");
    let walked = eval_tree_walk(p, inputs).expect("tree-walk run");
    prop_assert_eq!(&batched, &scalar, "SIMD batched vs scalar bytecode");
    prop_assert_eq!(batched, walked, "SIMD batched vs tree-walker");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Unconditional int + float maps and a float reduction at lane-width
    /// boundary sizes: 1024k, 1024k ± around the 8-lane chunk width, and
    /// odd tails. The float fold must keep exact lane order.
    #[test]
    fn simd_lane_boundary_sizes(
        mut data in prop::collection::vec(-1000i64..1000, 2600..2700),
        blocks in 1usize..3,
        off_ix in 0usize..BOUNDARY_OFFSETS.len(),
    ) {
        // Max size is 2*1024 + 511 = 2559, under the generated minimum of
        // 2600, so the truncation always lands exactly on `size`.
        let size = 1024 * blocks + BOUNDARY_OFFSETS[off_ix];
        data.truncate(size);
        prop_assert!(data.len() == size);

        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let tripled = st.map(&x, |st, e: &Val| {
            let three = st.lit_i(3);
            let m = st.mul(e, &three);
            st.add(&m, e)
        });
        let scaled = st.map(&x, |st, e: &Val| {
            let f = st.i2f(e);
            let c = st.lit_f(0.125);
            st.mul(&f, &c)
        });
        let total = st.sum(&scaled);
        let out = st.tuple(&[&tripled, &scaled, &total]);
        let p = st.finish(&out);
        assert_simd_tiers_identical(&p, &[("x", Value::i64_arr(data))])?;
    }

    /// Conditioned Collect and conditioned Reduce where the selection
    /// vector is all-false, all-true, or mixed per `mode`: the branchless
    /// blend must keep counts, element order, and fold order identical to
    /// the scalar tiers in every regime.
    #[test]
    fn simd_selection_vector_regimes(
        data in prop::collection::vec(-1000i64..1000, 1024..2400),
        mode in 0i64..3,
    ) {
        let threshold = match mode {
            0 => -1001, // all-false: nothing selected in any lane
            1 => 1001,  // all-true: every lane selected
            _ => 0,     // mixed masks
        };
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let n = st.len(&x);
        let x1 = x.clone();
        let x2 = x.clone();
        let x3 = x.clone();
        let kept = st.collect_if(
            &n,
            move |st, i| {
                let xi = st.read(&x, i);
                let t = st.lit_i(threshold);
                st.lt(&xi, &t)
            },
            move |st, i| {
                let xi = st.read(&x1, i);
                st.mul(&xi, &xi)
            },
        );
        let izero = st.lit_i(0);
        let s = st.reduce_if(
            &n,
            Some(move |st: &mut Stage, i: &Val| {
                let xi = st.read(&x2, i);
                let t = st.lit_i(threshold);
                st.lt(&xi, &t)
            }),
            move |st, i| st.read(&x3, i),
            |st, a, b| st.add(a, b),
            Some(&izero),
        );
        let out = st.tuple(&[&kept, &s]);
        let p = st.finish(&out);
        assert_simd_tiers_identical(&p, &[("x", Value::i64_arr(data))])?;
    }

    /// Tail blocks: sizes just over a block boundary leave a sub-block
    /// remainder that must splice seamlessly after the SIMD-run full
    /// blocks, for both collect output order and float fold order.
    #[test]
    fn simd_tail_blocks_are_seamless(
        mut data in prop::collection::vec(-500i64..500, 1100..2100),
        tail in 1usize..1024,
    ) {
        let size = 1024 + tail.min(data.len().saturating_sub(1024));
        data.truncate(size);
        prop_assert!(data.len() > 1024);

        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let halves = st.map(&x, |st, e: &Val| {
            let f = st.i2f(e);
            let c = st.lit_f(2.0);
            st.div(&f, &c)
        });
        let total = st.sum(&halves);
        let out = st.tuple(&[&halves, &total]);
        let p = st.finish(&out);
        assert_simd_tiers_identical(&p, &[("x", Value::i64_arr(data))])?;
    }

    /// Injected chunk faults under work stealing: recovery re-runs the
    /// same kernel in the same (SIMD-lowered batched) mode, so the result
    /// matches a fault-free run, the scalar-kernel parallel run, and the
    /// sequential tree-walker bit-for-bit.
    #[test]
    fn simd_parallel_stealing_survives_faults(
        // Large enough that plan_tasks block-aligns every worker's tasks
        // (size >= threads * 1024), so chunks contain full SIMD blocks.
        data in prop::collection::vec(0i64..3000, 8192..9216),
        threads in 2usize..6,
        fail_a in 0usize..6,
        fail_b in 0usize..6,
        panicking in any::<bool>(),
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let x1 = x.clone();
        let n = st.len(&x);
        let kept = st.collect_if(
            &n,
            move |st, i| {
                let xi = st.read(&x, i);
                let t = st.lit_i(1500);
                st.lt(&xi, &t)
            },
            move |st, i| {
                let xi = st.read(&x1, i);
                let two = st.lit_i(2);
                st.mul(&xi, &two)
            },
        );
        let total = st.sum(&kept);
        let out = st.tuple(&[&kept, &total]);
        let p = st.finish(&out);
        let inputs = [("x", Value::i64_arr(data))];

        let mut faults = ChunkFaults::fail_once([fail_a, fail_b]);
        if panicking {
            faults = faults.panicking();
        }

        let before = tier_totals();
        let opts = ParallelOptions::new(threads).with_faults(faults.clone());
        let (batched, report) = eval_parallel_report(&p, &inputs, &opts).unwrap();
        let after = tier_totals();
        prop_assert!(report.compiled_loops >= 1, "{report:?}");
        prop_assert!(
            after.simd_blocks > before.simd_blocks,
            "no full block took the SIMD path in the parallel run"
        );

        let clean_opts = ParallelOptions::new(threads);
        let (clean, _) = eval_parallel_report(&p, &inputs, &clean_opts).unwrap();
        prop_assert_eq!(&batched, &clean, "faulted vs fault-free (SIMD parallel)");

        let scalar_opts = ParallelOptions::new(threads)
            .scalar_kernel_only()
            .with_faults(faults);
        let (scalar, _) = eval_parallel_report(&p, &inputs, &scalar_opts).unwrap();
        prop_assert_eq!(&batched, &scalar, "SIMD parallel vs scalar kernel parallel");

        let seq = eval_tree_walk(&p, &inputs).unwrap();
        prop_assert_eq!(batched, seq, "SIMD parallel vs sequential tree-walker");
    }
}
