//! Property-based tests for the supervised executor: speculation can never
//! change output, cancellation and deadlines abort within one task
//! granularity, and supervision is invisible to fault recovery.

use dmll_core::{LayoutHint, Ty};
use dmll_frontend::Stage;
use dmll_interp::{
    eval_parallel, eval_parallel_supervised, ChunkFaults, ExecError, ParallelOptions, Value,
};
use dmll_runtime::{QuarantinePolicy, SpeculationPolicy, Supervisor, SupervisorPolicy};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// Sum of squares: one Collect + one Reduce loop, exact over i64.
fn sum_squares() -> dmll_core::Program {
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let sq = st.map(&x, |st, e| st.mul(e, e));
    let total = st.sum(&sq);
    st.finish(&total)
}

/// Group-by-reduce: bucket merging across chunks, exact over i64.
fn bucket_sums() -> dmll_core::Program {
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let zero = st.lit_i(0);
    let b = st.group_by_reduce(
        &x,
        |st, e| {
            let seven = st.lit_i(7);
            st.rem(e, &seven)
        },
        |_st, e| e.clone(),
        |st, a, b| st.add(a, b),
        Some(&zero),
    );
    let keys = st.bucket_keys(&b);
    let vals = st.bucket_values(&b);
    let pair = st.tuple(&[&keys, &vals]);
    st.finish(&pair)
}

/// The most trigger-happy speculation policy: every completed sample makes
/// every still-running task a straggler candidate almost immediately.
fn aggressive_speculation() -> SpeculationPolicy {
    SpeculationPolicy {
        enabled: true,
        min_samples: 1,
        percentile: 50.0,
        multiplier: 1.0,
        floor: Duration::ZERO,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Speculation never changes output: for random data, thread counts
    /// and injected straggler delays, a run under the most aggressive
    /// speculation policy is bit-identical to the unsupervised run.
    #[test]
    fn speculation_never_changes_output(
        seed in 0u64..1_000,
        threads in 2usize..5,
        rows in 2_000usize..6_000,
        delayed in prop::collection::vec(0usize..8, 0usize..3),
        bucketed in any::<bool>(),
    ) {
        let program = if bucketed { bucket_sums() } else { sum_squares() };
        let data: Vec<i64> = (0..rows as u64)
            .map(|i| ((seed.wrapping_mul(31).wrapping_add(i * 17)) % 1_000) as i64)
            .collect();
        let inputs = [("x", Value::i64_arr(data))];
        let baseline = eval_parallel(&program, &inputs, threads).unwrap();

        let mut faults = ChunkFaults::default();
        for &ci in &delayed {
            faults = faults.and_delay(ci, Duration::from_millis(3));
        }
        let sup = Supervisor::new(SupervisorPolicy {
            speculation: aggressive_speculation(),
            ..SupervisorPolicy::default()
        });
        let opts = ParallelOptions::new(threads)
            .with_faults(faults)
            .supervised(sup);
        let (value, _report) =
            eval_parallel_supervised(&program, &inputs, &opts).unwrap();
        prop_assert_eq!(value, baseline);
    }

    /// A cancelled run returns promptly with a typed error: cancellation
    /// before the run starts means zero chunk executions; the returned
    /// partial report is consistent.
    #[test]
    fn precancelled_runs_do_no_work(
        threads in 1usize..5,
        rows in 1_000usize..8_000,
    ) {
        let program = sum_squares();
        let data: Vec<i64> = (0..rows as i64).collect();
        let inputs = [("x", Value::i64_arr(data))];
        let sup = Supervisor::new(SupervisorPolicy::default());
        sup.cancel_token().cancel();
        let opts = ParallelOptions::new(threads).supervised(sup);
        match eval_parallel_supervised(&program, &inputs, &opts) {
            Err(ExecError::Cancelled { partial }) => {
                prop_assert_eq!(partial.chunk_executions, 0);
            }
            other => prop_assert!(false, "expected Cancelled, got {:?}", other),
        }
    }

    /// A deadline below the workload's runtime aborts within one task
    /// granularity: with every task delayed ~2ms, the run returns a typed
    /// `Deadline` carrying a partial report, leaves most tasks unexecuted,
    /// and drains in far less time than running everything would take.
    #[test]
    fn deadline_aborts_within_task_granularity(
        threads in 1usize..4,
        deadline_ms in 3u64..10,
    ) {
        let program = sum_squares();
        let data: Vec<i64> = (0..20_000).collect();
        let inputs = [("x", Value::i64_arr(data))];
        let mut faults = ChunkFaults::default();
        for ci in 0..64 {
            faults = faults.and_delay(ci, Duration::from_millis(2));
        }
        let sup = Supervisor::new(SupervisorPolicy {
            deadline: Some(Duration::from_millis(deadline_ms)),
            speculation: SpeculationPolicy::disabled(),
            ..SupervisorPolicy::default()
        });
        let opts = ParallelOptions::new(threads)
            .with_faults(faults)
            .supervised(sup);
        let t0 = Instant::now();
        match eval_parallel_supervised(&program, &inputs, &opts) {
            Err(ExecError::Deadline { partial, elapsed, .. }) => {
                // ~40 tasks at 2ms each per loop would be >= 25ms even on
                // 3 workers; the drain bound is deadline + one in-flight
                // task per worker (plus scheduling noise, hence the slack).
                prop_assert!(
                    t0.elapsed() < Duration::from_secs(2),
                    "drain took {:?}",
                    t0.elapsed()
                );
                prop_assert!(elapsed >= Duration::from_millis(deadline_ms));
                prop_assert!(
                    partial.chunk_executions < 40,
                    "most tasks abandoned: {:?}",
                    partial
                );
            }
            other => prop_assert!(false, "expected Deadline, got {:?}", other),
        }
    }

    /// The sharded data plane composes with the full supervision stack:
    /// under aggressive speculation, a hair-trigger quarantine breaker,
    /// injected chunk deaths, and straggler delays, the plan-driven
    /// region-aware run stays bit-identical to the plain blind run.
    #[test]
    fn sharded_plane_composes_with_supervision(
        seed in 0u64..1_000,
        threads in 2usize..5,
        regions in 1usize..5,
        rows in 2_000usize..6_000,
        killed in prop::collection::vec(0usize..6, 0usize..3),
        delayed in prop::collection::vec(0usize..8, 0usize..2),
        panicking in any::<bool>(),
    ) {
        let mut program = bucket_sums();
        let plan = std::sync::Arc::new(
            dmll_analysis::export_plan(&dmll_analysis::analyze(&mut program)),
        );
        let data: Vec<i64> = (0..rows as u64)
            .map(|i| ((seed.wrapping_mul(29).wrapping_add(i * 13)) % 977) as i64)
            .collect();
        let inputs = [("x", Value::i64_arr(data))];
        let baseline = eval_parallel(&program, &inputs, threads).unwrap();

        let mut faults = ChunkFaults::fail_once(killed.iter().copied());
        if panicking {
            faults = faults.panicking();
        }
        for &ci in &delayed {
            faults = faults.and_delay(ci, Duration::from_millis(2));
        }
        let sup = Supervisor::new(SupervisorPolicy {
            retry_budget: 64,
            speculation: aggressive_speculation(),
            quarantine: QuarantinePolicy {
                enabled: true,
                max_failures: 1,
                window: 4,
                cooldown: 4,
            },
            ..SupervisorPolicy::default()
        });
        let opts = ParallelOptions::new(threads)
            .with_regions(regions)
            .with_plan(plan)
            .with_faults(faults)
            .supervised(sup);
        let (value, report) = eval_parallel_supervised(&program, &inputs, &opts).unwrap();
        prop_assert!(report.sharded_loops >= 1, "never ran sharded: {report:?}");
        prop_assert_eq!(value, baseline);
    }

    /// Supervision is invisible to recovery: runs with injected one-shot
    /// chunk deaths produce bit-identical results with and without a
    /// (no-deadline) supervisor attached.
    #[test]
    fn supervision_is_invisible_to_recovery(
        threads in 2usize..5,
        rows in 2_000usize..6_000,
        killed in prop::collection::vec(0usize..6, 0usize..3),
        panicking in any::<bool>(),
    ) {
        let program = bucket_sums();
        let data: Vec<i64> = (0..rows as i64).map(|i| i * 13 % 101).collect();
        let inputs = [("x", Value::i64_arr(data))];
        let baseline = eval_parallel(&program, &inputs, threads).unwrap();
        let mut faults = ChunkFaults::fail_once(killed.iter().copied());
        if panicking {
            faults = faults.panicking();
        }
        let sup = Supervisor::new(SupervisorPolicy {
            retry_budget: 64,
            speculation: SpeculationPolicy::disabled(),
            ..SupervisorPolicy::default()
        });
        let opts = ParallelOptions::new(threads)
            .with_faults(faults)
            .supervised(sup);
        let (value, report) =
            eval_parallel_supervised(&program, &inputs, &opts).unwrap();
        prop_assert_eq!(value, baseline);
        prop_assert!(report.reexecuted_chunks <= killed.len());
    }
}
