//! Property tests for the interpreter: parallel/sequential agreement,
//! bucket-order determinism, and agreement with native folds.

use dmll_core::{LayoutHint, Ty};
use dmll_frontend::Stage;
use dmll_interp::{eval, eval_parallel, Value};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// groupBy's bucket order is first-seen key order, exactly like a
    /// native insertion-ordered grouping.
    #[test]
    fn group_by_is_first_seen_order(
        data in prop::collection::vec(0i64..20, 0..150),
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Local);
        let g = st.group_by(&x, |st, e| {
            let k = st.lit_i(5);
            st.rem(e, &k)
        });
        let keys = st.bucket_keys(&g);
        let p = st.finish(&keys);
        let got = eval(&p, &[("x", Value::i64_arr(data.clone()))])
            .unwrap()
            .to_i64_vec()
            .unwrap();
        let mut seen = Vec::new();
        for v in &data {
            let k = v % 5;
            if !seen.contains(&k) {
                seen.push(k);
            }
        }
        prop_assert_eq!(got, seen);
    }

    /// Conditional reduce equals the native filtered fold.
    #[test]
    fn conditional_reduce_matches_native(
        data in prop::collection::vec(-100i64..100, 0..200),
        threshold in -50i64..50,
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Local);
        let t = st.lit_i(threshold);
        let n = st.len(&x);
        let zero = st.lit_i(0);
        let x2 = x.clone();
        let s = st.reduce_if(
            &n,
            Some(move |st: &mut Stage, i: &dmll_frontend::Val| {
                let xi = st.read(&x2, i);
                st.gt(&xi, &t)
            }),
            move |st, i| st.read(&x, i),
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let p = st.finish(&s);
        let got = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        let want: i64 = data.iter().filter(|v| **v > threshold).sum();
        prop_assert_eq!(got, Value::I64(want));
    }

    /// min_index always points at a true minimum.
    #[test]
    fn min_index_is_a_true_argmin(
        data in prop::collection::vec(-1000i64..1000, 1..80),
    ) {
        let floats: Vec<f64> = data.iter().map(|v| *v as f64).collect();
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let mi = st.min_index(&x);
        let p = st.finish(&mi);
        let got = eval(&p, &[("x", Value::f64_arr(floats.clone()))])
            .unwrap()
            .as_i64()
            .unwrap();
        let min = floats.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(floats[got as usize] == min, "{} is not the minimum", got);
    }

    /// Parallel bucket-collect produces the same buckets with the same
    /// element order as sequential, at any thread count.
    #[test]
    fn parallel_bucket_collect_deterministic(
        data in prop::collection::vec(0i64..1000, 0..300),
        threads in 1usize..7,
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let g = st.group_by(&x, |st, e| {
            let k = st.lit_i(7);
            st.rem(e, &k)
        });
        let keys = st.bucket_keys(&g);
        let vals = st.bucket_values(&g);
        let pair = st.tuple(&[&keys, &vals]);
        let p = st.finish(&pair);
        let seq = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        let par = eval_parallel(&p, &[("x", Value::i64_arr(data))], threads).unwrap();
        prop_assert_eq!(seq, par);
    }

    /// Sum over integers equals the native sum regardless of chunking.
    #[test]
    fn integer_sums_are_exact(
        data in prop::collection::vec(any::<i32>(), 0..500),
        threads in 1usize..9,
    ) {
        let wide: Vec<i64> = data.iter().map(|v| *v as i64).collect();
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let s = st.sum(&x);
        let p = st.finish(&s);
        let want: i64 = wide.iter().sum();
        let seq = eval(&p, &[("x", Value::i64_arr(wide.clone()))]).unwrap();
        let par = eval_parallel(&p, &[("x", Value::i64_arr(wide))], threads).unwrap();
        prop_assert_eq!(seq, Value::I64(want));
        prop_assert_eq!(par, Value::I64(want));
    }

    /// Bucket counts partition the input: sizes sum to the input length and
    /// match a native histogram.
    #[test]
    fn bucket_sizes_partition_input(
        data in prop::collection::vec(0i64..10_000, 0..200),
        modulus in 1i64..12,
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Local);
        let m = st.lit_i(modulus);
        let zero = st.lit_i(0);
        let counts = st.group_by_reduce(
            &x,
            move |st, e| st.rem(e, &m),
            |st, _e| st.lit_i(1),
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let keys = st.bucket_keys(&counts);
        let vals = st.bucket_values(&counts);
        let pair = st.tuple(&[&keys, &vals]);
        let p = st.finish(&pair);
        let out = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        let Value::Tuple(parts) = out else { panic!() };
        let keys = parts[0].to_i64_vec().unwrap();
        let counts = parts[1].to_i64_vec().unwrap();
        prop_assert_eq!(counts.iter().sum::<i64>(), data.len() as i64);
        let mut hist: HashMap<i64, i64> = HashMap::new();
        for v in &data {
            *hist.entry(v % modulus).or_insert(0) += 1;
        }
        for (k, c) in keys.iter().zip(&counts) {
            prop_assert_eq!(hist.get(k).copied().unwrap_or(0), *c);
        }
    }
}
