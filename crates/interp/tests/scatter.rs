//! Differential tests for the AoS→SoA scatter fast path: unconditional
//! field-extraction loops over a boxed struct array run through a
//! dedicated typed traversal instead of per-element bytecode. The fast
//! path must be bit-identical to the tree-walker in every case, and must
//! bail to the generic interpreter (reproducing its exact output or
//! error) on anything it did not anticipate: mixed scalar types within a
//! column, records of differing field order, or a missing field.

use dmll_core::{LayoutHint, StructTy, Ty};
use dmll_frontend::Stage;
use dmll_interp::{
    eval_parallel_report, eval_tree_walk, tier_totals, Interp, ParallelOptions, StructVal, Value,
};
use std::sync::Arc;

fn point_ty() -> StructTy {
    StructTy::new(
        "Point",
        vec![
            ("x".into(), Ty::F64),
            ("w".into(), Ty::I64),
            ("live".into(), Ty::Bool),
        ],
    )
}

/// A program whose only loop collects three fields from a record array —
/// exactly the shape the scatter plan recognizes.
fn scatter_program() -> dmll_core::Program {
    let mut st = Stage::new();
    let pts = st.input("pts", Ty::arr(Ty::Struct(point_ty())), LayoutHint::Partitioned);
    let n = st.len(&pts);
    let p1 = pts.clone();
    let xs = st.collect(&n, move |st, i| {
        let e = st.read(&p1, i);
        st.field(&e, "x")
    });
    let p2 = pts.clone();
    let ws = st.collect(&n, move |st, i| {
        let e = st.read(&p2, i);
        st.field(&e, "w")
    });
    let p3 = pts.clone();
    let ls = st.collect(&n, move |st, i| {
        let e = st.read(&p3, i);
        st.field(&e, "live")
    });
    let out = st.tuple(&[&xs, &ws, &ls]);
    st.finish(&out)
}

fn point(ty: &Arc<StructTy>, x: f64, w: i64, live: bool) -> Value {
    Value::Struct(Arc::new(StructVal {
        ty: ty.clone(),
        fields: vec![Value::F64(x), Value::I64(w), Value::Bool(live)],
    }))
}

fn uniform_points(n: i64) -> Value {
    let ty = Arc::new(point_ty());
    Value::boxed_arr(
        (0..n)
            .map(|i| point(&ty, i as f64 * 0.5, i * 3, i % 2 == 0))
            .collect(),
    )
}

/// Homogeneous records: the fast path must engage (counted) and the
/// extracted typed columns must match the tree-walker bit-for-bit.
#[test]
fn scatter_extracts_columns_bit_identically() {
    let p = scatter_program();
    let inputs = [("pts", uniform_points(2048))];

    let before = tier_totals();
    let (got, report) = Interp::new(&p).run_report(&inputs).expect("batched run");
    let after = tier_totals();
    assert!(report.compiled_loops >= 1, "{report:?}");
    assert!(
        after.scatter_loops > before.scatter_loops,
        "scatter fast path never engaged"
    );

    let walked = eval_tree_walk(&p, &inputs).expect("tree-walk run");
    assert_eq!(got, walked, "scatter vs tree-walker");
}

/// A column whose scalar type varies mid-array is not a typed column: the
/// fast path must bail and the generic path must still reproduce the
/// tree-walker's (boxed) result exactly.
#[test]
fn scatter_bails_on_mixed_scalar_field() {
    let p = scatter_program();
    let ty = Arc::new(point_ty());
    let mut pts: Vec<Value> = (0..600).map(|i| point(&ty, i as f64, i, true)).collect();
    // One element's `x` is an i64 where every other row holds f64.
    pts[451] = Value::Struct(Arc::new(StructVal {
        ty: ty.clone(),
        fields: vec![Value::I64(-7), Value::I64(451), Value::Bool(false)],
    }));
    let inputs = [("pts", Value::boxed_arr(pts))];

    let (got, _) = Interp::new(&p).run_report(&inputs).expect("batched run");
    let walked = eval_tree_walk(&p, &inputs).expect("tree-walk run");
    assert_eq!(got, walked, "bailed scatter vs tree-walker");
}

/// Records of two nominal types with the same fields in different order:
/// the cached positions are re-validated per type change, so values land
/// in the right columns.
#[test]
fn scatter_handles_field_order_polymorphism() {
    let p = scatter_program();
    let ty_a = Arc::new(point_ty());
    let ty_b = Arc::new(StructTy::new(
        "Point",
        vec![
            ("live".into(), Ty::Bool),
            ("w".into(), Ty::I64),
            ("x".into(), Ty::F64),
        ],
    ));
    let pts: Vec<Value> = (0..800)
        .map(|i| {
            if i % 3 == 0 {
                Value::Struct(Arc::new(StructVal {
                    ty: ty_b.clone(),
                    fields: vec![Value::Bool(i % 2 == 0), Value::I64(i * 3), Value::F64(i as f64)],
                }))
            } else {
                point(&ty_a, i as f64, i * 3, i % 2 == 0)
            }
        })
        .collect();
    let inputs = [("pts", Value::boxed_arr(pts))];

    let (got, _) = Interp::new(&p).run_report(&inputs).expect("batched run");
    let walked = eval_tree_walk(&p, &inputs).expect("tree-walk run");
    assert_eq!(got, walked, "reordered-field records vs tree-walker");
}

/// A record missing a planned field must produce the interpreter's exact
/// error, not a fast-path panic or a silent wrong answer.
#[test]
fn scatter_missing_field_errors_identically() {
    let p = scatter_program();
    let ty = Arc::new(point_ty());
    let bare = Arc::new(StructTy::new("Bare", vec![("x".into(), Ty::F64)]));
    let mut pts: Vec<Value> = (0..300).map(|i| point(&ty, i as f64, i, false)).collect();
    pts[200] = Value::Struct(Arc::new(StructVal {
        ty: bare.clone(),
        fields: vec![Value::F64(2.5)],
    }));
    let inputs = [("pts", Value::boxed_arr(pts))];

    let fast_err = Interp::new(&p).run_report(&inputs).expect_err("missing field must error");
    let walk_err = eval_tree_walk(&p, &inputs).expect_err("missing field must error");
    assert_eq!(format!("{fast_err}"), format!("{walk_err}"));
}

/// Parallel chunks latch column types independently; a half-i64 /
/// half-f64 column makes adjacent chunks disagree, and the merge must
/// coerce to the same boxed sequence the generic path produces.
#[test]
fn scatter_parallel_chunk_merge_coerces() {
    let p = scatter_program();
    let ty = Arc::new(point_ty());
    let n = 4096;
    let pts: Vec<Value> = (0..n)
        .map(|i| {
            if i < n / 2 {
                point(&ty, i as f64, i, true)
            } else {
                Value::Struct(Arc::new(StructVal {
                    ty: ty.clone(),
                    fields: vec![Value::I64(i), Value::I64(i), Value::Bool(false)],
                }))
            }
        })
        .collect();
    let inputs = [("pts", Value::boxed_arr(pts))];

    let opts = ParallelOptions::new(4);
    let (par, _) = eval_parallel_report(&p, &inputs, &opts).expect("parallel run");
    let (seq, _) = Interp::new(&p).run_report(&inputs).expect("sequential run");
    let walked = eval_tree_walk(&p, &inputs).expect("tree-walk run");
    assert_eq!(par, seq, "parallel vs sequential");
    assert_eq!(par, walked, "parallel vs tree-walker");
}
