//! Depth stress test for the tree-walking evaluator: the walker is an
//! explicit state machine with heap-allocated value/frame stacks, so IR
//! nesting depth must never translate into native stack depth. A 50'000-
//! level tower of nested single-trip reduces evaluates on a deliberately
//! tiny (1 MiB) thread stack — a depth at which a recursive evaluator
//! would overflow by two orders of magnitude.
//!
//! Construction and destruction of the tower stay on a big-stack thread:
//! the IR's `Drop` glue *is* recursive (a plain nested enum), which is
//! exactly why the evaluator cannot afford to be.

use dmll_core::{Block, Def, Exp, Gen, Multiloop, PrimOp, Program, Stmt};
use dmll_interp::{eval_tree_walk, Value};
use std::sync::Arc;

const DEPTH: usize = 50_000;

/// A `DEPTH`-level tower: each level is a one-trip `Reduce` whose value
/// block contains the next level; the innermost value is the literal 1,
/// so every level's single-element reduce seeds from it and the tower
/// evaluates to 1.
fn build_tower(p: &mut Program, depth: usize) -> Block {
    let mut inner = Block::ret(vec![p.fresh()], Exp::i64(1));
    for _ in 0..depth {
        let idx = p.fresh();
        let (a, b, r) = (p.fresh(), p.fresh(), p.fresh());
        let reducer = Block {
            params: vec![a, b],
            stmts: vec![Stmt::one(r, Def::prim2(PrimOp::Add, a, b))],
            result: r.into(),
        };
        let s = p.fresh();
        let ml = Multiloop::single(
            Exp::i64(1),
            Gen::Reduce {
                cond: None,
                value: inner,
                reducer,
                init: None,
            },
        );
        inner = Block {
            params: vec![idx],
            stmts: vec![Stmt::one(s, Def::Loop(ml))],
            result: s.into(),
        };
    }
    inner
}

#[test]
fn deep_ir_evaluates_on_a_tiny_stack() {
    // Building and dropping the tower recurse through the IR's derive'd
    // glue, so both happen on a 256 MiB stack; only evaluation runs small.
    let big = std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(|| {
            let mut p = Program::new();
            let top_value = build_tower(&mut p, DEPTH);
            let out = p.fresh();
            let (a, b, r) = (p.fresh(), p.fresh(), p.fresh());
            let reducer = Block {
                params: vec![a, b],
                stmts: vec![Stmt::one(r, Def::prim2(PrimOp::Add, a, b))],
                result: r.into(),
            };
            let ml = Multiloop::single(
                Exp::i64(1),
                Gen::Reduce {
                    cond: None,
                    value: top_value,
                    reducer,
                    init: None,
                },
            );
            p.body = Block {
                params: vec![],
                stmts: vec![Stmt::one(out, Def::Loop(ml))],
                result: out.into(),
            };

            let p = Arc::new(p);
            let p_eval = Arc::clone(&p);
            let small = std::thread::Builder::new()
                .stack_size(1 << 20)
                .spawn(move || {
                    let v = eval_tree_walk(&p_eval, &[]).expect("deep IR evaluates");
                    assert_eq!(v, Value::I64(1));
                    // `p_eval` drops here with the parent still holding a
                    // reference, so the recursive IR drop never runs on
                    // this thread's tiny stack.
                    drop(p_eval);
                })
                .expect("spawn evaluator thread");
            small.join().expect("tiny-stack evaluation");
            drop(p);
        })
        .expect("spawn builder thread");
    big.join().expect("builder thread");
}
