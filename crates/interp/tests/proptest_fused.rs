//! Differential property tests for the fuse-then-compile path: for every
//! generator kind, running a program through the pre-compile rewrite
//! pipeline must produce output bit-identical to executing it as written
//! and to the tree-walking reference — sequentially, under the parallel
//! executor with work stealing and injected chunk faults, under
//! supervision with aggressive speculation, and on the sharded
//! (locality-aware) data plane.
//!
//! Sequential fused-vs-unfused identity is exact even for floats: fusion
//! inlines producers without reordering any per-element arithmetic or fold.
//! The parallel fixtures stick to i64 (wrapping ops are associative), so
//! chunk boundaries can differ between the fused and unfused bodies without
//! perturbing results.

use dmll_core::{LayoutHint, MathFn, Ty};
use dmll_frontend::Stage;
use dmll_interp::{
    eval_parallel_report, eval_parallel_supervised, eval_tree_walk, ChunkFaults, Interp,
    ParallelOptions, Value,
};
use dmll_runtime::{SpeculationPolicy, Supervisor, SupervisorPolicy};
use proptest::prelude::*;
use std::time::Duration;

/// Pin fused == unfused == tree-walker sequentially. Also demand that the
/// rewrite actually restructured this fixture (otherwise the test silently
/// compares a program with itself) and that kernels compiled.
fn assert_fused_identical(
    p: &dmll_core::Program,
    inputs: &[(&str, Value)],
) -> Result<(), TestCaseError> {
    let mut rewritten = p.clone();
    let rep = dmll_transform::optimize_runtime(&mut rewritten, dmll_transform::Target::Cpu);
    prop_assert!(
        rep.applied_total() >= 1,
        "fixture must trigger at least one fusion: {:?}",
        rep.passes
    );
    let (fused, report) = Interp::new(p).run_report(inputs).expect("fused run");
    prop_assert!(report.compiled_loops >= 1, "no loop compiled: {report:?}");
    let (unfused, _) = Interp::new(p)
        .without_fusion()
        .run_report(inputs)
        .expect("unfused run");
    let walked = eval_tree_walk(p, inputs).expect("tree-walk run");
    prop_assert_eq!(&fused, &unfused, "fused vs unfused");
    prop_assert_eq!(fused, walked, "fused vs tree-walker");
    Ok(())
}

/// An all-integer program exercising all four generator kinds behind
/// fusible producer chains: map → map → filter (Collect), map → sum
/// (Reduce), map → group_by (BucketCollect), map → group_by_reduce
/// (BucketReduce).
fn four_kinds_int(modulus: i64) -> dmll_core::Program {
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let shifted = st.map(&x, |st, e| {
        let three = st.lit_i(3);
        st.add(e, &three)
    });
    let squared = st.map(&shifted, |st, e| st.mul(e, e));
    let kept = st.filter(&squared, |st, e| {
        let two = st.lit_i(2);
        let r = st.rem(e, &two);
        let zero = st.lit_i(0);
        st.eq(&r, &zero)
    });
    let total = st.sum(&squared);
    let m = st.lit_i(modulus);
    let groups = st.group_by(&shifted, move |st, e| st.rem(e, &m));
    let zero = st.lit_i(0);
    let m2 = st.lit_i(modulus);
    let sums = st.group_by_reduce(
        &squared,
        move |st, e| st.rem(e, &m2),
        |_st, e| e.clone(),
        |st, a, b| st.add(a, b),
        Some(&zero),
    );
    let gkeys = st.bucket_keys(&groups);
    let gvals = st.bucket_values(&groups);
    let skeys = st.bucket_keys(&sums);
    let svals = st.bucket_values(&sums);
    let out = st.tuple(&[&kept, &total, &gkeys, &gvals, &skeys, &svals]);
    st.finish(&out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Collect: a map → map → conditional-collect chain over f64 fuses into
    /// one loop; the fused kernel must keep per-element float arithmetic
    /// bit-identical.
    #[test]
    fn fused_collect_chain_identical(
        data in prop::collection::vec(-500i64..500, 0..600),
    ) {
        let floats: Vec<f64> = data.iter().map(|v| *v as f64 / 3.0).collect();
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let scaled = st.map(&x, |st, e| {
            let c = st.lit_f(1.25);
            st.mul(e, &c)
        });
        let shifted = st.map(&scaled, |st, e| {
            let c = st.lit_f(-4.0);
            st.add(e, &c)
        });
        let kept = st.filter(&shifted, |st, e| {
            let zero = st.lit_f(0.0);
            st.gt(e, &zero)
        });
        let p = st.finish(&kept);
        assert_fused_identical(&p, &[("x", Value::f64_arr(floats))])?;
    }

    /// Reduce: map → math → sum fuses to a single-pass reduction whose fold
    /// order must survive fusion bit-for-bit.
    #[test]
    fn fused_reduce_chain_identical(
        data in prop::collection::vec(-400i64..400, 0..600),
    ) {
        let floats: Vec<f64> = data.iter().map(|v| *v as f64 / 7.0).collect();
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let sq = st.map(&x, |st, e| st.mul(e, e));
        let root = st.map(&sq, |st, e| st.math(MathFn::Sqrt, e));
        let s = st.sum(&root);
        let p = st.finish(&s);
        assert_fused_identical(&p, &[("x", Value::f64_arr(floats))])?;
    }

    /// BucketCollect: a mapped producer feeding group_by; first-seen key
    /// order and per-bucket element order must survive the fused loop.
    #[test]
    fn fused_bucket_collect_identical(
        data in prop::collection::vec(0i64..4000, 0..600),
        modulus in 1i64..11,
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let shifted = st.map(&x, |st, e| {
            let seven = st.lit_i(7);
            st.add(e, &seven)
        });
        let g = st.group_by(&shifted, |st, e| {
            let m = st.lit_i(modulus);
            st.rem(e, &m)
        });
        let keys = st.bucket_keys(&g);
        let vals = st.bucket_values(&g);
        let pair = st.tuple(&[&keys, &vals]);
        let p = st.finish(&pair);
        assert_fused_identical(&p, &[("x", Value::i64_arr(data))])?;
    }

    /// BucketReduce: map → group_by_reduce with a float accumulator; the
    /// per-bucket fold order must survive fusion.
    #[test]
    fn fused_bucket_reduce_identical(
        data in prop::collection::vec(-800i64..800, 0..600),
        modulus in 1i64..9,
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let scaled = st.map(&x, |st, e| {
            let ef = st.i2f(e);
            let c = st.lit_f(5.0);
            st.div(&ef, &c)
        });
        let fzero = st.lit_f(0.0);
        let x2 = x.clone();
        let n = st.len(&x);
        let scaled2 = scaled.clone();
        let sums = st.bucket_reduce(
            &n,
            move |st, i| {
                let xi = st.read(&x2, i);
                let m = st.lit_i(modulus);
                st.rem(&xi, &m)
            },
            move |st, i| st.read(&scaled2, i),
            |st, a, b| st.add(a, b),
            Some(&fzero),
        );
        let keys = st.bucket_keys(&sums);
        let vals = st.bucket_values(&sums);
        let pair = st.tuple(&[&keys, &vals]);
        let p = st.finish(&pair);
        assert_fused_identical(&p, &[("x", Value::i64_arr(data))])?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// All four generator kinds under the work-stealing parallel executor
    /// with injected chunk faults: the fused run must match the unfused
    /// run under identical fault schedules, and both must match the
    /// sequential tree-walker.
    #[test]
    fn fused_parallel_stealing_survives_faults(
        data in prop::collection::vec(0i64..3000, 1200..3500),
        modulus in 2i64..9,
        threads in 2usize..6,
        fail_a in 0usize..6,
        fail_b in 0usize..6,
        panicking in any::<bool>(),
    ) {
        let p = four_kinds_int(modulus);
        let inputs = [("x", Value::i64_arr(data))];
        let mut faults = ChunkFaults::fail_once([fail_a, fail_b]);
        if panicking {
            faults = faults.panicking();
        }

        let fused_opts = ParallelOptions::new(threads).with_faults(faults.clone());
        let (fused, report) = eval_parallel_report(&p, &inputs, &fused_opts).unwrap();
        prop_assert!(report.compiled_loops >= 1, "{report:?}");

        let unfused_opts = ParallelOptions::new(threads)
            .without_fusion()
            .with_faults(faults);
        let (unfused, _) = eval_parallel_report(&p, &inputs, &unfused_opts).unwrap();
        prop_assert_eq!(&fused, &unfused, "fused vs unfused (parallel, faults)");

        let seq = eval_tree_walk(&p, &inputs).unwrap();
        prop_assert_eq!(fused, seq, "fused (parallel) vs sequential tree-walker");
    }

    /// Fusion under supervision: a run with the most aggressive speculation
    /// policy and injected straggler delays must match the unfused,
    /// unsupervised baseline exactly.
    #[test]
    fn fused_supervised_speculation_identical(
        data in prop::collection::vec(0i64..2500, 1200..3500),
        modulus in 2i64..9,
        threads in 2usize..5,
        delayed in prop::collection::vec(0usize..8, 0usize..3),
    ) {
        let p = four_kinds_int(modulus);
        let inputs = [("x", Value::i64_arr(data))];

        let baseline_opts = ParallelOptions::new(threads).without_fusion();
        let (baseline, _) = eval_parallel_report(&p, &inputs, &baseline_opts).unwrap();

        let mut faults = ChunkFaults::default();
        for &ci in &delayed {
            faults = faults.and_delay(ci, Duration::from_millis(3));
        }
        let sup = Supervisor::new(SupervisorPolicy {
            speculation: SpeculationPolicy {
                enabled: true,
                min_samples: 1,
                percentile: 50.0,
                multiplier: 1.0,
                floor: Duration::ZERO,
            },
            ..SupervisorPolicy::default()
        });
        let opts = ParallelOptions::new(threads)
            .with_faults(faults)
            .supervised(sup);
        let (fused, _) = eval_parallel_supervised(&p, &inputs, &opts).unwrap();
        prop_assert_eq!(fused, baseline, "fused supervised vs unfused baseline");
    }

    /// Fusion on the sharded (locality-aware) data plane: the plan-driven
    /// region-aware configuration with fusion enabled must match the
    /// unfused sharded run and the sequential tree-walker.
    #[test]
    fn fused_sharded_plane_identical(
        data in prop::collection::vec(0i64..3000, 1200..3500),
        modulus in 2i64..9,
        threads in 2usize..5,
        regions in 1usize..5,
        fail_a in 0usize..5,
    ) {
        let mut p = four_kinds_int(modulus);
        let plan = std::sync::Arc::new(dmll_analysis::export_plan(&dmll_analysis::analyze(&mut p)));
        let inputs = [("x", Value::i64_arr(data))];
        let faults = ChunkFaults::fail_once([fail_a]);

        let fused_opts = ParallelOptions::new(threads)
            .with_regions(regions)
            .with_plan(plan.clone())
            .with_faults(faults.clone());
        let (fused, report) = eval_parallel_report(&p, &inputs, &fused_opts).unwrap();
        prop_assert!(report.sharded_loops >= 1, "never ran sharded: {report:?}");

        let unfused_opts = ParallelOptions::new(threads)
            .without_fusion()
            .with_regions(regions)
            .with_plan(plan)
            .with_faults(faults);
        let (unfused, _) = eval_parallel_report(&p, &inputs, &unfused_opts).unwrap();
        prop_assert_eq!(&fused, &unfused, "fused vs unfused (sharded)");

        let seq = eval_tree_walk(&p, &inputs).unwrap();
        prop_assert_eq!(fused, seq, "fused (sharded) vs sequential tree-walker");
    }
}
