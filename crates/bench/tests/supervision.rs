//! End-to-end supervision acceptance over the real `kernels_tier`
//! workloads: speculation on/off produces bit-identical outputs on every
//! benchmark program, and a deadline below a workload's runtime aborts
//! with a typed error and a partial report.

use dmll_bench::tiers::workloads;
use dmll_interp::{
    eval_parallel_supervised, ChunkFaults, ExecError, ParallelOptions, Value,
};
use dmll_runtime::{SpeculationPolicy, Supervisor, SupervisorPolicy};
use std::time::{Duration, Instant};

const THREADS: usize = 4;

fn borrowed(inputs: &[(String, Value)]) -> Vec<(&str, Value)> {
    inputs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect()
}

fn policy(speculation: SpeculationPolicy) -> SupervisorPolicy {
    SupervisorPolicy {
        speculation,
        ..SupervisorPolicy::default()
    }
}

/// Every completed task immediately makes the rest straggler candidates.
fn aggressive() -> SpeculationPolicy {
    SpeculationPolicy {
        enabled: true,
        min_samples: 1,
        percentile: 50.0,
        multiplier: 1.5,
        floor: Duration::from_micros(50),
    }
}

/// ISSUE acceptance: speculation on and off yield bit-identical outputs on
/// every kernels_tier workload, with and without injected stragglers.
/// Merging is by task id in task order, so which clone finishes first can
/// never reach the output bits — including on the f64 workloads.
#[test]
fn speculation_parity_on_kernels_tier_workloads() {
    for case in workloads(1) {
        let inputs = borrowed(&case.inputs);
        let off = Supervisor::new(policy(SpeculationPolicy::disabled()));
        let (baseline, _) = eval_parallel_supervised(
            &case.program,
            &inputs,
            &ParallelOptions::new(THREADS).supervised(off),
        )
        .unwrap_or_else(|e| panic!("{}: unspeculated run: {e}", case.app));

        // Plain speculation, no induced stragglers.
        let on = Supervisor::new(policy(aggressive()));
        let (quiet, _) = eval_parallel_supervised(
            &case.program,
            &inputs,
            &ParallelOptions::new(THREADS).supervised(on),
        )
        .unwrap_or_else(|e| panic!("{}: speculated run: {e}", case.app));
        assert_eq!(quiet, baseline, "{}: speculation changed output", case.app);

        // Induced straggler: one early task delayed well past the adaptive
        // cutoff. The delay must dominate real task latencies — debug-build
        // tasks on these workloads run tens of milliseconds, and a delay
        // inside the p50×1.5 cutoff is (correctly) not a straggler.
        let on = Supervisor::new(policy(aggressive()));
        let faults = ChunkFaults::default().and_delay(1, Duration::from_millis(250));
        let (raced, report) = eval_parallel_supervised(
            &case.program,
            &inputs,
            &ParallelOptions::new(THREADS)
                .with_faults(faults)
                .supervised(on),
        )
        .unwrap_or_else(|e| panic!("{}: straggler run: {e}", case.app));
        assert_eq!(
            raced, baseline,
            "{}: speculation against a straggler changed output",
            case.app
        );
        assert!(
            report.speculative_tasks >= 1,
            "{}: straggler never speculated ({report:?})",
            case.app
        );
    }
}

/// ISSUE acceptance: a deadline below the workload's runtime aborts within
/// one task granularity, returning `ExecError::Deadline` with the partial
/// report of work completed before the abort.
#[test]
fn deadline_aborts_real_workload_with_partial_report() {
    let case = workloads(1)
        .into_iter()
        .find(|c| c.app == "Gene")
        .expect("Gene workload");
    let inputs = borrowed(&case.inputs);

    // Slow every task to ~2ms so the full run would take far longer than
    // the 5ms deadline on any thread count.
    let mut faults = ChunkFaults::default();
    for ci in 0..64 {
        faults = faults.and_delay(ci, Duration::from_millis(2));
    }
    let sup = Supervisor::new(SupervisorPolicy {
        deadline: Some(Duration::from_millis(5)),
        speculation: SpeculationPolicy::disabled(),
        ..SupervisorPolicy::default()
    });
    let opts = ParallelOptions::new(THREADS)
        .with_faults(faults)
        .supervised(sup);
    let t0 = Instant::now();
    match eval_parallel_supervised(&case.program, &inputs, &opts) {
        Err(ExecError::Deadline {
            deadline,
            elapsed,
            partial,
        }) => {
            assert_eq!(deadline, Duration::from_millis(5));
            assert!(elapsed >= deadline);
            // Drain bound: deadline + one in-flight ~2ms task per worker,
            // with generous slack for debug-build scheduling noise.
            assert!(
                t0.elapsed() < Duration::from_secs(2),
                "drain took {:?}",
                t0.elapsed()
            );
            assert!(
                partial.chunk_executions < 64,
                "deadline left most tasks unexecuted: {partial:?}"
            );
        }
        Ok(_) => panic!("run beat a 5ms deadline despite 64 delayed tasks"),
        Err(other) => panic!("expected Deadline, got {other}"),
    }
}
