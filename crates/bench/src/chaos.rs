//! Deterministic chaos harness for the supervised executor.
//!
//! Sweeps seeded [`FaultPlan`]s — chunk kills, injected stragglers, latency
//! spikes, persistent repeat-failures — across all four generator kinds
//! (`Collect`, `Reduce`, `BucketCollect`, `BucketReduce`) and all three
//! execution tiers (batched kernels, scalar bytecode, tree-walker), and
//! asserts the contract of §5's recovery story end to end: every run is
//! **bit-identical to the fault-free sequential evaluation, or fails with a
//! typed error** — never a mismatch, never an escaped panic, never a hang.
//!
//! Determinism comes from three sides. The fault plan is derived from its
//! seed by the same counter-based SplitMix64 mixing as
//! [`dmll_runtime::fault`], so a seed names one exact scenario. The
//! injected faults themselves are decided by the coordinator before workers
//! spawn, so thread interleaving cannot change *what* fails (only who
//! executes what). And the programs use integer data, so reductions are
//! exact and chunk-order merging makes every interleaving produce the same
//! bits.
//!
//! Every run executes under a watchdog [`Supervisor`] deadline, so a
//! liveness bug in the executor surfaces as a typed
//! [`ExecError::Deadline`] — classified as a harness failure — rather than
//! a CI timeout.

use dmll_core::{LayoutHint, Ty};
use dmll_frontend::Stage;
use dmll_interp::cluster::shuffle_step;
use dmll_interp::{
    eval, eval_cluster_measured, eval_parallel_supervised, ChunkFaults, ClusterOptions, EvalError,
    ExecError, ParallelOptions, Value,
};
use dmll_runtime::{FaultEvent, FaultPlan, SpeculationPolicy, Supervisor, SupervisorPolicy};
use dmll_service::{QueryRequest, ServiceBuilder, ServiceConfig, ServiceError, TenantPolicy};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Elements per chaos workload: enough for ~10–40 work-stealing tasks.
const ROWS: usize = 30_000;

/// Work units (task indices) fault events are mapped onto. Kept below the
/// smallest task count any thread configuration plans, so every scripted
/// event actually lands.
const UNIT_SPACE: u64 = 8;

/// Base injected straggler delay.
const BASE_DELAY: Duration = Duration::from_millis(2);

/// Watchdog: far above any sane run time at the chaos sizes; hitting it
/// means the executor lost liveness.
const WATCHDOG: Duration = Duration::from_secs(60);

/// SplitMix64 avalanche (same constants as `dmll_runtime::fault`).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The four multiloop generator kinds under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenKind {
    /// `Collect`: order-preserving map.
    Collect,
    /// `Reduce`: exact integer sum.
    Reduce,
    /// `BucketCollect`: group-by with per-key collection.
    BucketCollect,
    /// `BucketReduce`: group-by with per-key reduction.
    BucketReduce,
}

impl GenKind {
    /// All four kinds.
    pub const ALL: [GenKind; 4] = [
        GenKind::Collect,
        GenKind::Reduce,
        GenKind::BucketCollect,
        GenKind::BucketReduce,
    ];

    fn name(self) -> &'static str {
        match self {
            GenKind::Collect => "collect",
            GenKind::Reduce => "reduce",
            GenKind::BucketCollect => "bucket_collect",
            GenKind::BucketReduce => "bucket_reduce",
        }
    }
}

/// The three execution tiers the sweep covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierKind {
    /// Compiled bytecode, block-at-a-time.
    Batched,
    /// Compiled bytecode, element-at-a-time.
    Scalar,
    /// Tree-walking interpreter.
    TreeWalk,
}

impl TierKind {
    /// All three tiers.
    pub const ALL: [TierKind; 3] = [TierKind::Batched, TierKind::Scalar, TierKind::TreeWalk];

    fn name(self) -> &'static str {
        match self {
            TierKind::Batched => "batched",
            TierKind::Scalar => "scalar",
            TierKind::TreeWalk => "treewalk",
        }
    }

    fn options(self, threads: usize) -> ParallelOptions {
        match self {
            TierKind::Batched => ParallelOptions::new(threads),
            TierKind::Scalar => ParallelOptions::new(threads).scalar_kernel_only(),
            TierKind::TreeWalk => ParallelOptions::new(threads).tree_walk_only(),
        }
    }
}

/// Build the workload for one generator kind over deterministic integer
/// data. Integer arithmetic keeps every tier and every chunking exact, so
/// "bit-identical" is a hard equality, not a tolerance.
fn workload(kind: GenKind, seed: u64) -> (dmll_core::Program, Vec<(String, Value)>) {
    let data: Vec<i64> = (0..ROWS as u64)
        .map(|i| (mix(seed ^ i) % 1_000) as i64)
        .collect();
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let out = match kind {
        GenKind::Collect => st.map(&x, |st, e| {
            let three = st.lit_i(3);
            let sq = st.mul(e, e);
            st.add(&sq, &three)
        }),
        GenKind::Reduce => {
            let sq = st.map(&x, |st, e| st.mul(e, e));
            st.sum(&sq)
        }
        GenKind::BucketCollect => {
            let b = st.group_by(&x, |st, e| {
                let seven = st.lit_i(7);
                st.rem(e, &seven)
            });
            let keys = st.bucket_keys(&b);
            let vals = st.bucket_values(&b);
            st.tuple(&[&keys, &vals])
        }
        GenKind::BucketReduce => {
            let zero = st.lit_i(0);
            let b = st.group_by_reduce(
                &x,
                |st, e| {
                    let five = st.lit_i(5);
                    st.rem(e, &five)
                },
                |_st, e| e.clone(),
                |st, a, b| st.add(a, b),
                Some(&zero),
            );
            let keys = st.bucket_keys(&b);
            let vals = st.bucket_values(&b);
            st.tuple(&[&keys, &vals])
        }
    };
    let p = st.finish(&out);
    (p, vec![("x".to_string(), Value::i64_arr(data))])
}

/// Derive the scripted failure scenario for a seed. Each seed mixes chunk
/// kills, stragglers, and latency spikes; seeds with `seed % 4 == 3`
/// additionally script a persistent [`FaultEvent::RepeatFailure`], whose
/// runs must surface a typed retries-exhausted error.
pub fn plan_for_seed(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    let kills = 1 + (mix(seed) % 3);
    for i in 0..kills {
        plan = plan.kill_node((mix(seed ^ (i + 1)) % UNIT_SPACE) as usize, i);
    }
    if mix(seed ^ 0xA5A5).is_multiple_of(2) {
        plan = plan.straggler(
            (mix(seed ^ 0xB6B6) % UNIT_SPACE) as usize,
            0,
            0,
            2.0 + (mix(seed ^ 0xC7C7) % 8) as f64,
        );
    }
    if mix(seed ^ 0xD8D8).is_multiple_of(2) {
        let at = mix(seed ^ 0xE9E9) % UNIT_SPACE;
        plan = plan.latency_spike(at, 1 + mix(seed ^ 0xFAFA) % 2, BASE_DELAY.as_nanos() as u64);
    }
    if seed % 4 == 3 {
        plan = plan.repeat_failure((mix(seed ^ 0x0B0B) % UNIT_SPACE) as usize);
    }
    plan
}

/// Translate a scripted [`FaultPlan`] into the executor's chunk-level
/// injections. The plan's abstract work units are task indices:
/// `NodeFailure` kills one execution of a task, `StragglerCore` and
/// `LatencySpike` delay tasks, `RepeatFailure` makes a task fail every
/// attempt. Odd seeds deliver failures as real worker panics, exercising
/// the `catch_unwind` path.
pub fn faults_for_plan(plan: &FaultPlan) -> ChunkFaults {
    let kills: Vec<usize> = plan
        .events
        .iter()
        .filter_map(|e| match *e {
            FaultEvent::NodeFailure { node, .. } => Some(node),
            _ => None,
        })
        .collect();
    let mut faults =
        ChunkFaults::fail_once(kills).and_fail_persistent(plan.repeat_failures());
    for ev in &plan.events {
        match *ev {
            FaultEvent::StragglerCore { node, slowdown, .. } => {
                faults = faults.and_delay(node, BASE_DELAY.mul_f64(slowdown.max(1.0)));
            }
            FaultEvent::LatencySpike {
                at_step,
                duration_steps,
                extra_nanos,
            } => {
                for s in at_step..at_step + duration_steps {
                    faults = faults.and_delay(s as usize, Duration::from_nanos(extra_nanos));
                }
            }
            FaultEvent::NodeFailure { .. }
            | FaultEvent::RepeatFailure { .. }
            | FaultEvent::RemoteReadDrop { .. } => {}
        }
    }
    if plan.seed % 2 == 1 {
        faults = faults.panicking();
    }
    faults
}

/// How one chaos run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Output bit-identical to the fault-free sequential evaluation.
    Identical,
    /// A typed [`ExecError`] surfaced (the variant name is recorded).
    TypedError(String),
    /// The run succeeded with a *different* value — a correctness bug.
    Mismatch,
    /// A panic escaped the executor — a containment bug.
    PanicEscape(String),
}

impl Outcome {
    fn label(&self) -> String {
        match self {
            Outcome::Identical => "identical".to_string(),
            Outcome::TypedError(v) => format!("typed_error:{v}"),
            Outcome::Mismatch => "mismatch".to_string(),
            Outcome::PanicEscape(m) => format!("panic:{m}"),
        }
    }
}

/// One (seed × generator × tier) chaos run.
#[derive(Clone, Debug)]
pub struct ChaosRun {
    /// Plan seed.
    pub seed: u64,
    /// Generator kind under test.
    pub gen: GenKind,
    /// Execution tier under test.
    pub tier: TierKind,
    /// How the run ended.
    pub outcome: Outcome,
    /// Whether the scripted plan makes a typed error the *expected*
    /// outcome (a persistent repeat-failure was injected).
    pub expects_typed: bool,
    /// Chunk executions (including retries and speculative clones).
    pub executions: usize,
    /// Chunks recovered by re-execution.
    pub reexecuted: usize,
    /// Speculative clones launched.
    pub speculative: usize,
    /// Wall time of the run.
    pub secs: f64,
}

impl ChaosRun {
    /// Does this run satisfy the bit-identical-or-typed-error contract?
    /// Runs without a scripted persistent failure must be `Identical`;
    /// runs with one must be `Identical` (fault missed the task range) or
    /// a typed error. `Mismatch` and `PanicEscape` always fail.
    pub fn ok(&self) -> bool {
        match &self.outcome {
            Outcome::Identical => true,
            Outcome::TypedError(_) => self.expects_typed,
            Outcome::Mismatch | Outcome::PanicEscape(_) => false,
        }
    }
}

/// Sweep `seeds` × all generator kinds × all tiers on `threads` workers.
pub fn run_chaos(seeds: &[u64], threads: usize) -> Vec<ChaosRun> {
    let mut out = Vec::new();
    for &seed in seeds {
        let plan = plan_for_seed(seed);
        let expects_typed = !plan.repeat_failures().is_empty();
        for kind in GenKind::ALL {
            let (program, inputs) = workload(kind, seed);
            let borrowed: Vec<(&str, Value)> =
                inputs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            let reference = eval(&program, &borrowed).expect("fault-free reference");
            for tier in TierKind::ALL {
                out.push(run_one(
                    seed,
                    kind,
                    tier,
                    &program,
                    &borrowed,
                    &reference,
                    &plan,
                    expects_typed,
                    threads,
                ));
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    seed: u64,
    gen: GenKind,
    tier: TierKind,
    program: &dmll_core::Program,
    inputs: &[(&str, Value)],
    reference: &Value,
    plan: &FaultPlan,
    expects_typed: bool,
    threads: usize,
) -> ChaosRun {
    // Watchdog deadline turns a hang into a typed (gate-failing) error;
    // speculation races the injected stragglers; quarantine is on.
    let sup = Supervisor::new(SupervisorPolicy {
        deadline: Some(WATCHDOG),
        retry_budget: 64,
        speculation: SpeculationPolicy {
            enabled: true,
            min_samples: 3,
            percentile: 75.0,
            multiplier: 4.0,
            floor: Duration::from_micros(200),
        },
        ..SupervisorPolicy::default()
    });
    let opts = tier
        .options(threads)
        .with_faults(faults_for_plan(plan))
        .supervised(sup);
    let t0 = Instant::now();
    // The abort variants of `ExecError` carry the partial report by value
    // (see dmll-interp's `parallel` module); this closure just forwards it.
    #[allow(clippy::result_large_err)]
    let result = catch_unwind(AssertUnwindSafe(|| {
        eval_parallel_supervised(program, inputs, &opts)
    }));
    let secs = t0.elapsed().as_secs_f64();
    let (outcome, executions, reexecuted, speculative) = match result {
        Ok(Ok((value, report))) => (
            if &value == reference {
                Outcome::Identical
            } else {
                Outcome::Mismatch
            },
            report.chunk_executions,
            report.reexecuted_chunks,
            report.speculative_tasks,
        ),
        Ok(Err(e)) => {
            let name = match &e {
                ExecError::Eval(EvalError::ChunkRetriesExhausted { .. }) => {
                    "chunk_retries_exhausted"
                }
                ExecError::Eval(_) => "eval",
                ExecError::Runtime(_) => "runtime",
                ExecError::Deadline { .. } => "deadline",
                ExecError::Cancelled { .. } => "cancelled",
                ExecError::RetryBudgetExhausted { .. } => "retry_budget_exhausted",
            };
            let partial = e.partial_report().copied().unwrap_or_default();
            (
                Outcome::TypedError(name.to_string()),
                partial.chunk_executions,
                partial.reexecuted_chunks,
                partial.speculative_tasks,
            )
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            (Outcome::PanicEscape(msg), 0, 0, 0)
        }
    };
    ChaosRun {
        seed,
        gen,
        tier,
        outcome,
        expects_typed,
        executions,
        reexecuted,
        speculative,
        secs,
    }
}

/// Deadline probe: run a straggler-laden workload under a deadline far
/// below its runtime and demand a typed [`ExecError::Deadline`] carrying a
/// partial report, with the abort draining within one task granularity
/// (bounded here by a generous wall-clock allowance). Returns
/// `(ok, detail)`.
pub fn deadline_probe(threads: usize) -> (bool, String) {
    let (program, inputs) = workload(GenKind::Reduce, 17);
    let borrowed: Vec<(&str, Value)> =
        inputs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
    let mut faults = ChunkFaults::default();
    for ci in 0..64 {
        faults = faults.and_delay(ci, Duration::from_millis(2));
    }
    let sup = Supervisor::new(SupervisorPolicy {
        deadline: Some(Duration::from_millis(5)),
        speculation: SpeculationPolicy::disabled(),
        ..SupervisorPolicy::default()
    });
    let opts = ParallelOptions::new(threads)
        .with_faults(faults)
        .supervised(sup);
    let t0 = Instant::now();
    let result = eval_parallel_supervised(&program, &borrowed, &opts);
    let elapsed = t0.elapsed();
    match result {
        Err(ExecError::Deadline { partial, .. }) => {
            let drained = elapsed < Duration::from_secs(2);
            (
                drained,
                format!(
                    "deadline abort after {:.1}ms, {} executions completed",
                    elapsed.as_secs_f64() * 1e3,
                    partial.chunk_executions
                ),
            )
        }
        Err(other) => (false, format!("expected Deadline, got {other}")),
        Ok(_) => (false, "expected Deadline, run completed".to_string()),
    }
}

/// Speculation parity probe: the same straggler-laden workload with
/// speculation on and off must produce bit-identical values. Returns
/// `(ok, detail)`.
pub fn speculation_parity(threads: usize) -> (bool, String) {
    let (program, inputs) = workload(GenKind::BucketReduce, 23);
    let borrowed: Vec<(&str, Value)> =
        inputs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
    let straggler =
        ChunkFaults::default().and_delay(1, Duration::from_millis(20));
    let run = |speculation: SpeculationPolicy| {
        let sup = Supervisor::new(SupervisorPolicy {
            speculation,
            ..SupervisorPolicy::default()
        });
        let opts = ParallelOptions::new(threads)
            .with_faults(straggler.clone())
            .supervised(sup.clone());
        let (v, report) =
            eval_parallel_supervised(&program, &borrowed, &opts).expect("parity run");
        (v, report)
    };
    let aggressive = SpeculationPolicy {
        enabled: true,
        min_samples: 1,
        percentile: 50.0,
        multiplier: 1.5,
        floor: Duration::from_micros(50),
    };
    let (on, on_report) = run(aggressive);
    let (off, _) = run(SpeculationPolicy::disabled());
    if on == off {
        (
            true,
            format!(
                "identical with {} speculative launches ({} won)",
                on_report.speculative_tasks, on_report.speculation_wins
            ),
        )
    } else {
        (false, "speculation changed the output".to_string())
    }
}

/// Sharded-plane probe: one seeded fault plan (kills, stragglers, latency
/// spikes, panicking delivery) runs every generator kind on the sharded,
/// locality-aware data plane — plan-driven placement, region-granular
/// tasks where exact, same-region stealing, stitch merge — under the full
/// supervision stack. Every run must be bit-identical to the fault-free
/// sequential evaluation. Returns `(ok, detail)`.
pub fn sharded_probe(threads: usize, regions: usize, seed: u64) -> (bool, String) {
    let plan = plan_for_seed(seed);
    let mut sharded_loops = 0u64;
    for kind in GenKind::ALL {
        let (mut program, inputs) = workload(kind, seed);
        let access =
            std::sync::Arc::new(dmll_analysis::export_plan(&dmll_analysis::analyze(&mut program)));
        let borrowed: Vec<(&str, Value)> =
            inputs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        let reference = eval(&program, &borrowed).expect("fault-free reference");
        let sup = Supervisor::new(SupervisorPolicy {
            deadline: Some(WATCHDOG),
            retry_budget: 64,
            ..SupervisorPolicy::default()
        });
        let opts = ParallelOptions::new(threads)
            .with_regions(regions)
            .with_plan(access)
            .with_faults(faults_for_plan(&plan))
            .supervised(sup);
        match eval_parallel_supervised(&program, &borrowed, &opts) {
            Ok((value, report)) => {
                if value != reference {
                    return (
                        false,
                        format!("seed {seed} {}: sharded output diverged", kind.name()),
                    );
                }
                sharded_loops += report.sharded_loops as u64;
            }
            Err(e) => {
                return (
                    false,
                    format!("seed {seed} {}: unexpected error {e}", kind.name()),
                );
            }
        }
    }
    if sharded_loops == 0 {
        return (false, format!("seed {seed}: no loop ran sharded"));
    }
    (
        true,
        format!(
            "seed {seed}: all kinds identical on {regions} regions ({sharded_loops} sharded loops)"
        ),
    )
}

/// Nested-loop probe: the triangle-counting workload — whose per-vertex
/// pair loop has a data-dependent trip count (`deg²`) that the batched
/// tier runs through the segmented (CSR-flattened) path — under one
/// seeded recoverable fault plan on all three tiers. The data is integer,
/// so chunk-order merging is exact: every run must be bit-identical to
/// the fault-free sequential evaluation, and the batched run must have
/// actually executed segmented chunks (a silent fallback to scalar or
/// tree-walking also fails the gate). Returns `(ok, detail)`.
pub fn nested_probe(threads: usize, seed: u64) -> (bool, String) {
    let plan = plan_for_seed(seed);
    // ≥ threads × 1024 vertices: the chunked executor only keeps task
    // boundaries on full columnar-block multiples when the loop is at
    // least that large, and a sub-block chunk drains through the scalar
    // tail without ever reaching the segmented executor.
    let mut g_scale = 10u32;
    while (1usize << g_scale) < threads.max(1) * 1024 {
        g_scale += 1;
    }
    let g = dmll_data::graph::rmat(g_scale, 2, seed).symmetrized();
    let mut program = dmll_apps::triangles::stage_triangles();
    dmll_transform::pipeline::optimize_unfused(&mut program, dmll_transform::Target::Cpu);
    let inputs = dmll_apps::triangles::inputs_for(&g);
    let reference = eval(&program, &inputs).expect("fault-free reference");
    let mut segmented = 0u64;
    for tier in TierKind::ALL {
        let sup = Supervisor::new(SupervisorPolicy {
            deadline: Some(WATCHDOG),
            retry_budget: 64,
            ..SupervisorPolicy::default()
        });
        let opts = tier
            .options(threads)
            .with_faults(faults_for_plan(&plan))
            .supervised(sup);
        let before = dmll_interp::tier_totals();
        match eval_parallel_supervised(&program, &inputs, &opts) {
            Ok((value, _)) => {
                if value != reference {
                    return (
                        false,
                        format!("seed {seed} {}: nested output diverged", tier.name()),
                    );
                }
            }
            Err(e) => {
                return (
                    false,
                    format!("seed {seed} {}: unexpected error {e}", tier.name()),
                );
            }
        }
        let after = dmll_interp::tier_totals();
        if matches!(tier, TierKind::Batched) {
            // Saturating: the counters are process-global and another
            // thread (a concurrently-running bench test) may reset them
            // mid-probe.
            segmented = after.segmented_blocks.saturating_sub(before.segmented_blocks);
        }
    }
    if segmented == 0 {
        return (
            false,
            format!("seed {seed}: the pair loop never took the segmented batch path"),
        );
    }
    (
        true,
        format!("seed {seed}: all tiers identical under faults ({segmented} segmented chunks)"),
    )
}

/// Cluster probe: the measured multi-node executor under scripted node
/// deaths. Every generator kind runs on an `nodes`-node simulated cluster
/// while `1..nodes` worker nodes are killed at the first epoch's
/// pre-shuffle boundary — the worst spot, where the dead nodes hold
/// finished task results that only lineage re-execution on survivors can
/// reproduce. Each run executes under the chaos watchdog and must be
/// bit-identical to the fault-free sequential evaluation or fail with a
/// typed error — and across the sweep the deaths must be *observed*
/// (killed nodes counted, shards actually recovered), so a silently
/// ignored fault plan also fails the gate. Returns `(ok, detail)`.
pub fn cluster_probe(threads: usize, nodes: usize, seed: u64) -> (bool, String) {
    let mut deaths = 0u64;
    let mut recoveries = 0u64;
    let mut runs = 0u64;
    for kind in GenKind::ALL {
        let (program, inputs) = workload(kind, seed);
        let borrowed: Vec<(&str, Value)> =
            inputs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        let reference = eval(&program, &borrowed).expect("fault-free reference");
        for kill in 1..nodes.max(2) {
            // Kill nodes 1..=kill; node 0 (the coordinator's home) always
            // survives, so recovery always has a target.
            let mut faults = FaultPlan::new(seed);
            for victim in 1..=kill {
                faults = faults.kill_node(victim, shuffle_step(0));
            }
            let mut opts = ClusterOptions::new(nodes, threads).with_faults(faults);
            opts.watchdog = WATCHDOG;
            runs += 1;
            match eval_cluster_measured(&program, &borrowed, &opts) {
                Ok((value, report)) => {
                    if value != reference {
                        return (
                            false,
                            format!(
                                "seed {seed} {} kill={kill}: cluster output diverged",
                                kind.name()
                            ),
                        );
                    }
                    deaths += report.node_deaths;
                    recoveries += report.lineage_recoveries;
                }
                // Survivors always exist (node 0 lives), so recovery must
                // succeed: any error here is a gate failure, not an
                // acceptable typed outcome.
                Err(e) => {
                    return (
                        false,
                        format!("seed {seed} {} kill={kill}: unexpected error {e}", kind.name()),
                    );
                }
            }
        }
    }
    if deaths == 0 {
        return (false, format!("seed {seed}: no scripted node death fired"));
    }
    if recoveries == 0 {
        return (
            false,
            format!("seed {seed}: deaths fired but no shard was lineage-recovered"),
        );
    }
    (
        true,
        format!(
            "seed {seed}: {runs} runs on {nodes} nodes all identical \
             ({deaths} node deaths, {recoveries} shards lineage-recovered)"
        ),
    )
}

/// Service probe: the always-on multi-tenant query service under chaos.
/// Three tenants share one service. A *flaky* tenant's queries carry
/// seeded fault plans — chunk kills, stragglers, persistent failures,
/// with odd seeds delivered as real worker panics. A *stormy* tenant's
/// straggler-laden queries run under a tenant deadline far below their
/// runtime (a deadline storm: every one must abort typed, and queries
/// that sat queued past the deadline must shed without touching a
/// kernel). A *steady* tenant reads a published dataset snapshot and
/// must stay bit-exact throughout. Gate: every admitted query resolves
/// with a value bit-identical to the fault-free sequential evaluation or
/// a typed error, no panic escapes the evaluator into the service's
/// containment, and shutdown drains within the watchdog — no deadlock,
/// no collapse. Returns `(ok, detail)`.
pub fn service_probe(threads: usize, seed: u64) -> (bool, String) {
    const SCENARIOS: u64 = 6;
    let (flaky_prog, flaky_inputs) = workload(GenKind::Reduce, seed);
    let (storm_prog, storm_inputs) = workload(GenKind::BucketReduce, seed ^ 0x570F);
    let (steady_prog, steady_inputs) = workload(GenKind::Collect, seed ^ 0x51EA);
    let reference = |p: &dmll_core::Program, inputs: &[(String, Value)]| {
        let borrowed: Vec<(&str, Value)> =
            inputs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        eval(p, &borrowed).expect("fault-free reference")
    };
    let flaky_ref = reference(&flaky_prog, &flaky_inputs);
    let steady_ref = reference(&steady_prog, &steady_inputs);
    let (flaky_prog, storm_prog, steady_prog) =
        (Arc::new(flaky_prog), Arc::new(storm_prog), Arc::new(steady_prog));

    let mut b = ServiceBuilder::new(ServiceConfig {
        workers: threads,
        query_threads: 2,
        ..ServiceConfig::default()
    });
    let roomy = TenantPolicy {
        deadline: WATCHDOG,
        retry_budget: 64,
        queue_cap: 64,
        ..TenantPolicy::default()
    };
    let flaky = b.tenant("flaky", roomy.clone());
    let stormy = b.tenant(
        "stormy",
        TenantPolicy {
            deadline: Duration::from_millis(5),
            queue_cap: 64,
            ..TenantPolicy::default()
        },
    );
    let steady = b.tenant("steady", roomy);
    let svc = b.start();
    svc.publish_dataset("table", steady_inputs);

    // A storm query cannot finish inside its 5ms deadline: every task
    // drags by 2ms, same recipe as the executor-level deadline probe.
    let mut storm_faults = ChunkFaults::default();
    for ci in 0..64 {
        storm_faults = storm_faults.and_delay(ci, Duration::from_millis(2));
    }

    let mut pending = Vec::new();
    for s in 0..SCENARIOS {
        let plan = plan_for_seed(seed + s);
        let expects_typed = !plan.repeat_failures().is_empty();
        let rx = match svc.submit(
            flaky,
            QueryRequest::new(Arc::clone(&flaky_prog))
                .with_input("x", flaky_inputs[0].1.clone())
                .with_faults(faults_for_plan(&plan)),
        ) {
            Ok(rx) => rx,
            Err(e) => return (false, format!("flaky submit rejected: {e}")),
        };
        pending.push(("flaky", expects_typed, rx));
        let rx = match svc.submit(
            stormy,
            QueryRequest::new(Arc::clone(&storm_prog))
                .with_input("x", storm_inputs[0].1.clone())
                .with_faults(storm_faults.clone()),
        ) {
            Ok(rx) => rx,
            Err(e) => return (false, format!("storm submit rejected: {e}")),
        };
        pending.push(("storm", false, rx));
        let rx = match svc.submit(
            steady,
            QueryRequest::new(Arc::clone(&steady_prog)).with_dataset("table"),
        ) {
            Ok(rx) => rx,
            Err(e) => return (false, format!("steady submit rejected: {e}")),
        };
        pending.push(("steady", false, rx));
    }

    let (mut identical, mut typed, mut storm_aborts) = (0u64, 0u64, 0u64);
    for (kind, expects_typed, rx) in pending {
        let out = match rx.recv_timeout(WATCHDOG) {
            Ok(out) => out,
            Err(_) => return (false, format!("{kind} query never resolved: deadlock")),
        };
        match (&out.result, kind) {
            (Ok(v), "flaky") if *v == flaky_ref => identical += 1,
            (Ok(v), "steady") if *v == steady_ref => identical += 1,
            (Ok(_), "flaky" | "steady") => {
                return (false, format!("{kind} query diverged from the reference"));
            }
            (Ok(_), _) => return (false, "storm query beat its deadline".to_string()),
            (Err(ServiceError::Exec(ExecError::Deadline { .. })), "storm") => {
                typed += 1;
                storm_aborts += 1;
            }
            (Err(ServiceError::Exec(_)), "flaky") if expects_typed => typed += 1,
            (Err(e), _) => {
                return (false, format!("{kind} query failed unexpectedly: {e}"));
            }
        }
    }
    let expected = SCENARIOS * 3;
    if identical + typed != expected {
        return (
            false,
            format!("{identical} identical + {typed} typed != {expected} submitted"),
        );
    }
    if storm_aborts != SCENARIOS {
        return (
            false,
            format!("only {storm_aborts}/{SCENARIOS} storm queries aborted typed"),
        );
    }
    if typed == storm_aborts {
        return (
            false,
            "persistent-failure scenario surfaced no typed error".to_string(),
        );
    }

    // Shutdown under the watchdog: a deadlocked pool would hang the join.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(svc.shutdown());
    });
    let m = match rx.recv_timeout(WATCHDOG) {
        Ok(m) => m,
        Err(_) => return (false, "shutdown hung: service deadlocked".to_string()),
    };
    if m.worker_panics != 0 {
        return (
            false,
            format!("{} panics escaped the evaluator", m.worker_panics),
        );
    }
    (
        true,
        format!(
            "{identical} identical, {typed} typed ({storm_aborts} deadline aborts), \
             {} admitted, clean shutdown",
            m.admitted
        ),
    )
}

/// Serialize a sweep (plus the probes) as the `BENCH_chaos.json` document.
#[allow(clippy::too_many_arguments)]
pub fn to_json(
    runs: &[ChaosRun],
    threads: usize,
    deadline: &(bool, String),
    parity: &(bool, String),
    sharded: &(bool, String),
    nested: &(bool, String),
    service: &(bool, String),
    cluster: &(bool, String),
) -> String {
    let mut out = format!(
        "{{\n  \"experiment\": \"chaos\",\n  \"threads\": {threads},\n  \
         \"deadline_probe\": {{\"ok\": {}, \"detail\": \"{}\"}},\n  \
         \"speculation_parity\": {{\"ok\": {}, \"detail\": \"{}\"}},\n  \
         \"sharded_probe\": {{\"ok\": {}, \"detail\": \"{}\"}},\n  \
         \"nested_probe\": {{\"ok\": {}, \"detail\": \"{}\"}},\n  \
         \"service_probe\": {{\"ok\": {}, \"detail\": \"{}\"}},\n  \
         \"cluster_probe\": {{\"ok\": {}, \"detail\": \"{}\"}},\n  \"runs\": [\n",
        deadline.0,
        deadline.1,
        parity.0,
        parity.1,
        sharded.0,
        sharded.1,
        nested.0,
        nested.1,
        service.0,
        service.1,
        cluster.0,
        cluster.1
    );
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"seed\": {}, \"gen\": \"{}\", \"tier\": \"{}\", \
             \"outcome\": \"{}\", \"ok\": {}, \"expects_typed\": {}, \
             \"executions\": {}, \"reexecuted\": {}, \"speculative\": {}, \
             \"secs\": {:.4}}}{}",
            r.seed,
            r.gen.name(),
            r.tier.name(),
            r.outcome.label(),
            r.ok(),
            r.expects_typed,
            r.executions,
            r.reexecuted,
            r.speculative,
            r.secs,
            if i + 1 == runs.len() { "\n" } else { ",\n" }
        );
    }
    let _ = write!(
        out,
        "  ],\n  \"gate_ok\": {}\n}}\n",
        runs.iter().all(ChaosRun::ok)
            && deadline.0
            && parity.0
            && sharded.0
            && nested.0
            && service.0
            && cluster.0
    );
    out
}

/// Render the sweep as a terminal table.
pub fn render(runs: &[ChaosRun]) -> String {
    let mut out = String::from("Chaos sweep: seeded faults x generator kinds x execution tiers\n");
    let _ = writeln!(
        out,
        "{:<6} {:<15} {:<9} {:>6} {:>6} {:>5} {:<30}",
        "Seed", "Generator", "Tier", "Execs", "Redone", "Spec", "Outcome"
    );
    for r in runs {
        let _ = writeln!(
            out,
            "{:<6} {:<15} {:<9} {:>6} {:>6} {:>5} {:<30}",
            r.seed,
            r.gen.name(),
            r.tier.name(),
            r.executions,
            r.reexecuted,
            r.speculative,
            r.outcome.label()
        );
    }
    let bad = runs.iter().filter(|r| !r.ok()).count();
    let _ = writeln!(
        out,
        "{} runs, {} contract violations",
        runs.len(),
        bad
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        assert_eq!(plan_for_seed(7), plan_for_seed(7));
        assert_ne!(plan_for_seed(7), plan_for_seed(8));
    }

    #[test]
    fn seed_3_mod_4_scripts_persistent_failure() {
        assert!(!plan_for_seed(3).repeat_failures().is_empty());
        assert!(plan_for_seed(4).repeat_failures().is_empty());
    }

    #[test]
    fn one_seed_sweep_holds_the_contract() {
        // Full sweep of one clean seed and one persistent-failure seed at
        // 2 threads: every run bit-identical or typed.
        let runs = run_chaos(&[4, 3], 2);
        assert_eq!(runs.len(), 2 * 4 * 3);
        for r in &runs {
            assert!(r.ok(), "contract violation: {r:?}");
        }
        // The persistent-failure seed must actually produce typed errors
        // (the scripted unit is within every configuration's task count).
        assert!(
            runs.iter()
                .any(|r| matches!(r.outcome, Outcome::TypedError(_))),
            "no typed error surfaced for the repeat-failure seed"
        );
    }

    #[test]
    fn probes_pass() {
        let (ok, detail) = deadline_probe(2);
        assert!(ok, "{detail}");
        let (ok, detail) = speculation_parity(4);
        assert!(ok, "{detail}");
        let (ok, detail) = sharded_probe(2, 2, 4);
        assert!(ok, "{detail}");
    }

    #[test]
    fn nested_probe_passes() {
        // The probe reads process-global tier counters that a
        // concurrently-running tiers test can reset mid-probe; one retry
        // absorbs that race.
        let (ok, detail) = nested_probe(2, 4);
        if ok {
            return;
        }
        let (ok, retry_detail) = nested_probe(2, 4);
        assert!(ok, "{detail}; retry: {retry_detail}");
    }

    #[test]
    fn cluster_probe_passes() {
        let (ok, detail) = cluster_probe(2, 3, 4);
        assert!(ok, "{detail}");
        assert!(detail.contains("lineage-recovered"), "{detail}");
    }

    #[test]
    fn service_probe_passes() {
        // Seeds 4..10 cover a persistent-failure scenario (7 % 4 == 3)
        // and panicking delivery (odd seeds), alongside the deadline
        // storm and the steady dataset tenant.
        let (ok, detail) = service_probe(2, 4);
        assert!(ok, "{detail}");
    }
}
