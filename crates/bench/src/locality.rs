//! Measured locality comparison: the same optimized programs on the same
//! work-stealing batched executor, locality-blind vs sharded
//! (region-aware), emitting `BENCH_locality.json`.
//!
//! The sharded configuration is the §4 analyses wired into the real
//! executor: each program is analyzed once, the exported access plan
//! ([`dmll_analysis::ProgramPlan`]) drives per-collection placement, tasks
//! carry a home region from the block-aligned [`dmll_runtime::RegionMap`],
//! workers steal within their region before crossing, and per-task bucket
//! accumulators are stitched once at merge instead of pairwise-folded.
//! Outputs must be bit-identical to the blind path *and* to the
//! tree-walking tier over the same chunked executor, and every stencil
//! fallback must be explained by a partitioning warning — both are hard
//! gates in the smoke run.

use crate::tiers::{workloads, Workload};
use dmll_analysis::{Placement, ProgramPlan};
use dmll_interp::{
    eval_parallel_report, reset_tier_totals, tier_totals, ArrayVal, ParallelOptions, Value,
};
use dmll_runtime::{RegionMap, ShardedArray};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// One app's blind-vs-sharded measurements.
pub struct LocalityRow {
    /// Benchmark name.
    pub app: &'static str,
    /// Primary data dimension (rows / reads / edges).
    pub rows: usize,
    /// Worker threads used for both configurations.
    pub threads: usize,
    /// Execution regions of the sharded configuration.
    pub regions: usize,
    /// Best-of-[`REPS`] wall time on the locality-blind batched tier, seconds.
    pub blind_secs: f64,
    /// Best-of-[`REPS`] wall time on the sharded batched tier, seconds.
    pub sharded_secs: f64,
    /// Sharded output == blind output == chunked tree-walk output.
    pub identical: bool,
    /// Top-level loops that ran on the sharded data plane.
    pub sharded_loops: u64,
    /// Collections served from the shared fallback path (Unknown
    /// stencil), per sharded execution.
    pub stencil_fallbacks: u64,
    /// Fallbacks with no matching partitioning warning. Must be zero.
    pub unexplained_fallbacks: usize,
    /// Partitioning warnings surfaced by the analysis for this program.
    pub partition_warnings: u64,
    /// Tasks of sharded loops that stayed in their home region.
    pub region_local_tasks: u64,
    /// Steals that crossed a region boundary.
    pub cross_region_steals: u64,
}

impl LocalityRow {
    /// Blind time over sharded time: the data plane's win.
    pub fn speedup(&self) -> f64 {
        self.blind_secs / self.sharded_secs.max(1e-12)
    }
}

/// Timed repetitions per configuration; best-of damps the scheduling
/// noise of oversubscribed hosts.
const REPS: u64 = 3;

fn best_of(
    case: &Workload,
    borrowed: &[(&str, Value)],
    options: &ParallelOptions,
) -> (f64, Value) {
    let mut secs = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let (v, _) =
            eval_parallel_report(&case.program, borrowed, options).expect("locality bench run");
        secs = secs.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (secs, out.expect("timed runs"))
}

/// Run the locality comparison at a size multiplier on `threads` workers
/// with `regions` execution regions for the sharded configuration.
///
/// Each workload is analyzed exactly once (stencils, partitioning, plan
/// export); the analyzed program is then executed in both configurations
/// so the comparison isolates the data plane, not the analyses.
pub fn locality_comparison(scale: usize, threads: usize, regions: usize) -> Vec<LocalityRow> {
    let threads = threads.max(1);
    let regions = regions.max(1);
    workloads(scale.max(1))
        .into_iter()
        .map(|mut case| {
            let result = dmll_analysis::analyze(&mut case.program);
            let plan = Arc::new(dmll_analysis::export_plan(&result));
            let unexplained = plan.total_unexplained();
            let borrowed: Vec<(&str, Value)> = case
                .inputs
                .iter()
                .map(|(n, v)| (n.as_str(), v.clone()))
                .collect();

            let blind = ParallelOptions::new(threads);
            let (blind_secs, blind_out) = best_of(&case, &borrowed, &blind);

            let sharded_opts = ParallelOptions::new(threads)
                .with_regions(regions)
                .with_plan(plan);
            reset_tier_totals();
            let (sharded_secs, sharded_out) = best_of(&case, &borrowed, &sharded_opts);
            let tt = tier_totals();

            // Reference: the tree-walking tier over the same chunked
            // executor (same task decomposition, same per-chunk fold
            // order), so float reductions associate identically and the
            // comparison demands exact equality.
            let walk = ParallelOptions::new(threads).tree_walk_only();
            let (_, walk_out) = best_of(&case, &borrowed, &walk);
            LocalityRow {
                app: case.app,
                rows: case.rows,
                threads,
                regions,
                blind_secs,
                sharded_secs,
                identical: sharded_out == blind_out && sharded_out == walk_out,
                // REPS timed runs share the counters; normalize to per-run.
                sharded_loops: tt.sharded_loops / REPS,
                stencil_fallbacks: tt.stencil_fallbacks / REPS,
                unexplained_fallbacks: unexplained,
                partition_warnings: tt.partition_warnings / REPS,
                region_local_tasks: tt.region_local_tasks / REPS,
                cross_region_steals: tt.cross_region_steals / REPS,
            }
        })
        .collect()
}

/// Serialize rows as the `BENCH_locality.json` document.
pub fn to_json(rows: &[LocalityRow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"locality\",\n  \"apps\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"app\": \"{}\", \"rows\": {}, \"threads\": {}, \
             \"regions\": {}, \"blind_secs\": {:.6}, \
             \"sharded_secs\": {:.6}, \"speedup\": {:.2}, \
             \"identical\": {}, \"sharded_loops\": {}, \
             \"stencil_fallbacks\": {}, \"unexplained_fallbacks\": {}, \
             \"partition_warnings\": {}, \"region_local_tasks\": {}, \
             \"cross_region_steals\": {}}}{}",
            r.app,
            r.rows,
            r.threads,
            r.regions,
            r.blind_secs,
            r.sharded_secs,
            r.speedup(),
            r.identical,
            r.sharded_loops,
            r.stencil_fallbacks,
            r.unexplained_fallbacks,
            r.partition_warnings,
            r.region_local_tasks,
            r.cross_region_steals,
            if i + 1 == rows.len() { "\n" } else { ",\n" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the comparison as an aligned console table.
pub fn render(rows: &[LocalityRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Locality-aware data plane: blind vs sharded batched executor"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>8} {:>8} {:>11} {:>11} {:>8} {:>6} {:>6} {:>6}",
        "app", "rows", "threads", "regions", "blind_s", "sharded_s", "speedup", "fall", "local", "cross"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>8} {:>8} {:>11.4} {:>11.4} {:>7.2}x {:>6} {:>6} {:>6}{}",
            r.app,
            r.rows,
            r.threads,
            r.regions,
            r.blind_secs,
            r.sharded_secs,
            r.speedup(),
            r.stencil_fallbacks,
            r.region_local_tasks,
            r.cross_region_steals,
            if r.identical { "" } else { "  MISMATCH" }
        );
    }
    out
}

/// One app's measured scaling curve on the sharded batched executor
/// (`fig7_numa --measured`): speedup over the same executor on one
/// worker, plus the placement mix its inputs were staged under.
pub struct MeasuredCurve {
    /// Benchmark name.
    pub app: &'static str,
    /// Primary data dimension (rows / reads / edges).
    pub rows: usize,
    /// Thread counts measured, in order.
    pub threads: Vec<usize>,
    /// Speedup over the 1-thread run at each thread count.
    pub speedups: Vec<f64>,
    /// Array inputs staged as per-region shards (aligned slices).
    pub staged_partitioned: usize,
    /// Array inputs staged as one replica per region.
    pub staged_broadcast: usize,
    /// Array inputs left on the shared fallback path.
    pub staged_fallback: usize,
}

/// Stage every unboxed array input through [`ShardedArray`] under the
/// placement the access plan assigns it, and verify each staged form
/// reconstructs exactly the bytes the executor reads. Same-length inputs
/// are co-partitioned: they share one `Arc<RegionMap>` (the boundary
/// map), so aligned reads on any of them resolve in the same region.
///
/// Returns `(partitioned, broadcast, fallback)` input counts.
fn stage_inputs(case: &Workload, plan: &ProgramPlan, regions: usize) -> (usize, usize, usize) {
    // Input name -> planned placement (worst across loops reading it:
    // a fallback anywhere keeps the collection on the shared path).
    let mut placement_of: HashMap<&str, Placement> = HashMap::new();
    for input in &case.program.inputs {
        for lp in plan.per_loop.values() {
            if let Some(&p) = lp.placements.get(&input.sym) {
                let cur = placement_of.entry(input.name.as_str()).or_insert(p);
                if p == Placement::Fallback {
                    *cur = p;
                }
            }
        }
    }
    let mut maps: HashMap<i64, Arc<RegionMap>> = HashMap::new();
    let mut counts = (0, 0, 0);
    for (name, value) in &case.inputs {
        let placement = placement_of
            .get(name.as_str())
            .copied()
            .unwrap_or(Placement::Broadcast);
        match value {
            Value::Arr(ArrayVal::I64(v)) => {
                stage_one(&v[..], 1, placement, regions, &mut maps, &mut counts);
            }
            Value::Arr(ArrayVal::F64(v)) => {
                stage_one(&v[..], 1, placement, regions, &mut maps, &mut counts);
            }
            // Row-major matrices are staged with their row space as the
            // partitioned dimension (`scale = cols`), so a matrix shares
            // its boundary map with any flat array of the same row count.
            Value::Struct(s) => {
                if let [Value::Arr(ArrayVal::F64(data)), Value::I64(_), Value::I64(cols)] =
                    &s.fields[..]
                {
                    if *cols > 0 {
                        stage_one(
                            &data[..],
                            *cols as usize,
                            placement,
                            regions,
                            &mut maps,
                            &mut counts,
                        );
                    }
                }
            }
            _ => {}
        }
    }
    counts
}

fn stage_one<T: Clone + PartialEq + std::fmt::Debug>(
    data: &[T],
    scale: usize,
    placement: Placement,
    regions: usize,
    maps: &mut HashMap<i64, Arc<RegionMap>>,
    counts: &mut (usize, usize, usize),
) {
    let len = (data.len() / scale) as i64;
    let map = maps
        .entry(len)
        .or_insert_with(|| Arc::new(RegionMap::new(len, regions)))
        .clone();
    let sharded = ShardedArray::split_scaled(data, map.clone(), scale);
    match placement {
        Placement::Partitioned { halo_lo, halo_hi } => {
            // Aligned reads: each region's view must be exactly its owned
            // slice of the original plus the plan's halo margins (clamped
            // at the collection edges).
            for r in 0..map.regions() {
                let (s, e) = map.bounds(r);
                let (lo, hi) = (halo_lo as i64, halo_hi as i64);
                let view = sharded.halo(r, lo, hi);
                let (ws, we) = ((s - lo).max(0), (e + hi).min(map.len()));
                assert_eq!(view.offset, ws * scale as i64, "shard offset");
                assert_eq!(
                    view.data,
                    &data[ws as usize * scale..we as usize * scale],
                    "shard bytes (incl. halo)"
                );
            }
            counts.0 += 1;
        }
        Placement::Broadcast => {
            assert_eq!(*sharded.replica(), data, "broadcast replica bytes");
            counts.1 += 1;
        }
        Placement::Fallback => {
            // Shared path: the element directory must resolve every index.
            let elems = len * scale as i64;
            for i in [0, elems / 2, elems - 1] {
                if i >= 0 && i < elems {
                    assert_eq!(sharded.get(i), Some(&data[i as usize]), "fallback get");
                }
            }
            counts.2 += 1;
        }
    }
    assert_eq!(sharded.gather(), data, "gather round-trip");
}

/// Measure the sharded executor's scaling on this host: each workload is
/// analyzed once, its inputs are staged through the shard layer, and the
/// plan-driven sharded configuration is timed at each thread count
/// (regions = `min(threads, 4)`, the simulated-socket default). Speedups
/// are over the 1-thread run of the same configuration.
pub fn measured_scaling(scale: usize, thread_counts: &[usize]) -> Vec<MeasuredCurve> {
    workloads(scale.max(1))
        .into_iter()
        .map(|mut case| {
            let result = dmll_analysis::analyze(&mut case.program);
            let plan = Arc::new(dmll_analysis::export_plan(&result));
            let regions_max = thread_counts.iter().copied().max().unwrap_or(1).min(4);
            let (staged_partitioned, staged_broadcast, staged_fallback) =
                stage_inputs(&case, &plan, regions_max.max(1));
            let borrowed: Vec<(&str, Value)> = case
                .inputs
                .iter()
                .map(|(n, v)| (n.as_str(), v.clone()))
                .collect();
            let mut base = None;
            let mut speedups = Vec::with_capacity(thread_counts.len());
            for &t in thread_counts {
                let opts = ParallelOptions::new(t.max(1))
                    .with_regions(t.clamp(1, 4))
                    .with_plan(plan.clone());
                let (secs, _) = best_of(&case, &borrowed, &opts);
                let base = *base.get_or_insert(secs);
                speedups.push(base / secs.max(1e-12));
            }
            MeasuredCurve {
                app: case.app,
                rows: case.rows,
                threads: thread_counts.to_vec(),
                speedups,
                staged_partitioned,
                staged_broadcast,
                staged_fallback,
            }
        })
        .collect()
}

/// Render measured scaling curves in the Figure 7 table shape.
pub fn render_measured(curves: &[MeasuredCurve]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<10} {:>9} {:<22}", "Benchmark", "Rows", "Staged (part/bcast/fall)");
    if let Some(c) = curves.first() {
        for t in &c.threads {
            let _ = write!(out, " {t:>6}t");
        }
    }
    out.push('\n');
    for c in curves {
        let _ = write!(
            out,
            "{:<10} {:>9} {:<24}",
            c.app,
            c.rows,
            format!(
                "{}/{}/{}",
                c.staged_partitioned, c.staged_broadcast, c.staged_fallback
            )
        );
        for s in &c.speedups {
            let _ = write!(out, " {s:>5.2}x");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_plane_is_bit_identical_and_explained() {
        // Smallest scale: correctness of the harness, not speed.
        let rows = locality_comparison(1, 2, 2);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.identical, "{}: sharded output diverged", r.app);
            assert!(r.sharded_loops > 0, "{}: never ran sharded", r.app);
            assert_eq!(
                r.unexplained_fallbacks, 0,
                "{}: unexplained stencil fallbacks",
                r.app
            );
        }
        let json = to_json(&rows);
        assert!(json.contains("\"locality\""), "{json}");
        assert!(json.contains("\"unexplained_fallbacks\": 0"), "{json}");
    }
}
