//! Execution-tier comparison: the same optimized programs, on real data,
//! run on the interpreter's compiled bytecode tier and on the tree-walking
//! tier, demanding bit-identical outputs and measuring throughput.
//!
//! Unlike the modeled experiments, everything here is *measured*: each app
//! is staged, optimized for the CPU target (so the kernels see the
//! post-SoA loop shapes), and executed twice per tier on deterministic
//! synthetic data. Sequential execution keeps float reductions in the same
//! association order on both tiers, so outputs must match exactly.

use dmll_core::Program;
use dmll_interp::{eval_tree_walk, reset_tier_totals, tier_totals, Interp, Value};
use dmll_runtime::ExecTierStats;
use dmll_transform::{pipeline, Target};
use std::fmt::Write as _;
use std::time::Instant;

/// One app's tier-comparison measurements.
pub struct TierRow {
    /// Benchmark name.
    pub app: &'static str,
    /// Primary data dimension (rows / reads).
    pub rows: usize,
    /// Best-of-two wall time on the compiled tier, seconds.
    pub compiled_secs: f64,
    /// Best-of-two wall time on the tree-walking tier, seconds.
    pub treewalk_secs: f64,
    /// Outputs of the two tiers compared equal.
    pub identical: bool,
    /// Top-level loops that ran compiled in one compiled-tier execution.
    pub compiled_loops: u64,
    /// Top-level loops that fell back to the tree-walker in that execution.
    pub fallback_loops: u64,
    /// Tier counters bridged into the runtime's profiling type.
    pub stats: ExecTierStats,
}

impl TierRow {
    /// Tree-walk time over compiled time.
    pub fn speedup(&self) -> f64 {
        self.treewalk_secs / self.compiled_secs.max(1e-12)
    }
}

struct Case {
    app: &'static str,
    program: Program,
    inputs: Vec<(&'static str, Value)>,
    rows: usize,
}

/// Build the three tier-comparison workloads at a size multiplier
/// (`scale = 1` is the CI smoke size; the full bench uses 10).
fn cases(scale: usize) -> Vec<Case> {
    let mut out = Vec::new();

    // k-means: one assignment + update iteration.
    let (km_rows, km_cols, k) = (3_000 * scale, 16, 8);
    let (x, cents, _) = dmll_data::matrix::gaussian_clusters(km_rows, km_cols, k, 0.5, 1);
    let mut p = dmll_apps::kmeans::stage_kmeans(k as i64);
    pipeline::optimize(&mut p, Target::Cpu);
    out.push(Case {
        app: "k-means",
        program: p,
        inputs: vec![
            ("matrix", dmll_apps::util::matrix_value(&x)),
            ("clusters", dmll_apps::util::matrix_value(&cents)),
        ],
        rows: km_rows,
    });

    // Logistic regression: one gradient step.
    let (lr_rows, lr_cols) = (10_000 * scale, 16);
    let (x, y) = dmll_data::matrix::labeled_binary(lr_rows, lr_cols, 2);
    let mut p = dmll_apps::logreg::stage_logreg(0.01);
    pipeline::optimize(&mut p, Target::Cpu);
    out.push(Case {
        app: "LogReg",
        program: p,
        inputs: vec![
            ("x", dmll_apps::util::matrix_value(&x)),
            ("y", Value::f64_arr(y)),
            ("theta", Value::f64_arr(vec![0.0; lr_cols])),
        ],
        rows: lr_rows,
    });

    // Gene barcoding: group reads by barcode, count + mean quality.
    let reads = 40_000 * scale;
    let cols = dmll_data::gene::to_columns(&dmll_data::gene::gen_reads(reads, 1024, 64, 3));
    let mut p = dmll_apps::gene::stage_gene();
    pipeline::optimize(&mut p, Target::Cpu);
    out.push(Case {
        app: "Gene",
        program: p,
        inputs: vec![
            ("barcode", Value::i64_arr(cols.barcode)),
            ("quality", Value::i64_arr(cols.quality)),
        ],
        rows: reads,
    });

    out
}

/// Run the tier comparison at a size multiplier. Each tier executes every
/// app twice (the first compiled-tier run pays kernel compilation, later
/// runs hit the cache); wall times are best-of-two.
pub fn tier_comparison(scale: usize) -> Vec<TierRow> {
    cases(scale.max(1)).into_iter().map(run_case).collect()
}

fn run_case(case: Case) -> TierRow {
    let interp = Interp::new(&case.program);

    reset_tier_totals();
    let mut compiled_secs = f64::INFINITY;
    let mut compiled_out = None;
    let mut compiled_loops: u64 = 0;
    for _ in 0..2 {
        let t0 = Instant::now();
        let (out, report) = interp.run_report(&case.inputs).expect("compiled tier run");
        compiled_secs = compiled_secs.min(t0.elapsed().as_secs_f64());
        compiled_loops = report.compiled_loops;
        compiled_out = Some(out);
    }
    let ct = tier_totals();

    reset_tier_totals();
    let mut treewalk_secs = f64::INFINITY;
    let mut treewalk_out = None;
    for _ in 0..2 {
        let t0 = Instant::now();
        let out = eval_tree_walk(&case.program, &case.inputs).expect("tree-walk tier run");
        treewalk_secs = treewalk_secs.min(t0.elapsed().as_secs_f64());
        treewalk_out = Some(out);
    }
    let tt = tier_totals();

    // Bridge the interpreter counters into the runtime's profiling type:
    // kernel/compile numbers from the compiled phase, walk numbers from the
    // forced tree-walk phase.
    let stats = ExecTierStats {
        kernels_compiled: ct.kernels_compiled,
        kernel_cache_hits: ct.kernel_cache_hits,
        fallback_loops: ct.fallback_loops,
        compile_nanos: ct.compile_nanos,
        compiled_loops: ct.compiled_loops,
        compiled_elements: ct.compiled_elements,
        compiled_nanos: ct.compiled_nanos,
        treewalk_loops: tt.treewalk_loops,
        treewalk_elements: tt.treewalk_elements,
        treewalk_nanos: tt.treewalk_nanos,
    };
    TierRow {
        app: case.app,
        rows: case.rows,
        compiled_secs,
        treewalk_secs,
        identical: compiled_out == treewalk_out,
        compiled_loops,
        fallback_loops: ct.fallback_loops,
        stats,
    }
}

/// Serialize rows as the `BENCH_kernels.json` document.
pub fn to_json(rows: &[TierRow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"kernels_tier\",\n  \"apps\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"app\": \"{}\", \"rows\": {}, \"compiled_secs\": {:.6}, \
             \"treewalk_secs\": {:.6}, \"speedup\": {:.2}, \"identical\": {}, \
             \"compiled_loops\": {}, \"fallback_loops\": {}, \
             \"kernels_compiled\": {}, \"kernel_cache_hits\": {}, \
             \"compile_millis\": {:.3}, \
             \"compiled_elements_per_sec\": {:.0}, \"treewalk_elements_per_sec\": {:.0}}}{}",
            r.app,
            r.rows,
            r.compiled_secs,
            r.treewalk_secs,
            r.speedup(),
            r.identical,
            r.compiled_loops,
            r.fallback_loops,
            r.stats.kernels_compiled,
            r.stats.kernel_cache_hits,
            r.stats.compile_nanos as f64 / 1e6,
            r.stats.compiled_elements_per_sec().unwrap_or(0.0),
            r.stats.treewalk_elements_per_sec().unwrap_or(0.0),
            if i + 1 == rows.len() { "\n" } else { ",\n" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_agree_and_kernels_fire() {
        // Smallest scale: correctness of the comparison harness, not speed.
        let rows = tier_comparison(1);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.identical, "{} tiers disagree", r.app);
            assert!(r.compiled_loops > 0, "{} never compiled a loop", r.app);
            assert!(r.stats.treewalk_loops > 0, "{} never tree-walked", r.app);
        }
        let json = to_json(&rows);
        assert!(json.contains("\"k-means\""), "{json}");
        assert!(json.contains("\"identical\": true"), "{json}");
    }
}
