//! Execution-tier comparison: the same optimized programs, on real data,
//! run on the interpreter's batched kernel tier, its scalar bytecode tier,
//! and the tree-walking tier, demanding bit-identical outputs across all
//! three and measuring throughput.
//!
//! Unlike the modeled experiments, everything here is *measured*: each app
//! is staged, optimized for the CPU target (so the kernels see the
//! post-SoA loop shapes), and executed twice per tier on deterministic
//! synthetic data. Float reductions fold in the same lane order on every
//! tier (the batched executor never reassociates), so outputs must match
//! exactly, whether sequential or chunked across worker threads. The
//! programs arrive *unfused* and the runtime fuse-then-compile hook does
//! the structural fusion, so the fused-vs-unfused phases measure exactly
//! what the hook buys — with the fused output demanded bit-identical to
//! the unfused tree-walker (sequentially even across the two loop
//! structures; chunked, within each program across its tiers).

use dmll_core::Program;
use dmll_interp::{
    eval_parallel_report, reset_tier_totals, tier_totals, Externs, Interp, ParallelOptions, Value,
};
use dmll_runtime::{ExecTierStats, Supervisor, SupervisorPolicy};
use dmll_transform::{pipeline, Target};
use std::fmt::Write as _;
use std::time::Instant;

/// One app's tier-comparison measurements.
pub struct TierRow {
    /// Benchmark name.
    pub app: &'static str,
    /// Primary data dimension (rows / reads / edges).
    pub rows: usize,
    /// Worker threads used for every tier (1 = sequential).
    pub threads: usize,
    /// Best-of-two wall time on the batched kernel tier with the fusion
    /// hook on (fuse-then-compile), seconds.
    pub batched_secs: f64,
    /// Best-of-two wall time on the batched kernel tier with the fusion
    /// hook off (the unfused baseline: same loops as staged), seconds.
    pub unfused_secs: f64,
    /// Best-of-two wall time on the scalar bytecode tier, seconds.
    pub compiled_secs: f64,
    /// Best-of-two wall time on the tree-walking tier, seconds.
    pub treewalk_secs: f64,
    /// Outputs of every tier compared equal: fused batched == fused
    /// scalar == tree-walk == supervised, plus (sequentially) the fused
    /// output bit-identical to the unfused baseline. At `threads > 1`
    /// the fused-vs-unfused comparison is skipped — chunked float
    /// reduces merge per-chunk partials, and the fused program's loop
    /// structure chunks differently from the unfused one's.
    pub identical: bool,
    /// Top-level loops that ran compiled in one batched-tier execution.
    pub compiled_loops: u64,
    /// Compiled loops that executed block-at-a-time in that execution.
    pub batched_loops: u64,
    /// Top-level loops the compiler rejected (ran on the tree-walker).
    pub fallback_loops: u64,
    /// Structural rewrites the runtime fusion recipe applied, per rule
    /// (paper name, times applied) — the `OptReport` pass log.
    pub fusion_passes: Vec<(String, usize)>,
    /// Fusion candidates the cost model declined, per rule (paper name,
    /// distinct declined candidates).
    pub fusion_rejections: Vec<(String, usize)>,
    /// Typed reasons batch certification kept compiled loops scalar,
    /// with per-run execution counts.
    pub batch_reject: Vec<(String, u64)>,
    /// Best-of-two wall time with the native (compiled C) tier enabled,
    /// seconds; `None` when the native phase did not run (`--native` off).
    pub native_secs: Option<f64>,
    /// Typed reasons native-tier requests fell back to the batched tier,
    /// with per-run counts (stable `NativeIneligible` keys).
    pub native_fallback: Vec<(String, u64)>,
    /// Tier counters bridged into the runtime's profiling type.
    pub stats: ExecTierStats,
}

impl TierRow {
    /// Tree-walk time over batched time: the full tier stack's win.
    pub fn speedup(&self) -> f64 {
        self.treewalk_secs / self.batched_secs.max(1e-12)
    }

    /// Scalar bytecode time over batched time: the batched tier's own win.
    pub fn batched_speedup(&self) -> f64 {
        self.compiled_secs / self.batched_secs.max(1e-12)
    }

    /// Unfused-batched time over fused-batched time: what the
    /// fuse-then-compile hook buys on top of the batched tier.
    pub fn fused_speedup(&self) -> f64 {
        self.unfused_secs / self.batched_secs.max(1e-12)
    }

    /// Batched time over native-enabled time: what compile-and-`dlopen`
    /// buys on top of the batched tier, when the native phase ran.
    pub fn native_speedup(&self) -> Option<f64> {
        self.native_secs.map(|n| self.batched_secs / n.max(1e-12))
    }
}

/// A staged, optimized workload with deterministic synthetic inputs.
/// Shared by the tier bench, the chaos harness, and the supervision e2e
/// tests, so every consumer exercises the same real programs.
pub struct Workload {
    /// Benchmark name.
    pub app: &'static str,
    /// The optimized program.
    pub program: Program,
    /// Named input values.
    pub inputs: Vec<(String, Value)>,
    /// Primary data dimension (rows / reads / edges).
    pub rows: usize,
    /// Extern handlers the program needs (empty for most workloads; the
    /// Gibbs sweep registers its counter-based coin flip here). Every
    /// tier resolves the same registry, so outputs stay comparable.
    pub externs: Externs,
}

fn owned(inputs: Vec<(&'static str, Value)>) -> Vec<(String, Value)> {
    inputs.into_iter().map(|(n, v)| (n.to_string(), v)).collect()
}

/// Build the five tier-comparison workloads at a size multiplier
/// (`scale = 1` is the CI smoke size; the full bench uses 10), fully
/// optimized at staging. The locality bench and chaos harness use these:
/// their plans and fault schedules are keyed to the staged loop structure,
/// so the programs arrive with every rewrite already applied.
pub fn workloads(scale: usize) -> Vec<Workload> {
    staged_workloads(scale, pipeline::optimize)
}

/// The same five workloads staged with the *unfused* recipe (cleanup, SoA
/// and interchange, no Figure 3 structural rewrites). This is what the
/// tier comparison runs: the interpreter's fuse-then-compile hook performs
/// the structural fusion at run time, so the fused-vs-unfused phases
/// measure exactly what the hook buys.
pub fn workloads_unfused(scale: usize) -> Vec<Workload> {
    staged_workloads(scale, pipeline::optimize_unfused)
}

/// The nested-loop workloads: programs whose inner trip counts vary per
/// lane of the outer loop, so the batched tier must run them through the
/// segmented (CSR-flattened) path rather than the rectangular columnar
/// one. Kept separate from [`workloads`] — the locality and cluster
/// benches key their plans to the flat five — and appended by the tier
/// comparison and the chaos harness.
pub fn workloads_nested(scale: usize) -> Vec<Workload> {
    nested_staged(scale, pipeline::optimize)
}

/// [`workloads_nested`] staged with the unfused recipe (what the tier
/// comparison runs; the runtime hook fuses at execution time).
pub fn workloads_nested_unfused(scale: usize) -> Vec<Workload> {
    nested_staged(scale, pipeline::optimize_unfused)
}

fn nested_staged(
    scale: usize,
    recipe: fn(&mut Program, Target) -> dmll_transform::OptReport,
) -> Vec<Workload> {
    let mut out = Vec::new();

    // Gibbs sampling: one synchronous sweep over a factor graph. The
    // per-variable field reduce iterates that variable's adjacency row —
    // a lane-varying trip count with a lane-varying float init (the
    // bias), folded in lane order on every tier.
    let vars = 2_000 * scale;
    let fg = dmll_data::factor::gen_factor_graph(vars, 4, 5);
    let asg = vec![1i8; vars];
    let mut p = dmll_apps::gibbs::stage_gibbs_sweep();
    recipe(&mut p, Target::Cpu);
    out.push(Workload {
        app: "Gibbs",
        program: p,
        inputs: owned(dmll_apps::gibbs::inputs_for(&fg, &asg, 9, 0)),
        rows: vars,
        externs: dmll_apps::gibbs::externs(),
    });

    // Triangle counting: the per-vertex pair loop iterates `deg²` — a
    // data-dependent trip count with heavy-tailed RMAT degrees — and
    // tests membership by binary search over the sorted CSR rows. The
    // smoke graph is the smallest that still fills a full columnar block
    // (1024 vertices): the naive tree-walk baseline pays ~100 evaluated
    // nodes per candidate pair, so `sum(deg²)` dominates harness time.
    let (g_scale, edge_factor) = if scale > 1 { (12, 4) } else { (10, 2) };
    let g = dmll_data::graph::rmat(g_scale, edge_factor, 5).symmetrized();
    let edges = g.num_edges();
    let mut p = dmll_apps::triangles::stage_triangles();
    recipe(&mut p, Target::Cpu);
    out.push(Workload {
        app: "Triangles",
        program: p,
        inputs: owned(dmll_apps::triangles::inputs_for(&g)),
        rows: edges,
        externs: Externs::default(),
    });

    out
}

fn staged_workloads(
    scale: usize,
    recipe: fn(&mut Program, Target) -> dmll_transform::OptReport,
) -> Vec<Workload> {
    let mut out = Vec::new();

    // k-means: one assignment + update iteration.
    let (km_rows, km_cols, k) = (3_000 * scale, 16, 8);
    let (x, cents, _) = dmll_data::matrix::gaussian_clusters(km_rows, km_cols, k, 0.5, 1);
    let mut p = dmll_apps::kmeans::stage_kmeans(k as i64);
    recipe(&mut p, Target::Cpu);
    out.push(Workload {
        app: "k-means",
        program: p,
        inputs: owned(vec![
            ("matrix", dmll_apps::util::matrix_value(&x)),
            ("clusters", dmll_apps::util::matrix_value(&cents)),
        ]),
        rows: km_rows,
        externs: Externs::default(),
    });

    // Logistic regression: one gradient step.
    let (lr_rows, lr_cols) = (10_000 * scale, 16);
    let (x, y) = dmll_data::matrix::labeled_binary(lr_rows, lr_cols, 2);
    let mut p = dmll_apps::logreg::stage_logreg(0.01);
    recipe(&mut p, Target::Cpu);
    out.push(Workload {
        app: "LogReg",
        program: p,
        inputs: owned(vec![
            ("x", dmll_apps::util::matrix_value(&x)),
            ("y", Value::f64_arr(y)),
            ("theta", Value::f64_arr(vec![0.0; lr_cols])),
        ]),
        rows: lr_rows,
        externs: Externs::default(),
    });

    // Gene barcoding: group reads by barcode, count + mean quality.
    let reads = 40_000 * scale;
    let cols = dmll_data::gene::to_columns(&dmll_data::gene::gen_reads(reads, 1024, 64, 3));
    let mut p = dmll_apps::gene::stage_gene();
    recipe(&mut p, Target::Cpu);
    out.push(Workload {
        app: "Gene",
        program: p,
        inputs: owned(vec![
            ("barcode", Value::i64_arr(cols.barcode)),
            ("quality", Value::i64_arr(cols.quality)),
        ]),
        rows: reads,
        externs: Externs::default(),
    });

    // PageRank (push model): bucket-reduce contributions over the edge
    // list. RMAT scale 12 at smoke size, 15 at full size.
    let g_scale = if scale > 1 { 15 } else { 12 };
    let g = dmll_data::graph::rmat(g_scale, 8, 7);
    let n = g.num_vertices();
    let ranks = vec![1.0 / n as f64; n];
    let mut p = dmll_apps::pagerank::stage_pagerank_push(0.85);
    recipe(&mut p, Target::Cpu);
    let edges = g.num_edges();
    out.push(Workload {
        app: "PageRank",
        program: p,
        inputs: owned(dmll_apps::pagerank::inputs_push(&g, &ranks)),
        rows: edges,
        externs: Externs::default(),
    });

    // TPC-H Q1: filtered group-by with five fused aggregates
    // (BucketReduce-heavy, conditioned generators).
    let li_rows = 30_000 * scale;
    let cols = dmll_data::tpch::to_columns(&dmll_data::tpch::gen_lineitems(li_rows, 11));
    let mut p = dmll_apps::q1::stage_q1();
    recipe(&mut p, Target::Cpu);
    let inputs = dmll_apps::q1::inputs_for(&p, &cols);
    out.push(Workload {
        app: "Q1",
        program: p,
        inputs,
        rows: li_rows,
        externs: Externs::default(),
    });

    out
}

/// Run the tier comparison sequentially at a size multiplier.
pub fn tier_comparison(scale: usize) -> Vec<TierRow> {
    tier_comparison_threads(scale, 1)
}

/// Run the tier comparison at a size multiplier on `threads` workers.
/// Each tier executes every app twice (the first compiled-tier run pays
/// kernel compilation, later runs hit the cache); wall times are
/// best-of-two. With `threads > 1` every tier runs through the
/// work-stealing chunked executor, so the comparison isolates the batched
/// inner loop rather than the scheduler.
pub fn tier_comparison_threads(scale: usize, threads: usize) -> Vec<TierRow> {
    tier_comparison_regions(scale, threads, 0)
}

/// Like [`tier_comparison_threads`], with the sharded data plane enabled
/// on the batched tier when `regions >= 1`: each workload is analyzed,
/// the exported access plan drives placement, and the batched phase runs
/// region-aware. Outputs must still match the scalar and tree-walking
/// tiers bit-for-bit.
pub fn tier_comparison_regions(scale: usize, threads: usize, regions: usize) -> Vec<TierRow> {
    tier_comparison_full(scale, threads, regions, true, false)
}

/// The fully-parameterized tier comparison. `fuse = false` is the
/// `--no-fuse` knob: the runtime fusion hook stays off everywhere, so the
/// batched and "unfused" phases measure the same configuration and
/// `fused_speedup` reads ~1.0. `native = true` adds a phase with the
/// native (compiled C) tier enabled; its output must stay bit-identical
/// to the batched phase, and kernels the emitter declines are counted
/// with typed reasons.
pub fn tier_comparison_full(
    scale: usize,
    threads: usize,
    regions: usize,
    fuse: bool,
    native: bool,
) -> Vec<TierRow> {
    let scale = scale.max(1);
    workloads_unfused(scale)
        .into_iter()
        .chain(workloads_nested_unfused(scale))
        .map(|c| run_case(c, threads.max(1), regions, fuse, native))
        .collect()
}

/// Which executor configuration a measurement phase uses.
#[derive(Clone, Copy)]
enum Tier {
    Batched,
    Native,
    ScalarKernel,
    TreeWalk,
}

/// Timed executions per phase (the first pays kernel compilation).
const RUNS: u64 = 2;

fn run_tier(
    program: &Program,
    borrowed: &[(&str, Value)],
    tier: Tier,
    threads: usize,
    sharding: Option<(usize, std::sync::Arc<dmll_analysis::ProgramPlan>)>,
    fuse: bool,
    externs: &Externs,
) -> (f64, Value, u64, u64) {
    let mut interp = match tier {
        Tier::Batched => Interp::new(program),
        Tier::Native => Interp::new(program).with_native(),
        Tier::ScalarKernel => Interp::new(program).without_batched_tier(),
        Tier::TreeWalk => Interp::new(program).without_compiled_tier(),
    };
    if !fuse {
        interp = interp.without_fusion();
    }
    let interp = interp.with_externs(externs.clone());
    let mut options = match tier {
        Tier::Batched => ParallelOptions::new(threads),
        Tier::Native => ParallelOptions::new(threads).with_native(),
        Tier::ScalarKernel => ParallelOptions::new(threads).scalar_kernel_only(),
        Tier::TreeWalk => ParallelOptions::new(threads).tree_walk_only(),
    };
    if !fuse {
        options = options.without_fusion();
    }
    options = options.with_externs(externs.clone());
    if let Some((regions, plan)) = sharding {
        options = options.with_regions(regions).with_plan(plan);
    }
    let mut secs = f64::INFINITY;
    let mut out = None;
    let mut compiled_loops: u64 = 0;
    let mut stolen: u64 = 0;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let v = if threads > 1 {
            let (v, report) =
                eval_parallel_report(program, borrowed, &options).expect("parallel tier run");
            compiled_loops = report.compiled_loops as u64;
            stolen += report.stolen_tasks as u64;
            v
        } else {
            let (v, report) = interp.run_report(borrowed).expect("tier run");
            compiled_loops = report.compiled_loops;
            v
        };
        secs = secs.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (secs, out.expect("two runs"), compiled_loops, stolen)
}

fn run_case(mut case: Workload, threads: usize, regions: usize, fuse: bool, native: bool) -> TierRow {
    // The program as staged (unfused): the baseline phases run this with
    // the fusion hook pinned off, so the comparison below isolates what
    // fuse-then-compile buys.
    let unfused_program = case.program.clone();

    // What the runtime fusion recipe does to this program, counted once
    // (the hook memoizes, so executions would double-count): per-rule
    // applied/rejected numbers for the report and JSON.
    let fuse_report = if fuse {
        let mut fused = case.program.clone();
        pipeline::optimize_runtime(&mut fused, Target::Cpu)
    } else {
        dmll_transform::OptReport::default()
    };

    // Sharded data plane on the batched tier: fuse first, then analyze —
    // the exported access plan must describe the loops that actually
    // execute, and the fusion hook is a no-op on its own output, so the
    // analyzed (and possibly repaired) program runs with the hook off to
    // keep the plan's symbols authoritative. The scalar and tree-walk
    // comparison phases stay blind — the tier gate then also certifies
    // sharded == blind bit-identity.
    let sharding = (regions > 0).then(|| {
        if fuse {
            pipeline::optimize_runtime(&mut case.program, Target::Cpu);
        }
        let result = dmll_analysis::analyze(&mut case.program);
        (
            regions,
            std::sync::Arc::new(dmll_analysis::export_plan(&result)),
        )
    });
    // With the sharded plane the program above is already fused and the
    // plan is keyed to it; everywhere else the hook fuses at run time
    // (the production configuration, exercising the fingerprinted kernel
    // cache).
    let hook = fuse && regions == 0;
    let borrowed: Vec<(&str, Value)> = case
        .inputs
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();

    reset_tier_totals();
    let (batched_secs, batched_out, compiled_loops, stolen) = run_tier(
        &case.program,
        &borrowed,
        Tier::Batched,
        threads,
        sharding,
        hook,
        &case.externs,
    );
    let ct = tier_totals();
    // Keys are the typed `BatchIneligible` taxonomy's stable snake_case
    // identifiers, so the JSON key set never depends on message wording.
    let batch_reject: Vec<(String, u64)> = dmll_interp::batch_reject_reasons()
        .into_iter()
        .map(|(reason, count)| (reason.key().to_string(), count / RUNS))
        .collect();

    // Native phase: the batched configuration plus the compile-and-dlopen
    // tier. Output must stay bit-identical to the batched phase; kernels
    // the emitter or the environment declines fall back to batched with
    // typed, counted reasons (compiler absent, float reassociation
    // unpinned, unsupported shape).
    reset_tier_totals();
    let (native_secs, native_identical, nt, native_fallback) = if native {
        let (secs, native_out, _, _) = run_tier(
            &case.program,
            &borrowed,
            Tier::Native,
            threads,
            None,
            hook,
            &case.externs,
        );
        let nt = tier_totals();
        let fallback: Vec<(String, u64)> = dmll_interp::native_fallback_reasons()
            .into_iter()
            .map(|(reason, count)| (reason.to_string(), count / RUNS))
            .collect();
        (Some(secs), native_out == batched_out, nt, fallback)
    } else {
        (None, true, dmll_interp::TierTotals::default(), Vec::new())
    };

    // Unfused baseline: the same batched executor over the program as
    // staged, fusion hook off.
    reset_tier_totals();
    let (mut unfused_secs, unfused_out, _, _) = run_tier(
        &unfused_program,
        &borrowed,
        Tier::Batched,
        threads,
        None,
        false,
        &case.externs,
    );

    // When the rewrite recipe applied nothing, the fused and unfused
    // phases execute identical code (the hook memoizes an identity and
    // kernels share cache entries under fingerprint 0), so any measured
    // gap is pure run-to-run timing noise. Re-measure both sides in
    // pairs until the minima agree within the smoke gate's 0.98x bound
    // or the retry budget runs out — keeping the zero-rewrite gate
    // meaningful on noisy runners without loosening it.
    let mut batched_secs = batched_secs;
    if hook && fuse_report.applied_total() == 0 {
        for retry in 0..6 {
            if unfused_secs >= 0.98 * batched_secs {
                break;
            }
            // Alternate which side is measured first so a monotonic
            // frequency/load drift on the runner biases each side equally
            // across the retry budget instead of always favoring one.
            let fused_once = || {
                run_tier(
                    &case.program,
                    &borrowed,
                    Tier::Batched,
                    threads,
                    None,
                    hook,
                    &case.externs,
                )
                .0
            };
            let unfused_once = || {
                run_tier(
                    &unfused_program,
                    &borrowed,
                    Tier::Batched,
                    threads,
                    None,
                    false,
                    &case.externs,
                )
                .0
            };
            let (b2, u2) = if retry % 2 == 0 {
                let b = fused_once();
                (b, unfused_once())
            } else {
                let u = unfused_once();
                (fused_once(), u)
            };
            batched_secs = batched_secs.min(b2);
            unfused_secs = unfused_secs.min(u2);
        }
    }

    reset_tier_totals();
    let (compiled_secs, scalar_out, _, _) = run_tier(
        &case.program,
        &borrowed,
        Tier::ScalarKernel,
        threads,
        None,
        hook,
        &case.externs,
    );

    // Tree-walk reference. Sequentially this is the *unfused* program —
    // the paper's semantics as written, which the fused batched and
    // scalar tiers must match bit-for-bit, lane-order float folds
    // included. Chunked (threads > 1) it runs the same configuration as
    // the batched phase: per-chunk float-reduce partials merge with the
    // reduction operator, which reassociates rounding differently for
    // different loop structures, so the cross-program identity claim is
    // sequential and the chunked gate is within-program across tiers.
    reset_tier_totals();
    let (treewalk_secs, treewalk_out, _, _) = if threads > 1 {
        run_tier(
            &case.program,
            &borrowed,
            Tier::TreeWalk,
            threads,
            None,
            hook,
            &case.externs,
        )
    } else {
        // The sequential tree-walk baseline runs the *unfused* program
        // with both the compiled tier and the fusion hook off — the
        // paper's naive-recursive baseline, exactly as staged.
        let walker = Interp::new(&unfused_program)
            .without_compiled_tier()
            .without_fusion()
            .with_externs(case.externs.clone());
        let mut secs = f64::INFINITY;
        let mut out = None;
        for _ in 0..RUNS {
            let t0 = Instant::now();
            let v = walker.run(&borrowed).expect("tree-walk tier run");
            secs = secs.min(t0.elapsed().as_secs_f64());
            out = Some(v);
        }
        (secs, out.expect("two runs"), 0, 0)
    };
    let tt = tier_totals();

    // Supervised phase: one batched run under a default supervisor
    // (speculation + quarantine enabled, no deadline). Outputs must match
    // the unsupervised batched run bit-for-bit — speculation only clones
    // deterministic tasks — and the supervision counters land in the
    // report.
    reset_tier_totals();
    let supervised_identical = if threads > 1 {
        let sup = Supervisor::new(SupervisorPolicy::default());
        let mut opts = ParallelOptions::new(threads)
            .supervised(sup)
            .with_externs(case.externs.clone());
        if !hook {
            opts = opts.without_fusion();
        }
        let (v, _) = dmll_interp::eval_parallel_supervised(&case.program, &borrowed, &opts)
            .expect("supervised tier run");
        v == batched_out
    } else {
        true
    };
    let st = tier_totals();

    // Bridge the interpreter counters into the runtime's profiling type:
    // kernel/compile/batched numbers from the batched phase, walk numbers
    // from the forced tree-walk phase, supervision numbers from the
    // supervised phase.
    let stats = ExecTierStats {
        kernels_compiled: ct.kernels_compiled,
        kernel_cache_hits: ct.kernel_cache_hits,
        fallback_loops: ct.fallback_loops,
        compile_nanos: ct.compile_nanos,
        compiled_loops: ct.compiled_loops,
        compiled_elements: ct.compiled_elements,
        compiled_nanos: ct.compiled_nanos,
        treewalk_loops: tt.treewalk_loops,
        treewalk_elements: tt.treewalk_elements,
        treewalk_nanos: tt.treewalk_nanos,
        batched_loops: ct.batched_loops,
        batched_elements: ct.batched_elements,
        batched_nanos: ct.batched_nanos,
        batched_blocks: ct.batched_blocks,
        tail_elements: ct.tail_elements,
        simd_blocks: ct.simd_blocks,
        segmented_blocks: ct.segmented_blocks,
        scatter_loops: ct.scatter_loops,
        native_loops: nt.native_loops,
        native_elements: nt.native_elements,
        native_nanos: nt.native_nanos,
        native_compiles: nt.native_compiles,
        native_compile_nanos: nt.native_compile_nanos,
        // Per-run, matching `native_fallback_reasons` and
        // `batch_ineligible` below (each execution re-requests the tier).
        native_fallbacks: nt.native_fallbacks / RUNS,
        tasks_stolen: ct.tasks_stolen.max(stolen),
        cache_evictions: ct.cache_evictions,
        negative_hits: ct.negative_hits,
        speculative_launches: st.speculative_launches,
        speculation_wins: st.speculation_wins,
        quarantine_trips: st.quarantine_trips,
        deadline_aborts: st.deadline_aborts,
        cancelled_aborts: st.cancelled_aborts,
        sharded_loops: ct.sharded_loops,
        stencil_fallbacks: ct.stencil_fallbacks,
        partition_warnings: ct.partition_warnings,
        region_local_tasks: ct.region_local_tasks,
        cross_region_steals: ct.cross_region_steals,
        // Per-program facts from the rewrite report, not the per-run
        // counters (executions would multiply them by RUNS).
        fusion_applied: fuse_report.applied_total() as u64,
        fusion_rejected: fuse_report.rejected_total() as u64,
        batch_ineligible: ct.batch_ineligible / RUNS,
        // The kernel-tier bench never runs the cluster data plane; these
        // stay zero here and are populated by the fig8_cluster bench.
        cluster_loops: ct.cluster_loops,
        cluster_shuffles: ct.cluster_shuffles,
        shuffle_sends: ct.shuffle_sends,
        shuffle_bytes: ct.shuffle_bytes,
        link_retries: ct.link_retries,
        lineage_recoveries: ct.lineage_recoveries,
        halo_exchanges: ct.halo_exchanges,
        cluster_network_nanos: ct.cluster_network_nanos,
    };
    TierRow {
        app: case.app,
        rows: case.rows,
        threads,
        batched_secs,
        unfused_secs,
        compiled_secs,
        treewalk_secs,
        identical: batched_out == scalar_out
            && batched_out == treewalk_out
            // Fused-vs-unfused bit identity is the sequential claim;
            // chunked float reduces fold per-chunk partials, and the two
            // programs chunk different loop structures.
            && (threads > 1 || batched_out == unfused_out)
            && supervised_identical
            && native_identical,
        compiled_loops,
        batched_loops: ct.batched_loops,
        fallback_loops: ct.fallback_loops,
        fusion_passes: fuse_report.passes.clone(),
        fusion_rejections: fuse_report
            .rejections
            .iter()
            .map(|(name, set)| (name.clone(), set.len()))
            .collect(),
        batch_reject,
        native_secs,
        native_fallback,
        stats,
    }
}

fn json_count_map<K: std::fmt::Display, V: std::fmt::Display>(entries: &[(K, V)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in entries.iter().enumerate() {
        let _ = write!(out, "{}\"{}\": {}", if i == 0 { "" } else { ", " }, k, v);
    }
    out.push('}');
    out
}

/// Serialize rows as the `BENCH_kernels.json` document.
pub fn to_json(rows: &[TierRow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"kernels_tier\",\n  \"apps\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"app\": \"{}\", \"rows\": {}, \"threads\": {}, \
             \"batched_secs\": {:.6}, \"unfused_secs\": {:.6}, \
             \"compiled_secs\": {:.6}, \
             \"treewalk_secs\": {:.6}, \"speedup\": {:.2}, \
             \"batched_speedup\": {:.2}, \"fused_speedup\": {:.2}, \
             \"identical\": {}, \
             \"compiled_loops\": {}, \"batched_loops\": {}, \
             \"fallback_loops\": {}, \
             \"fusion_applied\": {}, \"fusion_rejected\": {}, \
             \"fusion_passes\": {}, \"fusion_rejections\": {}, \
             \"batch_ineligible\": {}, \"batch_fallback_reasons\": {}, \
             \"kernels_compiled\": {}, \"kernel_cache_hits\": {}, \
             \"compile_millis\": {:.3}, \
             \"batched_blocks\": {}, \"tail_elements\": {}, \
             \"simd_blocks\": {}, \"segmented_blocks\": {}, \
             \"scatter_loops\": {}, \
             \"native_secs\": {}, \"native_speedup\": {}, \
             \"native_loops\": {}, \"native_compiles\": {}, \
             \"native_compile_millis\": {:.3}, \
             \"native_fallbacks\": {}, \"native_fallback_reasons\": {}, \
             \"native_elements_per_sec\": {:.0}, \
             \"tasks_stolen\": {}, \"cache_evictions\": {}, \
             \"negative_hits\": {}, \
             \"speculative_launches\": {}, \"speculation_wins\": {}, \
             \"quarantine_trips\": {}, \"deadline_aborts\": {}, \
             \"cancelled_aborts\": {}, \
             \"sharded_loops\": {}, \"stencil_fallbacks\": {}, \
             \"partition_warnings\": {}, \"region_local_tasks\": {}, \
             \"cross_region_steals\": {}, \
             \"batched_elements_per_sec\": {:.0}, \
             \"compiled_elements_per_sec\": {:.0}, \
             \"treewalk_elements_per_sec\": {:.0}}}{}",
            r.app,
            r.rows,
            r.threads,
            r.batched_secs,
            r.unfused_secs,
            r.compiled_secs,
            r.treewalk_secs,
            r.speedup(),
            r.batched_speedup(),
            r.fused_speedup(),
            r.identical,
            r.compiled_loops,
            r.batched_loops,
            r.fallback_loops,
            r.stats.fusion_applied,
            r.stats.fusion_rejected,
            json_count_map(&r.fusion_passes),
            json_count_map(&r.fusion_rejections),
            r.stats.batch_ineligible,
            json_count_map(&r.batch_reject),
            r.stats.kernels_compiled,
            r.stats.kernel_cache_hits,
            r.stats.compile_nanos as f64 / 1e6,
            r.stats.batched_blocks,
            r.stats.tail_elements,
            r.stats.simd_blocks,
            r.stats.segmented_blocks,
            r.stats.scatter_loops,
            r.native_secs
                .map_or("null".to_string(), |s| format!("{s:.6}")),
            r.native_speedup()
                .map_or("null".to_string(), |s| format!("{s:.2}")),
            r.stats.native_loops,
            r.stats.native_compiles,
            r.stats.native_compile_nanos as f64 / 1e6,
            r.stats.native_fallbacks,
            json_count_map(&r.native_fallback),
            r.stats.native_elements_per_sec().unwrap_or(0.0),
            r.stats.tasks_stolen,
            r.stats.cache_evictions,
            r.stats.negative_hits,
            r.stats.speculative_launches,
            r.stats.speculation_wins,
            r.stats.quarantine_trips,
            r.stats.deadline_aborts,
            r.stats.cancelled_aborts,
            r.stats.sharded_loops,
            r.stats.stencil_fallbacks,
            r.stats.partition_warnings,
            r.stats.region_local_tasks,
            r.stats.cross_region_steals,
            r.stats.batched_elements_per_sec().unwrap_or(0.0),
            r.stats.compiled_elements_per_sec().unwrap_or(0.0),
            r.stats.treewalk_elements_per_sec().unwrap_or(0.0),
            if i + 1 == rows.len() { "\n" } else { ",\n" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_agree_and_kernels_fire() {
        // Smallest scale: correctness of the comparison harness, not speed.
        let rows = tier_comparison(1);
        assert_eq!(rows.len(), 7);
        let mut batched_apps = 0;
        for r in &rows {
            assert!(r.identical, "{} tiers disagree", r.app);
            assert!(r.compiled_loops > 0, "{} never compiled a loop", r.app);
            assert!(r.stats.treewalk_loops > 0, "{} never tree-walked", r.app);
            if r.batched_loops > 0 {
                batched_apps += 1;
                assert!(
                    r.stats.batched_blocks > 0 || r.stats.tail_elements > 0,
                    "{} batched without block or tail work",
                    r.app
                );
            }
        }
        assert!(
            batched_apps >= 2,
            "expected at least two apps on the batched tier, got {batched_apps}"
        );
        // Fuse-then-compile: the hook must find structural rewrites on the
        // unfused-staged flagship apps and surface the counters.
        for app in ["Q1", "k-means"] {
            let r = rows.iter().find(|r| r.app == app).expect("row");
            assert!(
                r.stats.fusion_applied > 0,
                "{} runtime recipe applied nothing: {:?}",
                app,
                r.fusion_passes
            );
        }
        // The nested-loop workloads must run their variable-trip inner
        // loops through the segmented batch path — fully batched, zero
        // scalar fallbacks.
        for app in ["Gibbs", "Triangles"] {
            let r = rows.iter().find(|r| r.app == app).expect("row");
            assert!(r.batched_loops > 0, "{app} never batched");
            assert!(
                r.stats.segmented_blocks > 0,
                "{app} never took the segmented path"
            );
            assert_eq!(r.fallback_loops, 0, "{app} fell back to the tree-walker");
        }
        let json = to_json(&rows);
        assert!(json.contains("\"k-means\""), "{json}");
        assert!(json.contains("\"PageRank\""), "{json}");
        assert!(json.contains("\"Q1\""), "{json}");
        assert!(json.contains("\"Gibbs\""), "{json}");
        assert!(json.contains("\"Triangles\""), "{json}");
        assert!(json.contains("\"identical\": true"), "{json}");
        assert!(json.contains("\"fused_speedup\""), "{json}");
        assert!(json.contains("\"fusion_passes\""), "{json}");
        assert!(json.contains("\"segmented_blocks\""), "{json}");
    }

    #[test]
    fn tiers_agree_across_threads() {
        // The work-stealing chunked path must stay bit-identical too.
        for r in tier_comparison_threads(1, 3) {
            assert!(r.identical, "{} tiers disagree at 3 threads", r.app);
        }
    }

    #[test]
    fn no_fuse_knob_pins_hook_off() {
        let rows = tier_comparison_full(1, 1, 0, false, false);
        for r in &rows {
            assert!(r.identical, "{} tiers disagree with fusion off", r.app);
            assert_eq!(r.stats.fusion_applied, 0, "{} fused anyway", r.app);
            assert!(r.fusion_passes.is_empty(), "{}", r.app);
        }
    }
}
