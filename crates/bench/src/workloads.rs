//! Paper-scale workload descriptions: staged programs, their input shapes,
//! and the derived cost-model profiles per target.

use dmll_analysis::AnalysisResult;
use dmll_apps::{gda, gene, kmeans, logreg, q1};
use dmll_core::Program;
use dmll_runtime::shape::ShapeConfig;
use dmll_runtime::{profile_program, LoopProfile, ShapeVal};
use dmll_transform::{pipeline, Target};

/// The five dataset-parallel benchmarks (the graph pair and Gibbs go
/// through the dedicated graph/sampler models).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum App {
    /// TPC-H Query 1.
    Q1,
    /// Gene Barcoding.
    Gene,
    /// Gaussian Discriminant Analysis.
    Gda,
    /// Logistic Regression.
    LogReg,
    /// k-means.
    KMeans,
}

impl App {
    /// All five, in Table 2 order.
    pub fn all() -> [App; 5] {
        [App::Q1, App::Gene, App::Gda, App::LogReg, App::KMeans]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            App::Q1 => "TPCHQ1",
            App::Gene => "Gene",
            App::Gda => "GDA",
            App::LogReg => "LogReg",
            App::KMeans => "k-means",
        }
    }

    /// Stage the application as the user writes it.
    pub fn stage(self) -> Program {
        match self {
            App::Q1 => q1::stage_q1(),
            App::Gene => gene::stage_gene(),
            App::Gda => gda::stage_gda(),
            App::LogReg => logreg::stage_logreg(0.01),
            App::KMeans => kmeans::stage_kmeans(20),
        }
    }

    /// Paper-scale dataset dimensions (Table 2's Data Set column).
    pub fn scale(self) -> DataScale {
        match self {
            // TPC-H SF5 lineitem ≈ 30M rows.
            App::Q1 => DataScale {
                rows: 30_000_000,
                cols: 7,
                buckets: 6,
            },
            App::Gene => DataScale {
                rows: 3_500_000,
                cols: 2,
                buckets: 65_536,
            },
            App::Gda => DataScale {
                rows: 500_000,
                cols: 100,
                buckets: 2,
            },
            App::LogReg => DataScale {
                rows: 500_000,
                cols: 100,
                buckets: 2,
            },
            App::KMeans => DataScale {
                rows: 500_000,
                cols: 100,
                buckets: 20,
            },
        }
    }

    /// Input shapes matching whatever inputs `program` declares (pre- or
    /// post-SoA).
    pub fn shapes(self, program: &Program, scale: &DataScale) -> Vec<(String, ShapeVal)> {
        let n = scale.rows;
        program
            .inputs
            .iter()
            .map(|input| {
                let shape = match (self, input.name.as_str()) {
                    (App::Q1, "items") => ShapeVal::struct_arr(n, q1::lineitem_ty()),
                    (App::Q1, _) => ShapeVal::f64_arr(n), // any column
                    (App::Gene, _) => ShapeVal::i64_arr(n),
                    (App::Gda, "x") | (App::LogReg, "x") => ShapeVal::matrix(n, scale.cols),
                    (App::Gda, "y") | (App::LogReg, "y") => ShapeVal::f64_arr(n),
                    (App::LogReg, "theta") => ShapeVal::f64_arr(scale.cols),
                    (App::KMeans, "matrix") => ShapeVal::matrix(n, scale.cols),
                    (App::KMeans, "clusters") => ShapeVal::matrix(scale.buckets, scale.cols),
                    _ => ShapeVal::f64_arr(n),
                };
                (input.name.clone(), shape)
            })
            .collect()
    }

    /// Optimize for `target`, analyze, and derive cost-model profiles at
    /// the given scale.
    pub fn build(self, target: Target, scale: &DataScale) -> BuiltApp {
        let mut program = self.stage();
        let report = pipeline::optimize(&mut program, target);
        let analysis = dmll_analysis::analyze(&mut program);
        let profiles = profile_at(self, &program, &analysis, scale);
        BuiltApp {
            app: self,
            program,
            optimizations: report.summary(),
            analysis,
            profiles,
        }
    }

    /// Profiles of the program *as written* (no optimizer) — the
    /// non-transformed baselines of Figure 6.
    pub fn build_untransformed(self, scale: &DataScale) -> BuiltApp {
        let program = self.stage();
        let stencils = dmll_analysis::stencil::analyze(&program);
        let partition = dmll_analysis::partition::analyze(&program, &stencils);
        let analysis = AnalysisResult {
            stencils,
            partition,
            repairs: vec![],
        };
        let profiles = profile_at(self, &program, &analysis, scale);
        BuiltApp {
            app: self,
            program,
            optimizations: String::new(),
            analysis,
            profiles,
        }
    }
}

/// Profile a program *as is*, without the stencil-repair pass (which would
/// re-apply Column-to-Row and undo a GPU-targeted Row-to-Column layout).
pub fn profiles_without_repair(app: App, program: &Program, scale: &DataScale) -> Vec<LoopProfile> {
    let stencils = dmll_analysis::stencil::analyze(program);
    let partition = dmll_analysis::partition::analyze(program, &stencils);
    let analysis = AnalysisResult {
        stencils,
        partition,
        repairs: vec![],
    };
    profile_at(app, program, &analysis, scale)
}

/// Dataset dimensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataScale {
    /// Primary dimension (rows / reads / records).
    pub rows: i64,
    /// Secondary dimension (features / record width).
    pub cols: i64,
    /// Expected distinct group count.
    pub buckets: i64,
}

/// A compiled, analyzed, profiled application.
pub struct BuiltApp {
    /// Which benchmark.
    pub app: App,
    /// The optimized program.
    pub program: Program,
    /// Headline optimizations that fired (Table 2's Optimizations column).
    pub optimizations: String,
    /// Distribution analysis results.
    pub analysis: AnalysisResult,
    /// Per-loop cost profiles at the paper scale.
    pub profiles: Vec<LoopProfile>,
}

fn profile_at(
    app: App,
    program: &Program,
    analysis: &AnalysisResult,
    scale: &DataScale,
) -> Vec<LoopProfile> {
    let shapes = app.shapes(program, scale);
    let refs: Vec<(&str, ShapeVal)> = shapes
        .iter()
        .map(|(n, s)| (n.as_str(), s.clone()))
        .collect();
    let cfg = ShapeConfig {
        bucket_hint: scale.buckets,
        selectivity: 1.0,
    };
    profile_program(program, analysis, &refs, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_builds_for_every_target() {
        for app in App::all() {
            // Small scale keeps the shape evaluation cheap.
            let scale = DataScale {
                rows: 10_000,
                cols: 10,
                buckets: 8,
            };
            for target in [Target::Cpu, Target::Numa, Target::Cluster, Target::Gpu] {
                let built = app.build(target, &scale);
                assert!(
                    !built.profiles.is_empty(),
                    "{} @ {target:?} produced no loop profiles",
                    app.name()
                );
                let work: f64 = built.profiles.iter().map(|p| p.total_flops()).sum();
                assert!(work > 0.0, "{} @ {target:?}", app.name());
            }
        }
    }

    #[test]
    fn optimizations_match_table2_claims() {
        let scale = DataScale {
            rows: 10_000,
            cols: 10,
            buckets: 8,
        };
        let q1 = App::Q1.build(Target::Cpu, &scale);
        assert!(
            q1.optimizations.contains("pipeline fusion"),
            "{}",
            q1.optimizations
        );
        assert!(
            q1.optimizations.contains("AoS to SoA"),
            "{}",
            q1.optimizations
        );
        let km = App::KMeans.build(Target::Cluster, &scale);
        assert!(
            km.optimizations.contains("Conditional Reduce"),
            "{}",
            km.optimizations
        );
        let lr = App::LogReg.build(Target::Cluster, &scale);
        assert!(
            lr.optimizations.contains("Column-to-Row Reduce"),
            "{}",
            lr.optimizations
        );
    }

    #[test]
    fn transformed_kmeans_profiles_do_less_work() {
        let scale = DataScale {
            rows: 50_000,
            cols: 20,
            buckets: 20,
        };
        let before = App::KMeans.build_untransformed(&scale);
        let after = App::KMeans.build(Target::Numa, &scale);
        let bytes = |b: &BuiltApp| -> f64 { b.profiles.iter().map(|p| p.total_bytes()).sum() };
        // The shared assignment pass dominates both variants; the update's
        // per-cluster full passes still show up clearly in the total.
        assert!(
            bytes(&after) * 1.25 < bytes(&before),
            "transformation removes the per-cluster passes: {} vs {}",
            bytes(&after),
            bytes(&before)
        );
    }
}
