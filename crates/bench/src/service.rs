//! Service bench: seeded open-/closed-loop traffic against the
//! multi-tenant query service, emitting `BENCH_service.json`.
//!
//! Three phases, one service instance:
//!
//! 1. **Uncontended** (closed loop): one in-flight query at a time from a
//!    mid-priority tenant. This measures the floor — dispatch, a cached
//!    kernel, and a condvar wakeup — and its p99 anchors the overload
//!    gate.
//! 2. **Overload** (open loop): every tenant submits as fast as the
//!    submitter can go, ignoring completions — the arrival process does
//!    not slow down because the service is struggling, which is exactly
//!    the regime admission control exists for. Traffic is the same
//!    lightweight query class as the baseline (seeded SplitMix64 picks
//!    tenant and program variant), so the two p99s compare like for
//!    like; heavyweight chunked queries are exercised by the chaos
//!    harness's service probe, where fault injection needs them anyway.
//! 3. **Recovery**: arrivals stop, the backlog drains, and a trickle of
//!    probe queries lets the hysteresis controller walk the degradation
//!    ladder back to `Normal`.
//!
//! The **shed-not-collapse gate**: admitted p99 under open-loop overload
//! — measured over *guaranteed* tenants, the ones at or above the shed
//! floor — stays within [`GATE_P99_FACTOR`]× of the uncontended p99, the
//! excess is *rejected with typed errors* (not queued, not dropped),
//! every admitted query produces exactly one outcome, and the service is
//! back at `Normal` by the end of recovery. Background tenants (priority
//! below the floor) are best-effort by contract: strict-priority
//! scheduling starves them while guaranteed traffic is waiting and the
//! deepest rung sheds them outright, so their (reported, ungated)
//! latency under overload is the backlog they queued behind.

use dmll_core::Program;
use dmll_frontend::Stage;
use dmll_interp::Value;
use dmll_service::{
    DegradeLevel, DegradePolicy, MetricsSnapshot, QueryRequest, QueryService, ServiceBuilder,
    ServiceConfig, ServiceError, TenantId, TenantPolicy, TenantSnapshot,
};
use dmll_core::{LayoutHint, Ty};
use std::fmt::Write as _;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Overload p99 must stay within this factor of the uncontended p99.
pub const GATE_P99_FACTOR: f64 = 5.0;

/// Absolute tolerance on the overload p99, for core-starved runners. On
/// a single-core box the storm makes submitter and workers share one
/// CPU, so a few queries per thousand absorb an OS scheduling quantum
/// (single-digit milliseconds) regardless of queue discipline; the
/// relative gate alone would flag that as collapse. Real collapse —
/// unbounded queueing — parks *most* of the backlog for the storm's
/// whole duration (hundreds of milliseconds at smoke scale, seconds at
/// full scale), far above this floor, so the gate still discriminates.
pub const GATE_P99_FLOOR: Duration = Duration::from_millis(10);

/// Lightweight query rows: small enough to run in place (no per-query
/// thread spawn) on the compiled tier at one query thread.
const LIGHT_ROWS: usize = 3;

/// SplitMix64 avalanche (same constants as `dmll_runtime::fault`).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Three lightweight program variants — distinct multiloops, so the
/// shared kernel cache holds several entries and per-tenant hit rates
/// mean something. All exact over i64 and compiled-tier friendly.
fn program_variants() -> Vec<Arc<Program>> {
    // Sum of squares.
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let sq = st.map(&x, |st, e| st.mul(e, e));
    let total = st.sum(&sq);
    let squares = Arc::new(st.finish(&total));
    // Shift-then-sum.
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let shifted = st.map(&x, |st, e| {
        let three = st.lit_i(3);
        st.add(e, &three)
    });
    let total = st.sum(&shifted);
    let shifts = Arc::new(st.finish(&total));
    // Plain sum.
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let total = st.sum(&x);
    let sums = Arc::new(st.finish(&total));
    vec![squares, shifts, sums]
}

/// Latency percentiles in nanoseconds over a sorted sample.
#[derive(Clone, Copy, Debug, Default)]
pub struct Percentiles {
    /// Sample count.
    pub count: usize,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl Percentiles {
    fn from(mut nanos: Vec<u64>) -> Percentiles {
        if nanos.is_empty() {
            return Percentiles::default();
        }
        nanos.sort_unstable();
        let at = |q: f64| {
            let rank = ((nanos.len() as f64) * q).ceil() as usize;
            nanos[rank.clamp(1, nanos.len()) - 1]
        };
        Percentiles {
            count: nanos.len(),
            p50: at(0.50),
            p99: at(0.99),
            p999: at(0.999),
        }
    }
}

/// Everything one bench run measured.
#[derive(Debug)]
pub struct ServiceBenchReport {
    /// Worker threads the service ran with.
    pub workers: usize,
    /// Queries submitted during the overload phase.
    pub offered: usize,
    /// Uncontended (closed-loop) admitted latency (a guaranteed tenant).
    pub uncontended: Percentiles,
    /// Overload (open-loop) admitted latency, guaranteed tenants
    /// (priority at or above the shed floor) — the gated population.
    pub overload: Percentiles,
    /// Overload admitted latency, background tenants (below the floor):
    /// best-effort by contract, reported but not gated.
    pub overload_background: Percentiles,
    /// Final service counters (cumulative across phases).
    pub metrics: MetricsSnapshot,
    /// Per-tenant counters, including kernel-cache hit rates.
    pub tenants: Vec<TenantSnapshot>,
    /// Deepest degradation rung observed during overload.
    pub max_level: DegradeLevel,
    /// The service returned to `Normal` during recovery.
    pub recovered: bool,
    /// Outcomes received == queries admitted (no drops, no dups).
    pub accounted: bool,
    /// Overload wall time (for offered-load context).
    pub overload_secs: f64,
}

impl ServiceBenchReport {
    /// The shed-not-collapse gate.
    pub fn gate_ok(&self) -> bool {
        let p99_limit = ((self.uncontended.p99 as f64) * GATE_P99_FACTOR)
            .max(GATE_P99_FLOOR.as_nanos() as f64);
        let p99_ok = (self.overload.p99 as f64) <= p99_limit;
        let shed_engaged = self.metrics.rejected() > 0;
        let typed_only =
            self.metrics.completed_ok + self.metrics.completed_error >= self.metrics.admitted;
        p99_ok && shed_engaged && typed_only && self.recovered && self.accounted
    }
}

/// Scale knobs: smoke for CI, full for the real sweep.
#[derive(Clone, Copy, Debug)]
pub struct ServiceBenchScale {
    /// Closed-loop queries in the uncontended phase.
    pub uncontended_queries: usize,
    /// Open-loop submissions in the overload phase.
    pub overload_queries: usize,
}

impl ServiceBenchScale {
    /// CI scale: tens of thousands of queries, seconds of wall time.
    pub fn smoke() -> ServiceBenchScale {
        ServiceBenchScale {
            uncontended_queries: 2_000,
            overload_queries: 60_000,
        }
    }

    /// Full scale: an open-loop storm of a million-plus queries.
    pub fn full() -> ServiceBenchScale {
        ServiceBenchScale {
            uncontended_queries: 5_000,
            overload_queries: 1_200_000,
        }
    }
}

/// The bench's tenant roster: mixed priorities so the deepest degradation
/// rung has someone to shed, mixed rates so token buckets engage.
fn build_service(workers: usize) -> (QueryService, Vec<TenantId>) {
    let mut b = ServiceBuilder::new(ServiceConfig {
        workers,
        query_threads: 1,
        // Low enough that the summed cost of a full backlog overruns it:
        // cost shedding engages alongside the queue caps, and it bounds
        // total backlog (and therefore admitted-latency) tighter than the
        // caps alone.
        cost_budget: 40.0,
        degrade: DegradePolicy {
            enter_queue: 16,
            exit_queue: 4,
            enter_p99: Duration::from_millis(20),
            exit_p99: Duration::from_millis(10),
            dwell: Duration::from_millis(1),
            window: 256,
            shed_floor: 1,
        },
    });
    let mut tenants = Vec::new();
    for i in 0..6usize {
        // Tenants 0 and 1 are background: priority 0 (shed at the deepest
        // rung) and rate-limited hard enough that the storm drains their
        // buckets. 2–4 standard; 5 premium with a deeper queue.
        let background = i < 2;
        tenants.push(b.tenant(
            &format!("tenant{i}"),
            TenantPolicy {
                priority: if background { 0 } else if i == 5 { 4 } else { 2 },
                deadline: Duration::from_millis(250),
                retry_budget: 8,
                rate_per_sec: if background { 30_000.0 } else { 400_000.0 },
                burst: if background { 256.0 } else { 4_000.0 },
                queue_cap: if i == 5 { 16 } else { 8 },
            },
        ));
    }
    (b.start(), tenants)
}

/// Run the three phases and measure.
pub fn run_service_bench(workers: usize, scale: ServiceBenchScale, seed: u64) -> ServiceBenchReport {
    let programs = program_variants();
    let light: Vec<i64> = (0..LIGHT_ROWS as i64).map(|i| i * 7 % 13).collect();
    let (svc, tenants) = build_service(workers);
    svc.publish_dataset("light", vec![("x".into(), Value::i64_arr(light))]);

    // Phase 1: uncontended closed loop (one in flight), same seeded
    // program mix as the storm so the two p99s compare like for like.
    let mut uncontended = Vec::with_capacity(scale.uncontended_queries);
    for i in 0..scale.uncontended_queries {
        let r = mix(seed ^ 0xBA5E_11DE ^ (i as u64) << 20);
        let program = &programs[(r % programs.len() as u64) as usize];
        let rx = svc
            .submit(
                tenants[3],
                QueryRequest::new(Arc::clone(program)).with_dataset("light"),
            )
            .expect("uncontended submissions admit");
        let out = rx.recv().expect("outcome");
        assert!(out.result.is_ok(), "uncontended query failed: {:?}", out.result);
        uncontended.push(out.latency.as_nanos() as u64);
    }

    // Phase 2: open-loop overload. Submissions never wait on completions;
    // outcomes funnel into one channel and are drained afterwards.
    let (tx, rx) = channel();
    let mut admitted = 0usize;
    let mut max_level = DegradeLevel::Normal;
    let t0 = Instant::now();
    for i in 0..scale.overload_queries {
        let r = mix(seed.wrapping_add(i as u64));
        let tenant = tenants[(r % tenants.len() as u64) as usize];
        let program = &programs[((r >> 8) % programs.len() as u64) as usize];
        let req = QueryRequest::new(Arc::clone(program)).with_dataset("light");
        match svc.submit_with(tenant, req, tx.clone()) {
            Ok(_) => admitted += 1,
            Err(ServiceError::Rejected { .. }) => {}
            Err(other) => panic!("unexpected submit error: {other:?}"),
        }
        if i % 4096 == 0 {
            max_level = max_level.max(svc.level());
        }
    }
    drop(tx);
    let mut overload = Vec::with_capacity(admitted);
    let mut overload_background = Vec::new();
    let mut received = 0usize;
    while received < admitted {
        let out = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("service lost an admitted query (collapse or deadlock)");
        received += 1;
        if out.result.is_ok() {
            // Tenants 0 and 1 are the background (below-floor) roster.
            if out.tenant.0 < 2 {
                overload_background.push(out.latency.as_nanos() as u64);
            } else {
                overload.push(out.latency.as_nanos() as u64);
            }
        } else {
            // Typed errors (deadline storms under pressure) are part of
            // the contract; their latency is not an "admitted latency".
            assert!(
                matches!(out.result, Err(ServiceError::Exec(_))),
                "non-exec error on an admitted query: {:?}",
                out.result
            );
        }
        max_level = max_level.max(out.level);
    }
    let overload_secs = t0.elapsed().as_secs_f64();
    let accounted = received == admitted;

    // Phase 3: recovery. A trickle of probes gives the controller
    // completions to evaluate on; it must retrace the ladder to Normal.
    let recover_by = Instant::now() + Duration::from_secs(30);
    while svc.level() != DegradeLevel::Normal && Instant::now() < recover_by {
        if let Ok(rx) = svc.submit(
            tenants[5],
            QueryRequest::new(Arc::clone(&programs[0])).with_dataset("light"),
        ) {
            let _ = rx.recv();
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let recovered = svc.level() == DegradeLevel::Normal;
    let tenants_snap = svc.tenant_stats();
    let metrics = svc.shutdown();

    ServiceBenchReport {
        workers,
        offered: scale.overload_queries,
        uncontended: Percentiles::from(uncontended),
        overload: Percentiles::from(overload),
        overload_background: Percentiles::from(overload_background),
        metrics,
        tenants: tenants_snap,
        max_level,
        recovered,
        accounted,
        overload_secs,
    }
}

/// Render the report as a terminal summary.
pub fn render(r: &ServiceBenchReport) -> String {
    let mut out = String::new();
    let us = |n: u64| n as f64 / 1_000.0;
    let _ = writeln!(
        out,
        "Service bench: {} workers, {} offered (open loop, {:.2}s)",
        r.workers, r.offered, r.overload_secs
    );
    let _ = writeln!(
        out,
        "  uncontended: p50 {:.1}us  p99 {:.1}us  p999 {:.1}us  ({} queries)",
        us(r.uncontended.p50),
        us(r.uncontended.p99),
        us(r.uncontended.p999),
        r.uncontended.count
    );
    let _ = writeln!(
        out,
        "  overload:    p50 {:.1}us  p99 {:.1}us  p999 {:.1}us  ({} admitted-ok, guaranteed)",
        us(r.overload.p50),
        us(r.overload.p99),
        us(r.overload.p999),
        r.overload.count
    );
    let _ = writeln!(
        out,
        "  background:  p50 {:.1}us  p99 {:.1}us  p999 {:.1}us  ({} admitted-ok, best-effort)",
        us(r.overload_background.p50),
        us(r.overload_background.p99),
        us(r.overload_background.p999),
        r.overload_background.count
    );
    let m = &r.metrics;
    let _ = writeln!(
        out,
        "  admitted {}  rejected {} (queue_full {}, rate {}, cost {}, shed {}, shutdown {})",
        m.admitted,
        m.rejected(),
        m.rejected_queue_full,
        m.rejected_rate_limited,
        m.rejected_cost_shed,
        m.rejected_tenant_shed,
        m.rejected_shutdown
    );
    let _ = writeln!(
        out,
        "  completed ok {}  typed errors {} (supervision aborts {})  degrade: max {} esc {} deesc {} recovered {}",
        m.completed_ok,
        m.completed_error,
        m.supervision_aborts,
        r.max_level.label(),
        m.escalations,
        m.deescalations,
        r.recovered
    );
    for t in &r.tenants {
        let rate = t
            .cache
            .hit_rate()
            .map_or("n/a".to_string(), |x| format!("{:.1}%", x * 100.0));
        let _ = writeln!(
            out,
            "  {}: prio {} admitted {} rejected {} completed {}  cache hits {} misses {} evictions {} (hit rate {})",
            t.name,
            t.priority,
            t.admitted,
            t.rejected,
            t.completed,
            t.cache.hits,
            t.cache.misses,
            t.cache.evictions,
            rate
        );
    }
    let _ = writeln!(
        out,
        "gate (p99 within {GATE_P99_FACTOR}x or {}ms quantum floor, shed engaged, typed-only, accounted, recovered): {}",
        GATE_P99_FLOOR.as_millis(),
        if r.gate_ok() { "ok" } else { "FAIL" }
    );
    out
}

/// Serialize the report as the `BENCH_service.json` document.
pub fn to_json(r: &ServiceBenchReport) -> String {
    let mut out = String::from("{\n  \"experiment\": \"service\",\n");
    let _ = writeln!(out, "  \"workers\": {},", r.workers);
    let _ = writeln!(out, "  \"offered\": {},", r.offered);
    let _ = writeln!(out, "  \"overload_secs\": {:.4},", r.overload_secs);
    let pct = |p: &Percentiles| {
        format!(
            "{{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
            p.count, p.p50, p.p99, p.p999
        )
    };
    let _ = writeln!(out, "  \"uncontended\": {},", pct(&r.uncontended));
    let _ = writeln!(out, "  \"overload_guaranteed\": {},", pct(&r.overload));
    let _ = writeln!(
        out,
        "  \"overload_background\": {},",
        pct(&r.overload_background)
    );
    let m = &r.metrics;
    let _ = writeln!(
        out,
        "  \"admission\": {{\"submitted\": {}, \"admitted\": {}, \"rejected\": {{\"queue_full\": {}, \"rate_limited\": {}, \"cost_shed\": {}, \"tenant_shed\": {}, \"shutting_down\": {}}}}},",
        m.submitted,
        m.admitted,
        m.rejected_queue_full,
        m.rejected_rate_limited,
        m.rejected_cost_shed,
        m.rejected_tenant_shed,
        m.rejected_shutdown
    );
    let _ = writeln!(
        out,
        "  \"completion\": {{\"ok\": {}, \"typed_errors\": {}, \"supervision_aborts\": {}, \"worker_panics\": {}}},",
        m.completed_ok, m.completed_error, m.supervision_aborts, m.worker_panics
    );
    let _ = writeln!(
        out,
        "  \"degrade\": {{\"max_level\": \"{}\", \"escalations\": {}, \"deescalations\": {}, \"recovered\": {}}},",
        r.max_level.label(),
        m.escalations,
        m.deescalations,
        r.recovered
    );
    out.push_str("  \"tenants\": [\n");
    for (i, t) in r.tenants.iter().enumerate() {
        let rate = t
            .cache
            .hit_rate()
            .map_or("null".to_string(), |x| format!("{x:.4}"));
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"priority\": {}, \"admitted\": {}, \"rejected\": {}, \"completed\": {}, \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {}}}}}{}",
            t.name,
            t.priority,
            t.admitted,
            t.rejected,
            t.completed,
            t.cache.hits,
            t.cache.misses,
            t.cache.evictions,
            rate,
            if i + 1 == r.tenants.len() { "\n" } else { ",\n" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"gate_p99_factor\": {GATE_P99_FACTOR},");
    let _ = writeln!(
        out,
        "  \"gate_p99_floor_ns\": {},",
        GATE_P99_FLOOR.as_nanos()
    );
    let _ = writeln!(out, "  \"gate_ok\": {}\n}}", r.gate_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_rank_correctly() {
        let p = Percentiles::from((1..=1000u64).collect());
        assert_eq!(p.p50, 500);
        assert_eq!(p.p99, 990);
        assert_eq!(p.p999, 999);
    }

    #[test]
    fn tiny_smoke_run_holds_the_contract() {
        let scale = ServiceBenchScale {
            uncontended_queries: 64,
            overload_queries: 2_000,
        };
        let r = run_service_bench(2, scale, 42);
        assert!(r.accounted, "admitted outcomes all accounted");
        assert!(r.recovered, "service recovered to Normal");
        assert_eq!(
            r.metrics.completed_ok + r.metrics.completed_error,
            r.metrics.admitted
        );
    }
}
