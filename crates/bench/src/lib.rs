//! # Benchmark harness
//!
//! Regenerates every table and figure of the paper's evaluation (§6). Each
//! experiment runs the *actual compiler pipeline* — stage the application,
//! optimize for the relevant target, run the distribution analyses, extract
//! IR-derived work/traffic profiles — and feeds the result into the hardware
//! cost model with the paper's testbed presets. Shapes (who wins, by
//! roughly what factor, where scaling stops) therefore emerge from the
//! transformations rather than being hard-coded.
//!
//! Binaries:
//!
//! * `table1_features` — the programming-model feature matrix;
//! * `table2_sequential` — sequential DMLL vs hand-optimized native, with
//!   the per-benchmark optimization log (measured interpreter times plus
//!   modeled generated-code times);
//! * `fig6_transforms` — speedups from the nested-pattern transformations
//!   (GPU and CPU panels);
//! * `fig7_numa` — NUMA scaling of DMLL / pin-only / Delite / Spark /
//!   PowerGraph, 1–48 cores;
//! * `fig8_cluster` — the 20-node EC2 cluster, the 4-node GPU cluster, the
//!   graph comparison and the Gibbs case study;
//! * `kernels_tier` — measured interpreter execution-tier comparison
//!   (compiled bytecode kernels vs the tree-walker), emitting
//!   `BENCH_kernels.json`;
//! * `chaos` — deterministic chaos sweep of the supervised executor
//!   (seeded fault plans × generator kinds × execution tiers, plus
//!   deadline, speculation-parity and service probes), emitting
//!   `BENCH_chaos.json`;
//! * `service_bench` — open-/closed-loop seeded traffic against the
//!   multi-tenant query service (admission control, load shedding,
//!   graceful degradation), emitting `BENCH_service.json`;
//! * `locality` (via `kernels_tier --regions R`) — measured blind-vs-
//!   sharded comparison of the locality-aware partitioned data plane,
//!   emitting `BENCH_locality.json`.

pub mod chaos;
pub mod cluster;
pub mod experiments;
pub mod locality;
pub mod render;
pub mod service;
pub mod tiers;
pub mod workloads;
