//! Plain-text rendering of experiment results.

use crate::experiments::{DegradedRow, Fig6Row, Fig8Row, ScalingCurve, Table2Row, FIG7_CORES};
use std::fmt::Write;

/// Render Table 2.
pub fn table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<20} {:>12} {:>12} {:>8}   Optimizations",
        "Benchmark", "Data Set", "DMLL (s)", "native (s)", "Δ"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:<20} {:>12.3} {:>12.3} {:>7.1}%   {}",
            r.name, r.dataset, r.dmll_modeled, r.native_modeled, r.delta_pct, r.optimizations
        );
    }
    out
}

/// Render a Figure 6 panel.
pub fn fig6(rows: &[Fig6Row], title: &str) -> String {
    let mut out = format!("{title}\n");
    let _ = writeln!(out, "{:<10} {:<14} {:>8}", "Benchmark", "Config", "Speedup");
    for r in rows {
        let _ = writeln!(out, "{:<10} {:<14} {:>7.2}x", r.app, r.config, r.speedup);
    }
    out
}

/// Render the Figure 7 scaling curves.
pub fn fig7(curves: &[ScalingCurve]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<10} {:<14}", "Benchmark", "System");
    for c in FIG7_CORES {
        let _ = write!(out, " {c:>7}c");
    }
    out.push('\n');
    let mut last_app = String::new();
    for c in curves {
        if c.app != last_app {
            last_app = c.app.clone();
            out.push('\n');
        }
        let _ = write!(out, "{:<10} {:<14}", c.app, c.system);
        for s in &c.speedups {
            let _ = write!(out, " {s:>7.1}x");
        }
        out.push('\n');
    }
    out
}

/// Render a Figure 8 panel.
pub fn fig8(rows: &[Fig8Row], title: &str, baseline: &str) -> String {
    let mut out = format!("{title} (speedup over {baseline})\n");
    let _ = writeln!(out, "{:<16} {:<12} {:>8}", "Benchmark", "System", "Speedup");
    for r in rows {
        let _ = writeln!(out, "{:<16} {:<12} {:>7.2}x", r.app, r.system, r.speedup);
    }
    out
}

/// Render the execution-tier comparison (measured, not modeled).
pub fn kernels(rows: &[crate::tiers::TierRow]) -> String {
    let mut out =
        String::from("Execution tiers: batched kernels vs scalar bytecode vs tree-walker\n");
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>7} {:>11} {:>11} {:>10} {:>11} {:>8} {:>8} {:>7} {:>9} {:>7} {:>9}",
        "Benchmark",
        "Rows",
        "Threads",
        "Batched(s)",
        "Unfused(s)",
        "Scalar(s)",
        "Treewalk(s)",
        "Speedup",
        "vScalar",
        "vFused",
        "Fused+/-",
        "Blocks",
        "Identical"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>7} {:>11.4} {:>11.4} {:>10.4} {:>11.4} {:>7.2}x {:>7.2}x \
             {:>6.2}x {:>7}/{:<1} {:>7} {:>9}",
            r.app,
            r.rows,
            r.threads,
            r.batched_secs,
            r.unfused_secs,
            r.compiled_secs,
            r.treewalk_secs,
            r.speedup(),
            r.batched_speedup(),
            r.fused_speedup(),
            r.stats.fusion_applied,
            r.stats.fusion_rejected,
            r.stats.batched_blocks,
            if r.identical { "yes" } else { "NO" }
        );
    }
    // Native (compiled C) tier lines, when the --native phase ran.
    for r in rows {
        if let (Some(secs), Some(speedup)) = (r.native_secs, r.native_speedup()) {
            let _ = writeln!(
                out,
                "{}: native {:.4}s ({:.2}x over batched), {} loops, {} compiles, \
                 {} fallbacks",
                r.app,
                secs,
                speedup,
                r.stats.native_loops,
                r.stats.native_compiles,
                r.stats.native_fallbacks
            );
            if !r.native_fallback.is_empty() {
                let reasons: Vec<String> = r
                    .native_fallback
                    .iter()
                    .map(|(reason, count)| format!("{reason} x{count}"))
                    .collect();
                let _ = writeln!(out, "{}: native fallback — {}", r.app, reasons.join(", "));
            }
        }
    }
    // Batch-certification fallbacks, with their typed reasons.
    for r in rows {
        if !r.batch_reject.is_empty() {
            let reasons: Vec<String> = r
                .batch_reject
                .iter()
                .map(|(reason, count)| format!("{reason} x{count}"))
                .collect();
            let _ = writeln!(out, "{}: scalar fallback — {}", r.app, reasons.join(", "));
        }
    }
    // Supervision counters from the supervised measurement phase (one
    // summary line: they are run-wide, not per-tier).
    let spec: u64 = rows.iter().map(|r| r.stats.speculative_launches).sum();
    let wins: u64 = rows.iter().map(|r| r.stats.speculation_wins).sum();
    let trips: u64 = rows.iter().map(|r| r.stats.quarantine_trips).sum();
    let deadline: u64 = rows.iter().map(|r| r.stats.deadline_aborts).sum();
    let cancelled: u64 = rows.iter().map(|r| r.stats.cancelled_aborts).sum();
    let _ = writeln!(
        out,
        "supervision: {spec} speculative launches ({wins} won), \
         {trips} quarantine trips, {deadline} deadline aborts, \
         {cancelled} cancellations"
    );
    out
}

/// Render the degraded-mode companion table.
pub fn fig8_degraded(rows: &[DegradedRow], title: &str) -> String {
    let mut out = format!("{title}\n");
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>12} {:>12} {:>9}",
        "Benchmark", "Lost", "Fault-free", "Degraded", "Slowdown"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>11.3}s {:>11.3}s {:>8.2}x",
            r.app, r.failed_nodes, r.fault_free, r.degraded, r.slowdown
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_are_nonempty() {
        let t = table2(&[Table2Row {
            name: "X".into(),
            dataset: "1 x 1".into(),
            optimizations: "CSE".into(),
            dmll_modeled: 1.0,
            native_modeled: 0.9,
            delta_pct: 11.1,
        }]);
        assert!(t.contains("X") && t.contains("11.1%"), "{t}");
        let f = fig6(
            &[Fig6Row {
                app: "k-means".into(),
                config: "both".into(),
                speedup: 2.5,
            }],
            "GPU",
        );
        assert!(f.contains("2.50x"), "{f}");
        let c = fig7(&[ScalingCurve {
            app: "GDA".into(),
            system: "DMLL".into(),
            speedups: vec![1.0, 10.0, 20.0, 40.0],
        }]);
        assert!(c.contains("40.0x"), "{c}");
        let e = fig8(
            &[Fig8Row {
                panel: "graph".into(),
                app: "PageRank".into(),
                system: "DMLL".into(),
                speedup: 1.2,
            }],
            "Graph",
            "PowerGraph",
        );
        assert!(e.contains("1.20x"), "{e}");
        let k = kernels(&[crate::tiers::TierRow {
            app: "k-means",
            rows: 3000,
            threads: 1,
            batched_secs: 0.01,
            unfused_secs: 0.03,
            compiled_secs: 0.02,
            treewalk_secs: 0.05,
            identical: true,
            compiled_loops: 2,
            batched_loops: 2,
            fallback_loops: 0,
            fusion_passes: vec![("Conditional Reduce".into(), 2)],
            fusion_rejections: Vec::new(),
            batch_reject: vec![("nested_loop_in_body".into(), 1)],
            native_secs: Some(0.005),
            native_fallback: vec![("compiler_unavailable".into(), 1)],
            stats: Default::default(),
        }]);
        assert!(
            k.contains("5.00x") && k.contains("2.00x") && k.contains("3.00x") && k.contains("yes"),
            "{k}"
        );
        assert!(k.contains("nested_loop_in_body x1"), "{k}");
        assert!(k.contains("native 0.0050s") && k.contains("compiler_unavailable x1"), "{k}");
    }
}
