//! Experiment drivers: one function per table/figure.

use crate::workloads::{App, DataScale};
use dmll_baselines::dimmwitted::{self, GibbsWorkload};
use dmll_baselines::powergraph::{dmll_graph_time, GraphWorkload, PowerGraphModel};
use dmll_baselines::spark::SparkModel;
use dmll_runtime::{
    simulate_loops, simulate_loops_degraded, ClusterSpec, ExecMode, FaultModel, GpuTuning,
    LoopProfile, MachineSpec,
};
use dmll_transform::Target;

fn numa() -> ClusterSpec {
    ClusterSpec::single(MachineSpec::numa_4x12())
}

/// Sequential time of a profile list on the NUMA box.
fn seq_time(profiles: &[LoopProfile]) -> f64 {
    simulate_loops(profiles, &numa(), &ExecMode::Sequential).total()
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Dataset description.
    pub dataset: String,
    /// Optimizations applied (from the optimizer's log).
    pub optimizations: String,
    /// Modeled sequential time of DMLL's generated code (seconds).
    pub dmll_modeled: f64,
    /// Modeled sequential time of the hand-optimized native version.
    pub native_modeled: f64,
    /// Modeled Δ (positive = DMLL slower), percent.
    pub delta_pct: f64,
}

/// The hand-optimized baseline reuses buffers instead of allocating fresh
/// outputs — and, for Query 1 specifically, pays for the slower C++11
/// standard-library hash map (the two causes §6 gives for the sequential
/// gaps; Gene's native grouping uses dense per-barcode arrays instead).
fn native_profiles(profiles: &[LoopProfile], std_hash_map: bool) -> Vec<LoopProfile> {
    profiles
        .iter()
        .map(|p| {
            let mut n = p.clone();
            // Buffer reuse: far less allocation/write traffic.
            n.output_bytes_per_iter *= 0.3;
            n.local_bytes_per_iter *= 0.85;
            if n.is_bucket && std_hash_map {
                // std::unordered_map vs the generated specialized map.
                n.flops_per_iter += 45.0;
            }
            n
        })
        .collect()
}

/// Compute Table 2's modeled sequential comparison for the five
/// dataset-parallel benchmarks (the graph pair is added by the binary from
/// the graph model).
pub fn table2() -> Vec<Table2Row> {
    App::all()
        .iter()
        .map(|&app| {
            let scale = app.scale();
            let built = app.build(Target::Cpu, &scale);
            let dmll = seq_time(&built.profiles);
            let native = seq_time(&native_profiles(&built.profiles, app == App::Q1));
            Table2Row {
                name: app.name().to_string(),
                dataset: format!("{} x {}", scale.rows, scale.cols),
                optimizations: built.optimizations,
                dmll_modeled: dmll,
                native_modeled: native,
                delta_pct: (dmll - native) / native * 100.0,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------------

/// One bar of Figure 6.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Benchmark.
    pub app: String,
    /// Configuration label.
    pub config: String,
    /// Speedup over the non-transformed configuration.
    pub speedup: f64,
}

/// Figure 6 (left): GPU speedups from the transpose and the Row-to-Column
/// (scalar reduce) transformations, for LogReg and k-means.
pub fn fig6_gpu() -> Vec<Fig6Row> {
    let cluster = ClusterSpec::gpu_4();
    let mut rows = Vec::new();
    for app in [App::LogReg, App::KMeans] {
        let scale = app.scale();
        // As written for distribution: vectorized (non-scalar) reductions.
        let vectorized = app.build(Target::Cluster, &scale);
        // Plus the Row-to-Column rule for the GPU kernel. Profile without
        // the stencil-repair pass: repair targets distribution and would
        // re-vectorize the kernel we just scalarized.
        let mut scalar_program = vectorized.program.clone();
        dmll_transform::pipeline::Optimizer::new(Target::Gpu).run(&mut scalar_program);
        let scalar = crate::workloads::profiles_without_repair(app, &scalar_program, &scale);
        let gpu = |profiles: &[LoopProfile], transposed: bool| {
            simulate_loops(
                profiles,
                &cluster,
                &ExecMode::Gpu {
                    tuning: GpuTuning { transposed },
                    amortized_iters: 100.0,
                },
            )
            .total()
        };
        let base = gpu(&vectorized.profiles, false);
        for (config, t) in [
            ("transpose", gpu(&vectorized.profiles, true)),
            ("scalar reduce", gpu(&scalar, false)),
            ("both", gpu(&scalar, true)),
        ] {
            rows.push(Fig6Row {
                app: app.name().to_string(),
                config: config.to_string(),
                speedup: base / t,
            });
        }
    }
    rows
}

/// Figure 6 (right): CPU speedups of the nested-pattern transformations at
/// 1 and 4 sockets, for Query 1, LogReg and k-means.
pub fn fig6_cpu() -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    for app in [App::Q1, App::LogReg, App::KMeans] {
        let scale = app.scale();
        let before = app.build_untransformed(&scale);
        let after = app.build(Target::Numa, &scale);
        for (label, cores) in [("1 socket", 12usize), ("4 sockets", 48)] {
            let t = |profiles: &[LoopProfile]| {
                simulate_loops(profiles, &numa(), &ExecMode::DmllNumaAware { cores }).total()
            };
            rows.push(Fig6Row {
                app: app.name().to_string(),
                config: label.to_string(),
                speedup: t(&before.profiles) / t(&after.profiles),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------------

/// Core counts studied in Figure 7.
pub const FIG7_CORES: [usize; 4] = [1, 12, 24, 48];

/// One scaling curve of Figure 7.
#[derive(Clone, Debug)]
pub struct ScalingCurve {
    /// Benchmark.
    pub app: String,
    /// System.
    pub system: String,
    /// Speedup over sequential DMLL at each of [`FIG7_CORES`].
    pub speedups: Vec<f64>,
}

/// The LiveJournal-like PageRank workload for the graph models.
pub fn pagerank_workload() -> GraphWorkload {
    GraphWorkload {
        vertices: 4.8e6,
        edges: 69e6,
        flops_per_edge: 3.0,
        bytes_per_edge: 24.0,
        vertex_state_bytes: 8.0,
        iterations: 1.0,
    }
}

/// Triangle counting: more arithmetic per edge, cache-resident working sets
/// ("the working sets tend to fit in cache, thereby hiding NUMA issues").
pub fn triangle_workload() -> GraphWorkload {
    GraphWorkload {
        vertices: 4.8e6,
        edges: 69e6,
        flops_per_edge: 40.0,
        bytes_per_edge: 6.0,
        vertex_state_bytes: 8.0,
        iterations: 1.0,
    }
}

/// Figure 7: the five dataset benchmarks under DMLL / DMLL-pin-only /
/// Delite / Spark, plus the two graph benchmarks under DMLL variants and
/// PowerGraph.
pub fn fig7() -> Vec<ScalingCurve> {
    type TimeAt<'a> = Box<dyn Fn(usize) -> f64 + 'a>;
    let mut curves = Vec::new();
    for app in App::all() {
        let built = app.build(Target::Numa, &app.scale());
        let baseline = seq_time(&built.profiles);
        let modes: [(&str, TimeAt<'_>); 4] = [
            (
                "DMLL",
                Box::new({
                    let p = built.profiles.clone();
                    move |c| {
                        simulate_loops(&p, &numa(), &ExecMode::DmllNumaAware { cores: c }).total()
                    }
                }),
            ),
            (
                "DMLL Pin Only",
                Box::new({
                    let p = built.profiles.clone();
                    move |c| {
                        simulate_loops(&p, &numa(), &ExecMode::DmllPinOnly { cores: c }).total()
                    }
                }),
            ),
            (
                "Delite",
                Box::new({
                    let p = built.profiles.clone();
                    move |c| {
                        simulate_loops(&p, &numa(), &ExecMode::DeliteShared { cores: c }).total()
                    }
                }),
            ),
            (
                "Spark",
                Box::new({
                    let p = built.profiles.clone();
                    move |c| SparkModel::default().simulate(&p, &numa(), Some(c)).total()
                }),
            ),
        ];
        for (system, time_at) in modes {
            curves.push(ScalingCurve {
                app: app.name().to_string(),
                system: system.to_string(),
                speedups: FIG7_CORES.iter().map(|&c| baseline / time_at(c)).collect(),
            });
        }
    }
    // Graph benchmarks.
    for (name, w) in [
        ("PageRank", pagerank_workload()),
        ("Triangle", triangle_workload()),
    ] {
        let baseline = dmll_graph_time(&w, &numa(), 1, true).total();
        let systems: [(&str, TimeAt<'_>); 4] = [
            (
                "DMLL",
                Box::new(move |c| dmll_graph_time(&w, &numa(), c, true).total()),
            ),
            (
                "DMLL Pin Only",
                Box::new(move |c| dmll_graph_time(&w, &numa(), c, false).total()),
            ),
            (
                "Delite",
                Box::new(move |c| dmll_graph_time(&w, &numa(), c, false).total() * 1.2),
            ),
            (
                "PowerGraph",
                Box::new(move |c| {
                    PowerGraphModel::default()
                        .simulate_with_cores(&w, &numa(), Some(c))
                        .total()
                }),
            ),
        ];
        for (system, time_at) in systems {
            curves.push(ScalingCurve {
                app: name.to_string(),
                system: system.to_string(),
                speedups: FIG7_CORES.iter().map(|&c| baseline / time_at(c)).collect(),
            });
        }
    }
    curves
}

// ---------------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------------

/// One bar of Figure 8 (a speedup over the named baseline).
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Panel label.
    pub panel: String,
    /// Benchmark (and variant).
    pub app: String,
    /// System whose speedup is reported.
    pub system: String,
    /// Speedup over the panel's baseline.
    pub speedup: f64,
}

/// Figure 8, left panels: the 20-node Amazon cluster — compute-component
/// speedup over Spark for Q1/Gene/GDA, and whole-run speedups for k-means
/// and LogReg at two data scales.
pub fn fig8_amazon() -> Vec<Fig8Row> {
    let amazon = ClusterSpec::amazon_20();
    let mut rows = Vec::new();
    for app in [App::Q1, App::Gene, App::Gda] {
        let built = app.build(Target::Cluster, &app.scale());
        let dmll = simulate_loops(&built.profiles, &amazon, &ExecMode::Cluster).total();
        let spark = SparkModel::default()
            .simulate(&built.profiles, &amazon, None)
            .total();
        rows.push(Fig8Row {
            panel: "compute component".into(),
            app: app.name().to_string(),
            system: "DMLL".into(),
            speedup: spark / dmll,
        });
    }
    for (app, scales) in [
        (App::KMeans, [(2_000_000i64, "1.7GB"), (20_000_000, "17GB")]),
        (App::LogReg, [(4_000_000, "3.4GB"), (20_000_000, "17GB")]),
    ] {
        for (rows_n, label) in scales {
            let scale = DataScale {
                rows: rows_n,
                cols: 100,
                buckets: app.scale().buckets,
            };
            let built = app.build(Target::Cluster, &scale);
            let dmll = simulate_loops(&built.profiles, &amazon, &ExecMode::Cluster).total();
            let spark = SparkModel::default()
                .simulate(&built.profiles, &amazon, None)
                .total();
            rows.push(Fig8Row {
                panel: "iterative".into(),
                app: format!("{} {label}", app.name()),
                system: "DMLL".into(),
                speedup: spark / dmll,
            });
        }
    }
    rows
}

/// Figure 8, middle panel: the 4-node GPU cluster — DMLL CPU and DMLL GPU
/// speedups over Spark for k-means, LogReg and GDA.
pub fn fig8_gpu_cluster() -> Vec<Fig8Row> {
    let cluster = ClusterSpec::gpu_4();
    let mut rows = Vec::new();
    for app in [App::KMeans, App::LogReg, App::Gda] {
        let scale = app.scale();
        let built = app.build(Target::Cluster, &scale);
        let spark = SparkModel::default()
            .simulate(&built.profiles, &cluster, None)
            .total();
        let cpu = simulate_loops(&built.profiles, &cluster, &ExecMode::Cluster).total();
        // GPU path (§3.2): Column-to-Row for distribution across the
        // cluster, then Row-to-Column *inside each node's kernel*. The
        // distribution dimension (network/broadcast volume) is the cluster
        // form's; the kernel-level scalarization removes the non-scalar
        // reduction penalty.
        let mut gp = built.program.clone();
        let kernel_report = dmll_transform::pipeline::Optimizer::new(Target::Gpu).run(&mut gp);
        let kernel_scalarized = kernel_report.applied("Row-to-Column Reduce") > 0;
        let mut gpu_profiles = built.profiles.clone();
        if kernel_scalarized {
            for p in &mut gpu_profiles {
                p.has_nonscalar_reduce = false;
            }
        }
        let iterative = matches!(app, App::KMeans | App::LogReg);
        let gpu = simulate_loops(
            &gpu_profiles,
            &cluster,
            &ExecMode::GpuCluster {
                tuning: GpuTuning { transposed: true },
                amortized_iters: if iterative { 100.0 } else { 2.0 },
            },
        )
        .total();
        rows.push(Fig8Row {
            panel: "GPU cluster".into(),
            app: app.name().to_string(),
            system: "DMLL CPU".into(),
            speedup: spark / cpu,
        });
        rows.push(Fig8Row {
            panel: "GPU cluster".into(),
            app: app.name().to_string(),
            system: "DMLL GPU".into(),
            speedup: spark / gpu,
        });
    }
    rows
}

/// Figure 8, graph panel: PageRank and Triangle Counting on the 4-node
/// cluster, DMLL speedup over PowerGraph.
pub fn fig8_graph() -> Vec<Fig8Row> {
    let cluster = ClusterSpec::gpu_4();
    [
        ("PageRank", pagerank_workload()),
        ("Triangle Ct", triangle_workload()),
    ]
    .into_iter()
    .map(|(name, w)| {
        let pg = PowerGraphModel::default().simulate(&w, &cluster).total();
        let dm = dmll_graph_time(&w, &cluster, cluster.node.total_cores(), true).total();
        Fig8Row {
            panel: "graph".into(),
            app: name.to_string(),
            system: "DMLL".into(),
            speedup: pg / dm,
        }
    })
    .collect()
}

/// One row of the degraded-mode companion to Figure 8: how much slower the
/// same cluster run gets when nodes die mid-loop and the survivors
/// re-execute the lost iteration ranges.
#[derive(Clone, Debug)]
pub struct DegradedRow {
    /// Benchmark name.
    pub app: String,
    /// Machines lost mid-run.
    pub failed_nodes: usize,
    /// Fault-free simulated seconds.
    pub fault_free: f64,
    /// Degraded-mode simulated seconds (partial run + replan + re-execution
    /// on the survivors).
    pub degraded: f64,
    /// `degraded / fault_free`.
    pub slowdown: f64,
}

/// Degraded-mode companion to Figure 8 (left): the 20-node Amazon cluster
/// losing 1, 3 and 5 nodes halfway through each app's loop nest.
pub fn fig8_degraded() -> Vec<DegradedRow> {
    let amazon = ClusterSpec::amazon_20();
    let mut rows = Vec::new();
    for app in [App::Q1, App::Gene, App::Gda, App::KMeans, App::LogReg] {
        let built = app.build(Target::Cluster, &app.scale());
        for failed in [1usize, 3, 5] {
            let sim = simulate_loops_degraded(
                &built.profiles,
                &amazon,
                &ExecMode::Cluster,
                &FaultModel {
                    failed_nodes: failed,
                    completed_before_failure: 0.5,
                    replan_overhead: 1e-3,
                },
            );
            rows.push(DegradedRow {
                app: app.name().to_string(),
                failed_nodes: failed,
                fault_free: sim.fault_free.total(),
                degraded: sim.degraded.total(),
                slowdown: sim.slowdown(),
            });
        }
    }
    rows
}

/// Figure 8, right panel: Gibbs sampling — speedup over *sequential
/// DimmWitted* for both systems at 12 and 48 cores, plus the DMLL GPU.
pub fn fig8_gibbs() -> Vec<Fig8Row> {
    let w = GibbsWorkload {
        variables: 1e7,
        factors_per_var: 10.0,
        sweeps: 1.0,
    };
    let base = dimmwitted::dimmwitted_time(&w, &numa(), 1).total();
    let mut rows = vec![];
    for cores in [12usize, 48] {
        rows.push(Fig8Row {
            panel: "gibbs".into(),
            app: format!("{cores} CPU"),
            system: "DimmWitted".into(),
            speedup: base / dimmwitted::dimmwitted_time(&w, &numa(), cores).total(),
        });
        rows.push(Fig8Row {
            panel: "gibbs".into(),
            app: format!("{cores} CPU"),
            system: "DMLL".into(),
            speedup: base / dimmwitted::dmll_gibbs_time(&w, &numa(), cores).total(),
        });
    }
    rows.push(Fig8Row {
        panel: "gibbs".into(),
        app: "GPU".into(),
        system: "DMLL".into(),
        speedup: base / dimmwitted::dmll_gibbs_gpu_time(&w, &ClusterSpec::gpu_4()).total(),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_degraded_slowdowns_grow_with_failures() {
        let rows = fig8_degraded();
        assert_eq!(rows.len(), 15, "5 apps × 3 failure counts");
        for r in &rows {
            assert!(
                r.slowdown > 1.0,
                "{} losing {} nodes must cost time: {:.3}x",
                r.app,
                r.failed_nodes,
                r.slowdown
            );
            assert!(r.degraded > r.fault_free);
        }
        // Within one app, losing more nodes mid-run costs more.
        for app in ["TPCHQ1", "k-means"] {
            let per_app: Vec<f64> = rows
                .iter()
                .filter(|r| r.app == app)
                .map(|r| r.slowdown)
                .collect();
            assert!(
                per_app.windows(2).all(|w| w[0] < w[1]),
                "{app}: {per_app:?}"
            );
        }
    }

    #[test]
    fn table2_deltas_have_paper_shape() {
        let rows = table2();
        assert_eq!(rows.len(), 5);
        let q1 = rows.iter().find(|r| r.name == "TPCHQ1").unwrap();
        assert!(
            q1.delta_pct < 0.0,
            "Query 1 beats native thanks to the specialized hash map: {:.1}%",
            q1.delta_pct
        );
        for r in &rows {
            assert!(
                r.delta_pct < 30.0,
                "{}: within ~25% of hand-optimized, got {:.1}%",
                r.name,
                r.delta_pct
            );
        }
    }

    #[test]
    fn fig6_gpu_transform_shapes() {
        let rows = fig6_gpu();
        let get = |app: &str, config: &str| {
            rows.iter()
                .find(|r| r.app == app && r.config == config)
                .unwrap()
                .speedup
        };
        // Both transformations help; combined is best for LogReg; for
        // k-means the transpose provides most of the win (§6).
        assert!(
            get("LogReg", "both") > get("LogReg", "transpose"),
            "{rows:?}"
        );
        assert!(
            get("LogReg", "both") > get("LogReg", "scalar reduce"),
            "{rows:?}"
        );
        assert!(get("LogReg", "scalar reduce") > 1.0, "{rows:?}");
        assert!(get("k-means", "transpose") > 1.3, "{rows:?}");
        // k-means' vector reduction lives in a BucketReduce, whose scalar
        // split is not implemented (see EXPERIMENTS.md): only the transpose
        // contributes — matching the paper's note that "transposing
        // provides most of the performance improvement" for k-means.
        assert!(
            get("k-means", "both") >= get("k-means", "transpose"),
            "{rows:?}"
        );
    }

    #[test]
    fn fig6_cpu_kmeans_transform_matters_more_at_4_sockets() {
        let rows = fig6_cpu();
        let get = |app: &str, config: &str| {
            rows.iter()
                .find(|r| r.app == app && r.config == config)
                .unwrap()
                .speedup
        };
        assert!(
            get("k-means", "4 sockets") > get("k-means", "1 socket"),
            "{rows:?}"
        );
        // Query 1 and LogReg benefit even within one socket.
        assert!(get("TPCHQ1", "1 socket") > 1.2, "{rows:?}");
        assert!(get("LogReg", "1 socket") > 1.0, "{rows:?}");
    }

    #[test]
    fn fig7_dmll_beats_baselines_at_scale() {
        let curves = fig7();
        let at48 = |app: &str, system: &str| {
            curves
                .iter()
                .find(|c| c.app == app && c.system == system)
                .unwrap_or_else(|| panic!("{app}/{system}"))
                .speedups[3]
        };
        for app in ["TPCHQ1", "Gene", "GDA", "LogReg", "k-means"] {
            assert!(
                at48(app, "DMLL") >= at48(app, "DMLL Pin Only") * 0.99,
                "{app}"
            );
            assert!(at48(app, "DMLL") > at48(app, "Delite"), "{app}");
            assert!(at48(app, "DMLL") > at48(app, "Spark") * 2.0, "{app}");
        }
        assert!(
            at48("PageRank", "DMLL") > at48("PageRank", "PowerGraph"),
            "{curves:?}"
        );
    }

    #[test]
    fn fig8_shapes() {
        let amazon = fig8_amazon();
        for r in &amazon {
            assert!(
                r.speedup > 1.0 && r.speedup < 60.0,
                "{}: {:.1} (smaller gap than NUMA, §6.2)",
                r.app,
                r.speedup
            );
        }
        let gpu = fig8_gpu_cluster();
        let get = |app: &str, system: &str| {
            gpu.iter()
                .find(|r| r.app == app && r.system == system)
                .unwrap()
                .speedup
        };
        assert!(
            get("GDA", "DMLL GPU") > 3.0,
            "GDA runs >5x faster than Spark: {gpu:?}"
        );
        assert!(
            get("k-means", "DMLL GPU") > get("k-means", "DMLL CPU"),
            "{gpu:?}"
        );
        let graph = fig8_graph();
        for r in &graph {
            assert!(
                (0.5..4.0).contains(&r.speedup),
                "graph systems are comparable on the cluster: {r:?}"
            );
        }
        let gibbs = fig8_gibbs();
        let dmll48 = gibbs
            .iter()
            .find(|r| r.app == "48 CPU" && r.system == "DMLL")
            .unwrap()
            .speedup;
        assert!(dmll48 > 10.0, "{gibbs:?}");
    }
}
