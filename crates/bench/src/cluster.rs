//! Measured cluster execution bench: real sharded multiloops on the
//! simulated N-node data plane, gated on bit-identity with the
//! single-node batched tier.
//!
//! Unlike the Figure 8 *model* tables (analytic cost projections), every
//! number here comes from actually executing the staged workloads on the
//! [`eval_cluster_measured`] executor: nodes are threads with isolated
//! environments, staging/acks/shuffle/halo traffic is charged through the
//! machine network model, and the scenario column says what was injected.
//! Two workloads cover the communication-heavy corners — TPC-H Q1
//! (BucketReduce-dense) and PageRank push (bucket shuffle over edges) —
//! at one node (degenerate) and at four, plus a mid-epoch node-kill run
//! that must recover lost shards by lineage re-execution and still match
//! the single-node output bit for bit.

use crate::tiers::workloads_unfused;
use dmll_interp::cluster::shuffle_step;
use dmll_interp::{eval_cluster_measured, eval_parallel, ClusterOptions, ClusterReport, Value};
use dmll_runtime::FaultPlan;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// The apps the measured bench runs (the shuffle-heavy pair).
const APPS: [&str; 2] = ["PageRank", "Q1"];

/// One measured cluster run.
#[derive(Clone, Debug)]
pub struct ClusterRow {
    /// Workload name.
    pub app: &'static str,
    /// Input rows (edges for PageRank, lineitems for Q1).
    pub rows: usize,
    /// Simulated nodes.
    pub nodes: usize,
    /// Task-plan width (shared with the single-node baseline).
    pub threads: usize,
    /// What was injected: `baseline` or `node_kill`.
    pub scenario: &'static str,
    /// Output bit-identical to the single-node batched tier.
    pub identical: bool,
    /// Wall time of the measured cluster run.
    pub secs: f64,
    /// Wall time of the single-node batched reference.
    pub single_secs: f64,
    /// What the data plane did.
    pub report: ClusterReport,
}

impl ClusterRow {
    /// Does this row satisfy its gate? Baseline rows must be identical;
    /// the node-kill row must additionally have observed the death and
    /// recovered at least one shard via lineage.
    pub fn ok(&self) -> bool {
        self.identical
            && (self.scenario != "node_kill"
                || (self.report.node_deaths >= 1 && self.report.lineage_recoveries >= 1))
    }
}

/// Run the measured cluster bench: each app at every node count in
/// `node_counts` (fault-free), plus one node-kill scenario at the largest
/// count, all against a single-node batched-tier reference at the same
/// `threads` task plan.
pub fn measured_cluster(scale: usize, threads: usize, node_counts: &[usize]) -> Vec<ClusterRow> {
    let mut out = Vec::new();
    for w in workloads_unfused(scale.max(1)) {
        if !APPS.contains(&w.app) {
            continue;
        }
        let mut program = w.program;
        let borrowed: Vec<(&str, Value)> =
            w.inputs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        // The analysis plan drives partitioned-window staging where the
        // stencils allow it; everything else is broadcast (still charged).
        let plan = Arc::new(dmll_analysis::export_plan(&dmll_analysis::analyze(
            &mut program,
        )));

        let t0 = Instant::now();
        let reference = eval_parallel(&program, &borrowed, threads).expect("single-node reference");
        let single_secs = t0.elapsed().as_secs_f64();

        for &nodes in node_counts {
            let opts = ClusterOptions::new(nodes, threads).with_plan(Arc::clone(&plan));
            out.push(run_one(
                w.app, w.rows, &program, &borrowed, &reference, single_secs, "baseline", opts,
            ));
        }
        // Kill node 1 at the first epoch's pre-shuffle boundary: it dies
        // holding finished task results, which only lineage re-execution
        // on the survivors can reproduce.
        let nodes = node_counts.iter().copied().max().unwrap_or(4).max(2);
        let faults = FaultPlan::new(1).kill_node(1, shuffle_step(0));
        let opts = ClusterOptions::new(nodes, threads)
            .with_plan(Arc::clone(&plan))
            .with_faults(faults);
        out.push(run_one(
            w.app, w.rows, &program, &borrowed, &reference, single_secs, "node_kill", opts,
        ));
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    app: &'static str,
    rows: usize,
    program: &dmll_core::Program,
    inputs: &[(&str, Value)],
    reference: &Value,
    single_secs: f64,
    scenario: &'static str,
    opts: ClusterOptions,
) -> ClusterRow {
    let t0 = Instant::now();
    let (value, report) =
        eval_cluster_measured(program, inputs, &opts).expect("measured cluster run");
    let secs = t0.elapsed().as_secs_f64();
    ClusterRow {
        app,
        rows,
        nodes: opts.nodes,
        threads: opts.threads,
        scenario,
        identical: &value == reference,
        secs,
        single_secs,
        report,
    }
}

/// Render the measured runs as a terminal table. These are executed
/// numbers, in contrast to the Figure 8 model projections.
pub fn render(rows: &[ClusterRow]) -> String {
    let mut out = String::from(
        "Measured cluster execution (real sharded multiloops; network costs simulated)\n",
    );
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>6} {:<10} {:>8} {:>9} {:>7} {:>10} {:>6} {:>6} {:>5} {:<9}",
        "App", "Rows", "Nodes", "Scenario", "Secs", "Shuffles", "Sends", "Bytes", "Halo", "Recov",
        "Dead", "Output"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>6} {:<10} {:>8.3} {:>9} {:>7} {:>10} {:>6} {:>6} {:>5} {:<9}",
            r.app,
            r.rows,
            r.nodes,
            r.scenario,
            r.secs,
            r.report.shuffles,
            r.report.sends,
            r.report.send_bytes,
            r.report.halo_exchanges,
            r.report.lineage_recoveries,
            r.report.node_deaths,
            if r.identical { "identical" } else { "DIVERGED" }
        );
    }
    let bad = rows.iter().filter(|r| !r.ok()).count();
    let _ = writeln!(out, "{} runs, {} gate violations", rows.len(), bad);
    out
}

/// Serialize the measured runs as the `BENCH_cluster.json` document.
pub fn to_json(rows: &[ClusterRow], scale: usize, threads: usize) -> String {
    let mut out = format!(
        "{{\n  \"experiment\": \"cluster_measured\",\n  \"scale\": {scale},\n  \
         \"threads\": {threads},\n  \"runs\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"app\": \"{}\", \"rows\": {}, \"nodes\": {}, \"scenario\": \"{}\", \
             \"identical\": {}, \"ok\": {}, \"secs\": {:.4}, \"single_node_secs\": {:.4}, \
             \"cluster_loops\": {}, \"coordinator_loops\": {}, \"shuffles\": {}, \"tasks\": {}, \
             \"staged_values\": {}, \"halo_exchanges\": {}, \"speculative_tasks\": {}, \
             \"lineage_recoveries\": {}, \"node_deaths\": {}, \"sends\": {}, \"send_bytes\": {}, \
             \"link_retries\": {}, \"network_nanos_model\": {}}}{}",
            r.app,
            r.rows,
            r.nodes,
            r.scenario,
            r.identical,
            r.ok(),
            r.secs,
            r.single_secs,
            r.report.cluster_loops,
            r.report.coordinator_loops,
            r.report.shuffles,
            r.report.tasks,
            r.report.staged_values,
            r.report.halo_exchanges,
            r.report.speculative_tasks,
            r.report.lineage_recoveries,
            r.report.node_deaths,
            r.report.sends,
            r.report.send_bytes,
            r.report.link_retries,
            r.report.network_nanos,
            if i + 1 == rows.len() { "\n" } else { ",\n" }
        );
    }
    let _ = write!(
        out,
        "  ],\n  \"gate_ok\": {}\n}}\n",
        rows.iter().all(ClusterRow::ok)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measured_cluster_holds_the_gate() {
        let rows = measured_cluster(1, 2, &[1, 4]);
        // Two apps x (two baselines + one kill).
        assert_eq!(rows.len(), 2 * 3);
        for r in &rows {
            assert!(r.ok(), "gate violation: {r:?}");
        }
        let kill_recoveries: u64 = rows
            .iter()
            .filter(|r| r.scenario == "node_kill")
            .map(|r| r.report.lineage_recoveries)
            .sum();
        assert!(kill_recoveries >= 2, "both kill runs recovered shards");
        let json = to_json(&rows, 1, 2);
        assert!(json.contains("\"gate_ok\": true"), "{json}");
    }
}
