//! Regenerates Figure 6: speedups from the nested-pattern transformations.

use dmll_bench::{experiments, render};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    if arg.is_empty() || arg == "gpu" {
        print!(
            "{}",
            render::fig6(
                &experiments::fig6_gpu(),
                "Figure 6 (left): GPU — speedup over non-transformed"
            )
        );
        println!();
    }
    if arg.is_empty() || arg == "cpu" {
        print!(
            "{}",
            render::fig6(
                &experiments::fig6_cpu(),
                "Figure 6 (right): CPU — speedup over non-transformed"
            )
        );
    }
}
