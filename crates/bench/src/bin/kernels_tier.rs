//! Measured execution-tier comparison: batched kernels vs scalar bytecode
//! vs the tree-walking interpreter on real data, emitting
//! `BENCH_kernels.json`.
//!
//! Usage: `kernels_tier [--smoke] [--threads N] [--regions R]`.
//! `--threads N` runs every tier through the work-stealing chunked
//! executor on `N` workers (default 1 = sequential). `--regions R`
//! additionally enables the sharded, locality-aware data plane: the
//! batched tier runs region-aware (plan-driven placement, same-region
//! stealing, one-pass stitch merge), and a blind-vs-sharded locality
//! comparison is measured and written to `BENCH_locality.json`. `--smoke`
//! runs the small CI size and exits nonzero if any app's tiers disagree,
//! if the batched tier is slower than the tree-walker, if an app that ran
//! batched blocks is slower than its own scalar bytecode tier (beyond a
//! small timing-noise allowance), or — with `--regions` — if the sharded
//! plane's output diverges or any stencil fallback is unexplained.

use dmll_bench::{locality, render, tiers};

fn parse_args() -> (bool, usize, usize) {
    let mut smoke = false;
    let mut threads = 1usize;
    let mut regions = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
                threads = if n == 0 { usage("--threads needs a positive integer") } else { n };
            }
            "--regions" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--regions needs a positive integer"));
                regions = if n == 0 { usage("--regions needs a positive integer") } else { n };
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    (smoke, threads, regions)
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\nusage: kernels_tier [--smoke] [--threads N] [--regions R]");
    std::process::exit(2);
}

fn main() {
    let (smoke, threads, regions) = parse_args();
    let scale = if smoke { 1 } else { 10 };
    let rows = tiers::tier_comparison_regions(scale, threads, regions);
    print!("{}", render::kernels(&rows));

    let json = tiers::to_json(&rows);
    let path = "BENCH_kernels.json";
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("\nwrote {path}");

    let mut failed = false;
    for r in &rows {
        if !r.identical {
            eprintln!("FAIL: {} tiers produced different results", r.app);
            failed = true;
        }
        if smoke && r.speedup() < 1.0 {
            eprintln!(
                "FAIL: {} batched tier slower than tree-walker ({:.2}x)",
                r.app,
                r.speedup()
            );
            failed = true;
        }
        // Only police batched-vs-scalar when the app actually executed
        // batched blocks; loops that fail certification legitimately run
        // the same scalar bytecode in both configurations. 0.9 absorbs
        // run-to-run timing noise at the smoke size.
        if smoke && r.stats.batched_blocks > 0 && r.batched_speedup() < 0.9 {
            eprintln!(
                "FAIL: {} batched tier slower than scalar bytecode ({:.2}x)",
                r.app,
                r.batched_speedup()
            );
            failed = true;
        }
    }

    // Locality comparison: blind vs sharded on the same batched executor.
    // The bit-identical and explained-fallback gates are hard failures
    // regardless of --smoke; the speedup itself is informational here
    // (asserted by the full-scale bench run, not the CI smoke size).
    if regions > 0 {
        let lrows = locality::locality_comparison(scale, threads, regions);
        print!("\n{}", locality::render(&lrows));
        let ljson = locality::to_json(&lrows);
        let lpath = "BENCH_locality.json";
        std::fs::write(lpath, &ljson).expect("write BENCH_locality.json");
        println!("\nwrote {lpath}");
        for r in &lrows {
            if !r.identical {
                eprintln!("FAIL: {} sharded output diverged from blind/tree-walk", r.app);
                failed = true;
            }
            if r.unexplained_fallbacks > 0 {
                eprintln!(
                    "FAIL: {} has {} unexplained stencil fallbacks",
                    r.app, r.unexplained_fallbacks
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
