//! Measured execution-tier comparison: batched kernels vs scalar bytecode
//! vs the tree-walking interpreter on real data, emitting
//! `BENCH_kernels.json`.
//!
//! Usage: `kernels_tier [--smoke] [--threads N] [--regions R] [--no-fuse]
//! [--native] [--expect-no-compiler]`.
//! `--threads N` runs every tier through the work-stealing chunked
//! executor on `N` workers (default 1 = sequential). `--regions R`
//! additionally enables the sharded, locality-aware data plane: the
//! batched tier runs region-aware (plan-driven placement, same-region
//! stealing, one-pass stitch merge), and a blind-vs-sharded locality
//! comparison is measured and written to `BENCH_locality.json`.
//! `--no-fuse` pins the runtime fuse-then-compile hook off, so the
//! batched tier runs the loops exactly as staged (the unfused baseline
//! configuration). `--native` adds a phase on the native (compiled C)
//! tier: eligible kernels are lowered to C, compiled with the system C++
//! compiler, and `dlopen`ed; ineligible loops fall back to batched with a
//! typed, counted reason. `--expect-no-compiler` (with `--native`)
//! asserts the graceful-degradation path: no native compiles may happen
//! and every app must fall back to batched with a typed reason — CI runs
//! this with the compiler stripped from `PATH`. `--smoke` runs the small
//! CI size and exits nonzero if any app's tiers (fused, unfused, native)
//! disagree, if the batched tier is slower than the tree-walker, if an
//! app that ran batched blocks is slower than its own scalar bytecode
//! tier (beyond a small timing-noise allowance), if Q1's fused path is
//! slower than its unfused baseline beyond the same allowance, if an app
//! with zero applied rewrites pays more than the identity fast-path for
//! the fusion round-trip, or — with `--regions` — if the sharded plane's
//! output diverges or any stencil fallback is unexplained. The
//! nested-loop workloads (Gibbs, Triangles) are additionally gated at
//! every size: their variable-trip inner loops must run segmented with
//! zero fallbacks, and sequentially the segmented-batched tier must beat
//! the tree-walker by at least 5x.

use dmll_bench::{locality, render, tiers};

struct Args {
    smoke: bool,
    threads: usize,
    regions: usize,
    fuse: bool,
    native: bool,
    expect_no_compiler: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        smoke: false,
        threads: 1,
        regions: 0,
        fuse: true,
        native: false,
        expect_no_compiler: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => parsed.smoke = true,
            "--no-fuse" => parsed.fuse = false,
            "--native" => parsed.native = true,
            "--expect-no-compiler" => parsed.expect_no_compiler = true,
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
                parsed.threads =
                    if n == 0 { usage("--threads needs a positive integer") } else { n };
            }
            "--regions" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--regions needs a positive integer"));
                parsed.regions =
                    if n == 0 { usage("--regions needs a positive integer") } else { n };
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if parsed.expect_no_compiler && !parsed.native {
        usage("--expect-no-compiler requires --native");
    }
    parsed
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: kernels_tier [--smoke] [--threads N] [--regions R] [--no-fuse] \
         [--native] [--expect-no-compiler]"
    );
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let scale = if args.smoke { 1 } else { 10 };
    let rows =
        tiers::tier_comparison_full(scale, args.threads, args.regions, args.fuse, args.native);
    print!("{}", render::kernels(&rows));

    let json = tiers::to_json(&rows);
    let path = "BENCH_kernels.json";
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("\nwrote {path}");

    let mut failed = false;
    for r in &rows {
        if !r.identical {
            eprintln!("FAIL: {} tiers produced different results", r.app);
            failed = true;
        }
        if args.smoke && r.speedup() < 1.0 {
            eprintln!(
                "FAIL: {} batched tier slower than tree-walker ({:.2}x)",
                r.app,
                r.speedup()
            );
            failed = true;
        }
        // Only police batched-vs-scalar when the app actually executed
        // batched blocks; loops that fail certification legitimately run
        // the same scalar bytecode in both configurations. 0.9 absorbs
        // run-to-run timing noise at the smoke size.
        if args.smoke && r.stats.batched_blocks > 0 && r.batched_speedup() < 0.9 {
            eprintln!(
                "FAIL: {} batched tier slower than scalar bytecode ({:.2}x)",
                r.app,
                r.batched_speedup()
            );
            failed = true;
        }
        // Fuse-then-compile must never lose on the flagship fusion app:
        // Q1's fused single-pass kernel vs its unfused loop chain. 0.95
        // absorbs run-to-run timing noise at the smoke size; the >= 1.2x
        // win itself is asserted by the full-scale bench run.
        if args.smoke && args.fuse && r.app == "Q1" && r.fused_speedup() < 0.95 {
            eprintln!(
                "FAIL: Q1 fused path slower than unfused baseline ({:.2}x)",
                r.fused_speedup()
            );
            failed = true;
        }
        // Apps where the rewrite pipeline applies nothing must not pay for
        // the round-trip: the identity fast-path keeps the fused
        // configuration within noise of the unfused one.
        if args.smoke && args.fuse && r.stats.fusion_applied == 0 && r.fused_speedup() < 0.98 {
            eprintln!(
                "FAIL: {} pays for a zero-rewrite fusion round-trip ({:.2}x, want >= 0.98x)",
                r.app,
                r.fused_speedup()
            );
            failed = true;
        }
        if args.native {
            failed |= check_native(r, &args);
        }
        // Nested-loop workloads: the variable-trip inner loops must run
        // through the segmented batch path end to end — no scalar
        // fallbacks — and the segmented tier must clear the tree-walker
        // by a wide margin. Both segmented gates are sequential-only:
        // chunked runs split the smoke-size outer loops below a full
        // columnar block (legitimately draining the scalar tail), and
        // they compare different schedulers; the chaos nested probe
        // covers multi-threaded segmented execution on a thread-scaled
        // graph.
        if r.app == "Gibbs" || r.app == "Triangles" {
            if args.threads == 1 && r.stats.segmented_blocks == 0 {
                eprintln!("FAIL: {} never took the segmented batch path", r.app);
                failed = true;
            }
            if r.fallback_loops > 0 {
                eprintln!(
                    "FAIL: {} fell back to the tree-walker on {} loops",
                    r.app, r.fallback_loops
                );
                failed = true;
            }
            if args.threads == 1 && r.speedup() < 5.0 {
                eprintln!(
                    "FAIL: {} segmented-batched only {:.2}x over tree-walker (want >= 5x)",
                    r.app,
                    r.speedup()
                );
                failed = true;
            }
        }
    }
    // The compiler-absent path must actually be exercised somewhere in the
    // run: at least one app's eligible kernel must have reached the
    // compiler probe and recorded the typed reason. (Apps whose kernels
    // decline structurally — e.g. nested loops — never consult the
    // compiler, which is why this is a run-level gate, not per app.)
    if args.expect_no_compiler
        && !rows.iter().any(|r| {
            r.native_fallback
                .iter()
                .any(|(reason, n)| reason == "compiler_unavailable" && *n > 0)
        })
    {
        eprintln!("FAIL: no app recorded the typed compiler_unavailable fallback");
        failed = true;
    }

    // Locality comparison: blind vs sharded on the same batched executor.
    // The bit-identical and explained-fallback gates are hard failures
    // regardless of --smoke; the speedup itself is informational here
    // (asserted by the full-scale bench run, not the CI smoke size).
    if args.regions > 0 {
        let lrows = locality::locality_comparison(scale, args.threads, args.regions);
        print!("\n{}", locality::render(&lrows));
        let ljson = locality::to_json(&lrows);
        let lpath = "BENCH_locality.json";
        std::fs::write(lpath, &ljson).expect("write BENCH_locality.json");
        println!("\nwrote {lpath}");
        for r in &lrows {
            if !r.identical {
                eprintln!("FAIL: {} sharded output diverged from blind/tree-walk", r.app);
                failed = true;
            }
            if r.unexplained_fallbacks > 0 {
                eprintln!(
                    "FAIL: {} has {} unexplained stencil fallbacks",
                    r.app, r.unexplained_fallbacks
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Native-tier gates for one app row. Returns true on failure.
fn check_native(r: &tiers::TierRow, args: &Args) -> bool {
    let Some(secs) = r.native_secs else {
        eprintln!("FAIL: {} native phase did not run", r.app);
        return true;
    };
    if args.expect_no_compiler {
        // Graceful degradation: with no compiler on PATH, nothing may
        // compile, every loop must fall back to batched with a typed
        // reason, and the phase must still complete (secs measured above).
        let mut failed = false;
        if r.stats.native_compiles > 0 {
            eprintln!(
                "FAIL: {} compiled {} native kernels with no compiler expected",
                r.app, r.stats.native_compiles
            );
            failed = true;
        }
        // Every app must fall back with *some* typed reason. Which reason
        // depends on shape: structurally ineligible kernels (nested loops,
        // bucket collects, ...) decline before the compiler is ever probed,
        // so only apps whose kernels pass the shape checks record
        // compiler_unavailable — presence of that specific reason is gated
        // at the run level in main, not per app.
        if !r.native_fallback.iter().any(|(_, n)| *n > 0) {
            eprintln!(
                "FAIL: {} recorded no typed native fallback with no compiler expected",
                r.app
            );
            failed = true;
        }
        let _ = secs;
        return failed;
    }
    // With a compiler present: the acceptance targets must either win on
    // the native tier or decline with a typed, counted reason — silent
    // non-participation is the failure mode being policed. At the smoke
    // size the threshold is identity (compile amortization is poor on
    // tiny inputs); full scale demands the 1.5x win.
    let declined = !r.native_fallback.is_empty();
    if (r.app == "Gene" || r.app == "Q1") && !declined {
        if r.stats.native_loops == 0 {
            eprintln!("FAIL: {} ran no native loops and declined nothing", r.app);
            return true;
        }
        let want = if args.smoke { 0.8 } else { 1.5 };
        match r.native_speedup() {
            Some(s) if s < want => {
                eprintln!(
                    "FAIL: {} native tier {:.2}x over batched (want >= {:.2}x)",
                    r.app, s, want
                );
                return true;
            }
            None => {
                eprintln!("FAIL: {} has native time but no batched baseline", r.app);
                return true;
            }
            _ => {}
        }
    }
    false
}
