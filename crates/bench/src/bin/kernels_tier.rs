//! Measured execution-tier comparison: batched kernels vs scalar bytecode
//! vs the tree-walking interpreter on real data, emitting
//! `BENCH_kernels.json`.
//!
//! Usage: `kernels_tier [--smoke] [--threads N] [--regions R] [--no-fuse]`.
//! `--threads N` runs every tier through the work-stealing chunked
//! executor on `N` workers (default 1 = sequential). `--regions R`
//! additionally enables the sharded, locality-aware data plane: the
//! batched tier runs region-aware (plan-driven placement, same-region
//! stealing, one-pass stitch merge), and a blind-vs-sharded locality
//! comparison is measured and written to `BENCH_locality.json`.
//! `--no-fuse` pins the runtime fuse-then-compile hook off, so the
//! batched tier runs the loops exactly as staged (the unfused baseline
//! configuration). `--smoke` runs the small CI size and exits nonzero if
//! any app's tiers (fused and unfused) disagree, if the batched tier is
//! slower than the tree-walker, if an app that ran batched blocks is
//! slower than its own scalar bytecode tier (beyond a small timing-noise
//! allowance), if Q1's fused path is slower than its unfused baseline
//! beyond the same allowance, or — with `--regions` — if the sharded
//! plane's output diverges or any stencil fallback is unexplained.

use dmll_bench::{locality, render, tiers};

fn parse_args() -> (bool, usize, usize, bool) {
    let mut smoke = false;
    let mut threads = 1usize;
    let mut regions = 0usize;
    let mut fuse = true;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--no-fuse" => fuse = false,
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
                threads = if n == 0 { usage("--threads needs a positive integer") } else { n };
            }
            "--regions" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--regions needs a positive integer"));
                regions = if n == 0 { usage("--regions needs a positive integer") } else { n };
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    (smoke, threads, regions, fuse)
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: kernels_tier [--smoke] [--threads N] [--regions R] [--no-fuse]"
    );
    std::process::exit(2);
}

fn main() {
    let (smoke, threads, regions, fuse) = parse_args();
    let scale = if smoke { 1 } else { 10 };
    let rows = tiers::tier_comparison_full(scale, threads, regions, fuse);
    print!("{}", render::kernels(&rows));

    let json = tiers::to_json(&rows);
    let path = "BENCH_kernels.json";
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("\nwrote {path}");

    let mut failed = false;
    for r in &rows {
        if !r.identical {
            eprintln!("FAIL: {} tiers produced different results", r.app);
            failed = true;
        }
        if smoke && r.speedup() < 1.0 {
            eprintln!(
                "FAIL: {} batched tier slower than tree-walker ({:.2}x)",
                r.app,
                r.speedup()
            );
            failed = true;
        }
        // Only police batched-vs-scalar when the app actually executed
        // batched blocks; loops that fail certification legitimately run
        // the same scalar bytecode in both configurations. 0.9 absorbs
        // run-to-run timing noise at the smoke size.
        if smoke && r.stats.batched_blocks > 0 && r.batched_speedup() < 0.9 {
            eprintln!(
                "FAIL: {} batched tier slower than scalar bytecode ({:.2}x)",
                r.app,
                r.batched_speedup()
            );
            failed = true;
        }
        // Fuse-then-compile must never lose on the flagship fusion app:
        // Q1's fused single-pass kernel vs its unfused loop chain. 0.95
        // absorbs run-to-run timing noise at the smoke size; the >= 1.2x
        // win itself is asserted by the full-scale bench run.
        if smoke && fuse && r.app == "Q1" && r.fused_speedup() < 0.95 {
            eprintln!(
                "FAIL: Q1 fused path slower than unfused baseline ({:.2}x)",
                r.fused_speedup()
            );
            failed = true;
        }
    }

    // Locality comparison: blind vs sharded on the same batched executor.
    // The bit-identical and explained-fallback gates are hard failures
    // regardless of --smoke; the speedup itself is informational here
    // (asserted by the full-scale bench run, not the CI smoke size).
    if regions > 0 {
        let lrows = locality::locality_comparison(scale, threads, regions);
        print!("\n{}", locality::render(&lrows));
        let ljson = locality::to_json(&lrows);
        let lpath = "BENCH_locality.json";
        std::fs::write(lpath, &ljson).expect("write BENCH_locality.json");
        println!("\nwrote {lpath}");
        for r in &lrows {
            if !r.identical {
                eprintln!("FAIL: {} sharded output diverged from blind/tree-walk", r.app);
                failed = true;
            }
            if r.unexplained_fallbacks > 0 {
                eprintln!(
                    "FAIL: {} has {} unexplained stencil fallbacks",
                    r.app, r.unexplained_fallbacks
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
