//! Measured execution-tier comparison: compiled bytecode kernels vs the
//! tree-walking interpreter on real data, emitting `BENCH_kernels.json`.
//!
//! Usage: `kernels_tier [--smoke]`. `--smoke` runs the small CI size and
//! exits nonzero if the compiled tier is slower than the tree-walker (or
//! the tiers disagree) on any app.

use dmll_bench::{render, tiers};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 1 } else { 10 };
    let rows = tiers::tier_comparison(scale);
    print!("{}", render::kernels(&rows));

    let json = tiers::to_json(&rows);
    let path = "BENCH_kernels.json";
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("\nwrote {path}");

    let mut failed = false;
    for r in &rows {
        if !r.identical {
            eprintln!("FAIL: {} tiers produced different results", r.app);
            failed = true;
        }
        if smoke && r.speedup() < 1.0 {
            eprintln!(
                "FAIL: {} compiled tier slower than tree-walker ({:.2}x)",
                r.app,
                r.speedup()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
