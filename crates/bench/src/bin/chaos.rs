//! Deterministic chaos sweep of the supervised executor, emitting
//! `BENCH_chaos.json`.
//!
//! Usage: `chaos [--smoke] [--threads N] [--seeds a,b,c]`. Every seeded
//! fault plan runs against all four generator kinds on all three execution
//! tiers; each run must be bit-identical to the fault-free sequential
//! evaluation or fail with a typed error. The process exits nonzero on any
//! contract violation (a mismatch, an escaped panic, an unexpected typed
//! error), or if the deadline / speculation-parity / sharded / service /
//! cluster probes fail.

use dmll_bench::chaos;

fn parse_args() -> (bool, usize, Vec<u64>) {
    let mut smoke = false;
    let mut threads = 4usize;
    let mut seeds: Option<Vec<u64>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--threads" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
                threads = if n == 0 {
                    usage("--threads needs a positive integer")
                } else {
                    n
                };
            }
            "--seeds" => {
                let list = args
                    .next()
                    .unwrap_or_else(|| usage("--seeds needs a comma-separated list"));
                let parsed: Result<Vec<u64>, _> =
                    list.split(',').map(|s| s.trim().parse()).collect();
                seeds = Some(parsed.unwrap_or_else(|_| usage("bad --seeds list")));
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    // The fixed CI seeds: 3 covers the persistent-failure path (3 % 4 == 3,
    // panicking delivery), 4 and 10 are recoverable mixes of kills,
    // stragglers and latency spikes.
    let seeds = seeds.unwrap_or_else(|| if smoke { vec![3, 4, 10] } else { (0..16).collect() });
    (smoke, threads, seeds)
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\nusage: chaos [--smoke] [--threads N] [--seeds a,b,c]");
    std::process::exit(2);
}

fn main() {
    let (_smoke, threads, seeds) = parse_args();
    let runs = chaos::run_chaos(&seeds, threads);
    print!("{}", chaos::render(&runs));

    let deadline = chaos::deadline_probe(threads);
    println!(
        "deadline probe: {} ({})",
        if deadline.0 { "ok" } else { "FAIL" },
        deadline.1
    );
    let parity = chaos::speculation_parity(threads);
    println!(
        "speculation parity: {} ({})",
        if parity.0 { "ok" } else { "FAIL" },
        parity.1
    );
    // One recoverable seeded plan on the sharded, locality-aware data
    // plane: placement, region tasks, and stitch merge under chaos.
    let sharded = chaos::sharded_probe(threads, 4, 4);
    println!(
        "sharded probe: {} ({})",
        if sharded.0 { "ok" } else { "FAIL" },
        sharded.1
    );
    // A nested-loop workload (data-dependent inner trip counts on the
    // segmented batch path) under one recoverable seeded plan: every tier
    // bit-identical, and the segmented executor actually exercised.
    let nested = chaos::nested_probe(threads, 4);
    println!(
        "nested probe: {} ({})",
        if nested.0 { "ok" } else { "FAIL" },
        nested.1
    );
    // The multi-tenant query service under worker panics, flaky tenants
    // and a deadline storm: bit-identical or typed, and no deadlock.
    let service = chaos::service_probe(threads, 4);
    println!(
        "service probe: {} ({})",
        if service.0 { "ok" } else { "FAIL" },
        service.1
    );
    // The measured cluster executor with 1..N-1 worker nodes killed at
    // the pre-shuffle boundary: bit-identical via lineage recovery.
    let cluster = chaos::cluster_probe(threads, 4, 4);
    println!(
        "cluster probe: {} ({})",
        if cluster.0 { "ok" } else { "FAIL" },
        cluster.1
    );

    let json = chaos::to_json(
        &runs, threads, &deadline, &parity, &sharded, &nested, &service, &cluster,
    );
    let path = format!("BENCH_chaos_t{threads}.json");
    std::fs::write(&path, &json).expect("write chaos report");
    println!("wrote {path}");

    let violations: Vec<_> = runs.iter().filter(|r| !r.ok()).collect();
    for v in &violations {
        eprintln!(
            "FAIL: seed {} {:?} on {:?}: {:?}",
            v.seed, v.gen, v.tier, v.outcome
        );
    }
    if !violations.is_empty()
        || !deadline.0
        || !parity.0
        || !sharded.0
        || !nested.0
        || !service.0
        || !cluster.0
    {
        std::process::exit(1);
    }
}
