//! Regenerates Table 2: sequential DMLL vs hand-optimized native, with the
//! optimizer's per-benchmark log. Also measures the real interpreter vs the
//! native implementations on scaled-down data (honest, clearly labeled).

use dmll_bench::{experiments, render};
use std::time::Instant;

fn main() {
    println!("Table 2 (modeled generated-code times at paper scale)\n");
    let rows = experiments::table2();
    print!("{}", render::table2(&rows));

    println!("\nMeasured on scaled-down data (reference interpreter vs native Rust):");
    println!("note: the interpreter walks the optimized IR; the paper's DMLL emits C++.\n");
    measured();
}

fn measured() {
    // k-means, 2000 x 8, k = 8.
    let (x, cents, _) = dmll_data::matrix::gaussian_clusters(2000, 8, 8, 0.5, 1);
    let mut p = dmll_apps::kmeans::stage_kmeans(8);
    dmll_transform::pipeline::optimize(&mut p, dmll_transform::Target::Cpu);
    let t0 = Instant::now();
    let _ = dmll_apps::kmeans::run(&p, &x, &cents).unwrap();
    let interp = t0.elapsed();
    let t0 = Instant::now();
    let _ = dmll_baselines::handopt::kmeans_iter(&x, &cents);
    let native = t0.elapsed();
    println!(
        "k-means 2000x8 k=8:  interpreter {:>10.3?}  native {:>10.3?}  ratio {:.0}x",
        interp,
        native,
        interp.as_secs_f64() / native.as_secs_f64().max(1e-9)
    );

    // Query 1, 20k rows.
    let cols = dmll_data::tpch::to_columns(&dmll_data::tpch::gen_lineitems(20_000, 2));
    let mut p = dmll_apps::q1::stage_q1();
    dmll_transform::pipeline::optimize(&mut p, dmll_transform::Target::Cpu);
    let t0 = Instant::now();
    let _ = dmll_apps::q1::run(&p, &cols).unwrap();
    let interp = t0.elapsed();
    let t0 = Instant::now();
    let _ = dmll_baselines::handopt::q1(&cols);
    let native = t0.elapsed();
    println!(
        "TPCHQ1 20k rows:     interpreter {:>10.3?}  native {:>10.3?}  ratio {:.0}x",
        interp,
        native,
        interp.as_secs_f64() / native.as_secs_f64().max(1e-9)
    );
}
