//! Regenerates Figure 7: scaling on the 4-socket NUMA machine.

use dmll_bench::{experiments, render};

fn main() {
    println!("Figure 7: speedup over sequential DMLL, 4-socket x 12-core machine\n");
    print!("{}", render::fig7(&experiments::fig7()));
}
