//! Regenerates Figure 7: scaling on the 4-socket NUMA machine.
//!
//! By default prints the cost-model curves (DMLL / pin-only / Delite /
//! Spark on the modeled 4x12 machine). With `--measured`, additionally
//! runs the real sharded executor on this host — inputs staged through
//! the shard layer under their planned placements — and prints its
//! measured scaling curve next to the model's.

use dmll_bench::{experiments, locality, render};

fn main() {
    let measured = std::env::args().skip(1).any(|a| a == "--measured");
    println!("Figure 7: speedup over sequential DMLL, 4-socket x 12-core machine\n");
    print!("{}", render::fig7(&experiments::fig7()));

    if measured {
        println!(
            "\nMeasured on this host: sharded executor, plan-driven placement,\n\
             speedup over the same executor on 1 thread\n"
        );
        let curves = locality::measured_scaling(4, &[1, 2, 4]);
        print!("{}", locality::render_measured(&curves));
    }
}
