//! Seeded open-/closed-loop traffic against the multi-tenant query
//! service, emitting `BENCH_service.json`.
//!
//! Usage: `service_bench [--smoke] [--threads N] [--seed S]`. Measures an
//! uncontended closed-loop baseline, then an open-loop overload storm
//! (mostly lightweight queries, a seeded few percent heavyweight scans),
//! then recovery. Exits nonzero if the shed-not-collapse gate fails:
//! admitted p99 under overload must stay within 5x of the uncontended
//! p99 while the excess load is rejected with typed errors, every
//! admitted query must produce exactly one outcome, and the service must
//! walk the degradation ladder back to Normal.

use dmll_bench::service;

fn parse_args() -> (bool, usize, u64) {
    let mut smoke = false;
    let mut threads = 4usize;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--threads" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
                threads = if n == 0 {
                    usage("--threads needs a positive integer")
                } else {
                    n
                };
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    (smoke, threads, seed)
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\nusage: service_bench [--smoke] [--threads N] [--seed S]");
    std::process::exit(2);
}

fn main() {
    let (smoke, threads, seed) = parse_args();
    let scale = if smoke {
        service::ServiceBenchScale::smoke()
    } else {
        service::ServiceBenchScale::full()
    };
    let report = service::run_service_bench(threads, scale, seed);
    print!("{}", service::render(&report));

    let json = service::to_json(&report);
    let per_thread = format!("BENCH_service_t{threads}.json");
    std::fs::write(&per_thread, &json).expect("write service report");
    std::fs::write("BENCH_service.json", &json).expect("write service report");
    println!("wrote {per_thread} and BENCH_service.json");

    if !report.gate_ok() {
        eprintln!("FAIL: shed-not-collapse gate violated");
        std::process::exit(1);
    }
}
