//! Regenerates Figure 8: heterogeneous cluster experiments.
//!
//! The default tables are *model* projections from the analytic cost
//! model (no cluster is executed). `--measured` instead runs the staged
//! shuffle-heavy workloads (PageRank push, TPC-H Q1) for real on the
//! measured multi-node executor — sharded multiloops, charged shuffle and
//! staging traffic, plus a scripted mid-epoch node kill recovered by
//! lineage — gated on bit-identity with the single-node batched tier, and
//! writes `BENCH_cluster.json`. `--smoke` shrinks the measured inputs to
//! CI size; `--threads N` and `--nodes a,b` set the task-plan width and
//! the node counts swept.

use dmll_bench::{cluster, experiments, render};

struct MeasuredArgs {
    smoke: bool,
    threads: usize,
    nodes: Vec<usize>,
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: fig8_cluster [amazon|gpu|graph|degraded|gibbs]\n       \
         fig8_cluster --measured [--smoke] [--threads N] [--nodes a,b]"
    );
    std::process::exit(2);
}

fn parse_measured(mut args: std::env::Args) -> MeasuredArgs {
    let mut out = MeasuredArgs {
        smoke: false,
        threads: 4,
        nodes: vec![1, 4],
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => out.smoke = true,
            "--threads" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
                out.threads = if n == 0 {
                    usage("--threads needs a positive integer")
                } else {
                    n
                };
            }
            "--nodes" => {
                let list = args
                    .next()
                    .unwrap_or_else(|| usage("--nodes needs a comma-separated list"));
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(|s| s.trim().parse()).collect();
                out.nodes = parsed.unwrap_or_else(|_| usage("bad --nodes list"));
                if out.nodes.is_empty() || out.nodes.contains(&0) {
                    usage("--nodes entries must be positive");
                }
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    out
}

fn run_measured(args: MeasuredArgs) -> ! {
    let scale = if args.smoke { 1 } else { 4 };
    let rows = cluster::measured_cluster(scale, args.threads, &args.nodes);
    print!("{}", cluster::render(&rows));
    let json = cluster::to_json(&rows, scale, args.threads);
    let path = "BENCH_cluster.json";
    std::fs::write(path, &json).expect("write cluster report");
    println!("wrote {path}");
    if rows.iter().all(cluster::ClusterRow::ok) {
        std::process::exit(0);
    }
    for r in rows.iter().filter(|r| !r.ok()) {
        eprintln!(
            "FAIL: {} nodes={} scenario={}: identical={} report={:?}",
            r.app, r.nodes, r.scenario, r.identical, r.report
        );
    }
    std::process::exit(1);
}

fn main() {
    let mut args = std::env::args();
    let _ = args.next();
    let arg = args.next().unwrap_or_default();
    if arg == "--measured" {
        run_measured(parse_measured(args));
    }
    if arg.starts_with("--") {
        usage(&format!("unknown argument {arg}"));
    }
    if arg.is_empty() || arg == "amazon" {
        print!(
            "{}",
            render::fig8(
                &experiments::fig8_amazon(),
                "Figure 8 (left): 20-node Amazon cluster (model projection)",
                "Spark"
            )
        );
        println!();
    }
    if arg.is_empty() || arg == "gpu" {
        print!(
            "{}",
            render::fig8(
                &experiments::fig8_gpu_cluster(),
                "Figure 8 (middle): 4-node GPU cluster (model projection)",
                "Spark"
            )
        );
        println!();
    }
    if arg.is_empty() || arg == "graph" {
        print!(
            "{}",
            render::fig8(
                &experiments::fig8_graph(),
                "Figure 8 (graphs): 4-node cluster (model projection)",
                "PowerGraph"
            )
        );
        println!();
    }
    if arg.is_empty() || arg == "degraded" {
        print!(
            "{}",
            render::fig8_degraded(
                &experiments::fig8_degraded(),
                "Degraded mode: 20-node Amazon cluster losing nodes mid-loop (model projection)",
            )
        );
        println!();
    }
    if arg.is_empty() || arg == "gibbs" {
        print!(
            "{}",
            render::fig8(
                &experiments::fig8_gibbs(),
                "Figure 8 (right): Gibbs sampling (model projection)",
                "sequential DimmWitted"
            )
        );
    }
}
