//! Regenerates Figure 8: heterogeneous cluster experiments.

use dmll_bench::{experiments, render};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    if arg.is_empty() || arg == "amazon" {
        print!(
            "{}",
            render::fig8(
                &experiments::fig8_amazon(),
                "Figure 8 (left): 20-node Amazon cluster",
                "Spark"
            )
        );
        println!();
    }
    if arg.is_empty() || arg == "gpu" {
        print!(
            "{}",
            render::fig8(
                &experiments::fig8_gpu_cluster(),
                "Figure 8 (middle): 4-node GPU cluster",
                "Spark"
            )
        );
        println!();
    }
    if arg.is_empty() || arg == "graph" {
        print!(
            "{}",
            render::fig8(
                &experiments::fig8_graph(),
                "Figure 8 (graphs): 4-node cluster",
                "PowerGraph"
            )
        );
        println!();
    }
    if arg.is_empty() || arg == "degraded" {
        print!(
            "{}",
            render::fig8_degraded(
                &experiments::fig8_degraded(),
                "Degraded mode: 20-node Amazon cluster losing nodes mid-loop",
            )
        );
        println!();
    }
    if arg.is_empty() || arg == "gibbs" {
        print!(
            "{}",
            render::fig8(
                &experiments::fig8_gibbs(),
                "Figure 8 (right): Gibbs sampling",
                "sequential DimmWitted"
            )
        );
    }
}
