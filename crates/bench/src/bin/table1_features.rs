//! Regenerates Table 1: programming-model features and hardware targets.

fn main() {
    println!("Table 1: programming model features and hardware targets\n");
    print!("{}", dmll_baselines::features::render());
}
