//! Compile-time cost of the optimizer recipes and the measured runtime
//! effect of the Conditional Reduce rule on k-means.

use criterion::{criterion_group, criterion_main, Criterion};
use dmll_transform::{pipeline, Target};

fn bench_optimizer_compile_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.sample_size(10);
    g.bench_function("optimize_kmeans_cluster", |b| {
        b.iter(|| {
            let mut p = dmll_apps::kmeans::stage_kmeans(8);
            pipeline::optimize(&mut p, Target::Cluster)
        })
    });
    g.bench_function("optimize_q1_cpu", |b| {
        b.iter(|| {
            let mut p = dmll_apps::q1::stage_q1();
            pipeline::optimize(&mut p, Target::Cpu)
        })
    });
    g.bench_function("optimize_logreg_gpu", |b| {
        b.iter(|| {
            let mut p = dmll_apps::logreg::stage_logreg(0.1);
            pipeline::optimize(&mut p, Target::Cluster);
            pipeline::optimize(&mut p, Target::Gpu)
        })
    });
    g.finish();
}

fn bench_conditional_reduce_effect(c: &mut Criterion) {
    // k = 16 clusters: untransformed does 2k+... full passes, transformed 1.
    let (x, cents, _) = dmll_data::matrix::gaussian_clusters(400, 4, 16, 0.4, 2);
    let unopt = dmll_apps::kmeans::stage_kmeans(16);
    let mut opt = dmll_apps::kmeans::stage_kmeans(16);
    pipeline::optimize(&mut opt, Target::Numa);
    let mut g = c.benchmark_group("conditional_reduce/kmeans_400x4_k16");
    g.sample_size(10);
    g.bench_function("as_written", |b| {
        b.iter(|| dmll_apps::kmeans::run(&unopt, &x, &cents).unwrap())
    });
    g.bench_function("transformed", |b| {
        b.iter(|| dmll_apps::kmeans::run(&opt, &x, &cents).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_optimizer_compile_time,
    bench_conditional_reduce_effect
);
criterion_main!(benches);
