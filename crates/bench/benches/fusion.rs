//! Real measured effect of fusion on interpreter time: the same staged
//! Query 1, unoptimized (six traversals, boxed records) versus optimized
//! (one fused traversal over SoA columns).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fusion_q1(c: &mut Criterion) {
    let cols = dmll_data::tpch::to_columns(&dmll_data::tpch::gen_lineitems(5_000, 7));
    let unopt = dmll_apps::q1::stage_q1();
    let mut opt = dmll_apps::q1::stage_q1();
    dmll_transform::pipeline::optimize(&mut opt, dmll_transform::Target::Cpu);
    let mut g = c.benchmark_group("fusion/q1_5k");
    g.sample_size(10);
    g.bench_function("unoptimized", |b| {
        b.iter(|| dmll_apps::q1::run(&unopt, &cols).unwrap())
    });
    g.bench_function("optimized", |b| {
        b.iter(|| dmll_apps::q1::run(&opt, &cols).unwrap())
    });
    g.finish();
}

fn bench_map_pipeline(c: &mut Criterion) {
    use dmll_core::{LayoutHint, Ty};
    use dmll_frontend::Stage;
    use dmll_interp::{eval, Value};
    let build = |optimize: bool| {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let a = st.map(&x, |st, e| {
            let c = st.lit_f(0.5);
            st.mul(e, &c)
        });
        let b = st.map(&a, |st, e| st.math(dmll_core::MathFn::Exp, e));
        let s = st.sum(&b);
        let mut p = st.finish(&s);
        if optimize {
            dmll_transform::pipeline::optimize(&mut p, dmll_transform::Target::Cpu);
        }
        p
    };
    let data: Vec<f64> = (0..50_000).map(|i| (i as f64) * 1e-4).collect();
    let unopt = build(false);
    let opt = build(true);
    let mut g = c.benchmark_group("fusion/map_map_sum_50k");
    g.sample_size(10);
    g.bench_function("unfused", |b| {
        b.iter(|| eval(&unopt, &[("x", Value::f64_arr(data.clone()))]).unwrap())
    });
    g.bench_function("fused", |b| {
        b.iter(|| eval(&opt, &[("x", Value::f64_arr(data.clone()))]).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_fusion_q1, bench_map_pipeline);
criterion_main!(benches);
