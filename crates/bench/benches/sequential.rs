//! Measured sequential comparison (Table 2's honest counterpart): the
//! reference interpreter running the optimized IR versus the hand-optimized
//! native implementations, on scaled-down data.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_kmeans(c: &mut Criterion) {
    let (x, cents, _) = dmll_data::matrix::gaussian_clusters(500, 6, 4, 0.4, 1);
    let mut p = dmll_apps::kmeans::stage_kmeans(4);
    dmll_transform::pipeline::optimize(&mut p, dmll_transform::Target::Cpu);
    let mut g = c.benchmark_group("sequential/kmeans_500x6");
    g.sample_size(10);
    g.bench_function("dmll_interpreter", |b| {
        b.iter(|| dmll_apps::kmeans::run(&p, &x, &cents).unwrap())
    });
    g.bench_function("handopt_native", |b| {
        b.iter(|| dmll_baselines::handopt::kmeans_iter(&x, &cents))
    });
    g.finish();
}

fn bench_q1(c: &mut Criterion) {
    let cols = dmll_data::tpch::to_columns(&dmll_data::tpch::gen_lineitems(5_000, 2));
    let mut p = dmll_apps::q1::stage_q1();
    dmll_transform::pipeline::optimize(&mut p, dmll_transform::Target::Cpu);
    let mut g = c.benchmark_group("sequential/q1_5k");
    g.sample_size(10);
    g.bench_function("dmll_interpreter", |b| {
        b.iter(|| dmll_apps::q1::run(&p, &cols).unwrap())
    });
    g.bench_function("handopt_native", |b| {
        b.iter(|| dmll_baselines::handopt::q1(&cols))
    });
    g.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let gph = dmll_data::graph::rmat(9, 6, 3);
    let n = gph.num_vertices();
    let ranks = vec![1.0 / n as f64; n];
    let p = dmll_apps::pagerank::stage_pagerank_pull(0.85);
    let inputs = dmll_apps::pagerank::inputs_pull(&gph, &ranks);
    let rev = gph.reversed();
    let mut g = c.benchmark_group("sequential/pagerank_512v");
    g.sample_size(10);
    g.bench_function("dmll_interpreter", |b| {
        b.iter_batched(
            || inputs.clone(),
            |i| dmll_apps::pagerank::run(&p, &i).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("handopt_native", |b| {
        b.iter(|| dmll_baselines::handopt::pagerank_iter(&gph, &rev, &ranks, 0.85))
    });
    g.finish();
}

criterion_group!(benches, bench_kmeans, bench_q1, bench_pagerank);
criterion_main!(benches);
