//! Deterministic fault injection.
//!
//! Every failure scenario the runtime recovers from — a machine dying
//! mid-loop, remote reads dropping, network latency spikes, straggler cores
//! — can be scripted in a [`FaultPlan`] and replayed bit-identically. Two
//! properties make the injector reproducible under real concurrency:
//!
//! * **Counter-based decisions.** Whether a particular remote read fails is
//!   a pure hash of `(seed, reader location, index, attempt)` — never of a
//!   shared call counter — so thread interleaving cannot change outcomes.
//! * **Explicit time.** "Time" is an abstract step counter advanced by the
//!   executor (e.g. once per scheduled chunk), not a wall clock, so a node
//!   failure lands at exactly the same point in every run.
//!
//! This is the same recovery-enabling observation the paper makes of
//! multiloops: because a multiloop "is agnostic to whether it runs over the
//! entire loop bounds or a subset of the loop bounds" (§5), a failed chunk
//! can be re-executed anywhere without lineage machinery, so faults only
//! need to be *observable*, never fatal.

use crate::distarray::Location;
use std::sync::atomic::{AtomicU64, Ordering};

/// One scripted failure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Machine `node` fails permanently once the step counter reaches
    /// `at_step`.
    NodeFailure {
        /// The machine that dies.
        node: usize,
        /// Abstract time of death (inclusive).
        at_step: u64,
    },
    /// Every trapped remote read independently fails with `probability`
    /// (per attempt, deterministic given the plan seed).
    RemoteReadDrop {
        /// Per-attempt drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Remote reads between `at_step` and `at_step + duration_steps` incur
    /// `extra_nanos` of additional simulated latency each.
    LatencySpike {
        /// First affected step.
        at_step: u64,
        /// How many steps the spike lasts.
        duration_steps: u64,
        /// Added latency per remote read, nanoseconds.
        extra_nanos: u64,
    },
    /// Core `(node, socket, core)` runs `slowdown`× slower than nominal
    /// (consumed by the cost model's degraded mode).
    StragglerCore {
        /// Machine of the slow core.
        node: usize,
        /// Socket of the slow core.
        socket: usize,
        /// Core index within the socket.
        core: usize,
        /// Multiplicative slowdown (≥ 1.0).
        slowdown: f64,
    },
    /// Work unit `unit` (a chunk/task index) fails deterministically on
    /// *every* execution attempt — modelling a persistent failure (bad
    /// memory, a poisoned input shard) rather than a transient one. A
    /// supervised executor must surface a typed retries-exhausted error for
    /// it instead of retrying forever or silently dropping the unit.
    RepeatFailure {
        /// The persistently failing work unit.
        unit: usize,
    },
}

/// A reproducible failure scenario: a seed plus scripted events.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for all probabilistic decisions.
    pub seed: u64,
    /// The scripted events.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Script a permanent node failure at `at_step`.
    pub fn kill_node(mut self, node: usize, at_step: u64) -> FaultPlan {
        self.events.push(FaultEvent::NodeFailure { node, at_step });
        self
    }

    /// Script per-attempt remote-read drops with `probability`.
    pub fn drop_remote_reads(mut self, probability: f64) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&probability),
            "drop probability {probability} out of [0,1]"
        );
        self.events.push(FaultEvent::RemoteReadDrop { probability });
        self
    }

    /// Script a latency spike window.
    pub fn latency_spike(mut self, at_step: u64, duration_steps: u64, extra_nanos: u64) -> FaultPlan {
        self.events.push(FaultEvent::LatencySpike {
            at_step,
            duration_steps,
            extra_nanos,
        });
        self
    }

    /// Script a straggler core.
    pub fn straggler(mut self, node: usize, socket: usize, core: usize, slowdown: f64) -> FaultPlan {
        self.events.push(FaultEvent::StragglerCore {
            node,
            socket,
            core,
            slowdown,
        });
        self
    }

    /// Script a persistent failure of work unit `unit`.
    pub fn repeat_failure(mut self, unit: usize) -> FaultPlan {
        self.events.push(FaultEvent::RepeatFailure { unit });
        self
    }

    /// Work units scripted to fail on every execution attempt.
    pub fn repeat_failures(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::RepeatFailure { unit } => Some(unit),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Nodes whose scripted failure time is `<= step`.
    pub fn failed_nodes_at(&self, step: u64) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::NodeFailure { node, at_step } if at_step <= step => Some(node),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// SplitMix64-style avalanche; the core of every injector decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform value in `[0, 1)` from hashed inputs — a counter-based RNG, so
/// outcomes depend only on the inputs, never on call order.
fn hash_unit(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let h = mix(seed ^ mix(a ^ mix(b ^ mix(c))));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Shared, thread-safe interpreter of a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    step: AtomicU64,
}

impl FaultInjector {
    /// Wrap a plan; the step counter starts at 0.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            step: AtomicU64::new(0),
        }
    }

    /// The scripted plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Current abstract time.
    pub fn step(&self) -> u64 {
        self.step.load(Ordering::Relaxed)
    }

    /// Advance abstract time by one step; returns the new step. The
    /// executor calls this at chunk boundaries.
    pub fn advance_step(&self) -> u64 {
        self.step.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// True when `node` has failed at the current step.
    pub fn node_is_down(&self, node: usize) -> bool {
        let now = self.step();
        self.plan.events.iter().any(|e| {
            matches!(*e, FaultEvent::NodeFailure { node: n, at_step } if n == node && at_step <= now)
        })
    }

    /// All currently-failed nodes, sorted and deduplicated.
    pub fn failed_nodes(&self) -> Vec<usize> {
        self.plan.failed_nodes_at(self.step())
    }

    /// Whether the remote read `(from, index)` fails on `attempt`
    /// (0-based). A read targeting a failed node always fails; otherwise
    /// each scripted drop probability is consulted via a counter-based
    /// hash, so the answer is a pure function of the plan and arguments.
    pub fn remote_read_fails(&self, from: Location, owner: Location, index: usize, attempt: u32) -> bool {
        if self.node_is_down(owner.node) {
            return true;
        }
        self.plan.events.iter().any(|e| match *e {
            FaultEvent::RemoteReadDrop { probability } => {
                let a = (from.node as u64) << 32 | from.socket as u64;
                let b = (owner.node as u64) << 32 | owner.socket as u64;
                let c = (index as u64) << 8 | attempt as u64;
                hash_unit(self.plan.seed, a, b, c) < probability
            }
            _ => false,
        })
    }

    /// Extra simulated latency (nanoseconds) a remote read pays at the
    /// current step.
    pub fn remote_read_latency_nanos(&self) -> u64 {
        let now = self.step();
        self.plan
            .events
            .iter()
            .map(|e| match *e {
                FaultEvent::LatencySpike {
                    at_step,
                    duration_steps,
                    extra_nanos,
                } if at_step <= now && now < at_step + duration_steps => extra_nanos,
                _ => 0,
            })
            .sum()
    }

    /// Multiplicative slowdown of core `(node, socket, core)` (1.0 when
    /// nominal).
    pub fn straggler_slowdown(&self, node: usize, socket: usize, core: usize) -> f64 {
        self.plan
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::StragglerCore {
                    node: n,
                    socket: s,
                    core: c,
                    slowdown,
                } if (n, s, c) == (node, socket, core) => Some(slowdown),
                _ => None,
            })
            .fold(1.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(node: usize) -> Location {
        Location { node, socket: 0 }
    }

    #[test]
    fn node_failure_respects_abstract_time() {
        let inj = FaultInjector::new(FaultPlan::new(1).kill_node(2, 3));
        assert!(!inj.node_is_down(2));
        inj.advance_step();
        inj.advance_step();
        assert!(!inj.node_is_down(2), "step 2 < death at 3");
        inj.advance_step();
        assert!(inj.node_is_down(2));
        assert!(!inj.node_is_down(0));
        assert_eq!(inj.failed_nodes(), vec![2]);
    }

    #[test]
    fn read_drops_are_deterministic_given_seed() {
        let plan = FaultPlan::new(42).drop_remote_reads(0.3);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let decisions_a: Vec<bool> = (0..1000)
            .map(|i| a.remote_read_fails(loc(0), loc(1), i, 0))
            .collect();
        let decisions_b: Vec<bool> = (0..1000)
            .map(|i| b.remote_read_fails(loc(0), loc(1), i, 0))
            .collect();
        assert_eq!(decisions_a, decisions_b);
        let drops = decisions_a.iter().filter(|d| **d).count();
        assert!((200..400).contains(&drops), "≈30% drop rate, got {drops}");
    }

    #[test]
    fn different_attempts_get_independent_decisions() {
        let inj = FaultInjector::new(FaultPlan::new(7).drop_remote_reads(0.5));
        // Some read that fails on attempt 0 must eventually succeed on a
        // later attempt (p = 0.5 per attempt).
        let idx = (0..1000)
            .find(|&i| inj.remote_read_fails(loc(0), loc(1), i, 0))
            .expect("some first attempt fails");
        let recovered = (1..20).any(|a| !inj.remote_read_fails(loc(0), loc(1), idx, a));
        assert!(recovered, "independent per-attempt decisions allow recovery");
    }

    #[test]
    fn reads_to_dead_nodes_always_fail() {
        let inj = FaultInjector::new(FaultPlan::new(0).kill_node(1, 0));
        assert!(inj.remote_read_fails(loc(0), loc(1), 7, 0));
        assert!(inj.remote_read_fails(loc(0), loc(1), 7, 99));
        assert!(!inj.remote_read_fails(loc(0), loc(2), 7, 0));
    }

    #[test]
    fn latency_spike_window() {
        let inj = FaultInjector::new(FaultPlan::new(0).latency_spike(1, 2, 500));
        assert_eq!(inj.remote_read_latency_nanos(), 0);
        inj.advance_step();
        assert_eq!(inj.remote_read_latency_nanos(), 500);
        inj.advance_step();
        assert_eq!(inj.remote_read_latency_nanos(), 500);
        inj.advance_step();
        assert_eq!(inj.remote_read_latency_nanos(), 0);
    }

    #[test]
    fn straggler_lookup() {
        let inj = FaultInjector::new(FaultPlan::new(0).straggler(1, 0, 3, 4.0));
        assert_eq!(inj.straggler_slowdown(1, 0, 3), 4.0);
        assert_eq!(inj.straggler_slowdown(1, 0, 2), 1.0);
    }
}
