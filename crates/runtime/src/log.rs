//! Minimal runtime diagnostics.
//!
//! The build environment has no `tracing` crate available, so degraded-mode
//! warnings go through this tiny shim instead: messages are counted (so
//! tests can assert a warning fired without scraping stderr) and printed to
//! stderr unless `DMLL_QUIET` is set.

use std::sync::atomic::{AtomicU64, Ordering};

static WARNINGS: AtomicU64 = AtomicU64::new(0);

/// Emit a runtime warning. Always counted; printed unless `DMLL_QUIET` is
/// set in the environment.
pub fn warn(msg: &str) {
    WARNINGS.fetch_add(1, Ordering::Relaxed);
    if std::env::var_os("DMLL_QUIET").is_none() {
        eprintln!("[dmll-runtime] warning: {msg}");
    }
}

/// Total warnings emitted by this process so far.
pub fn warning_count() -> u64 {
    WARNINGS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warnings_are_counted() {
        let before = warning_count();
        warn("test warning (ignore)");
        assert!(warning_count() > before);
    }
}
