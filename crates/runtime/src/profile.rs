//! Per-loop work/traffic profiles extracted from the optimized IR.
//!
//! The cost model does not guess what an application does — it walks the
//! *post-transformation* multiloops, classifying every collection read with
//! the stencil analysis and every collection with the partitioning analysis,
//! and sums arithmetic and bytes per iteration. Nested loops multiply by
//! their (shape-derived) trip counts. The effects of the Figure 3 rules are
//! therefore visible directly in the profiles: e.g. transformed k-means
//! touches the matrix once per iteration instead of once per cluster.

use crate::shape::{self, ShapeConfig, ShapeEnv, ShapeVal};
use dmll_analysis::{AnalysisResult, DataLayout, Stencil};
use dmll_core::visit::def_blocks;
use dmll_core::{Block, Def, Exp, Gen, Program, Sym};
use std::collections::{BTreeSet, HashMap};

/// Work and traffic of one top-level multiloop.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoopProfile {
    /// First output symbol (identifies the loop).
    pub sym: Option<Sym>,
    /// Trip count.
    pub iterations: f64,
    /// Arithmetic operations per iteration.
    pub flops_per_iter: f64,
    /// Bytes per iteration streamed from partitioned collections with
    /// interval (local-partition) access.
    pub stream_bytes_per_iter: f64,
    /// Bytes per iteration from local / broadcast-replica data.
    pub local_bytes_per_iter: f64,
    /// Bytes per iteration read at data-dependent (Unknown) locations of
    /// partitioned collections — candidate remote reads.
    pub random_bytes_per_iter: f64,
    /// Bytes written per iteration (collect outputs).
    pub output_bytes_per_iter: f64,
    /// One-time bytes that must be broadcast before the loop runs (local
    /// collections consumed inside a distributed loop, plus partitioned
    /// collections consumed with an `All` stencil).
    pub broadcast_bytes: f64,
    /// Size of one reduction value — combined across workers after the loop.
    pub reduce_bytes: f64,
    /// Total bytes each worker contributes to the post-loop combine (the
    /// whole bucket map for bucket loops, one value for plain reduces).
    pub combine_bytes: f64,
    /// True when some generator reduces non-scalar (collection) values —
    /// the case GPU shared memory cannot hold (§3.2).
    pub has_nonscalar_reduce: bool,
    /// True when the loop maintains buckets (hash/shuffle machinery).
    pub is_bucket: bool,
    /// True when the loop consumes partitioned data and is distributed.
    pub partitioned: bool,
}

impl LoopProfile {
    /// Total arithmetic of the loop.
    pub fn total_flops(&self) -> f64 {
        self.iterations * self.flops_per_iter
    }

    /// Total bytes touched by the loop body (excluding broadcasts).
    pub fn total_bytes(&self) -> f64 {
        self.iterations
            * (self.stream_bytes_per_iter
                + self.local_bytes_per_iter
                + self.random_bytes_per_iter
                + self.output_bytes_per_iter)
    }
}

struct Ctx<'a> {
    stencils: &'a HashMap<Sym, Stencil>,
    layouts: &'a dmll_analysis::PartitionReport,
    cfg: &'a ShapeConfig,
}

#[derive(Clone, Copy, Debug, Default)]
struct Cost {
    flops: f64,
    stream: f64,
    local: f64,
    random: f64,
}

impl Cost {
    fn add(&mut self, o: Cost) {
        self.flops += o.flops;
        self.stream += o.stream;
        self.local += o.local;
        self.random += o.random;
    }

    fn scaled(self, k: f64) -> Cost {
        Cost {
            flops: self.flops * k,
            stream: self.stream * k,
            local: self.local * k,
            random: self.random * k,
        }
    }
}

/// Extract profiles for every top-level multiloop given input shapes.
pub fn profile_program(
    program: &Program,
    analysis: &AnalysisResult,
    inputs: &[(&str, ShapeVal)],
    cfg: &ShapeConfig,
) -> Vec<LoopProfile> {
    let mut env = shape::seed_env(program, inputs);
    let mut out = Vec::new();
    for stmt in &program.body.stmts {
        if let Def::Loop(ml) = &stmt.def {
            let loop_sym = stmt.lhs.first().copied();
            let empty = HashMap::new();
            let stencils = loop_sym
                .and_then(|s| analysis.stencils.per_loop.get(&s))
                .unwrap_or(&empty);
            let ctx = Ctx {
                stencils,
                layouts: &analysis.partition,
                cfg,
            };
            out.push(profile_loop(ml, loop_sym, &ctx, &mut env, program));
        }
        // Keep the shape environment up to date for later loops.
        let shapes = shape::eval_def(&stmt.def, &mut env, cfg);
        for (sym, sh) in stmt.lhs.iter().zip(shapes) {
            env.insert(*sym, sh);
        }
    }
    out
}

fn profile_loop(
    ml: &dmll_core::Multiloop,
    loop_sym: Option<Sym>,
    ctx: &Ctx<'_>,
    env: &mut ShapeEnv,
    program: &Program,
) -> LoopProfile {
    let iterations = shape::eval_exp(&ml.size, env).as_int().unwrap_or(0).max(0) as f64;
    let mut p = LoopProfile {
        sym: loop_sym,
        iterations,
        ..Default::default()
    };

    // Distribution status: does the loop read any partitioned collection?
    let reads = loop_free_syms(ml);
    p.partitioned = reads
        .iter()
        .any(|s| ctx.layouts.layout_of(*s) == DataLayout::Partitioned);

    // Broadcast set: every local collection consumed by a distributed loop,
    // plus partitioned collections consumed whole.
    if p.partitioned {
        let mut seen = BTreeSet::new();
        for &s in &reads {
            if seen.contains(&s) {
                continue;
            }
            let layout = ctx.layouts.layout_of(s);
            let stencil = ctx.stencils.get(&s).copied();
            let is_coll = matches!(
                env.get(&s),
                Some(ShapeVal::Arr { .. } | ShapeVal::Struct { .. } | ShapeVal::Buckets { .. })
            );
            if !is_coll {
                continue;
            }
            let must_broadcast = matches!(
                (layout, stencil),
                (DataLayout::Local, _) | (DataLayout::Partitioned, Some(Stencil::All))
            );
            if must_broadcast {
                p.broadcast_bytes += env.get(&s).map(ShapeVal::bytes).unwrap_or(0.0);
                seen.insert(s);
            }
        }
    }

    for gen in &ml.gens {
        if let Some(c) = gen.cond() {
            let cost = block_cost(c, ctx, env);
            add_cost(&mut p, cost);
        }
        if let Some(k) = gen.key() {
            let cost = block_cost(k, ctx, env);
            add_cost(&mut p, cost);
            p.flops_per_iter += 20.0; // hash + bucket maintenance
            p.is_bucket = true;
        }
        let vcost = block_cost(gen.value(), ctx, env);
        add_cost(&mut p, vcost);
        let vshape = shape::eval_block(gen.value(), &[ShapeVal::Scalar], env, ctx.cfg);
        match gen {
            Gen::Collect { .. } => {
                p.output_bytes_per_iter += vshape.bytes();
            }
            Gen::Reduce { .. } | Gen::BucketReduce { .. } => {
                if let Some(r) = gen.reducer() {
                    // The reducer runs roughly once per accepted element.
                    let mut renv = env.clone();
                    for (param, sh) in r.params.iter().zip([vshape.clone(), vshape.clone()]) {
                        renv.insert(*param, sh);
                    }
                    let rcost = block_cost(r, ctx, &mut renv);
                    add_cost(&mut p, rcost);
                }
                p.reduce_bytes = p.reduce_bytes.max(vshape.bytes());
                if !matches!(vshape, ShapeVal::Int(_) | ShapeVal::Scalar) {
                    p.has_nonscalar_reduce = true;
                }
            }
            Gen::BucketCollect { .. } => {
                p.output_bytes_per_iter += vshape.bytes();
            }
        }
    }
    // Post-loop combine volume, from the output shapes.
    let out_shapes = shape::eval_loop(ml, &mut env.clone(), ctx.cfg);
    for (gen, sh) in ml.gens.iter().zip(&out_shapes) {
        match gen {
            Gen::Reduce { .. } | Gen::BucketReduce { .. } => p.combine_bytes += sh.bytes(),
            _ => {}
        }
    }
    let _ = program;
    p
}

fn add_cost(p: &mut LoopProfile, c: Cost) {
    p.flops_per_iter += c.flops;
    p.stream_bytes_per_iter += c.stream;
    p.local_bytes_per_iter += c.local;
    p.random_bytes_per_iter += c.random;
}

fn loop_free_syms(ml: &dmll_core::Multiloop) -> BTreeSet<Sym> {
    let mut syms = BTreeSet::new();
    if let Exp::Sym(s) = &ml.size {
        syms.insert(*s);
    }
    for gen in &ml.gens {
        for b in gen.blocks() {
            syms.extend(dmll_core::visit::free_syms(b));
        }
    }
    syms
}

/// Cost of one execution of a block (binding its params to abstract
/// scalars), including nested loops scaled by their trip counts.
fn block_cost(b: &Block, ctx: &Ctx<'_>, env: &mut ShapeEnv) -> Cost {
    for param in &b.params {
        env.entry(*param).or_insert(ShapeVal::Scalar);
    }
    let mut total = Cost::default();
    for stmt in &b.stmts {
        match &stmt.def {
            Def::Prim { .. } => total.flops += 1.0,
            Def::Math { .. } => total.flops += 5.0,
            Def::Cast { .. } => total.flops += 1.0,
            Def::ArrayRead { arr, .. } => {
                let bytes = match arr.as_sym().and_then(|s| env.get(&s)) {
                    Some(ShapeVal::Arr { elem, .. }) => elem.bytes(),
                    _ => 8.0,
                };
                let class = classify_read(arr, ctx);
                match class {
                    ReadClass::Stream => total.stream += bytes,
                    ReadClass::Local => total.local += bytes,
                    ReadClass::Random => total.random += bytes,
                }
            }
            Def::BucketGet { .. } => {
                total.flops += 20.0;
                total.local += 8.0;
            }
            Def::Loop(ml) => {
                let iters = shape::eval_exp(&ml.size, env).as_int().unwrap_or(0).max(0) as f64;
                let mut inner = Cost::default();
                for gen in &ml.gens {
                    for cb in gen.blocks() {
                        inner.add(block_cost(cb, ctx, env));
                    }
                    if gen.key().is_some() {
                        inner.flops += 20.0;
                    }
                }
                total.add(inner.scaled(iters));
            }
            Def::ArrayLen(_)
            | Def::Flatten(_)
            | Def::BucketLen(_)
            | Def::BucketKeys(_)
            | Def::BucketValues(_)
            | Def::TupleNew(_)
            | Def::TupleGet { .. }
            | Def::StructNew { .. }
            | Def::StructGet { .. }
            | Def::Extern { .. } => total.flops += 1.0,
        }
        // Track shapes so nested loop sizes resolve.
        let shapes = shape::eval_def(&stmt.def, env, ctx.cfg);
        for (sym, sh) in stmt.lhs.iter().zip(shapes) {
            env.insert(*sym, sh);
        }
        // Recurse into blocks of non-loop defs (none currently).
        if !matches!(stmt.def, Def::Loop(_)) {
            for nb in def_blocks(&stmt.def) {
                total.add(block_cost(nb, ctx, env));
            }
        }
    }
    total
}

/// Observed execution-tier counters for one run, mirroring the
/// interpreter's `dmll_interp::TierTotals`. The runtime crate does not
/// depend on the interpreter, so callers (the bench harness) copy the
/// numbers across; keeping the type here lets profiling reports combine
/// modeled traffic with measured tier throughput.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecTierStats {
    /// Multiloops lowered to bytecode (cache misses that compiled).
    pub kernels_compiled: u64,
    /// Kernel-cache hits.
    pub kernel_cache_hits: u64,
    /// Multiloops the compiler rejected (ran on the tree-walker).
    pub fallback_loops: u64,
    /// Total time spent compiling, in nanoseconds.
    pub compile_nanos: u64,
    /// Top-level loop executions on the compiled tier.
    pub compiled_loops: u64,
    /// Elements traversed by the compiled tier.
    pub compiled_elements: u64,
    /// Wall time of compiled-tier loop execution, in nanoseconds.
    pub compiled_nanos: u64,
    /// Top-level loop executions on the tree-walking tier.
    pub treewalk_loops: u64,
    /// Elements traversed by the tree-walking tier.
    pub treewalk_elements: u64,
    /// Wall time of tree-walking loop execution, in nanoseconds.
    pub treewalk_nanos: u64,
    /// Compiled loops that executed block-at-a-time (subset of
    /// `compiled_loops`).
    pub batched_loops: u64,
    /// Elements traversed by batched loop executions.
    pub batched_elements: u64,
    /// Wall time of batched loop execution, in nanoseconds (also counted
    /// in `compiled_nanos`).
    pub batched_nanos: u64,
    /// Full-width blocks executed by the batched tier.
    pub batched_blocks: u64,
    /// Elements handled by the scalar-tail path of batched executions.
    pub tail_elements: u64,
    /// Per-element block executions that ran the full-width lane-chunked
    /// (SIMD-lowered) path — all lanes live, no selection vector.
    pub simd_blocks: u64,
    /// Flattened iteration-space chunks executed by segmented nested loops
    /// (variable per-lane trip counts run through the CSR-flattened path).
    pub segmented_blocks: u64,
    /// Loop ranges served by the dedicated AoS→SoA scatter fast path
    /// (typed field extraction from a boxed struct array).
    pub scatter_loops: u64,
    /// Top-level loop executions on the native (compiled C) tier.
    pub native_loops: u64,
    /// Elements traversed by the native tier.
    pub native_elements: u64,
    /// Wall time of native-tier loop execution, in nanoseconds (also
    /// counted in `compiled_nanos`).
    pub native_nanos: u64,
    /// Kernels emitted as C, compiled, and `dlopen`ed.
    pub native_compiles: u64,
    /// Total time spent invoking the system C compiler, in nanoseconds.
    pub native_compile_nanos: u64,
    /// Native-tier requests that fell back to the batched tier with a
    /// typed decline.
    pub native_fallbacks: u64,
    /// Work-stealing tasks executed off their seeded worker.
    pub tasks_stolen: u64,
    /// Kernel-cache entries evicted (LRU).
    pub cache_evictions: u64,
    /// Kernel-cache hits on negative (rejected-compilation) entries.
    pub negative_hits: u64,
    /// Speculative task clones launched against stragglers.
    pub speculative_launches: u64,
    /// Speculative clones whose result was recorded first.
    pub speculation_wins: u64,
    /// Worker circuit-breaker trips (quarantine entries).
    pub quarantine_trips: u64,
    /// Supervised runs aborted by their wall-clock deadline.
    pub deadline_aborts: u64,
    /// Supervised runs aborted by cancellation.
    pub cancelled_aborts: u64,
    /// Loop executions scheduled by the partitioned data plane (tasks had
    /// home regions; bucket merges used the region stitch).
    pub sharded_loops: u64,
    /// Per-loop collection reads served from the shared path because their
    /// stencil was `Unknown` (§4.2's "fall back to runtime data movement").
    pub stencil_fallbacks: u64,
    /// Partition-analysis warnings attached to executed access plans.
    pub partition_warnings: u64,
    /// Sharded tasks executed inside their home region.
    pub region_local_tasks: u64,
    /// Sharded tasks stolen across a region boundary (only after the
    /// thief's own region ran dry).
    pub cross_region_steals: u64,
    /// Fusion rewrites the pre-compile hook applied before kernel
    /// certification.
    pub fusion_applied: u64,
    /// Fusion candidates the hook's cost model declined.
    pub fusion_rejected: u64,
    /// Compiled-loop executions that ran scalar because batch
    /// certification rejected the kernel.
    pub batch_ineligible: u64,
    /// Top-level loops executed on the measured cluster data plane.
    pub cluster_loops: u64,
    /// Cluster epochs that ran a real shuffle phase.
    pub cluster_shuffles: u64,
    /// Inter-node messages sent by cluster epochs (staging, acks, shuffle,
    /// recovery).
    pub shuffle_sends: u64,
    /// Payload bytes moved by those messages.
    pub shuffle_bytes: u64,
    /// Cluster sends retried after an injected link flake.
    pub link_retries: u64,
    /// Tasks re-executed on survivors after losing a node's held results.
    pub lineage_recoveries: u64,
    /// Halo margins exchanged between neighbouring nodes for stencil reads.
    pub halo_exchanges: u64,
    /// Simulated nanoseconds charged through the cluster network model.
    pub cluster_network_nanos: u64,
}

impl ExecTierStats {
    /// Elements per second on the compiled tier, if it ran at all.
    pub fn compiled_elements_per_sec(&self) -> Option<f64> {
        tier_rate(self.compiled_elements, self.compiled_nanos)
    }

    /// Elements per second on the tree-walking tier, if it ran at all.
    pub fn treewalk_elements_per_sec(&self) -> Option<f64> {
        tier_rate(self.treewalk_elements, self.treewalk_nanos)
    }

    /// Elements per second on the batched sub-tier, if it ran at all.
    pub fn batched_elements_per_sec(&self) -> Option<f64> {
        tier_rate(self.batched_elements, self.batched_nanos)
    }

    /// Elements per second on the native tier, if it ran at all.
    pub fn native_elements_per_sec(&self) -> Option<f64> {
        tier_rate(self.native_elements, self.native_nanos)
    }

    /// Compiled-tier throughput relative to the tree-walker, when both
    /// tiers ran.
    pub fn speedup(&self) -> Option<f64> {
        match (
            self.compiled_elements_per_sec(),
            self.treewalk_elements_per_sec(),
        ) {
            (Some(c), Some(t)) if t > 0.0 => Some(c / t),
            _ => None,
        }
    }

    /// Fraction of executed top-level loops that ran compiled.
    pub fn compiled_fraction(&self) -> f64 {
        let total = self.compiled_loops + self.treewalk_loops;
        if total == 0 {
            0.0
        } else {
            self.compiled_loops as f64 / total as f64
        }
    }
}

fn tier_rate(elements: u64, nanos: u64) -> Option<f64> {
    if nanos == 0 {
        None
    } else {
        Some(elements as f64 * 1e9 / nanos as f64)
    }
}

enum ReadClass {
    Stream,
    Local,
    Random,
}

fn classify_read(arr: &Exp, ctx: &Ctx<'_>) -> ReadClass {
    let Some(s) = arr.as_sym() else {
        return ReadClass::Local;
    };
    if ctx.layouts.layout_of(s) != DataLayout::Partitioned {
        return ReadClass::Local;
    }
    match ctx.stencils.get(&s) {
        Some(Stencil::Interval) => ReadClass::Stream,
        Some(Stencil::Unknown | Stencil::Gather(_)) => ReadClass::Random,
        // Const / All: served from the broadcast replica.
        _ => ReadClass::Local,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::{LayoutHint, Ty};
    use dmll_frontend::Stage;

    fn analyzed(p: &mut Program) -> AnalysisResult {
        dmll_analysis::analyze(p)
    }

    #[test]
    fn sum_profile_counts_stream_bytes() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let s = st.sum(&x);
        let mut p = st.finish(&s);
        let a = analyzed(&mut p);
        let profs = profile_program(
            &p,
            &a,
            &[("x", ShapeVal::f64_arr(1_000_000))],
            &ShapeConfig::default(),
        );
        assert_eq!(profs.len(), 1);
        let pr = &profs[0];
        assert_eq!(pr.iterations, 1e6);
        assert!(pr.partitioned);
        assert_eq!(pr.stream_bytes_per_iter, 8.0, "{pr:?}");
        assert!(!pr.has_nonscalar_reduce);
        assert_eq!(pr.reduce_bytes, 8.0);
    }

    #[test]
    fn broadcast_of_local_centroids() {
        // k-means assignment: distances to local centroids per row.
        let mut st = Stage::new();
        let matrix = st.input_matrix("matrix", LayoutHint::Partitioned);
        let clusters = st.input_matrix("clusters", LayoutHint::Local);
        let assigned = matrix.map_rows(&mut st, |st, i| {
            let d = clusters.map_rows(st, |st, c| matrix.row_dist2(st, i, &clusters, c));
            st.min_index(&d)
        });
        let mut p = st.finish(&assigned);
        let a = analyzed(&mut p);
        let profs = profile_program(
            &p,
            &a,
            &[
                ("matrix", ShapeVal::matrix(1000, 10)),
                ("clusters", ShapeVal::matrix(5, 10)),
            ],
            &ShapeConfig::default(),
        );
        let pr = profs.last().unwrap();
        assert_eq!(pr.iterations, 1000.0);
        assert!(
            pr.broadcast_bytes >= 5.0 * 10.0 * 8.0,
            "centroids broadcast: {pr:?}"
        );
        // Per row: 5 centroids × 10 features, reading both matrices.
        assert!(pr.flops_per_iter > 100.0, "{pr:?}");
    }

    #[test]
    fn nested_trip_counts_multiply() {
        let mut st = Stage::new();
        let m = st.input_matrix("m", LayoutHint::Partitioned);
        let rows = m.rows(&mut st);
        let sums = st.collect(&rows, |st, i| {
            let cols = m.cols(st);
            let zero = st.lit_f(0.0);
            let m2 = m.clone();
            let i = i.clone();
            st.reduce(
                &cols,
                move |st, j| m2.get(st, &i, j),
                |st, a, b| st.add(a, b),
                Some(&zero),
            )
        });
        let mut p = st.finish(&sums);
        // Normalize: hoist the loop-invariant matrix projections so the
        // analyses see them (the optimizer recipe always does this).
        dmll_transform::rewrite::fixpoint(&mut p, dmll_transform::code_motion::run);
        let a = analyzed(&mut p);
        let profs = profile_program(
            &p,
            &a,
            &[("m", ShapeVal::matrix(100, 50))],
            &ShapeConfig::default(),
        );
        let pr = &profs[0];
        assert_eq!(pr.iterations, 100.0);
        // 50 inner iterations, each reading 8 bytes of the (interval)
        // partitioned data plus arithmetic.
        assert!(pr.stream_bytes_per_iter >= 50.0 * 8.0, "{pr:?}");
        assert!(pr.flops_per_iter >= 50.0, "{pr:?}");
    }

    #[test]
    fn vector_reduce_flagged_for_gpu() {
        let mut st = Stage::new();
        let m = st.input_matrix("m", LayoutHint::Partitioned);
        let rows = m.rows(&mut st);
        let m2 = m.clone();
        let sum = st.reduce(
            &rows,
            move |st, i| m2.row(st, i),
            |st, a, b| st.vec_add(a, b),
            None,
        );
        let mut p = st.finish(&sum);
        let a = analyzed(&mut p);
        let profs = profile_program(
            &p,
            &a,
            &[("m", ShapeVal::matrix(200, 30))],
            &ShapeConfig::default(),
        );
        let pr = profs
            .iter()
            .find(|pr| pr.reduce_bytes > 8.0)
            .expect("the vector reduce");
        assert!(pr.has_nonscalar_reduce, "{pr:?}");
        assert_eq!(pr.reduce_bytes, 30.0 * 8.0);
    }

    #[test]
    fn conditional_reduce_shrinks_matrix_traffic() {
        // The headline effect: pre-transformation k-means update touches
        // the matrix once *per cluster*; post-transformation, once total.
        let k = 32i64;
        let build = || {
            let mut st = Stage::new();
            let matrix = st.input_matrix("matrix", LayoutHint::Partitioned);
            let assigned = st.input("assigned", Ty::arr(Ty::I64), LayoutHint::Partitioned);
            let kv = st.lit_i(k);
            let rows = matrix.rows(&mut st);
            let sums = st.collect(&kv, |st, i| {
                let i = i.clone();
                let a = assigned.clone();
                let m = matrix.clone();
                st.reduce_if(
                    &rows,
                    Some(move |st: &mut Stage, j: &dmll_frontend::Val| {
                        let aj = st.read(&a, j);
                        st.eq(&aj, &i)
                    }),
                    move |st, j| m.row(st, j),
                    |st, x, y| st.vec_add(x, y),
                    None,
                )
            });
            st.finish(&sums)
        };
        let shapes: Vec<(&str, ShapeVal)> = vec![
            ("matrix", ShapeVal::matrix(10_000, 20)),
            ("assigned", ShapeVal::i64_arr(10_000)),
        ];
        let cfg = ShapeConfig {
            bucket_hint: k,
            ..Default::default()
        };

        // Untransformed: skip stencil repair, analyze as written.
        let p_before = build();
        let stencils = dmll_analysis::stencil::analyze(&p_before);
        let partition = dmll_analysis::partition::analyze(&p_before, &stencils);
        let a_before = AnalysisResult {
            stencils,
            partition,
            repairs: vec![],
        };
        let before = profile_program(&p_before, &a_before, &shapes, &cfg);
        let before_total: f64 = before
            .iter()
            .map(|pr| pr.iterations * (pr.local_bytes_per_iter + pr.stream_bytes_per_iter))
            .sum();

        // Transformed via the stencil-driven driver.
        let mut p_after = build();
        let a_after = dmll_analysis::analyze(&mut p_after);
        assert!(!a_after.repairs.is_empty());
        let after = profile_program(&p_after, &a_after, &shapes, &cfg);
        let after_total: f64 = after
            .iter()
            .map(|pr| pr.iterations * (pr.local_bytes_per_iter + pr.stream_bytes_per_iter))
            .sum();
        assert!(
            after_total * 3.0 < before_total,
            "one pass instead of {k}: before={before_total:.0} after={after_total:.0}"
        );
    }

    #[test]
    fn tier_stats_rates_and_speedup() {
        let s = ExecTierStats {
            compiled_loops: 3,
            compiled_elements: 9_000,
            compiled_nanos: 1_000_000_000,
            treewalk_loops: 1,
            treewalk_elements: 1_000,
            treewalk_nanos: 1_000_000_000,
            ..Default::default()
        };
        assert_eq!(s.compiled_elements_per_sec(), Some(9_000.0));
        assert_eq!(s.treewalk_elements_per_sec(), Some(1_000.0));
        assert_eq!(s.speedup(), Some(9.0));
        assert_eq!(s.compiled_fraction(), 0.75);
        assert_eq!(ExecTierStats::default().speedup(), None);
        assert_eq!(ExecTierStats::default().compiled_fraction(), 0.0);
    }
}
