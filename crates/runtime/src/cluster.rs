//! The unified cluster data plane: placement + transport for measured
//! multi-node execution.
//!
//! [`shard`](crate::shard) partitions index spaces into block-aligned
//! regions and [`distarray`](crate::distarray) owns the directory / retry /
//! fault vocabulary. [`ClusterPlane`] composes the two with the
//! [`machine`](crate::machine) network model into the single object a
//! measured cluster executor needs:
//!
//! * **Placement** — a [`RegionMap`] over *nodes* (instead of sockets)
//!   assigns contiguous index ranges to machines; the same map doubles as
//!   the directory fed to [`SchedulePlan::replan_avoiding`] during lineage
//!   recovery.
//! * **Transport** — every inter-node message goes through [`ClusterPlane::send`],
//!   which consults the [`FaultInjector`] for link flakes, retries under the
//!   capped-backoff [`RetryPolicy`], and charges `latency + bytes/bandwidth`
//!   through the cluster's network model in *simulated* nanoseconds
//!   (recorded, never slept — scenario replay stays fast and
//!   bit-deterministic).
//!
//! Nothing here moves payload bytes itself: the executor moves values over
//! channels and calls [`ClusterPlane::send`] to decide whether the message
//! survives and what it costs. That split keeps the plane transport-agnostic
//! and trivially testable.

use crate::distarray::{Location, RetryPolicy, TransferStats};
use crate::error::RuntimeError;
use crate::fault::FaultInjector;
use crate::machine::ClusterSpec;
use crate::shard::RegionMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Placement + charged transport for one simulated cluster.
#[derive(Clone)]
pub struct ClusterPlane {
    spec: ClusterSpec,
    injector: Arc<FaultInjector>,
    retry: RetryPolicy,
    stats: Arc<TransferStats>,
}

impl ClusterPlane {
    /// A plane over `spec` with faults scripted by `injector` and sends
    /// retried under `retry`.
    pub fn new(spec: ClusterSpec, injector: Arc<FaultInjector>, retry: RetryPolicy) -> ClusterPlane {
        ClusterPlane {
            spec,
            injector,
            retry,
            stats: Arc::new(TransferStats::default()),
        }
    }

    /// The cluster description.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The fault injector every decision consults.
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// The retry policy applied to sends.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Shared transfer counters (sends, retries, network nanos).
    pub fn stats(&self) -> Arc<TransferStats> {
        Arc::clone(&self.stats)
    }

    /// Partition `[0, len)` across the cluster's nodes, block-aligned —
    /// the node-level analogue of the socket-level region map.
    pub fn node_map(&self, len: i64) -> RegionMap {
        RegionMap::new(len, self.spec.nodes.max(1))
    }

    /// The `(start, end, node)` directory for a `len`-element index space —
    /// the shape [`crate::SchedulePlan::replan_avoiding`] expects, used to
    /// prefer data-local survivors as lineage-recovery targets.
    pub fn directory(&self, len: i64) -> Vec<(i64, i64, usize)> {
        let map = self.node_map(len);
        (0..map.regions())
            .map(|r| {
                let (s, e) = map.bounds(r);
                (s, e, r)
            })
            .collect()
    }

    /// Simulated cost of one `bytes`-sized message: latency + bytes/bw,
    /// in nanoseconds. Zero on the degenerate single-node cluster.
    pub fn transfer_nanos(&self, bytes: u64) -> u64 {
        let secs = self.spec.network_latency + bytes as f64 / self.spec.network_bw;
        if !secs.is_finite() {
            return 0;
        }
        (secs * 1e9) as u64
    }

    /// Nodes currently down per the injector, sorted and deduplicated.
    pub fn failed_nodes(&self) -> Vec<usize> {
        self.injector.failed_nodes()
    }

    /// Send a `bytes`-sized message `msg_id` from node `from` to node `to`,
    /// with link-flake injection and capped-backoff retries. Returns the
    /// simulated nanoseconds charged. Intra-node sends are free and
    /// infallible.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::NodeFailed`] when `to` is permanently down;
    /// * [`RuntimeError::SendTimeout`] when every attempt was dropped.
    pub fn send(&self, from: usize, to: usize, msg_id: u64, bytes: u64) -> Result<u64, RuntimeError> {
        if from == to {
            return Ok(0);
        }
        let src = Location { node: from, socket: 0 };
        let dst = Location { node: to, socket: 0 };
        if self.injector.node_is_down(to) {
            self.stats.failed_sends.fetch_add(1, Ordering::Relaxed);
            return Err(RuntimeError::NodeFailed { node: to });
        }
        let mut charged = 0u64;
        let spike = self.injector.remote_read_latency_nanos();
        if spike > 0 {
            charged += spike;
        }
        let max_attempts = self.retry.max_attempts.max(1);
        for attempt in 0..max_attempts {
            if self.injector.remote_read_fails(src, dst, msg_id as usize, attempt) {
                if attempt + 1 < max_attempts {
                    self.stats.send_retries.fetch_add(1, Ordering::Relaxed);
                    charged += self.retry.backoff_nanos(attempt + 1);
                }
                continue;
            }
            charged += self.transfer_nanos(bytes);
            self.stats.sends.fetch_add(1, Ordering::Relaxed);
            self.stats.send_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.stats.network_nanos.fetch_add(charged, Ordering::Relaxed);
            return Ok(charged);
        }
        self.stats.failed_sends.fetch_add(1, Ordering::Relaxed);
        self.stats.network_nanos.fetch_add(charged, Ordering::Relaxed);
        Err(RuntimeError::SendTimeout {
            from,
            to,
            attempts: max_attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn plane(nodes: usize, plan: FaultPlan) -> ClusterPlane {
        let spec = ClusterSpec {
            nodes,
            ..ClusterSpec::amazon_20()
        };
        ClusterPlane::new(spec, Arc::new(FaultInjector::new(plan)), RetryPolicy::default())
    }

    #[test]
    fn directory_covers_index_space_in_node_order() {
        let p = plane(4, FaultPlan::new(0));
        let dir = p.directory(10_000);
        assert_eq!(dir.first().unwrap().0, 0);
        assert_eq!(dir.last().unwrap().1, 10_000);
        for w in dir.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous");
            assert!(w[0].2 < w[1].2, "node-ordered");
        }
    }

    #[test]
    fn sends_are_counted_and_charged() {
        let p = plane(4, FaultPlan::new(0));
        let nanos = p.send(0, 1, 7, 125_000).unwrap();
        // 200 µs latency + 125 kB / 125 MB/s = 1 ms.
        assert_eq!(nanos, 1_200_000);
        let net = p.stats().net_snapshot();
        assert_eq!(net.sends, 1);
        assert_eq!(net.send_bytes, 125_000);
        assert_eq!(net.network_nanos, nanos);
    }

    #[test]
    fn intra_node_sends_are_free() {
        let p = plane(4, FaultPlan::new(0));
        assert_eq!(p.send(2, 2, 0, 1 << 30), Ok(0));
        assert_eq!(p.stats().net_snapshot().sends, 0);
    }

    #[test]
    fn flaky_links_retry_then_deliver() {
        let p = plane(4, FaultPlan::new(11).drop_remote_reads(0.5));
        let mut delivered = 0u32;
        for msg in 0..200 {
            if p.send(0, 1, msg, 64).is_ok() {
                delivered += 1;
            }
        }
        let net = p.stats().net_snapshot();
        assert!(net.send_retries > 0, "flakes must cause retries: {net:?}");
        assert!(delivered > 150, "most sends recover under retry: {delivered}");
    }

    #[test]
    fn certain_drop_times_out_typed() {
        let p = plane(2, FaultPlan::new(3).drop_remote_reads(1.0));
        assert_eq!(
            p.send(0, 1, 9, 8),
            Err(RuntimeError::SendTimeout {
                from: 0,
                to: 1,
                attempts: 4
            })
        );
        assert_eq!(p.stats().net_snapshot().failed_sends, 1);
    }

    #[test]
    fn sends_to_dead_nodes_fail_fast() {
        let p = plane(2, FaultPlan::new(0).kill_node(1, 0));
        assert_eq!(p.send(0, 1, 0, 8), Err(RuntimeError::NodeFailed { node: 1 }));
    }

    #[test]
    fn single_node_cluster_transfers_are_free() {
        let p = ClusterPlane::new(
            ClusterSpec::single(crate::machine::MachineSpec::m1_xlarge()),
            Arc::new(FaultInjector::new(FaultPlan::new(0))),
            RetryPolicy::default(),
        );
        assert_eq!(p.transfer_nanos(1 << 40), 0);
    }
}
