//! Supervised execution: deadlines, cancellation, straggler speculation
//! policy, and a quarantine circuit breaker.
//!
//! A production runtime has to survive hardware that *misbehaves*, not just
//! hardware that dies once: hung workers, stragglers, and nodes that fail
//! repeatedly. The [`Supervisor`] owns the run-wide controls the parallel
//! executor polls at task boundaries:
//!
//! * a [`CancelToken`] plus an optional wall-clock **deadline** — on either,
//!   in-flight tasks drain, queued tasks are abandoned, and the executor
//!   surfaces a typed error with a partial report;
//! * a run-wide **retry budget** complementing the per-chunk retry cap, so
//!   a cascade of failures cannot retry forever in aggregate;
//! * a [`SpeculationPolicy`] for **straggler re-execution**: tasks running
//!   past an adaptive percentile of completed-task latency are cloned onto
//!   an idle worker, first result wins by task id (tasks are deterministic
//!   over their subrange, so speculation can never change output);
//! * a [`Quarantine`] **circuit breaker** per worker (or per cluster node):
//!   units whose tasks fail more than `max_failures` times within a window
//!   of recent outcomes trip open and are excluded from stealing and from
//!   [`crate::SchedulePlan::replan_avoiding`] targets, then readmitted via
//!   half-open probes.
//!
//! Everything here is *policy*: none of these knobs can change the value a
//! run produces, only whether it completes, how fast, and with what typed
//! error. The chaos harness in `crates/bench` sweeps seeded fault plans to
//! pin exactly that property.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Why the supervisor stopped a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The wall-clock deadline expired.
    Deadline,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
}

/// A cloneable cancellation handle. Cancelling is sticky: once set, every
/// clone observes it, and the supervised executor drains at the next task
/// boundary.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation (idempotent, thread-safe).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Straggler-speculation policy. A running task is a straggler once its
/// elapsed time exceeds
/// `max(floor, multiplier × percentile(completed latencies))`, provided at
/// least `min_samples` tasks have completed (the adaptive threshold needs a
/// latency population to be meaningful).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpeculationPolicy {
    /// Master switch; disabled policies never speculate.
    pub enabled: bool,
    /// Completed-task latencies required before speculation can trigger.
    pub min_samples: usize,
    /// Latency percentile (0–100) used as the adaptive base.
    pub percentile: f64,
    /// A task is a straggler past `multiplier ×` the percentile latency.
    pub multiplier: f64,
    /// Absolute lower bound on the straggler threshold; tasks faster than
    /// this are never worth cloning.
    pub floor: Duration,
}

impl Default for SpeculationPolicy {
    fn default() -> SpeculationPolicy {
        SpeculationPolicy {
            enabled: true,
            min_samples: 3,
            percentile: 75.0,
            multiplier: 4.0,
            floor: Duration::from_micros(200),
        }
    }
}

impl SpeculationPolicy {
    /// Speculation switched off entirely.
    pub fn disabled() -> SpeculationPolicy {
        SpeculationPolicy {
            enabled: false,
            ..SpeculationPolicy::default()
        }
    }

    /// The straggler cutoff given the latencies (nanoseconds) of completed
    /// tasks, or `None` when speculation should not trigger yet.
    pub fn cutoff_nanos(&self, completed: &[u64]) -> Option<u64> {
        if !self.enabled || completed.len() < self.min_samples.max(1) {
            return None;
        }
        let mut sorted: Vec<u64> = completed.to_vec();
        sorted.sort_unstable();
        let rank = (self.percentile.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64).round();
        let base = sorted[rank as usize];
        let scaled = (base as f64 * self.multiplier.max(1.0)) as u64;
        Some(scaled.max(self.floor.as_nanos() as u64))
    }
}

/// Quarantine circuit-breaker policy, applied per unit (worker thread or
/// cluster node).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuarantinePolicy {
    /// Master switch; disabled policies never quarantine.
    pub enabled: bool,
    /// Failures within the window that trip the breaker open.
    pub max_failures: u32,
    /// Size of the sliding window of recent outcomes per unit.
    pub window: u32,
    /// Global outcomes that must elapse after tripping before a half-open
    /// probe is allowed ("time" is the shared outcome counter, so the state
    /// machine is deterministic given an outcome sequence — no wall clock).
    pub cooldown: u64,
}

impl Default for QuarantinePolicy {
    fn default() -> QuarantinePolicy {
        QuarantinePolicy {
            enabled: true,
            max_failures: 3,
            window: 8,
            cooldown: 16,
        }
    }
}

impl QuarantinePolicy {
    /// Quarantining switched off entirely.
    pub fn disabled() -> QuarantinePolicy {
        QuarantinePolicy {
            enabled: false,
            ..QuarantinePolicy::default()
        }
    }
}

/// Circuit-breaker state of one unit.
#[derive(Clone, Debug)]
enum Breaker {
    /// Healthy: sliding window of recent outcomes (`true` = failure).
    Closed { recent: VecDeque<bool> },
    /// Tripped at outcome-clock `since`: no work until the cooldown passes.
    Open { since: u64 },
    /// Cooldown passed: one probe decides readmission or re-tripping.
    HalfOpen,
}

/// Per-unit quarantine tracker. Units are dense indices (worker ids or
/// cluster node ids). The "clock" is the total number of outcomes recorded
/// across all units, so cooldowns advance exactly when work is being done —
/// a fully idle system never silently readmits a bad unit.
#[derive(Debug)]
pub struct Quarantine {
    policy: QuarantinePolicy,
    states: Mutex<Vec<Breaker>>,
    clock: AtomicU64,
    trips: AtomicU64,
    probes: AtomicU64,
    readmissions: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Quarantine {
    /// A tracker for `units` units under `policy`.
    pub fn new(units: usize, policy: QuarantinePolicy) -> Quarantine {
        Quarantine {
            policy,
            states: Mutex::new(vec![
                Breaker::Closed {
                    recent: VecDeque::new()
                };
                units
            ]),
            clock: AtomicU64::new(0),
            trips: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> QuarantinePolicy {
        self.policy
    }

    fn ensure(states: &mut Vec<Breaker>, unit: usize) {
        if states.len() <= unit {
            states.resize(
                unit + 1,
                Breaker::Closed {
                    recent: VecDeque::new(),
                },
            );
        }
    }

    /// Record one task outcome for `unit` (`failed = true` for a death).
    /// Advances the shared outcome clock and runs the breaker transitions.
    pub fn record(&self, unit: usize, failed: bool) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.policy.enabled {
            return;
        }
        let mut states = lock(&self.states);
        Self::ensure(&mut states, unit);
        let state = &mut states[unit];
        match state {
            Breaker::Closed { recent } => {
                recent.push_back(failed);
                while recent.len() > self.policy.window.max(1) as usize {
                    recent.pop_front();
                }
                let failures = recent.iter().filter(|f| **f).count() as u32;
                if failures >= self.policy.max_failures.max(1) {
                    *state = Breaker::Open { since: now };
                    self.trips.fetch_add(1, Ordering::Relaxed);
                }
            }
            Breaker::HalfOpen => {
                if failed {
                    *state = Breaker::Open { since: now };
                    self.trips.fetch_add(1, Ordering::Relaxed);
                } else {
                    *state = Breaker::Closed {
                        recent: VecDeque::new(),
                    };
                    self.readmissions.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Outcomes reported for an open unit (work already in flight
            // when it tripped) don't move the state machine.
            Breaker::Open { .. } => {}
        }
    }

    /// Is `unit` currently excluded from receiving work? An open breaker
    /// whose cooldown has passed transitions to half-open here and becomes
    /// eligible again for exactly the probe that will decide its fate.
    pub fn is_quarantined(&self, unit: usize) -> bool {
        if !self.policy.enabled {
            return false;
        }
        let now = self.clock.load(Ordering::Relaxed);
        let mut states = lock(&self.states);
        Self::ensure(&mut states, unit);
        match states[unit] {
            Breaker::Closed { .. } | Breaker::HalfOpen => false,
            Breaker::Open { since } => {
                if now.saturating_sub(since) >= self.policy.cooldown {
                    states[unit] = Breaker::HalfOpen;
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    false
                } else {
                    true
                }
            }
        }
    }

    /// Units currently quarantined (open breakers still cooling down).
    pub fn quarantined_units(&self) -> Vec<usize> {
        if !self.policy.enabled {
            return Vec::new();
        }
        let now = self.clock.load(Ordering::Relaxed);
        let states = lock(&self.states);
        states
            .iter()
            .enumerate()
            .filter_map(|(u, s)| match s {
                Breaker::Open { since } if now.saturating_sub(*since) < self.policy.cooldown => {
                    Some(u)
                }
                _ => None,
            })
            .collect()
    }

    /// Breaker trips so far (a unit re-tripping counts again).
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Half-open probes granted so far.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Units readmitted after a successful probe.
    pub fn readmissions(&self) -> u64 {
        self.readmissions.load(Ordering::Relaxed)
    }
}

/// Run-wide supervision policy.
#[derive(Clone, Debug, PartialEq)]
pub struct SupervisorPolicy {
    /// Wall-clock budget for the whole run; `None` = unbounded.
    pub deadline: Option<Duration>,
    /// Total chunk re-executions allowed across the run (complements the
    /// per-chunk retry cap).
    pub retry_budget: u32,
    /// Straggler speculation policy.
    pub speculation: SpeculationPolicy,
    /// Worker quarantine policy.
    pub quarantine: QuarantinePolicy,
}

impl Default for SupervisorPolicy {
    fn default() -> SupervisorPolicy {
        SupervisorPolicy {
            deadline: None,
            retry_budget: 64,
            speculation: SpeculationPolicy::default(),
            quarantine: QuarantinePolicy::default(),
        }
    }
}

impl SupervisorPolicy {
    /// A policy with only a deadline set (defaults elsewhere).
    pub fn with_deadline(deadline: Duration) -> SupervisorPolicy {
        SupervisorPolicy {
            deadline: Some(deadline),
            ..SupervisorPolicy::default()
        }
    }
}

/// Counter snapshot of one supervised run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SuperviseStats {
    /// Speculative task clones launched.
    pub speculative_launches: u64,
    /// Speculative clones whose result was recorded first.
    pub speculation_wins: u64,
    /// Circuit-breaker trips (worker quarantined; re-trips count again).
    pub quarantine_trips: u64,
    /// Half-open probes granted to quarantined workers.
    pub quarantine_probes: u64,
    /// Workers readmitted after a successful probe.
    pub quarantine_readmissions: u64,
    /// Runs aborted by deadline.
    pub deadline_aborts: u64,
    /// Runs aborted by cancellation.
    pub cancelled_aborts: u64,
    /// Chunk re-executions charged against the retry budget.
    pub retries_consumed: u64,
}

/// The supervision controller one run polls at task boundaries. Create it
/// just before the run starts: the deadline countdown begins at
/// construction.
#[derive(Debug)]
pub struct Supervisor {
    policy: SupervisorPolicy,
    cancel: CancelToken,
    started: Instant,
    retries_used: AtomicU64,
    quarantine: Quarantine,
    spec_launches: AtomicU64,
    spec_wins: AtomicU64,
    deadline_aborts: AtomicU64,
    cancelled_aborts: AtomicU64,
}

impl Supervisor {
    /// Start supervising now under `policy` with a fresh cancel token.
    pub fn new(policy: SupervisorPolicy) -> Arc<Supervisor> {
        Supervisor::with_token(policy, CancelToken::new())
    }

    /// Start supervising now, observing an existing token (so callers can
    /// cancel a run they handed to another thread).
    pub fn with_token(policy: SupervisorPolicy, cancel: CancelToken) -> Arc<Supervisor> {
        let quarantine = Quarantine::new(0, policy.quarantine);
        Arc::new(Supervisor {
            policy,
            cancel,
            started: Instant::now(),
            retries_used: AtomicU64::new(0),
            quarantine,
            spec_launches: AtomicU64::new(0),
            spec_wins: AtomicU64::new(0),
            deadline_aborts: AtomicU64::new(0),
            cancelled_aborts: AtomicU64::new(0),
        })
    }

    /// The policy in force.
    pub fn policy(&self) -> &SupervisorPolicy {
        &self.policy
    }

    /// A clone of the run's cancel token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Time since supervision started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Poll for a stop condition. Cancellation wins over the deadline when
    /// both hold (it is the more explicit signal). Executors call this at
    /// every task boundary; the first worker observing a stop also counts
    /// the abort (once per observation — callers record the abort exactly
    /// once per run via [`Supervisor::record_abort`]).
    pub fn check(&self) -> Option<StopReason> {
        if self.cancel.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        match self.policy.deadline {
            Some(d) if self.started.elapsed() >= d => Some(StopReason::Deadline),
            _ => None,
        }
    }

    /// Count one aborted run (called by the executor once it commits to
    /// surfacing the stop as an error).
    pub fn record_abort(&self, reason: StopReason) {
        match reason {
            StopReason::Deadline => self.deadline_aborts.fetch_add(1, Ordering::Relaxed),
            StopReason::Cancelled => self.cancelled_aborts.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Try to charge one re-execution against the run-wide retry budget;
    /// `false` means the budget is spent and the caller must give up with a
    /// typed error instead of retrying.
    pub fn try_consume_retry(&self) -> bool {
        loop {
            let used = self.retries_used.load(Ordering::Relaxed);
            if used >= u64::from(self.policy.retry_budget) {
                return false;
            }
            if self
                .retries_used
                .compare_exchange(used, used + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// The worker-keyed quarantine tracker.
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// Count one speculative launch.
    pub fn record_speculation_launch(&self) {
        self.spec_launches.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one speculation win (the clone's result landed first).
    pub fn record_speculation_win(&self) {
        self.spec_wins.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the run's supervision counters.
    pub fn stats(&self) -> SuperviseStats {
        SuperviseStats {
            speculative_launches: self.spec_launches.load(Ordering::Relaxed),
            speculation_wins: self.spec_wins.load(Ordering::Relaxed),
            quarantine_trips: self.quarantine.trips(),
            quarantine_probes: self.quarantine.probes(),
            quarantine_readmissions: self.quarantine.readmissions(),
            deadline_aborts: self.deadline_aborts.load(Ordering::Relaxed),
            cancelled_aborts: self.cancelled_aborts.load(Ordering::Relaxed),
            retries_consumed: self.retries_used.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Deadline => write!(f, "deadline exceeded"),
            StopReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_sticky_and_shared() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_check_fires_after_budget() {
        let sup = Supervisor::new(SupervisorPolicy::with_deadline(Duration::ZERO));
        assert_eq!(sup.check(), Some(StopReason::Deadline));
        let sup = Supervisor::new(SupervisorPolicy::with_deadline(Duration::from_secs(3600)));
        assert_eq!(sup.check(), None);
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let sup = Supervisor::new(SupervisorPolicy::with_deadline(Duration::ZERO));
        sup.cancel_token().cancel();
        assert_eq!(sup.check(), Some(StopReason::Cancelled));
    }

    #[test]
    fn retry_budget_is_finite() {
        let sup = Supervisor::new(SupervisorPolicy {
            retry_budget: 2,
            ..SupervisorPolicy::default()
        });
        assert!(sup.try_consume_retry());
        assert!(sup.try_consume_retry());
        assert!(!sup.try_consume_retry());
        assert_eq!(sup.stats().retries_consumed, 2);
    }

    #[test]
    fn speculation_cutoff_is_adaptive() {
        let pol = SpeculationPolicy {
            enabled: true,
            min_samples: 3,
            percentile: 50.0,
            multiplier: 2.0,
            floor: Duration::from_nanos(10),
        };
        assert_eq!(pol.cutoff_nanos(&[100, 200]), None, "too few samples");
        // Median of {100, 200, 300} = 200; ×2 = 400.
        assert_eq!(pol.cutoff_nanos(&[300, 100, 200]), Some(400));
        let floored = SpeculationPolicy {
            floor: Duration::from_micros(1),
            ..pol
        };
        assert_eq!(floored.cutoff_nanos(&[1, 1, 1]), Some(1_000), "floor wins");
        assert_eq!(
            SpeculationPolicy::disabled().cutoff_nanos(&[1, 2, 3, 4]),
            None
        );
    }

    #[test]
    fn breaker_trips_after_threshold_in_window() {
        let q = Quarantine::new(
            2,
            QuarantinePolicy {
                enabled: true,
                max_failures: 3,
                window: 4,
                cooldown: 5,
            },
        );
        q.record(1, true);
        q.record(1, true);
        assert!(!q.is_quarantined(1), "two failures under threshold");
        q.record(1, true);
        assert!(q.is_quarantined(1), "three failures trip the breaker");
        assert!(!q.is_quarantined(0), "other units unaffected");
        assert_eq!(q.trips(), 1);
        assert_eq!(q.quarantined_units(), vec![1]);
    }

    #[test]
    fn window_slides_old_failures_out() {
        let q = Quarantine::new(
            1,
            QuarantinePolicy {
                enabled: true,
                max_failures: 3,
                window: 3,
                cooldown: 5,
            },
        );
        // Two failures, then successes push them out of the window.
        q.record(0, true);
        q.record(0, true);
        q.record(0, false);
        q.record(0, false);
        q.record(0, true);
        assert!(!q.is_quarantined(0), "window slid: only 1 failure in last 3");
    }

    #[test]
    fn half_open_probe_readmits_or_retrips() {
        let pol = QuarantinePolicy {
            enabled: true,
            max_failures: 2,
            window: 4,
            cooldown: 3,
        };
        // Readmission path.
        let q = Quarantine::new(2, pol);
        q.record(0, true);
        q.record(0, true);
        assert!(q.is_quarantined(0));
        // Other units doing work advances the outcome clock.
        q.record(1, false);
        q.record(1, false);
        q.record(1, false);
        assert!(!q.is_quarantined(0), "cooldown passed: half-open");
        assert_eq!(q.probes(), 1);
        q.record(0, false);
        assert!(!q.is_quarantined(0), "probe succeeded: readmitted");
        assert_eq!(q.readmissions(), 1);

        // Re-trip path.
        let q = Quarantine::new(2, pol);
        q.record(0, true);
        q.record(0, true);
        q.record(1, false);
        q.record(1, false);
        q.record(1, false);
        assert!(!q.is_quarantined(0), "half-open probe allowed");
        q.record(0, true);
        assert!(q.is_quarantined(0), "probe failed: breaker re-trips");
        assert_eq!(q.trips(), 2);
    }

    #[test]
    fn disabled_quarantine_never_trips() {
        let q = Quarantine::new(1, QuarantinePolicy::disabled());
        for _ in 0..10 {
            q.record(0, true);
        }
        assert!(!q.is_quarantined(0));
        assert!(q.quarantined_units().is_empty());
    }
}
