//! Typed runtime errors.
//!
//! The seed runtime turned every bad input into a process abort
//! (`panic!`/`assert!`). Fault tolerance needs failures to be *values* the
//! scheduler can react to — a trapped remote read that times out must reach
//! the retry loop, and a dead node must reach [`crate::SchedulePlan::replan`]
//! — so the runtime's fallible paths all return `Result<_, RuntimeError>`.

use crate::distarray::Location;
use std::fmt;

/// An error surfaced by the distributed runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// A partition was requested over zero locations.
    NoLocations,
    /// An index was outside the logical array bounds.
    IndexOutOfBounds {
        /// Attempted index.
        index: usize,
        /// Logical length.
        len: usize,
    },
    /// The location owning the requested data is permanently down.
    NodeFailed {
        /// The failed machine.
        node: usize,
    },
    /// A trapped remote read kept failing after exhausting its retries.
    ReadTimeout {
        /// The index being fetched.
        index: usize,
        /// The owning location the fetch targeted.
        owner: Location,
        /// How many attempts were made (first try + retries).
        attempts: u32,
    },
    /// A trapped remote write kept failing after exhausting its retries.
    WriteTimeout {
        /// The index being written.
        index: usize,
        /// The owning location the write targeted.
        owner: Location,
        /// How many attempts were made (first try + retries).
        attempts: u32,
    },
    /// A cluster message send kept being dropped after exhausting its
    /// retries (shuffle / staging / recovery traffic).
    SendTimeout {
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// How many attempts were made (first try + retries).
        attempts: u32,
    },
    /// A replan was requested but no surviving nodes remain.
    NoSurvivors,
    /// A replan had survivors, but every one of them is quarantined by the
    /// circuit breaker, so orphaned work has nowhere eligible to go.
    AllQuarantined {
        /// How many nodes survived (all of them quarantined).
        survivors: usize,
    },
    /// A replan named a node outside the cluster.
    UnknownNode {
        /// The out-of-range node index.
        node: usize,
        /// Cluster size.
        nodes: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoLocations => write!(f, "at least one location required"),
            RuntimeError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds (len {len})")
            }
            RuntimeError::NodeFailed { node } => write!(f, "node {node} has failed"),
            RuntimeError::ReadTimeout {
                index,
                owner,
                attempts,
            } => write!(
                f,
                "remote read of index {index} from node {}/socket {} failed after {attempts} attempts",
                owner.node, owner.socket
            ),
            RuntimeError::WriteTimeout {
                index,
                owner,
                attempts,
            } => write!(
                f,
                "remote write of index {index} to node {}/socket {} failed after {attempts} attempts",
                owner.node, owner.socket
            ),
            RuntimeError::SendTimeout { from, to, attempts } => write!(
                f,
                "cluster send from node {from} to node {to} dropped after {attempts} attempts"
            ),
            RuntimeError::NoSurvivors => {
                write!(f, "cannot replan: every node of the cluster has failed")
            }
            RuntimeError::AllQuarantined { survivors } => {
                write!(
                    f,
                    "cannot replan: all {survivors} surviving nodes are quarantined"
                )
            }
            RuntimeError::UnknownNode { node, nodes } => {
                write!(f, "node {node} does not exist in a {nodes}-node cluster")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_out_of_bounds() {
        let e = RuntimeError::IndexOutOfBounds { index: 5, len: 1 };
        assert!(e.to_string().contains("out of bounds"));
    }

    #[test]
    fn error_trait_object_safe() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(RuntimeError::NoSurvivors);
    }
}
