//! The partitioned data plane (§4 → §5).
//!
//! [`RegionMap`] partitions an index space `[0, len)` into *execution
//! regions* — simulated sockets derived from [`MachineSpec`] — with
//! block-aligned boundaries. Co-partitioned collections share one map by
//! `Arc`, which is exactly the paper's "boundary map": aligned reads on any
//! of them stay within the same region.
//!
//! [`ShardedArray`] holds one owned shard per region plus the shared map.
//! The three §4.2 placements are materialized here:
//!
//! * **aligned / halo** — [`ShardedArray::halo`] copies exactly the
//!   elements a region's tasks read: its own slice plus `lo`/`hi` extra
//!   elements across each boundary (clamped at the ends);
//! * **broadcast** — [`ShardedArray::replica`] materializes one full
//!   replica (one per region in a real multi-socket run);
//! * **fallback** — reads that cannot be localized route through
//!   [`ShardedArray::get`], which walks the region directory at runtime
//!   (the counted "runtime data movement" path).
//!
//! In this reproduction's single-address-space embodiment the executor
//! reads shared `Arc` buffers (placement is free on one memory region), so
//! the shard layer is exercised directly by its tests, by the locality
//! bench's data staging, and by `fig7_numa --measured`; the *decisions* —
//! which collection gets which placement, which region owns which task —
//! drive the real executor through [`ProgramPlan`].

use crate::machine::MachineSpec;
use std::sync::Arc;

pub use dmll_analysis::plan::{export as export_plan, LoopPlan, Placement, ProgramPlan};

/// Region boundaries are aligned to the batched tier's block width so a
/// block-granular task almost always falls entirely inside one region.
pub const REGION_ALIGN: i64 = 1024;

/// A contiguous, block-aligned partition of `[0, len)` into execution
/// regions. Cheap to share: collections co-partitioned by the analysis hold
/// the same `Arc<RegionMap>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionMap {
    len: i64,
    bounds: Vec<(i64, i64)>,
}

impl RegionMap {
    /// Split `[0, len)` into `regions` block-aligned contiguous pieces.
    /// Blocks are dealt as evenly as possible; trailing regions may be
    /// empty when there are fewer blocks than regions.
    pub fn new(len: i64, regions: usize) -> RegionMap {
        let regions = regions.max(1);
        let len = len.max(0);
        let blocks = (len + REGION_ALIGN - 1) / REGION_ALIGN;
        let base = blocks / regions as i64;
        let rem = (blocks % regions as i64) as usize;
        let mut bounds = Vec::with_capacity(regions);
        let mut start = 0i64;
        for r in 0..regions {
            let nb = base + i64::from(r < rem);
            let end = (start + nb * REGION_ALIGN).min(len);
            bounds.push((start, end));
            start = end;
        }
        RegionMap { len, bounds }
    }

    /// The map for a `threads`-wide run on `spec`: one region per socket
    /// the run occupies (`min(threads, sockets)`).
    pub fn for_machine(spec: &MachineSpec, threads: usize, len: i64) -> RegionMap {
        RegionMap::new(len, spec.execution_regions(threads))
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.bounds.len()
    }

    /// Total length of the partitioned index space.
    pub fn len(&self) -> i64 {
        self.len
    }

    /// True when the index space is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Half-open bounds of region `r`.
    pub fn bounds(&self, r: usize) -> (i64, i64) {
        self.bounds[r]
    }

    /// The region owning index `i` (indices past the end map to the last
    /// region, so task ranges clamped to `len` still resolve).
    pub fn region_of(&self, i: i64) -> usize {
        let r = self.bounds.partition_point(|&(_, end)| end <= i);
        r.min(self.bounds.len() - 1)
    }
}

/// A read-only window over one region's data: the shard plus its halo.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardView<T> {
    /// Global index of the first element in `data`.
    pub offset: i64,
    /// The materialized elements.
    pub data: Vec<T>,
}

impl<T> ShardView<T> {
    /// The element at *global* index `i`, if this view holds it.
    pub fn get(&self, i: i64) -> Option<&T> {
        usize::try_from(i - self.offset).ok().and_then(|k| self.data.get(k))
    }
}

/// An SoA collection split into per-region owned shards sharing one
/// boundary map.
#[derive(Clone, Debug)]
pub struct ShardedArray<T> {
    map: Arc<RegionMap>,
    /// Elements of region `r` per shard; `scale` elements per index.
    shards: Vec<Arc<Vec<T>>>,
    /// Elements per partitioned index (1 for flat arrays, `cols` for a
    /// row-partitioned matrix stored flat).
    scale: usize,
}

impl<T: Clone> ShardedArray<T> {
    /// Split `data` (one element per index) on `map`'s boundaries.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` disagrees with the map.
    pub fn split(data: &[T], map: Arc<RegionMap>) -> ShardedArray<T> {
        ShardedArray::split_scaled(data, map, 1)
    }

    /// Split `data` holding `scale` elements per partitioned index (e.g. a
    /// row-major matrix with `scale = cols`, co-partitioned with its row
    /// space). The resulting collection shares `map` — the boundary map —
    /// with every other collection split on it.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != map.len() * scale`.
    pub fn split_scaled(data: &[T], map: Arc<RegionMap>, scale: usize) -> ShardedArray<T> {
        assert!(scale >= 1, "scale must be at least 1");
        assert_eq!(
            data.len() as i64,
            map.len() * scale as i64,
            "data length disagrees with the region map"
        );
        let shards = (0..map.regions())
            .map(|r| {
                let (s, e) = map.bounds(r);
                Arc::new(data[s as usize * scale..e as usize * scale].to_vec())
            })
            .collect();
        ShardedArray { map, shards, scale }
    }

    /// The shared boundary map.
    pub fn region_map(&self) -> &Arc<RegionMap> {
        &self.map
    }

    /// Region `r`'s owned shard.
    pub fn shard(&self, r: usize) -> &Arc<Vec<T>> {
        &self.shards[r]
    }

    /// Materialize exactly what region `r`'s aligned tasks read: its own
    /// slice plus `lo` indices before and `hi` after (clamped to the
    /// collection). Halo elements are copied from the neighbouring shards —
    /// no access to a shared backing array.
    pub fn halo(&self, r: usize, lo: i64, hi: i64) -> ShardView<T> {
        let (s, e) = self.map.bounds(r);
        let start = (s - lo.max(0)).max(0);
        let end = (e + hi.max(0)).min(self.map.len());
        let mut data = Vec::with_capacity(((end - start).max(0) as usize) * self.scale);
        let mut i = start;
        while i < end {
            let owner = self.map.region_of(i);
            let (os, oe) = self.map.bounds(owner);
            let take_to = oe.min(end);
            let shard = &self.shards[owner];
            data.extend_from_slice(
                &shard[(i - os) as usize * self.scale..(take_to - os) as usize * self.scale],
            );
            i = take_to.max(i + 1);
        }
        ShardView {
            offset: start * self.scale as i64,
            data,
        }
    }

    /// One full broadcast replica (what each region receives for a
    /// `Const`/`All` stencil).
    pub fn replica(&self) -> Arc<Vec<T>> {
        Arc::new(self.gather())
    }

    /// Reassemble the collection in index order.
    pub fn gather(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.map.len() as usize * self.scale);
        for shard in &self.shards {
            out.extend_from_slice(shard);
        }
        out
    }

    /// The fallback path: resolve a single *element* index through the
    /// region directory at runtime ("runtime data movement").
    pub fn get(&self, i: i64) -> Option<&T> {
        if i < 0 || i >= self.map.len() * self.scale as i64 {
            return None;
        }
        let idx = i / self.scale as i64;
        let r = self.map.region_of(idx);
        let (s, _) = self.map.bounds(r);
        self.shards[r].get((i - s * self.scale as i64) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_map_covers_exactly_once() {
        for (len, regions) in [(0i64, 3), (10, 4), (4096, 4), (5000, 4), (100_000, 3), (1024, 1)] {
            let m = RegionMap::new(len, regions);
            assert_eq!(m.regions(), regions);
            let mut prev = 0;
            for r in 0..regions {
                let (s, e) = m.bounds(r);
                assert_eq!(s, prev, "contiguous at region {r}");
                assert!(e >= s);
                assert!(
                    s % REGION_ALIGN == 0 || s == len,
                    "region boundaries are block-aligned (or the clamped end)"
                );
                prev = e;
            }
            assert_eq!(prev, len.max(0), "covers the whole space");
            for i in 0..len {
                let r = m.region_of(i);
                let (s, e) = m.bounds(r);
                assert!(s <= i && i < e, "index {i} routed to region {r}");
            }
        }
    }

    #[test]
    fn machine_regions_default_min_threads_sockets() {
        let numa = MachineSpec::numa_4x12();
        assert_eq!(numa.execution_regions(1), 1);
        assert_eq!(numa.execution_regions(4), 4);
        assert_eq!(numa.execution_regions(48), 4);
        let ec2 = MachineSpec::m1_xlarge();
        assert_eq!(ec2.execution_regions(4), 1);
    }

    #[test]
    fn split_gather_roundtrip() {
        let data: Vec<i64> = (0..5000).collect();
        let map = Arc::new(RegionMap::new(5000, 4));
        let sa = ShardedArray::split(&data, map.clone());
        assert_eq!(sa.gather(), data);
        assert_eq!(*sa.replica(), data);
        for i in [0i64, 1023, 1024, 4999] {
            assert_eq!(sa.get(i), Some(&i));
        }
        assert_eq!(sa.get(5000), None);
        assert_eq!(sa.get(-1), None);
    }

    #[test]
    fn halo_materializes_exactly_the_needed_window() {
        let data: Vec<i64> = (0..4096).collect();
        let map = Arc::new(RegionMap::new(4096, 4));
        let sa = ShardedArray::split(&data, map);
        // Interior region with a symmetric halo of 2.
        let v = sa.halo(1, 2, 2);
        assert_eq!(v.offset, 1022);
        assert_eq!(v.data, (1022..2050).collect::<Vec<i64>>());
        assert_eq!(v.get(1022), Some(&1022));
        assert_eq!(v.get(2049), Some(&2049));
        assert_eq!(v.get(1021), None);
        assert_eq!(v.get(2050), None);
        // Edge regions clamp at the collection bounds.
        let first = sa.halo(0, 5, 1);
        assert_eq!(first.offset, 0);
        assert_eq!(first.data.len(), 1025);
        let last = sa.halo(3, 1, 5);
        assert_eq!(last.offset, 3071);
        assert_eq!(last.data, (3071..4096).collect::<Vec<i64>>());
    }

    #[test]
    fn copartitioned_collections_share_one_boundary_map() {
        let n = 3000i64;
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<i64> = (0..n).rev().collect();
        let map = Arc::new(RegionMap::new(n, 3));
        let sx = ShardedArray::split(&xs, map.clone());
        let sy = ShardedArray::split(&ys, map.clone());
        assert!(Arc::ptr_eq(sx.region_map(), sy.region_map()));
        // Aligned reads resolve in the same region on both collections.
        for i in [0i64, 1024, 2047, 2999] {
            let r = map.region_of(i);
            let (s, _) = map.bounds(r);
            assert_eq!(sx.shard(r)[(i - s) as usize], i as f64);
            assert_eq!(sy.shard(r)[(i - s) as usize], n - 1 - i);
        }
    }

    #[test]
    fn scaled_split_copartitions_matrix_rows() {
        let rows = 2048i64;
        let cols = 3usize;
        let data: Vec<i64> = (0..rows * cols as i64).collect();
        let map = Arc::new(RegionMap::new(rows, 2));
        let sm = ShardedArray::split_scaled(&data, map.clone(), cols);
        assert_eq!(sm.gather(), data);
        // Row 1024 lives in region 1, all three of its elements together.
        let (s, _) = map.bounds(1);
        let shard = sm.shard(1);
        for c in 0..cols {
            assert_eq!(shard[(1024 - s) as usize * cols + c], 1024 * cols as i64 + c as i64);
        }
        // The element-level fallback path agrees.
        for i in [0i64, 3071, 3072, rows * cols as i64 - 1] {
            assert_eq!(sm.get(i), Some(&i));
        }
    }
}
