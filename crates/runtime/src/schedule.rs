//! Hierarchical scheduling (§5, *Hierarchical Heterogeneous Execution*).
//!
//! "A multiloop is agnostic to whether it runs over the entire loop bounds
//! or a subset of the loop bounds": the cluster master partitions a loop
//! into per-machine chunks — choosing each machine's range by combining the
//! input's access stencil with the input's directory so reads stay local —
//! and each machine further splits its chunk across sockets and cores (with
//! dynamic load balancing via over-decomposition).

use crate::distarray::Location;
use crate::machine::ClusterSpec;

/// A unit of scheduled work: a contiguous index sub-range on one core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Which machine.
    pub node: usize,
    /// Which socket within the machine.
    pub socket: usize,
    /// Which core within the socket.
    pub core: usize,
    /// Half-open iteration range.
    pub range: (i64, i64),
}

/// The full placement of one multiloop.
#[derive(Clone, Debug, Default)]
pub struct SchedulePlan {
    /// All chunks, covering `0..iterations` exactly once.
    pub chunks: Vec<Chunk>,
    /// True when node ranges were derived from a data directory (moving
    /// computation to the data) rather than an even split.
    pub aligned_to_data: bool,
}

impl SchedulePlan {
    /// Number of distinct cores used.
    pub fn cores_used(&self) -> usize {
        use std::collections::BTreeSet;
        self.chunks
            .iter()
            .map(|c| (c.node, c.socket, c.core))
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Verify full, non-overlapping coverage of `0..n` (test helper).
    pub fn covers(&self, n: i64) -> bool {
        let mut ranges: Vec<(i64, i64)> = self.chunks.iter().map(|c| c.range).collect();
        ranges.sort_unstable();
        let mut pos = 0;
        for (s, e) in ranges {
            if s != pos || e < s {
                return false;
            }
            pos = e;
        }
        pos == n
    }
}

/// Partition `iterations` over a cluster.
///
/// When `directory` is provided (ranges of the loop's interval-accessed
/// partitioned input, per node), each machine receives exactly the
/// iterations whose reads are node-local. Otherwise iterations are split
/// evenly. Within a machine, iterations are split across sockets, then
/// cores, with `chunks_per_core`-way over-decomposition for dynamic load
/// balancing (`chunks_per_core = 1` disables it).
pub fn plan_loop(
    iterations: i64,
    cluster: &ClusterSpec,
    directory: Option<&[(i64, i64, usize)]>,
    chunks_per_core: usize,
) -> SchedulePlan {
    let mut plan = SchedulePlan::default();
    if iterations <= 0 {
        return plan;
    }
    // Node-level ranges.
    let node_ranges: Vec<(usize, i64, i64)> = match directory {
        Some(dir) => {
            plan.aligned_to_data = true;
            dir.iter()
                .map(|&(s, e, node)| (node, s.max(0), e.min(iterations)))
                .filter(|&(_, s, e)| s < e)
                .collect()
        }
        None => {
            let n = cluster.nodes as i64;
            let base = iterations / n;
            let extra = iterations % n;
            let mut out = Vec::new();
            let mut pos = 0;
            for node in 0..cluster.nodes {
                let size = base + i64::from((node as i64) < extra);
                if size > 0 {
                    out.push((node, pos, pos + size));
                }
                pos += size;
            }
            out
        }
    };
    // Machine level: sockets → cores → over-decomposed chunks.
    let spec = cluster.node;
    for (node, start, end) in node_ranges {
        let total = end - start;
        let sockets = spec.sockets as i64;
        for s in 0..spec.sockets {
            let s_start = start + total * s as i64 / sockets;
            let s_end = start + total * (s as i64 + 1) / sockets;
            let s_total = s_end - s_start;
            if s_total <= 0 {
                continue;
            }
            let slots = (spec.cores_per_socket * chunks_per_core.max(1)) as i64;
            for k in 0..slots {
                let c_start = s_start + s_total * k / slots;
                let c_end = s_start + s_total * (k + 1) / slots;
                if c_start < c_end {
                    plan.chunks.push(Chunk {
                        node,
                        socket: s,
                        core: (k as usize) % spec.cores_per_socket,
                        range: (c_start, c_end),
                    });
                }
            }
        }
    }
    plan
}

/// Derive a node-level directory from a [`crate::DistArray`] directory,
/// mapping element ranges to owning nodes (socket detail dropped).
pub fn node_directory(dir: &[(usize, usize, Location)]) -> Vec<(i64, i64, usize)> {
    let mut out: Vec<(i64, i64, usize)> = Vec::new();
    for &(s, e, loc) in dir {
        match out.last_mut() {
            Some(last) if last.2 == loc.node && last.1 == s as i64 => last.1 = e as i64,
            _ => out.push((s as i64, e as i64, loc.node)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;

    #[test]
    fn even_split_covers_everything() {
        let cluster = ClusterSpec::amazon_20();
        let plan = plan_loop(1_000_003, &cluster, None, 1);
        assert!(plan.covers(1_000_003));
        assert_eq!(plan.cores_used(), cluster.total_cores());
        assert!(!plan.aligned_to_data);
    }

    #[test]
    fn directory_alignment_moves_computation_to_data() {
        let cluster = ClusterSpec::gpu_4();
        // Skewed ownership: node 0 owns much more.
        let dir = vec![
            (0, 700, 0usize),
            (700, 800, 1),
            (800, 900, 2),
            (900, 1000, 3),
        ];
        let plan = plan_loop(1000, &cluster, Some(&dir), 1);
        assert!(plan.aligned_to_data);
        assert!(plan.covers(1000));
        let node0: i64 = plan
            .chunks
            .iter()
            .filter(|c| c.node == 0)
            .map(|c| c.range.1 - c.range.0)
            .sum();
        assert_eq!(node0, 700, "node 0 processes exactly its local range");
    }

    #[test]
    fn over_decomposition_multiplies_chunks() {
        let cluster = ClusterSpec::single(MachineSpec::numa_4x12());
        let p1 = plan_loop(48_000, &cluster, None, 1);
        let p4 = plan_loop(48_000, &cluster, None, 4);
        assert!(p4.chunks.len() > p1.chunks.len() * 3);
        assert!(p4.covers(48_000));
        assert_eq!(p1.cores_used(), 48);
        assert_eq!(p4.cores_used(), 48);
    }

    #[test]
    fn tiny_loops_do_not_overassign() {
        let cluster = ClusterSpec::single(MachineSpec::numa_4x12());
        let plan = plan_loop(3, &cluster, None, 1);
        assert!(plan.covers(3));
        assert!(plan.cores_used() <= 3);
    }

    #[test]
    fn empty_loop_empty_plan() {
        let cluster = ClusterSpec::amazon_20();
        let plan = plan_loop(0, &cluster, None, 1);
        assert!(plan.chunks.is_empty());
        assert!(plan.covers(0));
    }

    #[test]
    fn node_directory_merges_sockets() {
        let dir = vec![
            (0usize, 100usize, Location { node: 0, socket: 0 }),
            (100, 200, Location { node: 0, socket: 1 }),
            (200, 300, Location { node: 1, socket: 0 }),
        ];
        let nd = node_directory(&dir);
        assert_eq!(nd, vec![(0, 200, 0), (200, 300, 1)]);
    }
}
