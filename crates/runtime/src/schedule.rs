//! Hierarchical scheduling (§5, *Hierarchical Heterogeneous Execution*).
//!
//! "A multiloop is agnostic to whether it runs over the entire loop bounds
//! or a subset of the loop bounds": the cluster master partitions a loop
//! into per-machine chunks — choosing each machine's range by combining the
//! input's access stencil with the input's directory so reads stay local —
//! and each machine further splits its chunk across sockets and cores (with
//! dynamic load balancing via over-decomposition).

use crate::distarray::Location;
use crate::error::RuntimeError;
use crate::machine::ClusterSpec;

/// A unit of scheduled work: a contiguous index sub-range on one core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Which machine.
    pub node: usize,
    /// Which socket within the machine.
    pub socket: usize,
    /// Which core within the socket.
    pub core: usize,
    /// Half-open iteration range.
    pub range: (i64, i64),
}

/// The full placement of one multiloop.
#[derive(Clone, Debug, Default)]
pub struct SchedulePlan {
    /// All chunks, covering `0..iterations` exactly once.
    pub chunks: Vec<Chunk>,
    /// True when node ranges were derived from a data directory (moving
    /// computation to the data) rather than an even split.
    pub aligned_to_data: bool,
    /// How many chunks were moved off failed nodes by [`SchedulePlan::replan`].
    pub reassigned_chunks: usize,
}

impl SchedulePlan {
    /// Number of distinct cores used.
    pub fn cores_used(&self) -> usize {
        use std::collections::BTreeSet;
        self.chunks
            .iter()
            .map(|c| (c.node, c.socket, c.core))
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Re-assign every chunk placed on a failed node across the surviving
    /// nodes. Because a multiloop "is agnostic to whether it runs over the
    /// entire loop bounds or a subset of the loop bounds" (§5), a dead
    /// node's iteration ranges can simply be re-executed elsewhere: ranges
    /// are preserved exactly, so the replanned schedule covers the same
    /// iteration space as the original (no lineage machinery needed).
    ///
    /// Placement of orphaned chunks prefers the directory when one is
    /// given: a chunk whose iteration range is owned by a surviving node's
    /// data moves there ("move the computation to the data", even during
    /// recovery). Chunks with no surviving owner round-robin over the
    /// survivors, cycling through each survivor's sockets and cores so
    /// recovered work spreads instead of piling onto one core.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::UnknownNode`] when `failed_nodes` names a node the
    ///   cluster does not have;
    /// * [`RuntimeError::NoSurvivors`] when every node failed. Callers that
    ///   can re-run locally should degrade via
    ///   [`crate::ClusterSpec::degrade`] instead of treating this as fatal.
    pub fn replan(
        &self,
        failed_nodes: &[usize],
        cluster: &ClusterSpec,
        directory: Option<&[(i64, i64, usize)]>,
    ) -> Result<SchedulePlan, RuntimeError> {
        self.replan_avoiding(failed_nodes, &[], cluster, directory)
    }

    /// [`SchedulePlan::replan`] with a quarantine list: nodes in
    /// `quarantined` are alive (they keep the chunks they already own) but
    /// are excluded as *targets* for orphaned chunks — the circuit breaker
    /// has tripped on them, so recovery must not pile more work onto a node
    /// that keeps failing. Directory alignment is also skipped when the
    /// data's surviving owner is quarantined.
    ///
    /// # Errors
    ///
    /// Everything [`SchedulePlan::replan`] returns, plus
    /// [`RuntimeError::AllQuarantined`] when nodes survive but every one of
    /// them is quarantined (callers should wait for a half-open probe to
    /// readmit one, or escalate).
    pub fn replan_avoiding(
        &self,
        failed_nodes: &[usize],
        quarantined: &[usize],
        cluster: &ClusterSpec,
        directory: Option<&[(i64, i64, usize)]>,
    ) -> Result<SchedulePlan, RuntimeError> {
        for &node in failed_nodes {
            if node >= cluster.nodes {
                return Err(RuntimeError::UnknownNode {
                    node,
                    nodes: cluster.nodes,
                });
            }
        }
        let alive: Vec<usize> = (0..cluster.nodes)
            .filter(|n| !failed_nodes.contains(n))
            .collect();
        if alive.is_empty() {
            return Err(RuntimeError::NoSurvivors);
        }
        let survivors: Vec<usize> = alive
            .iter()
            .copied()
            .filter(|n| !quarantined.contains(n))
            .collect();
        if survivors.is_empty() {
            return Err(RuntimeError::AllQuarantined {
                survivors: alive.len(),
            });
        }
        let is_dead = |node: usize| failed_nodes.contains(&node);
        let mut out = SchedulePlan {
            chunks: Vec::with_capacity(self.chunks.len()),
            aligned_to_data: self.aligned_to_data,
            reassigned_chunks: 0,
        };
        // Deterministic spread of orphaned chunks: a slot cursor walking
        // survivor × socket × core positions.
        let spec = cluster.node;
        let slots_per_node = spec.sockets * spec.cores_per_socket;
        let mut cursor = 0usize;
        for chunk in &self.chunks {
            if !is_dead(chunk.node) {
                out.chunks.push(*chunk);
                continue;
            }
            out.reassigned_chunks += 1;
            // Directory alignment first: the surviving owner of the data.
            let owner = directory.and_then(|dir| {
                dir.iter()
                    .find(|&&(s, e, _)| s <= chunk.range.0 && chunk.range.1 <= e)
                    .map(|&(_, _, node)| node)
                    .filter(|&node| {
                        !is_dead(node) && node < cluster.nodes && !quarantined.contains(&node)
                    })
            });
            let (node, socket, core) = match owner {
                Some(node) => {
                    // Keep the chunk's socket/core shape on the new node.
                    let socket = chunk.socket % spec.sockets;
                    let core = chunk.core % spec.cores_per_socket;
                    (node, socket, core)
                }
                None => {
                    let slot = cursor;
                    cursor += 1;
                    // Nodes first, then slots within a node, so recovered
                    // work spreads across machines before doubling up.
                    let node = survivors[slot % survivors.len()];
                    let within = slot / survivors.len() % slots_per_node;
                    (
                        node,
                        within / spec.cores_per_socket,
                        within % spec.cores_per_socket,
                    )
                }
            };
            if owner.is_none() && self.aligned_to_data {
                out.aligned_to_data = false;
            }
            out.chunks.push(Chunk {
                node,
                socket,
                core,
                range: chunk.range,
            });
        }
        Ok(out)
    }

    /// Verify full, non-overlapping coverage of `0..n` (test helper).
    pub fn covers(&self, n: i64) -> bool {
        let mut ranges: Vec<(i64, i64)> = self.chunks.iter().map(|c| c.range).collect();
        ranges.sort_unstable();
        let mut pos = 0;
        for (s, e) in ranges {
            if s != pos || e < s {
                return false;
            }
            pos = e;
        }
        pos == n
    }
}

/// Partition `iterations` over a cluster.
///
/// When `directory` is provided (ranges of the loop's interval-accessed
/// partitioned input, per node), each machine receives exactly the
/// iterations whose reads are node-local. Otherwise iterations are split
/// evenly. Within a machine, iterations are split across sockets, then
/// cores, with `chunks_per_core`-way over-decomposition for dynamic load
/// balancing (`chunks_per_core = 1` disables it).
pub fn plan_loop(
    iterations: i64,
    cluster: &ClusterSpec,
    directory: Option<&[(i64, i64, usize)]>,
    chunks_per_core: usize,
) -> SchedulePlan {
    let mut plan = SchedulePlan::default();
    if iterations <= 0 {
        return plan;
    }
    // Node-level ranges.
    let node_ranges: Vec<(usize, i64, i64)> = match directory {
        Some(dir) => {
            plan.aligned_to_data = true;
            dir.iter()
                .map(|&(s, e, node)| (node, s.max(0), e.min(iterations)))
                .filter(|&(_, s, e)| s < e)
                .collect()
        }
        None => {
            let n = cluster.nodes as i64;
            let base = iterations / n;
            let extra = iterations % n;
            let mut out = Vec::new();
            let mut pos = 0;
            for node in 0..cluster.nodes {
                let size = base + i64::from((node as i64) < extra);
                if size > 0 {
                    out.push((node, pos, pos + size));
                }
                pos += size;
            }
            out
        }
    };
    // Machine level: sockets → cores → over-decomposed chunks.
    let spec = cluster.node;
    for (node, start, end) in node_ranges {
        let total = end - start;
        let sockets = spec.sockets as i64;
        for s in 0..spec.sockets {
            let s_start = start + total * s as i64 / sockets;
            let s_end = start + total * (s as i64 + 1) / sockets;
            let s_total = s_end - s_start;
            if s_total <= 0 {
                continue;
            }
            let slots = (spec.cores_per_socket * chunks_per_core.max(1)) as i64;
            for k in 0..slots {
                let c_start = s_start + s_total * k / slots;
                let c_end = s_start + s_total * (k + 1) / slots;
                if c_start < c_end {
                    plan.chunks.push(Chunk {
                        node,
                        socket: s,
                        core: (k as usize) % spec.cores_per_socket,
                        range: (c_start, c_end),
                    });
                }
            }
        }
    }
    plan
}

/// Assign `workers` threads to `regions` execution regions, contiguously
/// and as evenly as possible (the same shape `RegionMap` uses for data, so
/// a worker's tasks live in its own region by construction). With fewer
/// workers than regions, later regions have no dedicated worker and their
/// tasks are reached by cross-region stealing.
pub fn worker_regions(workers: usize, regions: usize) -> Vec<usize> {
    let regions = regions.max(1);
    let base = workers / regions;
    let rem = workers % regions;
    let mut out = Vec::with_capacity(workers);
    for r in 0..regions {
        let n = base + usize::from(r < rem);
        out.extend(std::iter::repeat_n(r, n));
    }
    debug_assert_eq!(out.len(), workers);
    out
}

/// Derive a node-level directory from a [`crate::DistArray`] directory,
/// mapping element ranges to owning nodes (socket detail dropped).
pub fn node_directory(dir: &[(usize, usize, Location)]) -> Vec<(i64, i64, usize)> {
    let mut out: Vec<(i64, i64, usize)> = Vec::new();
    for &(s, e, loc) in dir {
        match out.last_mut() {
            Some(last) if last.2 == loc.node && last.1 == s as i64 => last.1 = e as i64,
            _ => out.push((s as i64, e as i64, loc.node)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;

    #[test]
    fn worker_regions_contiguous_and_even() {
        assert_eq!(worker_regions(4, 4), vec![0, 1, 2, 3]);
        assert_eq!(worker_regions(6, 4), vec![0, 0, 1, 1, 2, 3]);
        assert_eq!(worker_regions(2, 4), vec![0, 1]);
        assert_eq!(worker_regions(5, 1), vec![0, 0, 0, 0, 0]);
        assert_eq!(worker_regions(0, 3), Vec::<usize>::new());
        // Never skips a region when workers >= regions; never exceeds bounds.
        for workers in 1..10 {
            for regions in 1..10 {
                let wr = worker_regions(workers, regions);
                assert_eq!(wr.len(), workers);
                assert!(wr.windows(2).all(|w| w[0] <= w[1]), "monotone: {wr:?}");
                assert!(wr.iter().all(|&r| r < regions));
                if workers >= regions {
                    for r in 0..regions {
                        assert!(wr.contains(&r), "region {r} unstaffed: {wr:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn even_split_covers_everything() {
        let cluster = ClusterSpec::amazon_20();
        let plan = plan_loop(1_000_003, &cluster, None, 1);
        assert!(plan.covers(1_000_003));
        assert_eq!(plan.cores_used(), cluster.total_cores());
        assert!(!plan.aligned_to_data);
    }

    #[test]
    fn directory_alignment_moves_computation_to_data() {
        let cluster = ClusterSpec::gpu_4();
        // Skewed ownership: node 0 owns much more.
        let dir = vec![
            (0, 700, 0usize),
            (700, 800, 1),
            (800, 900, 2),
            (900, 1000, 3),
        ];
        let plan = plan_loop(1000, &cluster, Some(&dir), 1);
        assert!(plan.aligned_to_data);
        assert!(plan.covers(1000));
        let node0: i64 = plan
            .chunks
            .iter()
            .filter(|c| c.node == 0)
            .map(|c| c.range.1 - c.range.0)
            .sum();
        assert_eq!(node0, 700, "node 0 processes exactly its local range");
    }

    #[test]
    fn over_decomposition_multiplies_chunks() {
        let cluster = ClusterSpec::single(MachineSpec::numa_4x12());
        let p1 = plan_loop(48_000, &cluster, None, 1);
        let p4 = plan_loop(48_000, &cluster, None, 4);
        assert!(p4.chunks.len() > p1.chunks.len() * 3);
        assert!(p4.covers(48_000));
        assert_eq!(p1.cores_used(), 48);
        assert_eq!(p4.cores_used(), 48);
    }

    #[test]
    fn tiny_loops_do_not_overassign() {
        let cluster = ClusterSpec::single(MachineSpec::numa_4x12());
        let plan = plan_loop(3, &cluster, None, 1);
        assert!(plan.covers(3));
        assert!(plan.cores_used() <= 3);
    }

    #[test]
    fn empty_loop_empty_plan() {
        let cluster = ClusterSpec::amazon_20();
        let plan = plan_loop(0, &cluster, None, 1);
        assert!(plan.chunks.is_empty());
        assert!(plan.covers(0));
    }

    #[test]
    fn replan_preserves_coverage_and_moves_work_off_dead_nodes() {
        let cluster = ClusterSpec::amazon_20();
        let plan = plan_loop(1_000_003, &cluster, None, 2);
        let replanned = plan.replan(&[3, 17], &cluster, None).unwrap();
        assert!(replanned.covers(1_000_003));
        assert!(replanned.chunks.iter().all(|c| c.node != 3 && c.node != 17));
        assert!(replanned.reassigned_chunks > 0);
        assert_eq!(replanned.chunks.len(), plan.chunks.len());
    }

    #[test]
    fn replan_prefers_surviving_data_owners() {
        let cluster = ClusterSpec::gpu_4();
        let dir = vec![(0i64, 250, 0usize), (250, 500, 1), (500, 750, 2), (750, 1000, 3)];
        let plan = plan_loop(1000, &cluster, Some(&dir), 1);
        // Kill node 1; its data range [250, 500) has no surviving owner, so
        // those chunks round-robin. Then kill the *scheduler's* node 0 but
        // pretend its data moved to node 2 via an updated directory.
        let dir_after = vec![(0i64, 250, 2usize), (250, 500, 1), (500, 750, 2), (750, 1000, 3)];
        let replanned = plan.replan(&[0], &cluster, Some(&dir_after)).unwrap();
        assert!(replanned.covers(1000));
        for c in &replanned.chunks {
            assert_ne!(c.node, 0);
            if c.range.1 <= 250 {
                assert_eq!(c.node, 2, "recovered chunks follow the data: {c:?}");
            }
        }
        assert!(replanned.aligned_to_data, "directory-aligned recovery");
    }

    #[test]
    fn replan_with_no_survivors_is_an_error() {
        let cluster = ClusterSpec::gpu_4();
        let plan = plan_loop(100, &cluster, None, 1);
        assert_eq!(
            plan.replan(&[0, 1, 2, 3], &cluster, None).err(),
            Some(crate::RuntimeError::NoSurvivors)
        );
        assert_eq!(
            plan.replan(&[9], &cluster, None).err(),
            Some(crate::RuntimeError::UnknownNode { node: 9, nodes: 4 })
        );
    }

    #[test]
    fn replan_without_failures_is_identity_shaped() {
        let cluster = ClusterSpec::amazon_20();
        let plan = plan_loop(5_000, &cluster, None, 1);
        let same = plan.replan(&[], &cluster, None).unwrap();
        assert_eq!(same.reassigned_chunks, 0);
        assert_eq!(same.chunks, plan.chunks);
    }

    #[test]
    fn node_directory_merges_sockets() {
        let dir = vec![
            (0usize, 100usize, Location { node: 0, socket: 0 }),
            (100, 200, Location { node: 0, socket: 1 }),
            (200, 300, Location { node: 1, socket: 0 }),
        ];
        let nd = node_directory(&dir);
        assert_eq!(nd, vec![(0, 200, 0), (200, 300, 1)]);
    }
}
