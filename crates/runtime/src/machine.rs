//! Hardware descriptions and the paper's testbed presets.

/// A GPU accelerator attached to a machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuSpec {
    /// Peak arithmetic throughput in FLOP/s.
    pub flops: f64,
    /// Device memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Host-to-device transfer bandwidth (PCIe) in bytes/s.
    pub pcie_bw: f64,
    /// Per-kernel launch overhead in seconds.
    pub launch_overhead: f64,
    /// Device memory capacity in bytes.
    pub mem_capacity: f64,
}

impl GpuSpec {
    /// NVIDIA Tesla C2050 (the paper's GPU-cluster accelerator).
    pub fn tesla_c2050() -> GpuSpec {
        GpuSpec {
            flops: 515e9,
            mem_bw: 144e9,
            pcie_bw: 6e9,
            launch_overhead: 15e-6,
            mem_capacity: 3e9,
        }
    }
}

/// One machine: sockets × cores with per-socket memory regions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineSpec {
    /// Number of sockets (NUMA domains).
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Effective per-core arithmetic throughput in FLOP/s.
    pub core_flops: f64,
    /// Per-socket local memory bandwidth in bytes/s.
    pub socket_mem_bw: f64,
    /// Memory bandwidth one core can draw by itself in bytes/s.
    pub core_mem_bw: f64,
    /// Cross-socket (interconnect) bandwidth in bytes/s, per link.
    pub interconnect_bw: f64,
    /// Per-parallel-loop synchronization overhead in seconds.
    pub sync_overhead: f64,
    /// Attached GPU, if any.
    pub gpu: Option<GpuSpec>,
}

impl MachineSpec {
    /// The paper's single-machine testbed: 4 sockets × 12 Xeon E5-4657L
    /// cores, 256 GB per socket.
    pub fn numa_4x12() -> MachineSpec {
        MachineSpec {
            sockets: 4,
            cores_per_socket: 12,
            core_flops: 4.0e9,
            socket_mem_bw: 38e9,
            core_mem_bw: 8e9,
            interconnect_bw: 12e9,
            sync_overhead: 20e-6,
            gpu: None,
        }
    }

    /// An Amazon EC2 m1.xlarge instance: 4 virtual cores, 15 GB.
    pub fn m1_xlarge() -> MachineSpec {
        MachineSpec {
            sockets: 1,
            cores_per_socket: 4,
            core_flops: 1.5e9,
            socket_mem_bw: 10e9,
            core_mem_bw: 4e9,
            interconnect_bw: 10e9,
            sync_overhead: 50e-6,
            gpu: None,
        }
    }

    /// A GPU-cluster node: 12 Xeon X5680 cores, 48 GB, one Tesla C2050.
    pub fn gpu_node() -> MachineSpec {
        MachineSpec {
            sockets: 2,
            cores_per_socket: 6,
            core_flops: 4.5e9,
            socket_mem_bw: 30e9,
            core_mem_bw: 8e9,
            interconnect_bw: 12e9,
            sync_overhead: 20e-6,
            gpu: Some(GpuSpec::tesla_c2050()),
        }
    }

    /// Total cores.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Aggregate local memory bandwidth with `sockets_used` sockets reading
    /// their own memory.
    pub fn aggregate_bw(&self, sockets_used: usize) -> f64 {
        self.socket_mem_bw * sockets_used.clamp(1, self.sockets) as f64
    }

    /// How many sockets a run on `cores` cores touches (cores fill sockets
    /// in order, as the locality-aware pinned runtime does).
    pub fn sockets_for_cores(&self, cores: usize) -> usize {
        let cores = cores.clamp(1, self.total_cores());
        cores.div_ceil(self.cores_per_socket)
    }

    /// How many execution regions the partitioned data plane splits a
    /// `threads`-wide run into: at most one per socket, never more than the
    /// thread count. On the paper's 4-socket testbed this is the default
    /// `min(threads, 4)`.
    pub fn execution_regions(&self, threads: usize) -> usize {
        threads.clamp(1, self.sockets.max(1))
    }
}

/// A cluster of identical machines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterSpec {
    /// Number of machines.
    pub nodes: usize,
    /// Per-node machine description.
    pub node: MachineSpec,
    /// Network bandwidth per node in bytes/s.
    pub network_bw: f64,
    /// Per-message network latency in seconds.
    pub network_latency: f64,
}

impl ClusterSpec {
    /// One machine, no network: the degenerate cluster.
    pub fn single(node: MachineSpec) -> ClusterSpec {
        ClusterSpec {
            nodes: 1,
            node,
            network_bw: f64::INFINITY,
            network_latency: 0.0,
        }
    }

    /// The paper's 20-node Amazon EC2 cluster (m1.xlarge, 1 GbE).
    pub fn amazon_20() -> ClusterSpec {
        ClusterSpec {
            nodes: 20,
            node: MachineSpec::m1_xlarge(),
            network_bw: 125e6,
            network_latency: 200e-6,
        }
    }

    /// The paper's 4-node GPU cluster (1 GbE within a rack).
    pub fn gpu_4() -> ClusterSpec {
        ClusterSpec {
            nodes: 4,
            node: MachineSpec::gpu_node(),
            network_bw: 125e6,
            network_latency: 100e-6,
        }
    }

    /// Total cores across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.node.total_cores()
    }

    /// Gracefully degrade after losing `failed_nodes` machines: the same
    /// cluster with the survivors. Losing *every* node falls back to local
    /// single-machine execution (the coordinator itself) with a warning
    /// rather than aborting — the multiloop re-executes locally.
    pub fn degrade(&self, failed_nodes: &[usize]) -> ClusterSpec {
        let lost = failed_nodes
            .iter()
            .filter(|&&n| n < self.nodes)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        let surviving = self.nodes - lost;
        if surviving == 0 {
            crate::log::warn(&format!(
                "all {} nodes failed; falling back to local execution",
                self.nodes
            ));
            return ClusterSpec::single(self.node);
        }
        if lost > 0 {
            crate::log::warn(&format!(
                "degraded: {lost} of {} nodes failed, continuing on {surviving}",
                self.nodes
            ));
        }
        ClusterSpec {
            nodes: surviving,
            ..*self
        }
    }

    /// The same cluster with GPUs dropped (e.g. after a device failure):
    /// execution falls back to the host cores with a warning.
    pub fn without_gpu(&self) -> ClusterSpec {
        if self.node.gpu.is_some() {
            crate::log::warn("GPU dropped from cluster spec; falling back to host cores");
        }
        ClusterSpec {
            node: MachineSpec {
                gpu: None,
                ..self.node
            },
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_shapes() {
        let m = MachineSpec::numa_4x12();
        assert_eq!(m.total_cores(), 48);
        assert_eq!(m.sockets, 4);
        let c = ClusterSpec::amazon_20();
        assert_eq!(c.nodes, 20);
        assert_eq!(c.total_cores(), 80);
        let g = ClusterSpec::gpu_4();
        assert!(g.node.gpu.is_some());
        assert_eq!(g.node.total_cores(), 12);
    }

    #[test]
    fn socket_filling() {
        let m = MachineSpec::numa_4x12();
        assert_eq!(m.sockets_for_cores(1), 1);
        assert_eq!(m.sockets_for_cores(12), 1);
        assert_eq!(m.sockets_for_cores(13), 2);
        assert_eq!(m.sockets_for_cores(48), 4);
        assert_eq!(m.sockets_for_cores(500), 4);
    }

    #[test]
    fn bandwidth_aggregation() {
        let m = MachineSpec::numa_4x12();
        assert_eq!(m.aggregate_bw(1), 38e9);
        assert_eq!(m.aggregate_bw(4), 4.0 * 38e9);
        assert_eq!(m.aggregate_bw(9), 4.0 * 38e9, "clamped to socket count");
    }

    #[test]
    fn degrade_drops_nodes_and_falls_back_locally() {
        std::env::set_var("DMLL_QUIET", "1");
        let c = ClusterSpec::amazon_20();
        let d = c.degrade(&[0, 5, 5, 99]);
        assert_eq!(d.nodes, 18, "duplicate and out-of-range failures ignored");
        assert_eq!(d.node, c.node);
        let all: Vec<usize> = (0..20).collect();
        let local = c.degrade(&all);
        assert_eq!(local.nodes, 1);
        assert!(local.network_bw.is_infinite(), "local fallback has no network");
    }

    #[test]
    fn without_gpu_falls_back_to_host() {
        std::env::set_var("DMLL_QUIET", "1");
        let g = ClusterSpec::gpu_4();
        let host = g.without_gpu();
        assert!(host.node.gpu.is_none());
        assert_eq!(host.nodes, 4);
        assert_eq!(host.node.total_cores(), 12);
    }

    #[test]
    fn specs_are_plain_data() {
        let c = ClusterSpec::gpu_4();
        let c2 = c;
        assert_eq!(c, c2);
        assert_eq!(ClusterSpec::single(MachineSpec::numa_4x12()).nodes, 1);
    }
}
