//! The hardware cost model: (loop profiles × machine × execution mode) →
//! time.
//!
//! Each loop is charged compute time and memory time (overlapped — the
//! maximum wins), plus one-time broadcast, post-loop combine, and
//! synchronization overheads. The execution modes differ **only** in where
//! data lives and which resources serve each traffic class, mirroring §6's
//! experimental configurations:
//!
//! * `DmllNumaAware` — partitioned arrays spread across every socket's
//!   memory: all traffic at aggregate bandwidth;
//! * `DmllPinOnly` — threads pinned with thread-local heaps, but each
//!   partitioned array allocated inside a single socket: streaming traffic
//!   caps at one socket's bandwidth while thread-local traffic scales;
//! * `DeliteShared` — no pinning, no partitioning: bandwidth barely exceeds
//!   one socket and scheduling is locality-oblivious;
//! * `Cluster` — work split across machines, broadcast/combine/remote reads
//!   over the network;
//! * `Gpu`/`GpuCluster` — kernel model with coalescing (transpose) and
//!   shared-memory (scalar-reduce) effects, PCIe amortized over iterations.

use crate::machine::{ClusterSpec, GpuSpec, MachineSpec};
use crate::profile::LoopProfile;

/// GPU kernel tuning knobs studied in Figure 6 (left).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GpuTuning {
    /// Input matrix transposed on transfer so thread accesses coalesce.
    pub transposed: bool,
}

/// An execution configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExecMode {
    /// One core, one socket.
    Sequential,
    /// NUMA-aware DMLL: pinning + partitioned allocation (§6.1 "DMLL").
    DmllNumaAware {
        /// Cores used (fill sockets in order).
        cores: usize,
    },
    /// Pinning and thread-local heaps only (§6.1 "DMLL Pin Only").
    DmllPinOnly {
        /// Cores used.
        cores: usize,
    },
    /// Baseline shared-memory runtime without NUMA awareness ("Delite").
    DeliteShared {
        /// Cores used.
        cores: usize,
    },
    /// Distributed over every node of the cluster.
    Cluster,
    /// Single-node GPU offload.
    Gpu {
        /// Kernel tuning.
        tuning: GpuTuning,
        /// Iterations the host-to-device transfer is amortized over.
        amortized_iters: f64,
    },
    /// GPU per node across the cluster.
    GpuCluster {
        /// Kernel tuning.
        tuning: GpuTuning,
        /// Iterations the host-to-device transfer is amortized over.
        amortized_iters: f64,
    },
}

/// Simulated time, by component (seconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimBreakdown {
    /// Arithmetic.
    pub compute: f64,
    /// Memory traffic.
    pub memory: f64,
    /// Network traffic (broadcast, combine, remote reads).
    pub network: f64,
    /// Host-device transfers.
    pub pcie: f64,
    /// Synchronization / launch overheads.
    pub overhead: f64,
}

impl SimBreakdown {
    /// Total simulated seconds.
    pub fn total(&self) -> f64 {
        self.compute + self.memory + self.network + self.pcie + self.overhead
    }

    fn add(&mut self, o: SimBreakdown) {
        self.compute += o.compute;
        self.memory += o.memory;
        self.network += o.network;
        self.pcie += o.pcie;
        self.overhead += o.overhead;
    }

    fn scaled(&self, k: f64) -> SimBreakdown {
        SimBreakdown {
            compute: self.compute * k,
            memory: self.memory * k,
            network: self.network * k,
            pcie: self.pcie * k,
            overhead: self.overhead * k,
        }
    }
}

/// Parameters of a fault-aware (degraded-mode) simulation: how many nodes
/// die, when, and what the coordinator pays to replan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultModel {
    /// Machines lost mid-run.
    pub failed_nodes: usize,
    /// Fraction of the loop completed when the failure hits, in `[0, 1]`.
    /// The dead nodes' completed share of that work is lost and
    /// re-executed by the survivors.
    pub completed_before_failure: f64,
    /// Coordinator cost of one replan (directory re-broadcast + schedule
    /// revision), seconds.
    pub replan_overhead: f64,
}

impl Default for FaultModel {
    fn default() -> FaultModel {
        FaultModel {
            failed_nodes: 1,
            completed_before_failure: 0.5,
            replan_overhead: 1e-3,
        }
    }
}

/// A fault-free run next to its degraded-mode counterpart.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegradedSim {
    /// The run with no failures.
    pub fault_free: SimBreakdown,
    /// The run that loses nodes mid-loop, replans, and re-executes the
    /// lost chunks on the survivors.
    pub degraded: SimBreakdown,
}

impl DegradedSim {
    /// Degraded-over-fault-free time ratio (≥ 1 for any real failure).
    pub fn slowdown(&self) -> f64 {
        let base = self.fault_free.total();
        if base > 0.0 {
            self.degraded.total() / base
        } else {
            1.0
        }
    }

    /// Absolute recovery cost in seconds.
    pub fn recovery_seconds(&self) -> f64 {
        self.degraded.total() - self.fault_free.total()
    }
}

/// Fault-aware simulation: run `profiles` under `mode`, losing
/// `faults.failed_nodes` machines after `faults.completed_before_failure`
/// of the work is done. The degraded time is
///
/// ```text
/// f·T(n)  +  replan  +  ((1 − f) + f·failed/n)·T(n − failed)
/// ```
///
/// — the run up to the failure on the full cluster, the replan, and the
/// remaining work *plus the dead nodes' lost completed share* re-executed
/// on the survivors (chunk re-execution from
/// [`crate::SchedulePlan::replan`]: survivors keep their finished chunks,
/// only the dead nodes' iteration ranges run again). When every node dies
/// the survivors' side degrades to local single-machine execution,
/// mirroring [`crate::ClusterSpec::degrade`].
pub fn simulate_loops_degraded(
    profiles: &[LoopProfile],
    cluster: &ClusterSpec,
    mode: &ExecMode,
    faults: &FaultModel,
) -> DegradedSim {
    let fault_free = simulate_loops(profiles, cluster, mode);
    let f = faults.completed_before_failure.clamp(0.0, 1.0);
    let failed = faults.failed_nodes.min(cluster.nodes);
    let surviving = (cluster.nodes - failed).max(1);
    let degraded_cluster = ClusterSpec {
        nodes: surviving,
        ..*cluster
    };
    let on_survivors = simulate_loops(profiles, &degraded_cluster, mode);
    let lost_share = f * failed as f64 / cluster.nodes.max(1) as f64;
    let remaining = (1.0 - f) + lost_share;
    let mut degraded = fault_free.scaled(f);
    degraded.add(on_survivors.scaled(remaining));
    if failed > 0 {
        degraded.overhead += faults.replan_overhead;
    }
    DegradedSim {
        fault_free,
        degraded,
    }
}

/// Simulate all loops (run once each) under `mode`.
pub fn simulate_loops(
    profiles: &[LoopProfile],
    cluster: &ClusterSpec,
    mode: &ExecMode,
) -> SimBreakdown {
    let mut total = SimBreakdown::default();
    for p in profiles {
        total.add(simulate_one(p, cluster, mode));
    }
    total
}

fn log2c(n: usize) -> f64 {
    (n.max(1) as f64).log2().max(1.0)
}

fn simulate_one(p: &LoopProfile, cluster: &ClusterSpec, mode: &ExecMode) -> SimBreakdown {
    let spec = cluster.node;
    match *mode {
        ExecMode::Sequential => shared_memory(p, &spec, 1, BwPolicy::Single, 1.0),
        ExecMode::DmllNumaAware { cores } => {
            shared_memory(p, &spec, cores, BwPolicy::Aggregate, 1.0)
        }
        ExecMode::DmllPinOnly { cores } => shared_memory(p, &spec, cores, BwPolicy::PinOnly, 1.0),
        ExecMode::DeliteShared { cores } => {
            shared_memory(p, &spec, cores, BwPolicy::Oblivious, 0.87)
        }
        ExecMode::Cluster => cluster_time(p, cluster),
        ExecMode::Gpu {
            tuning,
            amortized_iters,
        } => gpu_time(
            p,
            spec.gpu.as_ref().expect("machine has a GPU"),
            tuning,
            amortized_iters,
            1,
            cluster,
        ),
        ExecMode::GpuCluster {
            tuning,
            amortized_iters,
        } => gpu_time(
            p,
            spec.gpu.as_ref().expect("machine has a GPU"),
            tuning,
            amortized_iters,
            cluster.nodes,
            cluster,
        ),
    }
}

enum BwPolicy {
    /// One socket's bandwidth for everything.
    Single,
    /// Partitioned allocation: all classes at aggregate bandwidth.
    Aggregate,
    /// Thread-local data at aggregate, partitioned streams at one socket
    /// (the chunk was malloc'd by a single loading thread).
    PinOnly,
    /// No locality control: a bit above one socket for everything.
    Oblivious,
}

fn shared_memory(
    p: &LoopProfile,
    spec: &MachineSpec,
    cores: usize,
    policy: BwPolicy,
    compute_eff: f64,
) -> SimBreakdown {
    let cores = cores.clamp(1, spec.total_cores());
    // Exposed parallelism bounds usable cores: a loop over k clusters can
    // only occupy k cores (the paper's "more limited exposed parallelism"
    // of untransformed k-means).
    let cores = cores.min((p.iterations.max(1.0)) as usize);
    let sockets = spec.sockets_for_cores(cores);
    let flops = p.total_flops();
    let stream = p.iterations * p.stream_bytes_per_iter;
    let local = p.iterations * (p.local_bytes_per_iter + p.output_bytes_per_iter);
    let random = p.iterations * p.random_bytes_per_iter;

    // A bandwidth ceiling can only be reached with enough cores issuing
    // requests: each core draws at most `core_mem_bw`.
    let core_cap = cores as f64 * spec.core_mem_bw;
    let (bw_stream, bw_local) = match policy {
        BwPolicy::Single => (spec.socket_mem_bw, spec.socket_mem_bw),
        BwPolicy::Aggregate => (spec.aggregate_bw(sockets), spec.aggregate_bw(sockets)),
        BwPolicy::PinOnly => (spec.socket_mem_bw, spec.aggregate_bw(sockets)),
        BwPolicy::Oblivious => {
            let bw = (spec.socket_mem_bw * 1.3).min(spec.aggregate_bw(sockets));
            (bw, bw)
        }
    };
    let bw_stream = bw_stream.min(core_cap);
    let bw_local = bw_local.min(core_cap);

    let compute = flops / (cores as f64 * spec.core_flops * compute_eff);
    // Random accesses crossing sockets pay the interconnect with small-
    // message inefficiency.
    let remote_frac = if sockets > 1 {
        (sockets - 1) as f64 / sockets as f64
    } else {
        0.0
    };
    let random_time = random * remote_frac / (spec.interconnect_bw * 0.25)
        + random * (1.0 - remote_frac) / bw_local;
    // Materialized bucket output is shuffled across sockets by key hash
    // ("constrained memory bandwidth due to shuffling data across sockets").
    let shuffle = if p.is_bucket && sockets > 1 {
        p.iterations * p.output_bytes_per_iter * remote_frac / spec.interconnect_bw
    } else {
        0.0
    };
    let memory = stream / bw_stream + local / bw_local + random_time + shuffle;

    // Intra-machine broadcast: replicate to each used socket.
    let broadcast = if sockets > 1 {
        p.broadcast_bytes * sockets as f64 / spec.aggregate_bw(sockets)
    } else {
        0.0
    };
    // Combine per-socket partials over the interconnect.
    let combine = if cores > 1 {
        p.combine_bytes * log2c(cores) / spec.interconnect_bw
    } else {
        0.0
    };
    let overhead = if cores > 1 {
        spec.sync_overhead * log2c(cores)
    } else {
        0.0
    };

    // Compute and memory traffic overlap; the slower one dominates and is
    // reported in its own component.
    SimBreakdown {
        compute: if compute >= memory { compute } else { 0.0 },
        memory: if memory > compute { memory } else { 0.0 },
        network: broadcast + combine,
        pcie: 0.0,
        overhead,
    }
}

fn cluster_time(p: &LoopProfile, cluster: &ClusterSpec) -> SimBreakdown {
    let n = cluster.nodes.max(1);
    let spec = cluster.node;
    let per_node = shared_memory(
        &scaled_profile(p, 1.0 / n as f64),
        &spec,
        spec.total_cores(),
        BwPolicy::Aggregate,
        1.0,
    );
    // Broadcast over the network, pipelined tree.
    let broadcast = if n > 1 {
        p.broadcast_bytes / cluster.network_bw * log2c(n)
    } else {
        0.0
    };
    // All-reduce combine.
    let combine = if n > 1 {
        p.combine_bytes / cluster.network_bw * log2c(n) + cluster.network_latency * log2c(n)
    } else {
        0.0
    };
    // Remote reads cross the network with probability (n-1)/n.
    let random = p.iterations * p.random_bytes_per_iter;
    let remote = if n > 1 {
        random * ((n - 1) as f64 / n as f64) / (cluster.network_bw * 0.5) / n as f64
            + cluster.network_latency * 2.0
    } else {
        0.0
    };
    let barrier = if n > 1 {
        cluster.network_latency * 2.0 * log2c(n)
    } else {
        0.0
    };
    SimBreakdown {
        compute: per_node.compute,
        memory: per_node.memory,
        network: per_node.network + broadcast + combine + remote,
        pcie: 0.0,
        overhead: per_node.overhead + barrier,
    }
}

fn gpu_time(
    p: &LoopProfile,
    gpu: &GpuSpec,
    tuning: GpuTuning,
    amortized_iters: f64,
    nodes: usize,
    cluster: &ClusterSpec,
) -> SimBreakdown {
    let share = 1.0 / nodes.max(1) as f64;
    let flops = p.total_flops() * share;
    let bytes = (p.iterations
        * (p.stream_bytes_per_iter
            + p.local_bytes_per_iter
            + p.random_bytes_per_iter
            + p.output_bytes_per_iter))
        * share;

    // Coalescing: without the transpose, warp accesses to row-major data
    // are strided and the memory controller wastes most of each transaction.
    let mut bw_eff = gpu.mem_bw * if tuning.transposed { 0.85 } else { 0.22 };
    // Non-scalar reductions cannot live in shared memory: temporaries spill
    // to global memory and the reduction serializes partially (§6, Fig. 6).
    let mut flops_eff = gpu.flops * 0.6;
    if p.has_nonscalar_reduce {
        bw_eff *= 0.35;
        flops_eff *= 0.25;
    }
    // Random access (graph-style gather) wrecks achievable bandwidth.
    if p.random_bytes_per_iter > 0.0 {
        bw_eff *= 0.15;
    }
    let compute = flops / flops_eff;
    let memory = bytes / bw_eff;

    // Host-to-device transfer of the streamed partition and broadcast data,
    // amortized across iterative reuse.
    let input_bytes = p.iterations * p.stream_bytes_per_iter * share + p.broadcast_bytes;
    let pcie = input_bytes / gpu.pcie_bw / amortized_iters.max(1.0);

    let network = if nodes > 1 {
        p.broadcast_bytes / cluster.network_bw * log2c(nodes)
            + p.combine_bytes / cluster.network_bw * log2c(nodes)
            + cluster.network_latency * 2.0 * log2c(nodes)
    } else {
        0.0
    };

    SimBreakdown {
        compute: if compute >= memory { compute } else { 0.0 },
        memory: if memory > compute { memory } else { 0.0 },
        network,
        pcie,
        overhead: gpu.launch_overhead,
    }
}

fn scaled_profile(p: &LoopProfile, k: f64) -> LoopProfile {
    LoopProfile {
        iterations: p.iterations * k,
        broadcast_bytes: 0.0, // charged at cluster level
        ..p.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A streaming-bound profile (Q1/k-means style): lots of bytes per flop.
    fn stream_heavy() -> LoopProfile {
        LoopProfile {
            iterations: 50_000_000.0,
            flops_per_iter: 4.0,
            stream_bytes_per_iter: 64.0,
            local_bytes_per_iter: 8.0,
            combine_bytes: 4096.0,
            reduce_bytes: 8.0,
            partitioned: true,
            ..Default::default()
        }
    }

    /// A compute-bound profile (GDA style): heavy math on thread-local data.
    fn compute_heavy() -> LoopProfile {
        LoopProfile {
            iterations: 500_000.0,
            flops_per_iter: 20_000.0,
            stream_bytes_per_iter: 80.0,
            local_bytes_per_iter: 800.0,
            combine_bytes: 80_000.0,
            partitioned: true,
            ..Default::default()
        }
    }

    fn machine() -> ClusterSpec {
        ClusterSpec::single(crate::machine::MachineSpec::numa_4x12())
    }

    fn speedup(p: &LoopProfile, mode: &ExecMode) -> f64 {
        let seq = simulate_loops(std::slice::from_ref(p), &machine(), &ExecMode::Sequential).total();
        let par = simulate_loops(std::slice::from_ref(p), &machine(), mode).total();
        seq / par
    }

    #[test]
    fn numa_aware_scales_past_pin_only_on_streaming() {
        let p = stream_heavy();
        let numa48 = speedup(&p, &ExecMode::DmllNumaAware { cores: 48 });
        let pin48 = speedup(&p, &ExecMode::DmllPinOnly { cores: 48 });
        assert!(
            numa48 > pin48 * 2.0,
            "partitioned allocation multiplies bandwidth: numa={numa48:.1} pin={pin48:.1}"
        );
        // Pin-only stops scaling beyond one socket for streamed data.
        let pin12 = speedup(&p, &ExecMode::DmllPinOnly { cores: 12 });
        assert!(
            pin48 < pin12 * 1.6,
            "pin-only plateaus: 12c={pin12:.1} 48c={pin48:.1}"
        );
    }

    #[test]
    fn compute_bound_scales_everywhere() {
        let p = compute_heavy();
        let numa = speedup(&p, &ExecMode::DmllNumaAware { cores: 48 });
        let pin = speedup(&p, &ExecMode::DmllPinOnly { cores: 48 });
        assert!(numa > 30.0, "{numa:.1}");
        assert!(pin > 30.0, "pinning suffices when compute-bound: {pin:.1}");
    }

    #[test]
    fn delite_trails_dmll() {
        let p = stream_heavy();
        let delite = speedup(&p, &ExecMode::DeliteShared { cores: 48 });
        let numa = speedup(&p, &ExecMode::DmllNumaAware { cores: 48 });
        assert!(numa > delite * 2.0, "numa={numa:.1} delite={delite:.1}");
    }

    #[test]
    fn monotone_in_cores_for_numa_aware() {
        let p = stream_heavy();
        let mut last = 0.0;
        for cores in [1, 12, 24, 48] {
            let s = speedup(&p, &ExecMode::DmllNumaAware { cores });
            assert!(s >= last, "cores={cores}: {s:.2} < {last:.2}");
            last = s;
        }
    }

    #[test]
    fn cluster_random_access_dominated_by_network() {
        let mut p = stream_heavy();
        p.random_bytes_per_iter = 16.0;
        p.iterations = 1_000_000.0;
        let cl = ClusterSpec::amazon_20();
        let t = simulate_loops(&[p], &cl, &ExecMode::Cluster);
        assert!(
            t.network > t.compute + t.memory,
            "graph-style gathers are network bound: {t:?}"
        );
    }

    #[test]
    fn broadcast_charged_on_cluster() {
        let mut p = stream_heavy();
        p.broadcast_bytes = 1e9; // 1 GB model broadcast
        let cl = ClusterSpec::amazon_20();
        let with = simulate_loops(&[p.clone()], &cl, &ExecMode::Cluster);
        p.broadcast_bytes = 0.0;
        let without = simulate_loops(&[p], &cl, &ExecMode::Cluster);
        assert!(
            with.network > without.network + 1.0,
            "{with:?} vs {without:?}"
        );
    }

    #[test]
    fn gpu_transpose_and_scalar_reduce_help() {
        let gpu_cluster = ClusterSpec::gpu_4();
        let mut p = stream_heavy();
        p.has_nonscalar_reduce = true;
        let naive = simulate_loops(
            &[p.clone()],
            &gpu_cluster,
            &ExecMode::Gpu {
                tuning: GpuTuning { transposed: false },
                amortized_iters: 100.0,
            },
        )
        .total();
        let transposed = simulate_loops(
            &[p.clone()],
            &gpu_cluster,
            &ExecMode::Gpu {
                tuning: GpuTuning { transposed: true },
                amortized_iters: 100.0,
            },
        )
        .total();
        p.has_nonscalar_reduce = false; // Row-to-Column applied
        let both = simulate_loops(
            &[p],
            &gpu_cluster,
            &ExecMode::Gpu {
                tuning: GpuTuning { transposed: true },
                amortized_iters: 100.0,
            },
        )
        .total();
        assert!(
            transposed < naive,
            "transpose helps: {transposed} vs {naive}"
        );
        assert!(both < transposed, "scalar reduce helps further: {both}");
        assert!(
            naive / both > 2.0,
            "combined effect is large: {}",
            naive / both
        );
    }

    #[test]
    fn gpu_cluster_splits_work() {
        let cl = ClusterSpec::gpu_4();
        let p = compute_heavy();
        let one = simulate_loops(
            std::slice::from_ref(&p),
            &cl,
            &ExecMode::Gpu {
                tuning: GpuTuning { transposed: true },
                amortized_iters: 10.0,
            },
        )
        .total();
        let four = simulate_loops(
            &[p],
            &cl,
            &ExecMode::GpuCluster {
                tuning: GpuTuning { transposed: true },
                amortized_iters: 10.0,
            },
        )
        .total();
        assert!(four < one, "4 GPUs beat 1: {four} vs {one}");
    }

    #[test]
    fn degraded_cluster_pays_for_node_loss() {
        let p = stream_heavy();
        let cl = ClusterSpec::amazon_20();
        let sim = simulate_loops_degraded(
            std::slice::from_ref(&p),
            &cl,
            &ExecMode::Cluster,
            &FaultModel {
                failed_nodes: 5,
                completed_before_failure: 0.5,
                replan_overhead: 1e-3,
            },
        );
        assert!(
            sim.slowdown() > 1.0,
            "losing 5/20 nodes mid-run must cost time: {:.3}",
            sim.slowdown()
        );
        assert!(sim.recovery_seconds() > 0.0);
        // Losing more nodes at the same point costs more.
        let worse = simulate_loops_degraded(
            &[p],
            &cl,
            &ExecMode::Cluster,
            &FaultModel {
                failed_nodes: 15,
                completed_before_failure: 0.5,
                replan_overhead: 1e-3,
            },
        );
        assert!(worse.degraded.total() > sim.degraded.total());
    }

    #[test]
    fn zero_failures_cost_nothing_extra() {
        let p = compute_heavy();
        let cl = ClusterSpec::amazon_20();
        let sim = simulate_loops_degraded(
            &[p],
            &cl,
            &ExecMode::Cluster,
            &FaultModel {
                failed_nodes: 0,
                completed_before_failure: 0.7,
                replan_overhead: 1e-3,
            },
        );
        assert!(
            (sim.slowdown() - 1.0).abs() < 1e-9,
            "no failure, no replan charge: {}",
            sim.slowdown()
        );
    }

    #[test]
    fn replan_overhead_lands_in_overhead_component() {
        let p = stream_heavy();
        let cl = ClusterSpec::amazon_20();
        let fm = FaultModel {
            failed_nodes: 1,
            completed_before_failure: 0.5,
            replan_overhead: 2.5,
        };
        let sim = simulate_loops_degraded(std::slice::from_ref(&p), &cl, &ExecMode::Cluster, &fm);
        let without = simulate_loops_degraded(
            &[p],
            &cl,
            &ExecMode::Cluster,
            &FaultModel {
                replan_overhead: 0.0,
                ..fm
            },
        );
        let diff = sim.degraded.overhead - without.degraded.overhead;
        assert!((diff - 2.5).abs() < 1e-9, "replan charged once: {diff}");
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = SimBreakdown {
            compute: 1.0,
            memory: 2.0,
            network: 3.0,
            pcie: 4.0,
            overhead: 5.0,
        };
        assert_eq!(b.total(), 15.0);
    }
}
