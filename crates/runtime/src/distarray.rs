//! Distributed arrays with a location directory (§5).
//!
//! A logical array is physically split into per-location chunks. Every
//! instance holds, besides its local chunk, a *directory* of index ranges to
//! locations, built when the array is first instantiated and broadcast to
//! every physical instance. Reads of indices that are not physically present
//! are trapped and transparently fetched from the owning location; the
//! [`TransferStats`] counters make that communication observable to tests
//! and to the simulator.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A physical placement: machine and memory region (socket).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Location {
    /// Machine index within the cluster.
    pub node: usize,
    /// Socket (memory region) within the machine.
    pub socket: usize,
}

impl Location {
    /// Location 0/0 — the degenerate single-region placement.
    pub fn root() -> Location {
        Location { node: 0, socket: 0 }
    }
}

/// Communication counters for one distributed array.
#[derive(Debug, Default)]
pub struct TransferStats {
    /// Reads served by the local chunk.
    pub local_reads: AtomicU64,
    /// Reads trapped and served remotely.
    pub remote_reads: AtomicU64,
    /// Bytes moved for remote reads.
    pub remote_bytes: AtomicU64,
}

impl TransferStats {
    /// Snapshot `(local, remote, bytes)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.local_reads.load(Ordering::Relaxed),
            self.remote_reads.load(Ordering::Relaxed),
            self.remote_bytes.load(Ordering::Relaxed),
        )
    }
}

struct ChunkEntry<T> {
    start: usize,
    end: usize,
    location: Location,
    data: Mutex<Vec<T>>,
}

/// A partitioned array of `T` with trapped remote reads.
pub struct DistArray<T> {
    chunks: Vec<ChunkEntry<T>>,
    len: usize,
    stats: Arc<TransferStats>,
}

impl<T: Clone> DistArray<T> {
    /// Partition `data` evenly across `locations` (in order), splitting only
    /// on chunk boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `locations` is empty.
    pub fn partition(data: Vec<T>, locations: &[Location]) -> DistArray<T> {
        assert!(!locations.is_empty(), "at least one location required");
        let len = data.len();
        let n = locations.len();
        let base = len / n;
        let extra = len % n;
        let mut chunks = Vec::with_capacity(n);
        let mut it = data.into_iter();
        let mut start = 0usize;
        for (i, &loc) in locations.iter().enumerate() {
            let size = base + usize::from(i < extra);
            let chunk: Vec<T> = it.by_ref().take(size).collect();
            chunks.push(ChunkEntry {
                start,
                end: start + size,
                location: loc,
                data: Mutex::new(chunk),
            });
            start += size;
        }
        DistArray {
            chunks,
            len,
            stats: Arc::new(TransferStats::default()),
        }
    }

    /// Logical length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The directory: `(start, end, location)` per chunk — what §5
    /// broadcasts to every physical instance of the logical array.
    pub fn directory(&self) -> Vec<(usize, usize, Location)> {
        self.chunks
            .iter()
            .map(|c| (c.start, c.end, c.location))
            .collect()
    }

    /// The location owning index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn owner(&self, idx: usize) -> Location {
        self.chunk_of(idx).location
    }

    /// The index range local to `loc` (empty range if none).
    pub fn local_range(&self, loc: Location) -> (usize, usize) {
        self.chunks
            .iter()
            .find(|c| c.location == loc)
            .map(|c| (c.start, c.end))
            .unwrap_or((0, 0))
    }

    /// Read `idx` from the perspective of a worker at `from`: local when the
    /// owning chunk lives there, otherwise trapped, counted and fetched.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn read(&self, from: Location, idx: usize) -> T {
        let chunk = self.chunk_of(idx);
        if chunk.location == from {
            self.stats.local_reads.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.remote_reads.fetch_add(1, Ordering::Relaxed);
            self.stats
                .remote_bytes
                .fetch_add(std::mem::size_of::<T>() as u64, Ordering::Relaxed);
        }
        chunk.data.lock()[idx - chunk.start].clone()
    }

    /// Write `idx` (used when materializing partitioned collect outputs).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn write(&self, idx: usize, value: T) {
        let chunk = self.chunk_of(idx);
        let mut data = chunk.data.lock();
        data[idx - chunk.start] = value;
    }

    /// Shared transfer counters.
    pub fn stats(&self) -> Arc<TransferStats> {
        Arc::clone(&self.stats)
    }

    /// Reassemble the logical array (gathers all chunks).
    pub fn gather(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for c in &self.chunks {
            out.extend(c.data.lock().iter().cloned());
        }
        out
    }

    fn chunk_of(&self, idx: usize) -> &ChunkEntry<T> {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        // Directory lookup: binary search over chunk starts.
        let mut lo = 0usize;
        let mut hi = self.chunks.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.chunks[mid].start <= idx {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        &self.chunks[lo]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locs(n: usize) -> Vec<Location> {
        (0..n)
            .map(|i| Location {
                node: i / 4,
                socket: i % 4,
            })
            .collect()
    }

    #[test]
    fn partition_covers_everything_in_order() {
        let a = DistArray::partition((0..10).collect::<Vec<i32>>(), &locs(3));
        assert_eq!(a.len(), 10);
        let dir = a.directory();
        assert_eq!(dir.len(), 3);
        assert_eq!(dir[0].0, 0);
        assert_eq!(dir.last().unwrap().1, 10);
        // Contiguous, non-overlapping.
        for w in dir.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        assert_eq!(a.gather(), (0..10).collect::<Vec<i32>>());
    }

    #[test]
    fn local_vs_remote_reads_are_counted() {
        let a = DistArray::partition((0..100).collect::<Vec<i64>>(), &locs(4));
        let first = a.owner(0);
        // Local read.
        assert_eq!(a.read(first, 0), 0);
        // Remote read (index owned by the last location).
        assert_eq!(a.read(first, 99), 99);
        let (local, remote, bytes) = a.stats().snapshot();
        assert_eq!(local, 1);
        assert_eq!(remote, 1);
        assert_eq!(bytes, 8);
    }

    #[test]
    fn owner_matches_directory() {
        let a = DistArray::partition((0..17).collect::<Vec<u8>>(), &locs(4));
        for (start, end, loc) in a.directory() {
            for i in start..end {
                assert_eq!(a.owner(i), loc);
            }
        }
    }

    #[test]
    fn local_range_lookup() {
        let a = DistArray::partition((0..12).collect::<Vec<i32>>(), &locs(3));
        let dir = a.directory();
        for (start, end, loc) in dir {
            assert_eq!(a.local_range(loc), (start, end));
        }
        assert_eq!(a.local_range(Location { node: 9, socket: 9 }), (0, 0));
    }

    #[test]
    fn writes_land_in_right_chunk() {
        let a = DistArray::partition(vec![0i64; 10], &locs(2));
        a.write(7, 42);
        assert_eq!(a.read(Location::root(), 7), 42);
        assert_eq!(a.gather()[7], 42);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let a = DistArray::partition(vec![1i32], &locs(1));
        a.read(Location::root(), 5);
    }

    #[test]
    fn uneven_partition_sizes_differ_by_at_most_one() {
        let a = DistArray::partition((0..11).collect::<Vec<i32>>(), &locs(4));
        let sizes: Vec<usize> = a.directory().iter().map(|(s, e, _)| e - s).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 11);
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }
}
