//! Distributed arrays with a location directory (§5).
//!
//! A logical array is physically split into per-location chunks. Every
//! instance holds, besides its local chunk, a *directory* of index ranges to
//! locations, built when the array is first instantiated and broadcast to
//! every physical instance. Reads of indices that are not physically present
//! are trapped and transparently fetched from the owning location; the
//! [`TransferStats`] counters make that communication observable to tests
//! and to the simulator.
//!
//! ## Fault tolerance
//!
//! A trapped remote fetch crosses a socket interconnect or the network, so
//! unlike a local read it can *fail*. When a [`FaultInjector`] is attached,
//! remote reads consult it: transient drops are retried with capped
//! exponential backoff ([`RetryPolicy`]), reads to permanently failed nodes
//! return [`RuntimeError::NodeFailed`] so the scheduler can
//! [`replan`](crate::SchedulePlan::replan), and every retry / failure /
//! recovery is counted in [`TransferStats`]. Backoff is charged to the
//! stats in simulated nanoseconds rather than slept, keeping scenario
//! replay fast and bit-deterministic.

use crate::error::RuntimeError;
use crate::fault::FaultInjector;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A physical placement: machine and memory region (socket).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Location {
    /// Machine index within the cluster.
    pub node: usize,
    /// Socket (memory region) within the machine.
    pub socket: usize,
}

impl Location {
    /// Location 0/0 — the degenerate single-region placement.
    pub fn root() -> Location {
        Location { node: 0, socket: 0 }
    }
}

/// Communication counters for one distributed array.
#[derive(Debug, Default)]
pub struct TransferStats {
    /// Reads served by the local chunk.
    pub local_reads: AtomicU64,
    /// Reads trapped and served remotely.
    pub remote_reads: AtomicU64,
    /// Bytes moved for remote reads.
    pub remote_bytes: AtomicU64,
    /// Remote-read attempts that were retried after a transient failure.
    pub retries: AtomicU64,
    /// Remote reads that ultimately failed (retries exhausted or owner
    /// node permanently down).
    pub failed_reads: AtomicU64,
    /// Remote reads that succeeded only after at least one retry.
    pub recovered_reads: AtomicU64,
    /// Simulated nanoseconds spent in retry backoff and latency spikes.
    pub backoff_nanos: AtomicU64,
    /// Writes served by the local chunk.
    pub local_writes: AtomicU64,
    /// Writes trapped and forwarded to a remote owner.
    pub remote_writes: AtomicU64,
    /// Remote writes that ultimately failed (retries exhausted or owner
    /// node permanently down).
    pub failed_writes: AtomicU64,
    /// Cluster messages sent between nodes (shuffle / staging / recovery).
    pub sends: AtomicU64,
    /// Payload bytes moved by cluster sends.
    pub send_bytes: AtomicU64,
    /// Cluster sends retried after a transient link flake.
    pub send_retries: AtomicU64,
    /// Cluster sends that ultimately failed.
    pub failed_sends: AtomicU64,
    /// Simulated nanoseconds charged through the network model
    /// (latency + bytes / bandwidth per send).
    pub network_nanos: AtomicU64,
}

/// A point-in-time copy of the fault-related counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Remote-read attempts retried after a transient failure.
    pub retries: u64,
    /// Remote reads that ultimately failed.
    pub failed_reads: u64,
    /// Remote reads that recovered after at least one retry.
    pub recovered_reads: u64,
    /// Simulated nanoseconds of backoff + injected latency.
    pub backoff_nanos: u64,
    /// Remote writes that ultimately failed.
    pub failed_writes: u64,
    /// Cluster sends retried after a transient link flake.
    pub send_retries: u64,
    /// Cluster sends that ultimately failed.
    pub failed_sends: u64,
}

/// A point-in-time copy of the cluster-traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Cluster messages sent between nodes.
    pub sends: u64,
    /// Payload bytes moved by cluster sends.
    pub send_bytes: u64,
    /// Sends retried after a transient link flake.
    pub send_retries: u64,
    /// Sends that ultimately failed.
    pub failed_sends: u64,
    /// Simulated nanoseconds charged through the network model.
    pub network_nanos: u64,
}

impl TransferStats {
    /// Snapshot `(local, remote, bytes)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.local_reads.load(Ordering::Relaxed),
            self.remote_reads.load(Ordering::Relaxed),
            self.remote_bytes.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of the fault/recovery counters.
    pub fn fault_snapshot(&self) -> FaultStats {
        FaultStats {
            retries: self.retries.load(Ordering::Relaxed),
            failed_reads: self.failed_reads.load(Ordering::Relaxed),
            recovered_reads: self.recovered_reads.load(Ordering::Relaxed),
            backoff_nanos: self.backoff_nanos.load(Ordering::Relaxed),
            failed_writes: self.failed_writes.load(Ordering::Relaxed),
            send_retries: self.send_retries.load(Ordering::Relaxed),
            failed_sends: self.failed_sends.load(Ordering::Relaxed),
        }
    }

    /// Snapshot `(local_writes, remote_writes)`.
    pub fn write_snapshot(&self) -> (u64, u64) {
        (
            self.local_writes.load(Ordering::Relaxed),
            self.remote_writes.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of the cluster-traffic counters.
    pub fn net_snapshot(&self) -> NetStats {
        NetStats {
            sends: self.sends.load(Ordering::Relaxed),
            send_bytes: self.send_bytes.load(Ordering::Relaxed),
            send_retries: self.send_retries.load(Ordering::Relaxed),
            failed_sends: self.failed_sends.load(Ordering::Relaxed),
            network_nanos: self.network_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Retry behavior for trapped remote reads: capped exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, simulated nanoseconds.
    pub base_backoff_nanos: u64,
    /// Backoff ceiling, simulated nanoseconds.
    pub max_backoff_nanos: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_nanos: 1_000,
            max_backoff_nanos: 1_000_000,
        }
    }
}

impl RetryPolicy {
    /// No retries: fail on the first drop.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_nanos: 0,
            max_backoff_nanos: 0,
        }
    }

    /// Backoff before retry number `retry` (1-based): base × 2^(retry−1),
    /// capped.
    pub fn backoff_nanos(&self, retry: u32) -> u64 {
        let exp = retry.saturating_sub(1).min(63);
        self.base_backoff_nanos
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_nanos)
    }
}

struct ChunkEntry<T> {
    start: usize,
    end: usize,
    location: Location,
    data: Mutex<Vec<T>>,
}

/// A partitioned array of `T` with trapped remote reads.
pub struct DistArray<T> {
    chunks: Vec<ChunkEntry<T>>,
    len: usize,
    stats: Arc<TransferStats>,
    faults: Option<Arc<FaultInjector>>,
}

impl<T: Clone> DistArray<T> {
    /// Partition `data` evenly across `locations` (in order), splitting only
    /// on chunk boundaries.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoLocations`] if `locations` is empty.
    pub fn try_partition(data: Vec<T>, locations: &[Location]) -> Result<DistArray<T>, RuntimeError> {
        if locations.is_empty() {
            return Err(RuntimeError::NoLocations);
        }
        let len = data.len();
        let n = locations.len();
        let base = len / n;
        let extra = len % n;
        let mut chunks = Vec::with_capacity(n);
        let mut it = data.into_iter();
        let mut start = 0usize;
        for (i, &loc) in locations.iter().enumerate() {
            let size = base + usize::from(i < extra);
            let chunk: Vec<T> = it.by_ref().take(size).collect();
            chunks.push(ChunkEntry {
                start,
                end: start + size,
                location: loc,
                data: Mutex::new(chunk),
            });
            start += size;
        }
        Ok(DistArray {
            chunks,
            len,
            stats: Arc::new(TransferStats::default()),
            faults: None,
        })
    }

    /// Like [`DistArray::try_partition`], panicking on empty `locations`.
    ///
    /// # Panics
    ///
    /// Panics if `locations` is empty.
    pub fn partition(data: Vec<T>, locations: &[Location]) -> DistArray<T> {
        Self::try_partition(data, locations).expect("at least one location required")
    }

    /// Attach a fault injector; subsequent remote reads consult it.
    pub fn with_faults(mut self, injector: Arc<FaultInjector>) -> DistArray<T> {
        self.faults = Some(injector);
        self
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// Logical length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The directory: `(start, end, location)` per chunk — what §5
    /// broadcasts to every physical instance of the logical array.
    pub fn directory(&self) -> Vec<(usize, usize, Location)> {
        self.chunks
            .iter()
            .map(|c| (c.start, c.end, c.location))
            .collect()
    }

    /// The location owning index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds. Use [`DistArray::try_owner`] for a
    /// fallible lookup.
    pub fn owner(&self, idx: usize) -> Location {
        self.try_owner(idx).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The location owning index `idx`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::IndexOutOfBounds`] when `idx >= len`.
    pub fn try_owner(&self, idx: usize) -> Result<Location, RuntimeError> {
        Ok(self.chunk_of(idx)?.location)
    }

    /// The index range local to `loc` (empty range if none).
    pub fn local_range(&self, loc: Location) -> (usize, usize) {
        self.chunks
            .iter()
            .find(|c| c.location == loc)
            .map(|c| (c.start, c.end))
            .unwrap_or((0, 0))
    }

    /// Read `idx` from the perspective of a worker at `from`: local when the
    /// owning chunk lives there, otherwise trapped, counted and fetched.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds or an injected fault makes the read
    /// unrecoverable. Use [`DistArray::try_read`] or
    /// [`DistArray::read_retrying`] for fallible reads.
    pub fn read(&self, from: Location, idx: usize) -> T {
        self.read_retrying(from, idx, &RetryPolicy::default())
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible read with the default [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// See [`DistArray::read_retrying`].
    pub fn try_read(&self, from: Location, idx: usize) -> Result<T, RuntimeError> {
        self.read_retrying(from, idx, &RetryPolicy::default())
    }

    /// Read `idx` from `from`, retrying trapped remote fetches under
    /// `policy` with capped exponential backoff. Local reads never fail
    /// (local memory is only lost when the node itself dies, which kills
    /// the worker too — that case is handled by chunk re-execution, not
    /// here).
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::IndexOutOfBounds`] when `idx >= len`;
    /// * [`RuntimeError::NodeFailed`] when the owning node is permanently
    ///   down per the attached injector;
    /// * [`RuntimeError::ReadTimeout`] when every attempt was dropped.
    pub fn read_retrying(
        &self,
        from: Location,
        idx: usize,
        policy: &RetryPolicy,
    ) -> Result<T, RuntimeError> {
        let chunk = self.chunk_of(idx)?;
        if chunk.location == from {
            self.stats.local_reads.fetch_add(1, Ordering::Relaxed);
            return Ok(lock_recovering(&chunk.data)[idx - chunk.start].clone());
        }
        // Trapped remote fetch.
        let owner = chunk.location;
        let max_attempts = policy.max_attempts.max(1);
        if let Some(inj) = &self.faults {
            let spike = inj.remote_read_latency_nanos();
            if spike > 0 {
                self.stats.backoff_nanos.fetch_add(spike, Ordering::Relaxed);
            }
            if inj.node_is_down(owner.node) {
                self.stats.failed_reads.fetch_add(1, Ordering::Relaxed);
                return Err(RuntimeError::NodeFailed { node: owner.node });
            }
            for attempt in 0..max_attempts {
                if inj.remote_read_fails(from, owner, idx, attempt) {
                    if attempt + 1 < max_attempts {
                        self.stats.retries.fetch_add(1, Ordering::Relaxed);
                        self.stats
                            .backoff_nanos
                            .fetch_add(policy.backoff_nanos(attempt + 1), Ordering::Relaxed);
                    }
                    continue;
                }
                if attempt > 0 {
                    self.stats.recovered_reads.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(self.complete_remote_read(chunk, idx));
            }
            self.stats.failed_reads.fetch_add(1, Ordering::Relaxed);
            return Err(RuntimeError::ReadTimeout {
                index: idx,
                owner,
                attempts: max_attempts,
            });
        }
        Ok(self.complete_remote_read(chunk, idx))
    }

    fn complete_remote_read(&self, chunk: &ChunkEntry<T>, idx: usize) -> T {
        self.stats.remote_reads.fetch_add(1, Ordering::Relaxed);
        self.stats
            .remote_bytes
            .fetch_add(std::mem::size_of::<T>() as u64, Ordering::Relaxed);
        lock_recovering(&chunk.data)[idx - chunk.start].clone()
    }

    /// Write `idx` from the perspective of a worker at `from` (used when
    /// materializing partitioned collect outputs). Symmetric with
    /// [`DistArray::read`]: remote writes are trapped, counted and
    /// fault-injectable.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds or an injected fault makes the
    /// write unrecoverable. Use [`DistArray::try_write`] or
    /// [`DistArray::write_retrying`] for fallible writes.
    pub fn write(&self, from: Location, idx: usize, value: T) {
        self.write_retrying(from, idx, value, &RetryPolicy::default())
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible write with the default [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// See [`DistArray::write_retrying`].
    pub fn try_write(&self, from: Location, idx: usize, value: T) -> Result<(), RuntimeError> {
        self.write_retrying(from, idx, value, &RetryPolicy::default())
    }

    /// Write `idx` from `from`, retrying trapped remote stores under
    /// `policy` with capped exponential backoff — the mirror image of
    /// [`DistArray::read_retrying`]. Local writes never fail.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::IndexOutOfBounds`] when `idx >= len`;
    /// * [`RuntimeError::NodeFailed`] when the owning node is permanently
    ///   down per the attached injector;
    /// * [`RuntimeError::WriteTimeout`] when every attempt was dropped.
    pub fn write_retrying(
        &self,
        from: Location,
        idx: usize,
        value: T,
        policy: &RetryPolicy,
    ) -> Result<(), RuntimeError> {
        let chunk = self.chunk_of(idx)?;
        if chunk.location == from {
            self.stats.local_writes.fetch_add(1, Ordering::Relaxed);
            lock_recovering(&chunk.data)[idx - chunk.start] = value;
            return Ok(());
        }
        // Trapped remote store.
        let owner = chunk.location;
        let max_attempts = policy.max_attempts.max(1);
        if let Some(inj) = &self.faults {
            let spike = inj.remote_read_latency_nanos();
            if spike > 0 {
                self.stats.backoff_nanos.fetch_add(spike, Ordering::Relaxed);
            }
            if inj.node_is_down(owner.node) {
                self.stats.failed_writes.fetch_add(1, Ordering::Relaxed);
                return Err(RuntimeError::NodeFailed { node: owner.node });
            }
            for attempt in 0..max_attempts {
                if inj.remote_read_fails(from, owner, idx, attempt) {
                    if attempt + 1 < max_attempts {
                        self.stats.retries.fetch_add(1, Ordering::Relaxed);
                        self.stats
                            .backoff_nanos
                            .fetch_add(policy.backoff_nanos(attempt + 1), Ordering::Relaxed);
                    }
                    continue;
                }
                self.complete_remote_write(chunk, idx, value);
                return Ok(());
            }
            self.stats.failed_writes.fetch_add(1, Ordering::Relaxed);
            return Err(RuntimeError::WriteTimeout {
                index: idx,
                owner,
                attempts: max_attempts,
            });
        }
        self.complete_remote_write(chunk, idx, value);
        Ok(())
    }

    fn complete_remote_write(&self, chunk: &ChunkEntry<T>, idx: usize, value: T) {
        self.stats.remote_writes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .remote_bytes
            .fetch_add(std::mem::size_of::<T>() as u64, Ordering::Relaxed);
        lock_recovering(&chunk.data)[idx - chunk.start] = value;
    }

    /// Shared transfer counters.
    pub fn stats(&self) -> Arc<TransferStats> {
        Arc::clone(&self.stats)
    }

    /// Reassemble the logical array (gathers all chunks).
    pub fn gather(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for c in &self.chunks {
            out.extend(lock_recovering(&c.data).iter().cloned());
        }
        out
    }

    fn chunk_of(&self, idx: usize) -> Result<&ChunkEntry<T>, RuntimeError> {
        if idx >= self.len {
            return Err(RuntimeError::IndexOutOfBounds {
                index: idx,
                len: self.len,
            });
        }
        // Directory lookup: binary search over chunk starts.
        let mut lo = 0usize;
        let mut hi = self.chunks.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.chunks[mid].start <= idx {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(&self.chunks[lo])
    }
}

/// Lock a chunk, recovering from poisoning: workers may panic mid-loop
/// under fault injection, and chunk data is only ever read whole or
/// overwritten whole, so the payload is always consistent.
fn lock_recovering<T>(m: &Mutex<Vec<T>>) -> std::sync::MutexGuard<'_, Vec<T>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn locs(n: usize) -> Vec<Location> {
        (0..n)
            .map(|i| Location {
                node: i / 4,
                socket: i % 4,
            })
            .collect()
    }

    #[test]
    fn partition_covers_everything_in_order() {
        let a = DistArray::partition((0..10).collect::<Vec<i32>>(), &locs(3));
        assert_eq!(a.len(), 10);
        let dir = a.directory();
        assert_eq!(dir.len(), 3);
        assert_eq!(dir[0].0, 0);
        assert_eq!(dir.last().unwrap().1, 10);
        // Contiguous, non-overlapping.
        for w in dir.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        assert_eq!(a.gather(), (0..10).collect::<Vec<i32>>());
    }

    #[test]
    fn local_vs_remote_reads_are_counted() {
        let a = DistArray::partition((0..100).collect::<Vec<i64>>(), &locs(4));
        let first = a.owner(0);
        // Local read.
        assert_eq!(a.read(first, 0), 0);
        // Remote read (index owned by the last location).
        assert_eq!(a.read(first, 99), 99);
        let (local, remote, bytes) = a.stats().snapshot();
        assert_eq!(local, 1);
        assert_eq!(remote, 1);
        assert_eq!(bytes, 8);
    }

    #[test]
    fn owner_matches_directory() {
        let a = DistArray::partition((0..17).collect::<Vec<u8>>(), &locs(4));
        for (start, end, loc) in a.directory() {
            for i in start..end {
                assert_eq!(a.owner(i), loc);
            }
        }
    }

    #[test]
    fn local_range_lookup() {
        let a = DistArray::partition((0..12).collect::<Vec<i32>>(), &locs(3));
        let dir = a.directory();
        for (start, end, loc) in dir {
            assert_eq!(a.local_range(loc), (start, end));
        }
        assert_eq!(a.local_range(Location { node: 9, socket: 9 }), (0, 0));
    }

    #[test]
    fn writes_land_in_right_chunk() {
        let a = DistArray::partition(vec![0i64; 10], &locs(2));
        a.write(Location::root(), 7, 42);
        assert_eq!(a.read(Location::root(), 7), 42);
        assert_eq!(a.gather()[7], 42);
    }

    #[test]
    fn local_vs_remote_writes_are_counted() {
        let a = DistArray::partition(vec![0i64; 100], &locs(4));
        let first = a.owner(0);
        a.write(first, 0, 1);
        a.write(first, 99, 2);
        let (local_w, remote_w) = a.stats().write_snapshot();
        assert_eq!(local_w, 1);
        assert_eq!(remote_w, 1);
        assert_eq!(a.read(a.owner(99), 99), 2);
    }

    #[test]
    fn transient_drops_on_writes_recover_with_retries() {
        let locations: Vec<Location> = (0..4).map(|node| Location { node, socket: 0 }).collect();
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(11).drop_remote_reads(0.5)));
        let a = DistArray::partition(vec![0i64; 1000], &locations).with_faults(inj);
        let me = Location { node: 0, socket: 0 };
        let generous = RetryPolicy {
            max_attempts: 40,
            base_backoff_nanos: 100,
            max_backoff_nanos: 10_000,
        };
        for i in 0..1000 {
            assert_eq!(a.write_retrying(me, i, i as i64, &generous), Ok(()));
        }
        assert_eq!(a.gather(), (0..1000).collect::<Vec<i64>>());
        let f = a.stats().fault_snapshot();
        assert!(f.retries > 0, "50% drop rate must cause retries: {f:?}");
        assert_eq!(f.failed_writes, 0);
    }

    #[test]
    fn certain_drop_write_times_out_with_counted_failure() {
        let locations: Vec<Location> = (0..2).map(|node| Location { node, socket: 0 }).collect();
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(3).drop_remote_reads(1.0)));
        let a = DistArray::partition(vec![5i64; 10], &locations).with_faults(inj);
        let me = Location { node: 0, socket: 0 };
        let err = a.write_retrying(me, 9, 7, &RetryPolicy::default());
        assert_eq!(
            err,
            Err(RuntimeError::WriteTimeout {
                index: 9,
                owner: Location { node: 1, socket: 0 },
                attempts: 4,
            })
        );
        assert_eq!(a.stats().fault_snapshot().failed_writes, 1);
        // The target chunk is untouched.
        assert_eq!(a.gather()[9], 5);
        // Local writes are unaffected.
        assert_eq!(a.write_retrying(me, 0, 8, &RetryPolicy::default()), Ok(()));
    }

    #[test]
    fn dead_owner_write_fails_fast() {
        let locations: Vec<Location> = (0..2).map(|node| Location { node, socket: 0 }).collect();
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(0).kill_node(1, 0)));
        let a = DistArray::partition(vec![1i64; 10], &locations).with_faults(inj);
        let me = Location { node: 0, socket: 0 };
        assert_eq!(
            a.write_retrying(me, 9, 3, &RetryPolicy::default()),
            Err(RuntimeError::NodeFailed { node: 1 })
        );
        // Writes local to the survivor still work.
        assert_eq!(a.write_retrying(me, 0, 3, &RetryPolicy::default()), Ok(()));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let a = DistArray::partition(vec![1i32], &locs(1));
        a.read(Location::root(), 5);
    }

    #[test]
    fn oob_read_is_a_typed_error() {
        let a = DistArray::partition(vec![1i32], &locs(1));
        assert_eq!(
            a.try_read(Location::root(), 5),
            Err(RuntimeError::IndexOutOfBounds { index: 5, len: 1 })
        );
        assert_eq!(
            a.try_owner(5),
            Err(RuntimeError::IndexOutOfBounds { index: 5, len: 1 })
        );
        assert_eq!(
            a.try_write(Location::root(), 5, 0),
            Err(RuntimeError::IndexOutOfBounds { index: 5, len: 1 })
        );
    }

    #[test]
    fn empty_locations_is_a_typed_error() {
        assert_eq!(
            DistArray::try_partition(vec![1i32], &[]).err(),
            Some(RuntimeError::NoLocations)
        );
    }

    #[test]
    fn uneven_partition_sizes_differ_by_at_most_one() {
        let a = DistArray::partition((0..11).collect::<Vec<i32>>(), &locs(4));
        let sizes: Vec<usize> = a.directory().iter().map(|(s, e, _)| e - s).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 11);
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn transient_drops_recover_with_retries() {
        let locations: Vec<Location> = (0..4).map(|node| Location { node, socket: 0 }).collect();
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(11).drop_remote_reads(0.5)));
        let a = DistArray::partition((0..1000i64).collect(), &locations).with_faults(inj);
        let me = Location { node: 0, socket: 0 };
        let generous = RetryPolicy {
            max_attempts: 40,
            base_backoff_nanos: 100,
            max_backoff_nanos: 10_000,
        };
        for i in 0..1000 {
            assert_eq!(a.read_retrying(me, i, &generous), Ok(i as i64));
        }
        let f = a.stats().fault_snapshot();
        assert!(f.retries > 0, "50% drop rate must cause retries: {f:?}");
        assert_eq!(f.failed_reads, 0);
        assert!(f.recovered_reads > 0);
        assert!(f.backoff_nanos > 0, "backoff is charged: {f:?}");
    }

    #[test]
    fn certain_drop_times_out_with_counted_failure() {
        let locations: Vec<Location> = (0..2).map(|node| Location { node, socket: 0 }).collect();
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(3).drop_remote_reads(1.0)));
        let a = DistArray::partition(vec![5i64; 10], &locations).with_faults(inj);
        let me = Location { node: 0, socket: 0 };
        let err = a.read_retrying(me, 9, &RetryPolicy::default());
        assert_eq!(
            err,
            Err(RuntimeError::ReadTimeout {
                index: 9,
                owner: Location { node: 1, socket: 0 },
                attempts: 4,
            })
        );
        let f = a.stats().fault_snapshot();
        assert_eq!(f.failed_reads, 1);
        assert_eq!(f.retries, 3, "three retries after the first attempt");
        // Local reads are unaffected.
        assert_eq!(a.read_retrying(me, 0, &RetryPolicy::default()), Ok(5));
    }

    #[test]
    fn dead_owner_fails_fast() {
        let locations: Vec<Location> = (0..2).map(|node| Location { node, socket: 0 }).collect();
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(0).kill_node(1, 0)));
        let a = DistArray::partition(vec![1i64; 10], &locations).with_faults(inj);
        let me = Location { node: 0, socket: 0 };
        assert_eq!(
            a.read_retrying(me, 9, &RetryPolicy::default()),
            Err(RuntimeError::NodeFailed { node: 1 })
        );
        // Reads local to the survivor still work.
        assert_eq!(a.read_retrying(me, 0, &RetryPolicy::default()), Ok(1));
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff_nanos: 100,
            max_backoff_nanos: 1_000,
        };
        assert_eq!(p.backoff_nanos(1), 100);
        assert_eq!(p.backoff_nanos(2), 200);
        assert_eq!(p.backoff_nanos(3), 400);
        assert_eq!(p.backoff_nanos(4), 800);
        assert_eq!(p.backoff_nanos(5), 1_000, "capped");
        assert_eq!(p.backoff_nanos(60), 1_000, "still capped far out");
    }
}
