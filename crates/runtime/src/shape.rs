//! Abstract shape evaluation: run a program over *sizes* instead of data.
//!
//! The cost model needs iteration counts and data-structure sizes, but loop
//! sizes in the IR are ordinary expressions (`len(x)`, `matrix.rows`). This
//! module evaluates a program abstractly, mapping every value to its
//! [`ShapeVal`]: integers stay concrete when derivable from the input
//! shapes, collections carry element counts, everything else collapses to a
//! scalar.

use dmll_core::{Block, Const, Def, Exp, Gen, Program, StructTy, Sym};
use std::collections::HashMap;

/// The shape of a runtime value.
#[derive(Clone, Debug, PartialEq)]
pub enum ShapeVal {
    /// A concrete integer (sizes, indices derived from constants).
    Int(i64),
    /// A scalar of unknown value (floats, data-dependent ints, bools).
    Scalar,
    /// A collection with a known element count.
    Arr {
        /// Number of elements.
        len: i64,
        /// Shape of each element.
        elem: Box<ShapeVal>,
    },
    /// A record.
    Struct {
        /// The struct type.
        ty: StructTy,
        /// Field shapes in declaration order.
        fields: Vec<ShapeVal>,
    },
    /// A tuple.
    Tuple(Vec<ShapeVal>),
    /// A bucket collection with an estimated bucket count.
    Buckets {
        /// Estimated number of distinct keys.
        count: i64,
        /// Shape of each bucket value.
        value: Box<ShapeVal>,
    },
}

impl ShapeVal {
    /// Shape of a `Coll[Double]` of the given length.
    pub fn f64_arr(len: i64) -> ShapeVal {
        ShapeVal::Arr {
            len,
            elem: Box::new(ShapeVal::Scalar),
        }
    }

    /// Shape of a `Coll[Int]` of the given length.
    pub fn i64_arr(len: i64) -> ShapeVal {
        ShapeVal::Arr {
            len,
            elem: Box::new(ShapeVal::Scalar),
        }
    }

    /// Shape of a `MatrixF64` (see `dmll_frontend::matrix`).
    pub fn matrix(rows: i64, cols: i64) -> ShapeVal {
        ShapeVal::Struct {
            ty: StructTy::new(
                "MatrixF64",
                vec![
                    ("data".into(), dmll_core::Ty::arr(dmll_core::Ty::F64)),
                    ("rows".into(), dmll_core::Ty::I64),
                    ("cols".into(), dmll_core::Ty::I64),
                ],
            ),
            fields: vec![
                ShapeVal::f64_arr(rows * cols),
                ShapeVal::Int(rows),
                ShapeVal::Int(cols),
            ],
        }
    }

    /// Shape of a `Coll[S]` of records.
    pub fn struct_arr(len: i64, ty: StructTy) -> ShapeVal {
        let fields = ty.fields.iter().map(|_| ShapeVal::Scalar).collect();
        ShapeVal::Arr {
            len,
            elem: Box::new(ShapeVal::Struct { ty, fields }),
        }
    }

    /// The concrete integer, if known.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ShapeVal::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Element count, if this is a collection.
    pub fn len(&self) -> Option<i64> {
        match self {
            ShapeVal::Arr { len, .. } => Some(*len),
            _ => None,
        }
    }

    /// True when this is a collection with zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// Approximate in-memory size in bytes (8 bytes per scalar).
    pub fn bytes(&self) -> f64 {
        match self {
            ShapeVal::Int(_) | ShapeVal::Scalar => 8.0,
            ShapeVal::Arr { len, elem } => *len as f64 * elem.bytes(),
            ShapeVal::Struct { fields, .. } => fields.iter().map(ShapeVal::bytes).sum(),
            ShapeVal::Tuple(fs) => fs.iter().map(ShapeVal::bytes).sum(),
            ShapeVal::Buckets { count, value } => *count as f64 * (value.bytes() + 8.0),
        }
    }
}

/// Configuration for abstract evaluation.
#[derive(Clone, Copy, Debug)]
pub struct ShapeConfig {
    /// Estimated distinct-key count for bucket generators.
    pub bucket_hint: i64,
    /// Estimated selectivity of generator conditions (fraction of the range
    /// that passes), used for filtered collect lengths.
    pub selectivity: f64,
}

impl Default for ShapeConfig {
    fn default() -> Self {
        ShapeConfig {
            bucket_hint: 16,
            selectivity: 1.0,
        }
    }
}

/// A shape environment keyed by symbol.
pub type ShapeEnv = HashMap<Sym, ShapeVal>;

/// Build the initial environment from named input shapes.
///
/// # Panics
///
/// Panics if an input shape is missing — profiles require every input.
pub fn seed_env(program: &Program, inputs: &[(&str, ShapeVal)]) -> ShapeEnv {
    let mut env = ShapeEnv::new();
    for input in &program.inputs {
        let shape = inputs
            .iter()
            .find(|(n, _)| *n == input.name)
            .map(|(_, s)| s.clone())
            .unwrap_or_else(|| panic!("no shape supplied for input {:?}", input.name));
        env.insert(input.sym, shape);
    }
    env
}

/// Abstractly evaluate an expression.
pub fn eval_exp(e: &Exp, env: &ShapeEnv) -> ShapeVal {
    match e {
        Exp::Const(Const::I64(v)) => ShapeVal::Int(*v),
        Exp::Const(_) => ShapeVal::Scalar,
        Exp::Sym(s) => env.get(s).cloned().unwrap_or(ShapeVal::Scalar),
    }
}

/// Abstractly evaluate a block given parameter shapes, extending `env` with
/// every statement's shape (symbols are globally unique, so the caller can
/// inspect intermediates afterwards).
pub fn eval_block(
    b: &Block,
    params: &[ShapeVal],
    env: &mut ShapeEnv,
    cfg: &ShapeConfig,
) -> ShapeVal {
    for (p, s) in b.params.iter().zip(params) {
        env.insert(*p, s.clone());
    }
    for stmt in &b.stmts {
        let shapes = eval_def(&stmt.def, env, cfg);
        for (sym, sh) in stmt.lhs.iter().zip(shapes) {
            env.insert(*sym, sh);
        }
    }
    eval_exp(&b.result, env)
}

/// Abstractly evaluate a single definition.
pub fn eval_def(def: &Def, env: &mut ShapeEnv, cfg: &ShapeConfig) -> Vec<ShapeVal> {
    let one = |s: ShapeVal| vec![s];
    match def {
        Def::Prim { op, args } => {
            use dmll_core::PrimOp::*;
            let vals: Vec<ShapeVal> = args.iter().map(|a| eval_exp(a, env)).collect();
            let ints: Option<Vec<i64>> = vals.iter().map(ShapeVal::as_int).collect();
            match (op, ints) {
                (Add, Some(v)) => one(ShapeVal::Int(v[0].wrapping_add(v[1]))),
                (Sub, Some(v)) => one(ShapeVal::Int(v[0].wrapping_sub(v[1]))),
                (Mul, Some(v)) => one(ShapeVal::Int(v[0].wrapping_mul(v[1]))),
                (Div, Some(v)) if v[1] != 0 => one(ShapeVal::Int(v[0] / v[1])),
                (Rem, Some(v)) if v[1] != 0 => one(ShapeVal::Int(v[0] % v[1])),
                (Min, Some(v)) => one(ShapeVal::Int(v[0].min(v[1]))),
                (Max, Some(v)) => one(ShapeVal::Int(v[0].max(v[1]))),
                (Mux, _) => {
                    // Join the branches; equal shapes stay precise.
                    let a = eval_exp(&args[1], env);
                    let b = eval_exp(&args[2], env);
                    one(if a == b { a } else { ShapeVal::Scalar })
                }
                _ => one(ShapeVal::Scalar),
            }
        }
        Def::Math { .. } | Def::Cast { .. } => one(ShapeVal::Scalar),
        Def::ArrayLen(e) => one(match eval_exp(e, env) {
            ShapeVal::Arr { len, .. } => ShapeVal::Int(len),
            _ => ShapeVal::Scalar,
        }),
        Def::ArrayRead { arr, .. } => one(match eval_exp(arr, env) {
            ShapeVal::Arr { elem, .. } => *elem,
            _ => ShapeVal::Scalar,
        }),
        Def::TupleNew(es) => one(ShapeVal::Tuple(
            es.iter().map(|e| eval_exp(e, env)).collect(),
        )),
        Def::TupleGet { tuple, index } => one(match eval_exp(tuple, env) {
            ShapeVal::Tuple(fs) => fs.get(*index).cloned().unwrap_or(ShapeVal::Scalar),
            _ => ShapeVal::Scalar,
        }),
        Def::StructNew { ty, fields } => one(ShapeVal::Struct {
            ty: ty.clone(),
            fields: fields.iter().map(|e| eval_exp(e, env)).collect(),
        }),
        Def::StructGet { obj, field } => one(match eval_exp(obj, env) {
            ShapeVal::Struct { ty, fields } => ty
                .field_index(field)
                .and_then(|i| fields.get(i).cloned())
                .unwrap_or(ShapeVal::Scalar),
            _ => ShapeVal::Scalar,
        }),
        Def::Flatten(e) => one(match eval_exp(e, env) {
            ShapeVal::Arr { len, elem } => match *elem {
                ShapeVal::Arr {
                    len: inner,
                    elem: ie,
                } => ShapeVal::Arr {
                    len: len * inner,
                    elem: ie,
                },
                _ => ShapeVal::Scalar,
            },
            _ => ShapeVal::Scalar,
        }),
        Def::BucketValues(e) => one(match eval_exp(e, env) {
            ShapeVal::Buckets { count, value } => ShapeVal::Arr {
                len: count,
                elem: value,
            },
            _ => ShapeVal::Scalar,
        }),
        Def::BucketKeys(e) => one(match eval_exp(e, env) {
            ShapeVal::Buckets { count, .. } => ShapeVal::Arr {
                len: count,
                elem: Box::new(ShapeVal::Scalar),
            },
            _ => ShapeVal::Scalar,
        }),
        Def::BucketLen(e) => one(match eval_exp(e, env) {
            ShapeVal::Buckets { count, .. } => ShapeVal::Int(count),
            _ => ShapeVal::Scalar,
        }),
        Def::BucketGet { buckets, .. } => one(match eval_exp(buckets, env) {
            ShapeVal::Buckets { value, .. } => *value,
            _ => ShapeVal::Scalar,
        }),
        Def::Loop(ml) => eval_loop(ml, env, cfg),
        Def::Extern { .. } => one(ShapeVal::Scalar),
    }
}

/// Abstractly evaluate a multiloop, producing one output shape per
/// generator.
pub fn eval_loop(
    ml: &dmll_core::Multiloop,
    env: &mut ShapeEnv,
    cfg: &ShapeConfig,
) -> Vec<ShapeVal> {
    let n = eval_exp(&ml.size, env).as_int().unwrap_or(0).max(0);
    ml.gens
        .iter()
        .map(|gen| {
            // Evaluate component blocks once with an abstract index to learn
            // the element shape.
            if let Some(c) = gen.cond() {
                eval_block(c, &[ShapeVal::Scalar], env, cfg);
            }
            let key_shape = gen
                .key()
                .map(|k| eval_block(k, &[ShapeVal::Scalar], env, cfg));
            let _ = key_shape;
            let v = eval_block(gen.value(), &[ShapeVal::Scalar], env, cfg);
            if let Some(r) = gen.reducer() {
                eval_block(r, &[v.clone(), v.clone()], env, cfg);
            }
            let out_len = if gen.cond().is_some() {
                ((n as f64) * cfg.selectivity).round() as i64
            } else {
                n
            };
            match gen {
                Gen::Collect { .. } => ShapeVal::Arr {
                    len: out_len,
                    elem: Box::new(v),
                },
                Gen::Reduce { .. } => v,
                Gen::BucketCollect { .. } => {
                    let count = cfg.bucket_hint.min(n.max(1));
                    ShapeVal::Buckets {
                        count,
                        value: Box::new(ShapeVal::Arr {
                            len: (n / count.max(1)).max(1),
                            elem: Box::new(v),
                        }),
                    }
                }
                Gen::BucketReduce { .. } => ShapeVal::Buckets {
                    count: cfg.bucket_hint.min(n.max(1)),
                    value: Box::new(v),
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::{LayoutHint, Ty};
    use dmll_frontend::Stage;

    #[test]
    fn sizes_flow_through_maps() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let m = st.map(&x, |st, e| st.mul(e, e));
        let p = st.finish(&m);
        let mut env = seed_env(&p, &[("x", ShapeVal::f64_arr(1000))]);
        let cfg = ShapeConfig::default();
        let out = eval_block(&p.body.clone(), &[], &mut env, &cfg);
        assert_eq!(out.len(), Some(1000));
    }

    #[test]
    fn matrix_shapes() {
        let m = ShapeVal::matrix(500, 100);
        assert_eq!(m.bytes(), 500.0 * 100.0 * 8.0 + 16.0);
        let mut st = Stage::new();
        let mm = st.input_matrix("m", LayoutHint::Partitioned);
        let rows = mm.rows(&mut st);
        let p = st.finish(&rows);
        let mut env = seed_env(&p, &[("m", ShapeVal::matrix(500, 100))]);
        let out = eval_block(&p.body.clone(), &[], &mut env, &ShapeConfig::default());
        assert_eq!(out.as_int(), Some(500));
    }

    #[test]
    fn filtered_collect_uses_selectivity() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let f = st.filter(&x, |st, e| {
            let z = st.lit_f(0.0);
            st.gt(e, &z)
        });
        let p = st.finish(&f);
        let mut env = seed_env(&p, &[("x", ShapeVal::f64_arr(100))]);
        let cfg = ShapeConfig {
            selectivity: 0.25,
            ..Default::default()
        };
        let out = eval_block(&p.body.clone(), &[], &mut env, &cfg);
        assert_eq!(out.len(), Some(25));
    }

    #[test]
    fn bucket_hint_bounds_groups() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Local);
        let g = st.group_by(&x, |st, e| {
            let k = st.lit_i(4);
            st.rem(e, &k)
        });
        let vals = st.bucket_values(&g);
        let p = st.finish(&vals);
        let mut env = seed_env(&p, &[("x", ShapeVal::i64_arr(400))]);
        let cfg = ShapeConfig {
            bucket_hint: 4,
            ..Default::default()
        };
        let out = eval_block(&p.body.clone(), &[], &mut env, &cfg);
        assert_eq!(out.len(), Some(4));
    }

    #[test]
    #[should_panic(expected = "no shape supplied")]
    fn missing_shape_panics() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let s = st.sum(&x);
        let p = st.finish(&s);
        let _ = seed_env(&p, &[]);
    }

    #[test]
    fn integer_arithmetic_stays_concrete() {
        let mut st = Stage::new();
        let a = st.lit_i(6);
        let b = st.lit_i(4);
        let c = st.mul(&a, &b);
        let d = st.lit_i(5);
        let e = st.add(&c, &d);
        let p = st.finish(&e);
        let mut env = seed_env(&p, &[]);
        let out = eval_block(&p.body.clone(), &[], &mut env, &ShapeConfig::default());
        assert_eq!(out.as_int(), Some(29));
    }
}
