//! Property-based tests for the fault-tolerance layer: replanning after
//! node loss always preserves exact iteration coverage, and fault injection
//! is a pure function of the plan seed (bit-deterministic under any query
//! order — the property that makes failure scenarios replayable).

use dmll_runtime::{plan_loop, ClusterSpec, FaultInjector, FaultPlan, Location, MachineSpec};
use proptest::prelude::*;

fn cluster_of(nodes: usize) -> ClusterSpec {
    ClusterSpec {
        nodes,
        ..ClusterSpec::single(MachineSpec::m1_xlarge())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any loop size, cluster, over-decomposition factor and non-empty
    /// surviving subset, the replanned schedule still covers `0..n` exactly
    /// once and places nothing on a dead node.
    #[test]
    fn replan_covers_for_any_survivor_subset(
        iterations in 1i64..50_000,
        nodes in 2usize..9,
        chunks_per_core in 1usize..4,
        mask_raw in 0u32..256,
    ) {
        let cluster = cluster_of(nodes);
        // Clamp the failure mask so at least one node survives.
        let full = (1u32 << nodes) - 1;
        let mask = mask_raw & full;
        let mask = if mask == full { mask & !1 } else { mask };
        let failed: Vec<usize> = (0..nodes).filter(|n| mask >> n & 1 == 1).collect();

        let plan = plan_loop(iterations, &cluster, None, chunks_per_core);
        prop_assert!(plan.covers(iterations));
        let replanned = plan.replan(&failed, &cluster, None).unwrap();
        prop_assert!(replanned.covers(iterations), "coverage after losing {failed:?}");
        prop_assert!(replanned.chunks.iter().all(|c| !failed.contains(&c.node)));
        prop_assert_eq!(replanned.chunks.len(), plan.chunks.len());
    }

    /// Replanning with a directory keeps coverage too, and every chunk
    /// whose range is owned by a surviving node lands on that owner.
    #[test]
    fn replan_with_directory_covers_and_aligns(
        per_node in 10i64..2_000,
        mask_raw in 0u32..15,
    ) {
        let nodes = 4;
        let cluster = cluster_of(nodes);
        let n = per_node * nodes as i64;
        let dir: Vec<(i64, i64, usize)> = (0..nodes)
            .map(|k| (k as i64 * per_node, (k as i64 + 1) * per_node, k))
            .collect();
        let failed: Vec<usize> = (0..nodes).filter(|k| mask_raw >> k & 1 == 1).collect();
        if failed.len() == nodes {
            return Ok(());
        }
        let plan = plan_loop(n, &cluster, Some(&dir), 2);
        let replanned = plan.replan(&failed, &cluster, Some(&dir)).unwrap();
        prop_assert!(replanned.covers(n));
        prop_assert!(replanned.chunks.iter().all(|c| !failed.contains(&c.node)));
    }

    /// Fault-injection decisions are a pure function of `(plan, query)`:
    /// two injectors with the same plan agree on every query even when the
    /// queries arrive in opposite orders (thread-interleaving independence).
    #[test]
    fn fault_injection_is_bit_deterministic(
        seed in any::<u64>(),
        permille in 0u32..1001,
        queries in prop::collection::vec(
            (0usize..8, 0usize..8, 0usize..10_000, 0u32..5),
            1usize..50,
        ),
    ) {
        let plan = FaultPlan::new(seed)
            .drop_remote_reads(f64::from(permille) / 1000.0)
            .kill_node(3, 10);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let loc = |node: usize| Location { node, socket: 0 };
        let forward: Vec<bool> = queries
            .iter()
            .map(|&(f, o, i, at)| a.remote_read_fails(loc(f), loc(o), i, at))
            .collect();
        let mut backward: Vec<bool> = queries
            .iter()
            .rev()
            .map(|&(f, o, i, at)| b.remote_read_fails(loc(f), loc(o), i, at))
            .collect();
        backward.reverse();
        prop_assert_eq!(forward, backward, "decisions independent of query order");
    }

    /// Scripted node deaths are pure functions of abstract time: the set of
    /// failed nodes at any step matches the plan, regardless of how the
    /// step counter got there.
    #[test]
    fn node_death_depends_only_on_step(
        deaths in prop::collection::vec((0usize..6, 0u64..20), 0usize..5),
        at in 0u64..25,
    ) {
        let mut plan = FaultPlan::new(0);
        for &(node, step) in &deaths {
            plan = plan.kill_node(node, step);
        }
        let inj = FaultInjector::new(plan.clone());
        for _ in 0..at {
            inj.advance_step();
        }
        prop_assert_eq!(inj.failed_nodes(), plan.failed_nodes_at(at));
        for &(node, step) in &deaths {
            prop_assert_eq!(inj.node_is_down(node), step <= at || deaths
                .iter()
                .any(|&(n2, s2)| n2 == node && s2 <= at));
        }
    }
}

/// Exhaustive companion to the random subset property: a 4-node cluster,
/// every non-empty proper failure subset (so every non-empty surviving
/// subset), coverage must hold for each.
#[test]
fn replan_covers_for_every_survivor_subset_exhaustive() {
    let cluster = cluster_of(4);
    let n = 12_345;
    let plan = plan_loop(n, &cluster, None, 2);
    for mask in 0u32..15 {
        let failed: Vec<usize> = (0..4).filter(|k| mask >> k & 1 == 1).collect();
        let replanned = plan
            .replan(&failed, &cluster, None)
            .unwrap_or_else(|e| panic!("replan {failed:?}: {e}"));
        assert!(replanned.covers(n), "failed={failed:?}");
        assert!(replanned.chunks.iter().all(|c| !failed.contains(&c.node)));
    }
}
