//! Property-based tests for the cluster data plane's transport: send
//! outcomes and charged costs are a pure function of the fault plan and
//! message ids (replayable scenarios), intra-node sends are free and
//! infallible, dead targets surface typed errors, and retries never
//! exceed the policy's budget.

use dmll_runtime::{
    ClusterPlane, ClusterSpec, FaultInjector, FaultPlan, MachineSpec, RetryPolicy, RuntimeError,
};
use std::sync::Arc;

use proptest::prelude::*;

fn plane_of(nodes: usize, plan: FaultPlan, retry: RetryPolicy) -> ClusterPlane {
    let spec = ClusterSpec {
        nodes,
        ..ClusterSpec::single(MachineSpec::m1_xlarge())
    };
    ClusterPlane::new(spec, Arc::new(FaultInjector::new(plan)), retry)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Two planes built from the same fault plan agree on every send's
    /// outcome *and* its simulated cost — the bit-determinism that makes
    /// injected failure scenarios replayable.
    #[test]
    fn send_outcomes_are_deterministic(
        seed in any::<u64>(),
        permille in 0u32..600,
        sends in prop::collection::vec(
            (0usize..6, 0usize..6, 0u64..10_000, 0u64..4_096),
            1usize..60,
        ),
    ) {
        let plan = FaultPlan::new(seed).drop_remote_reads(f64::from(permille) / 1000.0);
        let a = plane_of(6, plan.clone(), RetryPolicy::default());
        let b = plane_of(6, plan, RetryPolicy::default());
        for &(from, to, msg, bytes) in &sends {
            prop_assert_eq!(
                a.send(from, to, msg, bytes),
                b.send(from, to, msg, bytes),
                "send ({}, {}, {}) outcome must replay identically", from, to, msg
            );
        }
        let (sa, sb) = (a.stats().net_snapshot(), b.stats().net_snapshot());
        prop_assert_eq!(sa.sends, sb.sends);
        prop_assert_eq!(sa.send_retries, sb.send_retries);
        prop_assert_eq!(sa.failed_sends, sb.failed_sends);
        prop_assert_eq!(sa.network_nanos, sb.network_nanos);
    }

    /// Intra-node sends cost nothing and never fail, even under certain
    /// link loss and with the node itself scripted dead: a message that
    /// never leaves the machine has no link to flake.
    #[test]
    fn intra_node_sends_are_free_and_infallible(
        node in 0usize..6,
        msg in any::<u64>(),
        bytes in 0u64..1_000_000,
        step in 0u64..5,
    ) {
        let plan = FaultPlan::new(1).drop_remote_reads(1.0).kill_node(node, step);
        let p = plane_of(6, plan, RetryPolicy::none());
        for _ in 0..step {
            p.injector().advance_step();
        }
        prop_assert_eq!(p.send(node, node, msg, bytes), Ok(0));
        prop_assert_eq!(p.stats().net_snapshot().network_nanos, 0);
    }

    /// Sending to a node that is down at the current step fails fast with
    /// the typed `NodeFailed` error — never a panic, never a retry loop.
    #[test]
    fn dead_targets_surface_typed_errors(
        victim in 1usize..6,
        from in 0usize..6,
        msg in any::<u64>(),
    ) {
        let p = plane_of(6, FaultPlan::new(2).kill_node(victim, 1), RetryPolicy::default());
        p.injector().advance_step();
        if from == victim {
            return Ok(());
        }
        prop_assert_eq!(
            p.send(from, victim, msg, 64),
            Err(RuntimeError::NodeFailed { node: victim })
        );
        let snap = p.stats().net_snapshot();
        prop_assert_eq!(snap.failed_sends, 1);
        prop_assert_eq!(snap.send_retries, 0, "dead targets are not retried");
    }

    /// Retries are bounded by the policy: across any message batch under
    /// any flake rate, recorded retries never exceed `(max_attempts - 1)`
    /// per send, and every outcome is `Ok` or the typed `SendTimeout`.
    #[test]
    fn retries_respect_the_budget(
        seed in any::<u64>(),
        permille in 0u32..1_001,
        max_attempts in 1u32..6,
        sends in prop::collection::vec((0u64..10_000, 1u64..2_048), 1usize..40),
    ) {
        let plan = FaultPlan::new(seed).drop_remote_reads(f64::from(permille) / 1000.0);
        let retry = RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        };
        let p = plane_of(4, plan, retry);
        let mut timeouts = 0u64;
        for &(msg, bytes) in &sends {
            match p.send(0, 1, msg, bytes) {
                Ok(_) => {}
                Err(RuntimeError::SendTimeout { from, to, attempts }) => {
                    prop_assert_eq!((from, to), (0, 1));
                    prop_assert_eq!(attempts, max_attempts);
                    timeouts += 1;
                }
                Err(other) => {
                    return Err(TestCaseError::fail(format!("unexpected error: {other:?}")));
                }
            }
        }
        let snap = p.stats().net_snapshot();
        prop_assert_eq!(snap.failed_sends, timeouts);
        prop_assert!(
            snap.send_retries <= sends.len() as u64 * u64::from(max_attempts - 1),
            "retries {} exceed budget", snap.send_retries
        );
        if permille == 1_000 {
            prop_assert_eq!(timeouts, sends.len() as u64, "certain loss always times out");
        }
    }
}
