//! Property-based tests for the supervision layer: quarantine-aware
//! replanning never hands recovered work to a quarantined node, exhausted
//! survivor sets surface as typed errors, the circuit breaker's state
//! machine obeys its invariants under arbitrary outcome sequences, and the
//! half-open probe is exclusive — one probe, one decision — no matter how
//! many threads race the breaker.

use dmll_runtime::{
    plan_loop, ClusterSpec, MachineSpec, Quarantine, QuarantinePolicy, RuntimeError,
};
use proptest::prelude::*;
use std::sync::{Arc, Barrier};

fn cluster_of(nodes: usize) -> ClusterSpec {
    ClusterSpec {
        nodes,
        ..ClusterSpec::single(MachineSpec::m1_xlarge())
    }
}

fn mask_to_nodes(mask: u32, nodes: usize) -> Vec<usize> {
    (0..nodes).filter(|n| mask >> n & 1 == 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any loop size, cluster, failed subset and quarantined subset
    /// with at least one healthy survivor, `replan_avoiding` keeps exact
    /// iteration coverage, places nothing on a dead node, and places no
    /// *recovered* (orphaned) chunk on a quarantined node. Chunks that
    /// were already on a quarantined-but-alive node are deliberately left
    /// in place — quarantine throttles new placement, it does not migrate
    /// running work.
    #[test]
    fn replan_avoiding_never_targets_quarantined(
        iterations in 1i64..50_000,
        nodes in 2usize..9,
        chunks_per_core in 1usize..4,
        failed_raw in 0u32..256,
        quarantined_raw in 0u32..256,
    ) {
        let cluster = cluster_of(nodes);
        let full = (1u32 << nodes) - 1;
        // Clamp both masks so node 0 is alive and unquarantined: the
        // healthy-survivor precondition holds by construction.
        let failed_mask = failed_raw & full & !1;
        let quarantined_mask = quarantined_raw & full & !1;
        let failed = mask_to_nodes(failed_mask, nodes);
        let quarantined = mask_to_nodes(quarantined_mask, nodes);

        let plan = plan_loop(iterations, &cluster, None, chunks_per_core);
        let replanned = plan
            .replan_avoiding(&failed, &quarantined, &cluster, None)
            .unwrap();
        prop_assert!(replanned.covers(iterations));
        prop_assert_eq!(replanned.chunks.len(), plan.chunks.len());
        for (before, after) in plan.chunks.iter().zip(&replanned.chunks) {
            prop_assert!(!failed.contains(&after.node), "chunk on dead node");
            if failed.contains(&before.node) {
                prop_assert!(
                    !quarantined.contains(&after.node),
                    "orphan of node {} recovered onto quarantined node {}",
                    before.node,
                    after.node
                );
            } else {
                prop_assert_eq!(before.node, after.node, "healthy chunk moved");
            }
        }
    }

    /// The same guarantee holds when a data directory is in play: the
    /// directory may pull an orphan to its data's owner, but never to a
    /// dead or quarantined owner.
    #[test]
    fn replan_avoiding_with_directory_respects_quarantine(
        per_node in 10i64..2_000,
        failed_raw in 0u32..15,
        quarantined_raw in 0u32..15,
    ) {
        let nodes = 4;
        let cluster = cluster_of(nodes);
        let n = per_node * nodes as i64;
        let dir: Vec<(i64, i64, usize)> = (0..nodes)
            .map(|k| (k as i64 * per_node, (k as i64 + 1) * per_node, k))
            .collect();
        let failed = mask_to_nodes(failed_raw & !1, nodes);
        let quarantined = mask_to_nodes(quarantined_raw & !1, nodes);

        let plan = plan_loop(n, &cluster, Some(&dir), 2);
        let replanned = plan
            .replan_avoiding(&failed, &quarantined, &cluster, Some(&dir))
            .unwrap();
        prop_assert!(replanned.covers(n));
        for (before, after) in plan.chunks.iter().zip(&replanned.chunks) {
            prop_assert!(!failed.contains(&after.node));
            if failed.contains(&before.node) {
                prop_assert!(!quarantined.contains(&after.node));
            }
        }
    }

    /// When nodes survive the failure but every survivor is quarantined,
    /// replanning fails with the typed [`RuntimeError::AllQuarantined`]
    /// carrying the survivor count — callers can distinguish "no machines
    /// left" from "machines left, none trusted".
    #[test]
    fn all_quarantined_survivors_is_typed(
        iterations in 1i64..10_000,
        nodes in 2usize..7,
        failed_raw in 0u32..64,
    ) {
        let cluster = cluster_of(nodes);
        let full = (1u32 << nodes) - 1;
        let failed_mask = failed_raw & full & !1;
        let failed = mask_to_nodes(failed_mask, nodes);
        // Quarantine exactly the alive set.
        let quarantined = mask_to_nodes(full & !failed_mask, nodes);

        let plan = plan_loop(iterations, &cluster, None, 2);
        match plan.replan_avoiding(&failed, &quarantined, &cluster, None) {
            Err(RuntimeError::AllQuarantined { survivors }) => {
                prop_assert_eq!(survivors, nodes - failed.len());
            }
            other => prop_assert!(false, "expected AllQuarantined, got {:?}", other),
        }
    }

    /// Circuit-breaker invariants under arbitrary outcome sequences:
    /// trips never exceed recorded failures, units that only ever
    /// succeeded are never quarantined, and a disabled policy never
    /// quarantines anything.
    #[test]
    fn breaker_invariants_hold_for_any_outcome_sequence(
        outcomes in prop::collection::vec((0usize..4, any::<bool>()), 0usize..64),
        max_failures in 1u32..5,
        window in 1u32..10,
        cooldown in 0u64..20,
        enabled in any::<bool>(),
    ) {
        let policy = QuarantinePolicy { enabled, max_failures, window, cooldown };
        let q = Quarantine::new(4, policy);
        let mut failures_seen = [0u64; 4];
        for &(unit, failed) in &outcomes {
            q.record(unit, failed);
            if failed {
                failures_seen[unit] += 1;
            }
        }
        let total_failures: u64 = failures_seen.iter().sum();
        prop_assert!(q.trips() <= total_failures, "a trip needs a failure");
        for (unit, &failures) in failures_seen.iter().enumerate() {
            if failures == 0 || !enabled {
                prop_assert!(
                    !q.is_quarantined(unit),
                    "unit {} quarantined without failing (enabled={})",
                    unit,
                    enabled
                );
            }
        }
        if !enabled {
            prop_assert_eq!(q.trips(), 0);
            prop_assert!(q.quarantined_units().is_empty());
        }
    }
}

/// Trip `unit` and advance the shared outcome clock through the cooldown
/// with healthy traffic on a sibling unit, leaving the breaker open and
/// probe-eligible (but not yet half-open: no check has been made).
fn trip_and_cool(q: &Quarantine, unit: usize, sibling: usize, policy: &QuarantinePolicy) {
    for _ in 0..policy.max_failures {
        q.record(unit, true);
    }
    assert!(q.is_quarantined(unit), "tripped");
    for _ in 0..policy.cooldown {
        q.record(sibling, false);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Half-open probe exclusivity under concurrent load: once an open
    /// breaker's cooldown expires, any number of threads hammering
    /// `is_quarantined` are all told the unit is eligible, but exactly
    /// **one** half-open probe is granted — the counter moves once, and
    /// no thread observes a spurious extra transition. Until the probe's
    /// outcome is recorded there is no decision: no readmission, no
    /// re-trip.
    #[test]
    fn half_open_probe_is_exclusive_under_concurrent_checks(
        threads in 2usize..6,
        checks in 1usize..8,
        cooldown in 1u64..12,
    ) {
        let policy = QuarantinePolicy { enabled: true, max_failures: 2, window: 8, cooldown };
        let q = Arc::new(Quarantine::new(2, policy));
        trip_and_cool(&q, 0, 1, &policy);
        let trips_before = q.trips();

        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let q = Arc::clone(&q);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    (0..checks).map(|_| q.is_quarantined(0)).collect::<Vec<bool>>()
                })
            })
            .collect();
        for h in handles {
            for saw_quarantined in h.join().expect("checker thread") {
                prop_assert!(!saw_quarantined, "eligible unit reported quarantined");
            }
        }
        prop_assert_eq!(q.probes(), 1, "exactly one probe for one cooldown expiry");
        prop_assert_eq!(q.trips(), trips_before, "a probe alone decides nothing");
        prop_assert_eq!(q.readmissions(), 0, "a probe alone readmits nothing");
    }

    /// One probe, one decision: with the breaker half-open, concurrent
    /// threads recording a mix of probe outcomes resolve it exactly once —
    /// either one readmission (first record was a success) or one re-trip
    /// (first record was a failure), never both, never more. Later records
    /// land on the already-decided state and cannot double-count.
    #[test]
    fn concurrent_probe_outcomes_decide_exactly_once(
        threads in 2usize..6,
        records_per_thread in 1usize..5,
        fail_mask in 0u32..32,
        cooldown in 1u64..10,
    ) {
        // max_failures far above anything the concurrent phase can record
        // (at most 5 threads x 4 records), so a readmitted unit's clean
        // window cannot *independently* re-trip and muddy the
        // one-decision count.
        let policy = QuarantinePolicy { enabled: true, max_failures: 64, window: 64, cooldown };
        let q = Arc::new(Quarantine::new(2, policy));
        trip_and_cool(&q, 0, 1, &policy);
        prop_assert!(!q.is_quarantined(0), "probe granted");
        prop_assert_eq!(q.probes(), 1);
        let trips_before = q.trips();

        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = Arc::clone(&q);
                let barrier = Arc::clone(&barrier);
                let fails = fail_mask >> t & 1 == 1;
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..records_per_thread {
                        q.record(0, fails);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread");
        }
        let decisions = q.readmissions() + (q.trips() - trips_before);
        prop_assert_eq!(decisions, 1, "one probe must yield exactly one decision");
    }
}

/// Deterministic walk through the full breaker life cycle: failures trip
/// the breaker exactly at `max_failures`, the unit stays excluded through
/// the cooldown, the first check afterwards grants a half-open probe, a
/// successful probe readmits, and a failed probe re-trips.
#[test]
fn breaker_life_cycle_is_deterministic() {
    let policy = QuarantinePolicy {
        enabled: true,
        max_failures: 3,
        window: 8,
        cooldown: 4,
    };
    let q = Quarantine::new(2, policy);

    q.record(1, true);
    q.record(1, true);
    assert!(!q.is_quarantined(1), "below the failure threshold");
    q.record(1, true);
    assert!(q.is_quarantined(1), "tripped at max_failures");
    assert_eq!(q.trips(), 1);
    assert_eq!(q.quarantined_units(), vec![1]);

    // Healthy traffic on another unit advances the outcome clock through
    // the cooldown.
    for _ in 0..policy.cooldown {
        q.record(0, false);
        assert!(!q.is_quarantined(0));
    }
    // Cooldown over: the next check grants exactly one half-open probe.
    assert!(!q.is_quarantined(1), "half-open probe granted");
    assert_eq!(q.probes(), 1);

    // Probe succeeds: readmitted with a clean window.
    q.record(1, false);
    assert_eq!(q.readmissions(), 1);
    assert!(!q.is_quarantined(1));
    q.record(1, true);
    q.record(1, true);
    assert!(!q.is_quarantined(1), "window reset on readmission");

    // Third failure re-trips; a failed probe after cooldown trips again.
    q.record(1, true);
    assert!(q.is_quarantined(1));
    assert_eq!(q.trips(), 2);
    for _ in 0..policy.cooldown {
        q.record(0, false);
    }
    assert!(!q.is_quarantined(1), "second probe granted");
    q.record(1, true);
    assert!(q.is_quarantined(1), "failed probe re-trips immediately");
    assert_eq!(q.trips(), 3);
}
