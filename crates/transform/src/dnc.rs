//! Divide-and-conquer certification for reduction chains.
//!
//! Following Farzan-style divide-and-conquer synthesis, a sequential
//! accumulator chain `acc = r(acc, f(i))` decomposes across chunks,
//! NUMA regions and cluster shards exactly when `r` splits and merges
//! associatively *over the value representation the executor uses*.
//! This pass certifies each reduction chain — including the per-lane
//! chains of nested loops that the segmented batch tier flattens — or
//! declines it with a typed reason in the optimization log.
//!
//! Certification is per *operator × type*, not per operator:
//!
//! - `i64` add/mul/min/max: wrapping two's-complement arithmetic is
//!   exactly associative, so any split point yields the same bits.
//! - `bool` and/or: idempotent lattice joins, exactly associative.
//! - `f64` add/mul: reassociation changes rounding, so a D&C split is
//!   *not* bit-identical to the sequential chain. Declined; these
//!   chains still parallelize through the executor's ordered
//!   chunk-merge path, which preserves the sequential fold order.
//! - Selection reducers (`mux` on a comparison) keyed by `i64`:
//!   min-by/max-by over a total order with a consistent tie-break is
//!   associative, so argmin/argmax by an integer key certifies.
//! - Selection keyed by `f64`: declined. NaN breaks associativity —
//!   with keys `1.0`, `NaN`, `0.0` every comparison against NaN is
//!   false, so `sel(sel(a,b),c)` and `sel(a,sel(b,c))` pick different
//!   winners depending on where the NaN lands.
//! - Anything else: declined as an opaque chain.
//!
//! The pass is analysis-only: it never rewrites the program. The
//! executor's region gate re-derives the same certificate at kernel
//! level (`Kernel::dnc_assoc`), so the log here is the user-facing
//! explanation of why a chain did or did not decompose.

use crate::rewrite::PassReport;
use dmll_core::typecheck::{self, TypeMap};
use dmll_core::{Block, Def, Exp, Multiloop, PrimOp, Program, Sym, Ty};

/// Certify every reduction chain in `program`; applied = certified
/// chains, rejected = typed declines. Never mutates the program.
pub fn run(program: &Program) -> PassReport {
    let mut rep = PassReport::none();
    // Certification is type-directed; an ill-typed program (impossible
    // after the optimizer's own invariants) simply certifies nothing.
    let Ok(tys) = typecheck::infer(program) else {
        return rep;
    };
    walk_block(&program.body, &tys, &mut rep);
    rep
}

fn walk_block(block: &Block, tys: &TypeMap, rep: &mut PassReport) {
    for stmt in &block.stmts {
        if let Def::Loop(ml) = &stmt.def {
            let label = stmt
                .lhs
                .first()
                .map_or_else(|| "loop".to_string(), |s| format!("loop {s}"));
            walk_loop(ml, &label, tys, rep);
        }
    }
}

fn walk_loop(ml: &Multiloop, label: &str, tys: &TypeMap, rep: &mut PassReport) {
    for (gi, gen) in ml.gens.iter().enumerate() {
        if let Some(reducer) = gen.reducer() {
            let chain = format!("{label} gen{gi} ({})", gen.kind());
            match classify(reducer, tys) {
                Ok(why) => rep.record(format!("{chain}: {why}")),
                Err(why) => rep.reject(format!("{chain}: {why}")),
            }
        }
        for b in gen.blocks() {
            walk_block(b, tys, rep);
        }
    }
}

/// Classify one reducer block: `Ok(note)` when the chain provably
/// splits/merges associatively, `Err(reason)` with a typed decline
/// otherwise.
fn classify(reducer: &Block, tys: &TypeMap) -> Result<String, String> {
    let [pa, pb] = reducer.params[..] else {
        return Err(format!(
            "opaque reducer: expected 2 accumulator params, found {}",
            reducer.params.len()
        ));
    };
    if let Some(verdict) = classify_single_op(reducer, pa, pb, tys) {
        return verdict;
    }
    if let Some(verdict) = classify_selection(reducer, pa, pb, tys) {
        return verdict;
    }
    Err("opaque reducer: chain shape not recognized, cannot prove an associative split".into())
}

/// `r(a, b) = a <op> b` as a single primitive statement.
fn classify_single_op(
    reducer: &Block,
    pa: Sym,
    pb: Sym,
    tys: &TypeMap,
) -> Option<Result<String, String>> {
    let [stmt] = reducer.stmts.as_slice() else {
        return None;
    };
    let Def::Prim { op, args } = &stmt.def else {
        return None;
    };
    let [r] = stmt.lhs[..] else { return None };
    if reducer.result.as_sym() != Some(r) {
        return None;
    }
    let [x, y] = args.as_slice() else { return None };
    if !is_param_pair(x, y, pa, pb) {
        return None;
    }
    let ty = tys.get(&pa)?;
    let name = op_name(*op);
    Some(match (op, ty) {
        (PrimOp::Add | PrimOp::Mul | PrimOp::Min | PrimOp::Max, Ty::I64) => Ok(format!(
            "wrapping i64 {name} splits and merges associatively (D&C certified)"
        )),
        (PrimOp::And | PrimOp::Or, Ty::Bool) => Ok(format!(
            "boolean {name} splits and merges associatively (D&C certified)"
        )),
        (PrimOp::Add | PrimOp::Mul | PrimOp::Min | PrimOp::Max, Ty::F64) => Err(format!(
            "f64 {name} reassociates rounding: a D&C split is not bit-identical \
             to the sequential chain"
        )),
        (PrimOp::Sub | PrimOp::Div | PrimOp::Rem, _) => {
            Err(format!("{name} is non-associative: the chain cannot split"))
        }
        _ => Err(format!(
            "opaque reducer: {name} over {ty:?} has no associativity certificate"
        )),
    })
}

/// Selection reducers: `r(a, b) = mux(key(a) < key(b), a, b)` with a
/// relational comparison — min-by/max-by with a consistent tie-break.
/// Two shapes: the key is the value itself (2 statements) or one tuple
/// component of it (4 statements).
fn classify_selection(
    reducer: &Block,
    pa: Sym,
    pb: Sym,
    tys: &TypeMap,
) -> Option<Result<String, String>> {
    let (key_ty, keyed) = match reducer.stmts.as_slice() {
        [cmp, mux] => {
            let (c, ka, kb) = match_cmp(cmp)?;
            if !is_param_pair(&Exp::Sym(ka), &Exp::Sym(kb), pa, pb) {
                return None;
            }
            match_mux(mux, reducer, c, pa, pb)?;
            (tys.get(&pa)?.clone(), "the value itself".to_string())
        }
        [ga, gb, cmp, mux] => {
            let (ka, ta, ia) = match_tuple_get(ga)?;
            let (kb, tb, ib) = match_tuple_get(gb)?;
            if ia != ib {
                return None;
            }
            let (c, ca, cb) = match_cmp(cmp)?;
            // The comparison must read the two extracted keys, one per
            // param, in either order.
            let keys_of = |k: Sym| if k == ka { Some(ta) } else if k == kb { Some(tb) } else { None };
            let (sa, sb) = (keys_of(ca)?, keys_of(cb)?);
            if !is_param_pair(&Exp::Sym(sa), &Exp::Sym(sb), pa, pb) {
                return None;
            }
            match_mux(mux, reducer, c, pa, pb)?;
            let Ty::Tuple(comps) = tys.get(&pa)? else {
                return None;
            };
            (comps.get(ia)?.clone(), format!("tuple component {ia}"))
        }
        _ => return None,
    };
    Some(match key_ty {
        Ty::I64 => Ok(format!(
            "selection by i64 key ({keyed}): total order with consistent \
             tie-break is associative (D&C certified)"
        )),
        Ty::F64 => Err(format!(
            "float-keyed selection ({keyed}): NaN keys break associativity \
             (all comparisons against NaN are false, so the winner depends \
             on the split point)"
        )),
        other => Err(format!(
            "selection by {other:?} key ({keyed}): no total-order certificate"
        )),
    })
}

/// Spelled-out operator names for log notes (`Display` is symbolic).
fn op_name(op: PrimOp) -> String {
    match op {
        PrimOp::Add => "add".into(),
        PrimOp::Sub => "sub".into(),
        PrimOp::Mul => "mul".into(),
        PrimOp::Div => "div".into(),
        PrimOp::Rem => "rem".into(),
        PrimOp::And => "and".into(),
        PrimOp::Or => "or".into(),
        other => other.to_string(),
    }
}

/// `c = a <rel> b` with a relational (not equality) comparison.
fn match_cmp(stmt: &dmll_core::Stmt) -> Option<(Sym, Sym, Sym)> {
    let Def::Prim { op, args } = &stmt.def else {
        return None;
    };
    if !matches!(op, PrimOp::Lt | PrimOp::Le | PrimOp::Gt | PrimOp::Ge) {
        return None;
    }
    let [c] = stmt.lhs[..] else { return None };
    let [a, b] = args.as_slice() else { return None };
    Some((c, a.as_sym()?, b.as_sym()?))
}

/// `k = tuple.index` where the tuple is a plain symbol.
fn match_tuple_get(stmt: &dmll_core::Stmt) -> Option<(Sym, Sym, usize)> {
    let Def::TupleGet { tuple, index } = &stmt.def else {
        return None;
    };
    let [k] = stmt.lhs[..] else { return None };
    Some((k, tuple.as_sym()?, *index))
}

/// The block result is `mux(c, a, b)` selecting exactly the two whole
/// params (in either order), so the reducer returns one accumuland
/// unmodified — the defining property of a selection.
fn match_mux(stmt: &dmll_core::Stmt, reducer: &Block, c: Sym, pa: Sym, pb: Sym) -> Option<()> {
    let Def::Prim {
        op: PrimOp::Mux,
        args,
    } = &stmt.def
    else {
        return None;
    };
    let [r] = stmt.lhs[..] else { return None };
    if reducer.result.as_sym() != Some(r) {
        return None;
    }
    let [cond, x, y] = args.as_slice() else {
        return None;
    };
    if cond.as_sym() != Some(c) || !is_param_pair(x, y, pa, pb) {
        return None;
    }
    Some(())
}

/// True when `{x, y}` is exactly `{pa, pb}` as an unordered pair.
fn is_param_pair(x: &Exp, y: &Exp, pa: Sym, pb: Sym) -> bool {
    match (x.as_sym(), y.as_sym()) {
        (Some(x), Some(y)) => (x == pa && y == pb) || (x == pb && y == pa),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::{Gen, Multiloop, Stmt};

    fn prim_reducer(p: &mut Program, op: PrimOp) -> Block {
        let (a, b, r) = (p.fresh(), p.fresh(), p.fresh());
        Block {
            params: vec![a, b],
            stmts: vec![Stmt::one(r, Def::prim2(op, a, b))],
            result: r.into(),
        }
    }

    fn reduce_loop(p: &mut Program, value: Block, reducer: Block, init: Option<Exp>) -> Sym {
        let out = p.fresh();
        let ml = Multiloop::single(
            Exp::i64(8),
            Gen::Reduce {
                cond: None,
                value,
                reducer,
                init,
            },
        );
        p.body.stmts.push(Stmt::one(out, Def::Loop(ml)));
        out
    }

    fn int_value(p: &mut Program) -> Block {
        let i = p.fresh();
        Block::ret(vec![i], Exp::Sym(i))
    }

    fn float_value(p: &mut Program) -> Block {
        let i = p.fresh();
        let f = p.fresh();
        Block {
            params: vec![i],
            stmts: vec![Stmt::one(
                f,
                Def::Cast {
                    to: Ty::F64,
                    value: Exp::Sym(i),
                },
            )],
            result: f.into(),
        }
    }

    #[test]
    fn int_add_certifies_and_float_add_declines() {
        let mut p = Program::new();
        let (v, r) = (int_value(&mut p), prim_reducer(&mut p, PrimOp::Add));
        let out = reduce_loop(&mut p, v, r, None);
        let (vf, rf) = (float_value(&mut p), prim_reducer(&mut p, PrimOp::Add));
        reduce_loop(&mut p, vf, rf, None);
        p.body.result = out.into();

        let rep = run(&p);
        assert_eq!(rep.applied, 1, "notes: {:?}", rep.notes);
        assert_eq!(rep.rejected, 1, "rejects: {:?}", rep.rejected_notes);
        assert!(rep.notes[0].contains("wrapping i64 add"), "{:?}", rep.notes);
        assert!(
            rep.rejected_notes[0].contains("reassociates rounding"),
            "{:?}",
            rep.rejected_notes
        );
    }

    #[test]
    fn sub_declines_as_non_associative() {
        let mut p = Program::new();
        let (v, r) = (int_value(&mut p), prim_reducer(&mut p, PrimOp::Sub));
        let out = reduce_loop(&mut p, v, r, None);
        p.body.result = out.into();

        let rep = run(&p);
        assert_eq!(rep.applied, 0);
        assert_eq!(rep.rejected, 1);
        assert!(
            rep.rejected_notes[0].contains("non-associative"),
            "{:?}",
            rep.rejected_notes
        );
    }

    /// argmin over (i64 key, payload) tuples certifies; the same shape
    /// with an f64 key declines on the NaN counterexample.
    #[test]
    fn selection_reducers_split_on_key_type() {
        let mut p = Program::new();
        for float_key in [false, true] {
            let i = p.fresh();
            let (k, t) = (p.fresh(), p.fresh());
            let mut stmts = Vec::new();
            let key = if float_key {
                stmts.push(Stmt::one(
                    k,
                    Def::Cast {
                        to: Ty::F64,
                        value: Exp::Sym(i),
                    },
                ));
                k
            } else {
                i
            };
            stmts.push(Stmt::one(t, Def::TupleNew(vec![Exp::Sym(key), Exp::Sym(i)])));
            let value = Block {
                params: vec![i],
                stmts,
                result: t.into(),
            };

            let (a, b) = (p.fresh(), p.fresh());
            let (ka, kb, c, r) = (p.fresh(), p.fresh(), p.fresh(), p.fresh());
            let reducer = Block {
                params: vec![a, b],
                stmts: vec![
                    Stmt::one(
                        ka,
                        Def::TupleGet {
                            tuple: Exp::Sym(a),
                            index: 0,
                        },
                    ),
                    Stmt::one(
                        kb,
                        Def::TupleGet {
                            tuple: Exp::Sym(b),
                            index: 0,
                        },
                    ),
                    Stmt::one(c, Def::prim2(PrimOp::Lt, ka, kb)),
                    Stmt::one(
                        r,
                        Def::Prim {
                            op: PrimOp::Mux,
                            args: vec![Exp::Sym(c), Exp::Sym(a), Exp::Sym(b)],
                        },
                    ),
                ],
                result: r.into(),
            };
            let out = reduce_loop(&mut p, value, reducer, None);
            p.body.result = out.into();
        }

        let rep = run(&p);
        assert_eq!(rep.applied, 1, "notes: {:?}", rep.notes);
        assert_eq!(rep.rejected, 1, "rejects: {:?}", rep.rejected_notes);
        assert!(
            rep.notes[0].contains("selection by i64 key"),
            "{:?}",
            rep.notes
        );
        assert!(
            rep.rejected_notes[0].contains("NaN"),
            "{:?}",
            rep.rejected_notes
        );
    }

    /// Nested reduction chains are certified too — the segmented batch
    /// tier flattens exactly these per-lane chains.
    #[test]
    fn nested_reducers_are_walked() {
        let mut p = Program::new();
        let n = p.add_input("n", Ty::I64, dmll_core::LayoutHint::Local);

        // inner: reduce j < n of j with i64 add
        let j = p.fresh();
        let inner_value = Block::ret(vec![j], Exp::Sym(j));
        let inner_red = prim_reducer(&mut p, PrimOp::Add);
        let s = p.fresh();
        let inner = Multiloop::single(
            Exp::Sym(n),
            Gen::Reduce {
                cond: None,
                value: inner_value,
                reducer: inner_red,
                init: Some(Exp::i64(0)),
            },
        );

        // outer: reduce i < 8 of inner with i64 max
        let i = p.fresh();
        let outer_value = Block {
            params: vec![i],
            stmts: vec![Stmt::one(s, Def::Loop(inner))],
            result: s.into(),
        };
        let outer_red = prim_reducer(&mut p, PrimOp::Max);
        let out = reduce_loop(&mut p, outer_value, outer_red, None);
        p.body.result = out.into();

        let rep = run(&p);
        assert_eq!(rep.applied, 2, "notes: {:?}", rep.notes);
        assert!(rep.notes.iter().any(|n| n.contains("i64 max")));
        assert!(rep.notes.iter().any(|n| n.contains("i64 add")));
    }
}
