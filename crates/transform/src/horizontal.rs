//! Horizontal fusion: merge independent multiloops over the same range into
//! one multiloop with several generators, "returning multiple disjoint
//! outputs from a single traversal".
//!
//! This is what turns k-means' two `bucketReduce`s (per-cluster sums and
//! per-cluster counts) into a single pass over the partitioned matrix after
//! the Conditional Reduce rule has fired.

use crate::rewrite::PassReport;
use dmll_core::visit::{def_blocks, for_each_exp_shallow, free_syms};
use dmll_core::{Block, Def, Exp, Multiloop, Program, Sym};
use std::collections::BTreeSet;

/// A predicate deciding whether two loops may merge; `Err` carries the
/// reason for declining (recorded as a rejection in the pass report).
pub type MergeGate<'a> = dyn FnMut(&Multiloop, &Multiloop) -> Result<(), String> + 'a;

/// Run horizontal fusion to a local fixpoint, merging every legal pair.
pub fn run(program: &mut Program) -> PassReport {
    run_gated(program, &mut |_, _| Ok(()))
}

/// Run horizontal fusion with a cost gate: legal pairs the gate declines are
/// left unmerged and recorded as rejections.
pub fn run_gated(program: &mut Program, gate: &mut MergeGate) -> PassReport {
    let mut report = PassReport::none();
    let mut body = std::mem::replace(&mut program.body, Block::ret(vec![], Exp::unit()));
    fuse_block(&mut body, gate, &mut report);
    program.body = body;
    report
}

fn fuse_block(block: &mut Block, gate: &mut MergeGate, report: &mut PassReport) {
    // Repeat until no pair in this block fuses. Gated-out pairs are
    // remembered so each rejection is reported once per block walk.
    let mut declined: BTreeSet<(Sym, Sym)> = BTreeSet::new();
    while let Some((a_idx, b_idx, up)) = find_pair(block, gate, &mut declined, report) {
        apply(block, a_idx, b_idx, up, report);
    }
    for stmt in &mut block.stmts {
        for nb in dmll_core::visit::def_blocks_mut(&mut stmt.def) {
            fuse_block(nb, gate, report);
        }
    }
}

/// Symbols a statement references (shallow exps plus free variables of its
/// nested blocks).
fn stmt_uses(stmt: &dmll_core::Stmt) -> BTreeSet<Sym> {
    let mut used = BTreeSet::new();
    for_each_exp_shallow(&stmt.def, &mut |e| {
        if let Exp::Sym(s) = e {
            used.insert(*s);
        }
    });
    for nb in def_blocks(&stmt.def) {
        used.extend(free_syms(nb));
    }
    used
}

/// Find a fusable pair: returns `(a_idx, b_idx, merge_up)` where `merge_up`
/// means B's generators move up into A's position (otherwise A's move down
/// into B's). Pairs the gate declines are skipped (reported once each).
fn find_pair(
    block: &Block,
    gate: &mut MergeGate,
    declined: &mut BTreeSet<(Sym, Sym)>,
    report: &mut PassReport,
) -> Option<(usize, usize, bool)> {
    for a_idx in 0..block.stmts.len() {
        let Def::Loop(ml_a) = &block.stmts[a_idx].def else {
            continue;
        };
        for b_idx in a_idx + 1..block.stmts.len() {
            let Def::Loop(ml_b) = &block.stmts[b_idx].def else {
                continue;
            };
            if ml_a.size != ml_b.size {
                continue;
            }
            let pair_key = (
                block.stmts[a_idx].lhs.first().copied().unwrap_or(Sym(0)),
                block.stmts[b_idx].lhs.first().copied().unwrap_or(Sym(0)),
            );
            let legal = {
                let between: BTreeSet<Sym> = block.stmts[a_idx..b_idx]
                    .iter()
                    .flat_map(|s| s.lhs.iter().copied())
                    .collect();
                let b_uses = stmt_uses(&block.stmts[b_idx]);
                // Merge-up: B must not read anything defined in [a, b).
                if b_uses.is_disjoint(&between) {
                    Some(true)
                } else {
                    // Merge-down: nothing in (a, b] may read A's outputs.
                    let a_outs: BTreeSet<Sym> =
                        block.stmts[a_idx].lhs.iter().copied().collect();
                    let blocked = block.stmts[a_idx + 1..=b_idx]
                        .iter()
                        .any(|s| !stmt_uses(s).is_disjoint(&a_outs));
                    if blocked {
                        None
                    } else {
                        Some(false)
                    }
                }
            };
            let Some(up) = legal else { continue };
            if declined.contains(&pair_key) {
                continue;
            }
            match gate(ml_a, ml_b) {
                Ok(()) => return Some((a_idx, b_idx, up)),
                Err(reason) => {
                    declined.insert(pair_key);
                    report.reject(format!(
                        "horizontal fusion of {} with {} declined: {reason}",
                        pair_key.0, pair_key.1
                    ));
                }
            }
        }
    }
    None
}

fn apply(block: &mut Block, a_idx: usize, b_idx: usize, up: bool, report: &mut PassReport) {
    let stmt_b = block.stmts.remove(b_idx);
    let Def::Loop(ml_b) = stmt_b.def else {
        unreachable!()
    };
    let stmt_a = &mut block.stmts[a_idx];
    let Def::Loop(ml_a) = &mut stmt_a.def else {
        unreachable!()
    };
    report.record(format!(
        "horizontally fused {} with {} ({} generators)",
        stmt_a
            .lhs
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(","),
        stmt_b
            .lhs
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(","),
        ml_a.gens.len() + ml_b.gens.len()
    ));
    ml_a.gens.extend(ml_b.gens);
    stmt_a.lhs.extend(stmt_b.lhs);
    if !up {
        // Move the merged loop down to B's position so that statements A's
        // generators depended on stay above... (they already are above A).
        // Statements between a and b that B's generators needed are above B;
        // merging down means relocating the merged statement to b_idx - 1.
        let merged = block.stmts.remove(a_idx);
        block.stmts.insert(b_idx - 1, merged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::fixpoint;
    use dmll_core::printer::count_loops;
    use dmll_core::{typecheck, LayoutHint, Ty};
    use dmll_frontend::Stage;
    use dmll_interp::{eval, Value};

    #[test]
    fn two_reductions_share_one_traversal() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let total = st.sum(&x);
        let m = st.reduce_elems(&x, |st, a, b| st.max(a, b));
        let pair = st.tuple(&[&total, &m]);
        let mut p = st.finish(&pair);
        let p0 = p.clone();
        // Both loops run over len(x); CSE first so the sizes are the same
        // symbol.
        fixpoint(&mut p, crate::cleanup::cse);
        let r = fixpoint(&mut p, run);
        assert_eq!(r.applied, 1, "{p}");
        assert_eq!(count_loops(&p), 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        let inputs = [("x", Value::f64_arr(vec![3.0, -1.0, 7.5, 2.0]))];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn dependent_loops_do_not_fuse() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        // Second loop reads the first loop's output: cannot share traversal.
        let a = st.map(&x, |st, e| st.mul(e, e));
        let n = st.len(&x);
        let b = st.collect(&n, |st, i| {
            let ai = st.read(&a, i);
            let xi = st.read(&x, i);
            st.add(&ai, &xi)
        });
        let mut p = st.finish(&b);
        fixpoint(&mut p, crate::cleanup::cse);
        let r = fixpoint(&mut p, run);
        assert_eq!(r.applied, 0, "{p}");
    }

    #[test]
    fn merge_down_when_b_needs_intermediate() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let n = st.len(&x);
        // Loop A.
        let s1 = st.collect(&n, |st, i| st.read(&x, i));
        // Intermediate that B needs but that does not depend on A.
        let k = st.lit_i(3);
        let kk = st.mul(&k, &k);
        // Loop B uses kk.
        let s2 = st.collect(&n, |st, i| {
            let xi = st.read(&x, i);
            st.mul(&xi, &kk)
        });
        let t1 = st.sum(&s1);
        let t2 = st.sum(&s2);
        let pair = st.tuple(&[&t1, &t2]);
        let mut p = st.finish(&pair);
        let p0 = p.clone();
        fixpoint(&mut p, crate::cleanup::cse);
        let r = fixpoint(&mut p, run);
        assert!(r.applied >= 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        let inputs = [("x", Value::i64_arr(vec![1, 2, 3]))];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn different_sizes_do_not_fuse() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let y = st.input("y", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let sx = st.sum(&x);
        let sy = st.sum(&y);
        let pair = st.tuple(&[&sx, &sy]);
        let mut p = st.finish(&pair);
        fixpoint(&mut p, crate::cleanup::cse);
        let r = fixpoint(&mut p, run);
        assert_eq!(r.applied, 0);
        assert_eq!(count_loops(&p), 2);
    }

    #[test]
    fn three_way_fusion() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let s = st.sum(&x);
        let mn = st.reduce_elems(&x, |st, a, b| st.min(a, b));
        let mx = st.reduce_elems(&x, |st, a, b| st.max(a, b));
        let t1 = st.tuple(&[&s, &mn]);
        let t = st.tuple(&[&t1, &mx]);
        let mut p = st.finish(&t);
        let p0 = p.clone();
        fixpoint(&mut p, crate::cleanup::cse);
        let r = fixpoint(&mut p, run);
        assert_eq!(r.applied, 2, "{p}");
        assert_eq!(count_loops(&p), 1, "{p}");
        let inputs = [("x", Value::f64_arr(vec![2.0, -5.0, 9.0]))];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn fused_loop_outputs_remain_distinct() {
        // After fusion, DCE must be able to drop one dead generator.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let s = st.sum(&x);
        let _dead = st.reduce_elems(&x, |st, a, b| st.min(a, b));
        let mut p = st.finish(&s);
        fixpoint(&mut p, crate::cleanup::cse);
        fixpoint(&mut p, run);
        assert_eq!(count_loops(&p), 1);
        let r = crate::cleanup::dce(&mut p);
        assert!(
            r.notes.iter().any(|n| n.contains("dropped generator")),
            "{r:?}"
        );
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        assert_eq!(
            eval(&p, &[("x", Value::f64_arr(vec![1.0, 2.0]))]).unwrap(),
            Value::F64(3.0)
        );
    }
}
