//! Classic cleanup passes: constant folding, common-subexpression
//! elimination, struct/tuple unwrapping (scalar replacement), dead code
//! elimination and dead-input pruning (dead field elimination on data
//! sources).

use crate::rewrite::{for_each_block_mut, PassReport};
use dmll_core::visit::{def_blocks_mut, for_each_exp_deep_mut, for_each_exp_shallow_mut};
use dmll_core::{Block, Const, Def, Exp, PrimOp, Program, Sym};
use std::collections::{HashMap, HashSet};

/// Fold primitive operations over constants and algebraic integer
/// identities (`x + 0`, `x * 1`, `x * 0`, `mux(const, a, b)`, …).
///
/// Floating-point identities are deliberately *not* folded (`x + 0.0` is not
/// an identity for `-0.0`, `x * 0.0` is not `0.0` for NaN/∞).
pub fn const_fold(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    for_each_block_mut(program, &mut |b| {
        fold_block(b, &mut report);
    });
    report
}

fn fold_block(b: &mut Block, report: &mut PassReport) {
    let mut subst: HashMap<Sym, Exp> = HashMap::new();
    let mut removed: HashSet<Sym> = HashSet::new();
    for stmt in &mut b.stmts {
        // Apply pending substitutions to this statement's own expressions.
        if !subst.is_empty() {
            for_each_exp_shallow_mut(&mut stmt.def, &mut |e| {
                if let Exp::Sym(s) = e {
                    if let Some(rep) = subst.get(s) {
                        *e = rep.clone();
                    }
                }
            });
            for nb in def_blocks_mut(&mut stmt.def) {
                let subst_ref = &subst;
                for_each_exp_deep_mut(nb, &mut |e| {
                    if let Exp::Sym(s) = e {
                        if let Some(rep) = subst_ref.get(s) {
                            *e = rep.clone();
                        }
                    }
                });
            }
        }
        if stmt.lhs.len() != 1 {
            continue;
        }
        if let Some(folded) = try_fold(&stmt.def) {
            subst.insert(stmt.lhs[0], folded);
            removed.insert(stmt.lhs[0]);
            report.record(format!("folded {}", stmt.lhs[0]));
        }
    }
    if let Exp::Sym(s) = &b.result {
        if let Some(rep) = subst.get(s) {
            b.result = rep.clone();
        }
    }
    b.stmts
        .retain(|s| !s.lhs.iter().any(|l| removed.contains(l)));
}

fn try_fold(def: &Def) -> Option<Exp> {
    let Def::Prim { op, args } = def else {
        return None;
    };
    use PrimOp::*;
    let c = |e: &Exp| e.as_const().cloned();
    match (op, args.as_slice()) {
        (Add, [a, b]) => match (c(a), c(b)) {
            (Some(Const::I64(x)), Some(Const::I64(y))) => Some(Exp::i64(x.wrapping_add(y))),
            (Some(Const::I64(0)), None) => Some(b.clone()),
            (None, Some(Const::I64(0))) => Some(a.clone()),
            _ => None,
        },
        (Sub, [a, b]) => match (c(a), c(b)) {
            (Some(Const::I64(x)), Some(Const::I64(y))) => Some(Exp::i64(x.wrapping_sub(y))),
            (None, Some(Const::I64(0))) => Some(a.clone()),
            _ => None,
        },
        (Mul, [a, b]) => match (c(a), c(b)) {
            (Some(Const::I64(x)), Some(Const::I64(y))) => Some(Exp::i64(x.wrapping_mul(y))),
            (Some(Const::I64(1)), None) => Some(b.clone()),
            (None, Some(Const::I64(1))) => Some(a.clone()),
            (Some(Const::I64(0)), None) | (None, Some(Const::I64(0))) => Some(Exp::i64(0)),
            _ => None,
        },
        (Div, [a, b]) => match (c(a), c(b)) {
            (Some(Const::I64(x)), Some(Const::I64(y))) if y != 0 => Some(Exp::i64(x / y)),
            (None, Some(Const::I64(1))) => Some(a.clone()),
            _ => None,
        },
        (Rem, [a, b]) => match (c(a), c(b)) {
            (Some(Const::I64(x)), Some(Const::I64(y))) if y != 0 => Some(Exp::i64(x % y)),
            _ => None,
        },
        (Eq, [a, b]) => match (c(a), c(b)) {
            (Some(x), Some(y)) => Some(Exp::bool(x == y)),
            _ => None,
        },
        (Lt, [a, b]) => cmp_fold(a, b, |x, y| x < y, |x, y| x < y),
        (Le, [a, b]) => cmp_fold(a, b, |x, y| x <= y, |x, y| x <= y),
        (Gt, [a, b]) => cmp_fold(a, b, |x, y| x > y, |x, y| x > y),
        (Ge, [a, b]) => cmp_fold(a, b, |x, y| x >= y, |x, y| x >= y),
        (And, [a, b]) => match (c(a), c(b)) {
            (Some(Const::Bool(true)), None) => Some(b.clone()),
            (None, Some(Const::Bool(true))) => Some(a.clone()),
            (Some(Const::Bool(false)), _) | (_, Some(Const::Bool(false))) => Some(Exp::bool(false)),
            (Some(Const::Bool(x)), Some(Const::Bool(y))) => Some(Exp::bool(x && y)),
            _ => None,
        },
        (Or, [a, b]) => match (c(a), c(b)) {
            (Some(Const::Bool(false)), None) => Some(b.clone()),
            (None, Some(Const::Bool(false))) => Some(a.clone()),
            (Some(Const::Bool(true)), _) | (_, Some(Const::Bool(true))) => Some(Exp::bool(true)),
            (Some(Const::Bool(x)), Some(Const::Bool(y))) => Some(Exp::bool(x || y)),
            _ => None,
        },
        (Not, [a]) => match c(a) {
            Some(Const::Bool(x)) => Some(Exp::bool(!x)),
            _ => None,
        },
        (Mux, [cond, a, b]) => match c(cond) {
            Some(Const::Bool(true)) => Some(a.clone()),
            Some(Const::Bool(false)) => Some(b.clone()),
            _ => None,
        },
        _ => None,
    }
}

fn cmp_fold(
    a: &Exp,
    b: &Exp,
    fi: impl Fn(i64, i64) -> bool,
    ff: impl Fn(f64, f64) -> bool,
) -> Option<Exp> {
    match (a.as_const(), b.as_const()) {
        (Some(Const::I64(x)), Some(Const::I64(y))) => Some(Exp::bool(fi(*x, *y))),
        (Some(Const::F64(x)), Some(Const::F64(y))) => Some(Exp::bool(ff(*x, *y))),
        _ => None,
    }
}

/// Common-subexpression elimination, scoped: a pure definition identical to
/// one already available in an enclosing scope is replaced by the earlier
/// symbol. Loops and externs are skipped (fusion handles loops).
pub fn cse(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    let mut body = std::mem::replace(&mut program.body, Block::ret(vec![], Exp::unit()));
    cse_block(&mut body, &HashMap::new(), &mut report);
    program.body = body;
    report
}

fn cse_eligible(def: &Def) -> bool {
    !matches!(def, Def::Loop(_) | Def::Extern { .. })
}

fn cse_block(b: &mut Block, outer: &HashMap<String, Sym>, report: &mut PassReport) {
    let mut env = outer.clone();
    let mut i = 0;
    while i < b.stmts.len() {
        // Recurse into nested blocks first with the current environment.
        for nb in def_blocks_mut(&mut b.stmts[i].def) {
            cse_block(nb, &env, report);
        }
        let stmt = &b.stmts[i];
        if stmt.lhs.len() == 1 && cse_eligible(&stmt.def) {
            let key = format!("{:?}", stmt.def);
            if let Some(&prev) = env.get(&key) {
                let dup = stmt.lhs[0];
                report.record(format!("cse {dup} -> {prev}"));
                b.stmts.remove(i);
                // Substitute in the remainder of this block (deep).
                let mut rest = Block {
                    params: vec![],
                    stmts: b.stmts.split_off(i),
                    result: b.result.clone(),
                };
                for_each_exp_deep_mut(&mut rest, &mut |e| {
                    if e.as_sym() == Some(dup) {
                        *e = Exp::Sym(prev);
                    }
                });
                b.stmts.extend(rest.stmts);
                b.result = rest.result;
                continue; // do not advance; a new stmt occupies index i
            }
            env.insert(key, stmt.lhs[0]);
        }
        i += 1;
    }
}

/// Struct and tuple unwrapping: a projection from a locally constructed
/// struct/tuple is forwarded to the underlying field expression, removing
/// the indirection ("struct unwrapping" in §5).
pub fn scalar_replace(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    let mut body = std::mem::replace(&mut program.body, Block::ret(vec![], Exp::unit()));
    scalar_replace_block(&mut body, &HashMap::new(), &mut report);
    program.body = body;
    report
}

#[derive(Clone)]
enum AggDef {
    Struct(dmll_core::StructTy, Vec<Exp>),
    Tuple(Vec<Exp>),
}

fn scalar_replace_block(b: &mut Block, outer: &HashMap<Sym, AggDef>, report: &mut PassReport) {
    let mut env = outer.clone();
    let mut subst: HashMap<Sym, Exp> = HashMap::new();
    for stmt in &mut b.stmts {
        if !subst.is_empty() {
            let subst_ref = &subst;
            for_each_exp_shallow_mut(&mut stmt.def, &mut |e| {
                if let Exp::Sym(s) = e {
                    if let Some(rep) = subst_ref.get(s) {
                        *e = rep.clone();
                    }
                }
            });
        }
        for nb in def_blocks_mut(&mut stmt.def) {
            if !subst.is_empty() {
                let subst_ref = &subst;
                for_each_exp_deep_mut(nb, &mut |e| {
                    if let Exp::Sym(s) = e {
                        if let Some(rep) = subst_ref.get(s) {
                            *e = rep.clone();
                        }
                    }
                });
            }
            scalar_replace_block(nb, &env, report);
        }
        if stmt.lhs.len() != 1 {
            continue;
        }
        let lhs = stmt.lhs[0];
        match &stmt.def {
            Def::StructNew { ty, fields } => {
                env.insert(lhs, AggDef::Struct(ty.clone(), fields.clone()));
            }
            Def::TupleNew(parts) => {
                env.insert(lhs, AggDef::Tuple(parts.clone()));
            }
            Def::StructGet { obj, field } => {
                if let Some(AggDef::Struct(ty, fields)) =
                    obj.as_sym().and_then(|s| env.get(&s)).cloned()
                {
                    if let Some(idx) = ty.field_index(field) {
                        subst.insert(lhs, fields[idx].clone());
                        report.record(format!("unwrapped {lhs} = .{field}"));
                    }
                }
            }
            Def::TupleGet { tuple, index } => {
                if let Some(AggDef::Tuple(parts)) =
                    tuple.as_sym().and_then(|s| env.get(&s)).cloned()
                {
                    if let Some(part) = parts.get(*index) {
                        subst.insert(lhs, part.clone());
                        report.record(format!("unwrapped {lhs} = ._{index}"));
                    }
                }
            }
            _ => {}
        }
    }
    if let Exp::Sym(s) = &b.result {
        if let Some(rep) = subst.get(s) {
            b.result = rep.clone();
        }
    }
    let dead: HashSet<Sym> = subst.keys().copied().collect();
    b.stmts
        .retain(|s| !(s.lhs.len() == 1 && dead.contains(&s.lhs[0])));
}

/// Dead code elimination. Removes pure statements whose results are never
/// used; for multiloops with several generators, drops individual dead
/// generators (the inverse of horizontal fusion).
pub fn dce(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    let mut live: HashSet<Sym> = HashSet::new();
    let mut body = std::mem::replace(&mut program.body, Block::ret(vec![], Exp::unit()));
    dce_block(&mut body, &mut live, &mut report);
    program.body = body;
    report
}

fn note_exp(live: &mut HashSet<Sym>, e: &Exp) {
    if let Exp::Sym(s) = e {
        live.insert(*s);
    }
}

fn dce_block(b: &mut Block, live: &mut HashSet<Sym>, report: &mut PassReport) {
    note_exp(live, &b.result);
    let mut keep: Vec<bool> = vec![true; b.stmts.len()];
    for (idx, stmt) in b.stmts.iter_mut().enumerate().rev() {
        let needed = stmt.def.is_effectful() || stmt.lhs.iter().any(|s| live.contains(s));
        if !needed {
            keep[idx] = false;
            report.record(format!(
                "dce removed {}",
                stmt.lhs
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            continue;
        }
        // Drop dead generators from kept multi-output loops.
        if let Def::Loop(ml) = &mut stmt.def {
            if ml.gens.len() > 1 {
                let dead_outputs: Vec<usize> = stmt
                    .lhs
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !live.contains(*s))
                    .map(|(i, _)| i)
                    .collect();
                if !dead_outputs.is_empty() && dead_outputs.len() < ml.gens.len() {
                    for &i in dead_outputs.iter().rev() {
                        ml.gens.remove(i);
                        let s = stmt.lhs.remove(i);
                        report.record(format!("dce dropped generator {s}"));
                    }
                }
            }
        }
        dmll_core::visit::for_each_exp_shallow(&stmt.def, &mut |e| note_exp(live, e));
        for nb in def_blocks_mut(&mut stmt.def) {
            dce_block(nb, live, report);
        }
    }
    let mut it = keep.iter();
    b.stmts.retain(|_| *it.next().expect("keep flag"));
}

/// Identity-collect (copy) elimination: a loop of the shape
/// `out = Collect_{len(arr)}(_)(i => arr(i))` is replaced by `arr` itself.
///
/// The Fig. 3 rules leave such loops behind when the "remaining enclosing
/// context" of a transformed collect is empty — "this extra identity loop is
/// simply optimized away" (§3.2).
pub fn copy_elim(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    let mut body = std::mem::replace(&mut program.body, Block::ret(vec![], Exp::unit()));
    copy_elim_block(&mut body, &mut report);
    program.body = body;
    report
}

fn copy_elim_block(b: &mut Block, report: &mut PassReport) {
    let mut i = 0;
    while i < b.stmts.len() {
        for nb in def_blocks_mut(&mut b.stmts[i].def) {
            copy_elim_block(nb, report);
        }
        if let Some(arr) = match_identity_collect(b, i) {
            let out = b.stmts[i].lhs[0];
            report.record(format!("copy-eliminated {out} -> {arr}"));
            b.stmts.remove(i);
            for_each_exp_deep_mut(b, &mut |e| {
                if e.as_sym() == Some(out) {
                    *e = Exp::Sym(arr);
                }
            });
            continue;
        }
        i += 1;
    }
}

fn match_identity_collect(b: &Block, idx: usize) -> Option<Sym> {
    let stmt = &b.stmts[idx];
    let Def::Loop(ml) = &stmt.def else {
        return None;
    };
    if stmt.lhs.len() != 1 {
        return None;
    }
    let Some(dmll_core::Gen::Collect { cond: None, value }) = ml.only_gen() else {
        return None;
    };
    // value: (j) { r = arr(j); => r }
    if value.stmts.len() != 1 {
        return None;
    }
    let j = value.params[0];
    let Def::ArrayRead { arr, index } = &value.stmts[0].def else {
        return None;
    };
    if index.as_sym() != Some(j) || value.result.as_sym() != Some(value.stmts[0].lhs[0]) {
        return None;
    }
    let arr = arr.as_sym()?;
    // The loop must provably cover all of `arr`: its size is len(arr), or
    // `arr` is itself an unconditional collect over the same size.
    if let Some(n) = ml.size.as_sym() {
        if let Some(n_idx) = b.stmt_index_defining(n) {
            if matches!(&b.stmts[n_idx].def, Def::ArrayLen(e) if e.as_sym() == Some(arr)) {
                return Some(arr);
            }
        }
    }
    if let Some(a_idx) = b.stmt_index_defining(arr) {
        if let Def::Loop(ml_a) = &b.stmts[a_idx].def {
            if ml_a.size == ml.size
                && matches!(
                    ml_a.only_gen(),
                    Some(dmll_core::Gen::Collect { cond: None, .. })
                )
            {
                return Some(arr);
            }
        }
    }
    None
}

/// Remove declared inputs that the program body never reads — the data-source
/// face of dead field elimination (after AoS→SoA splits an input into
/// per-field arrays, the unused fields disappear here).
pub fn prune_inputs(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    let used = dmll_core::visit::free_syms(&program.body);
    program.inputs.retain(|input| {
        if used.contains(&input.sym) {
            true
        } else {
            report.record(format!("pruned dead input {}", input.name));
            false
        }
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::printer::count_loops;
    use dmll_core::{typecheck, LayoutHint, Ty};
    use dmll_frontend::Stage;
    use dmll_interp::{eval, Value};

    #[test]
    fn const_fold_arith() {
        let mut st = Stage::new();
        let a = st.lit_i(2);
        let b = st.lit_i(3);
        let c = st.add(&a, &b); // 5
        let x = st.input("x", Ty::I64, LayoutHint::Local);
        let y = st.mul(&x, &c);
        let one = st.lit_i(1);
        let z = st.mul(&y, &one); // identity
        let mut p = st.finish(&z);
        let before = eval(&p, &[("x", Value::I64(7))]).unwrap();
        let r = crate::rewrite::fixpoint(&mut p, const_fold);
        assert!(r.applied >= 2, "{r:?}");
        assert!(typecheck::infer(&p).is_ok());
        assert_eq!(eval(&p, &[("x", Value::I64(7))]).unwrap(), before);
        assert_eq!(p.body.stmts.len(), 1, "only x*5 remains: {p}");
    }

    #[test]
    fn const_fold_mux_and_bools() {
        let mut st = Stage::new();
        let t = st.lit_b(true);
        let a = st.lit_f(1.5);
        let b = st.lit_f(2.5);
        let m = st.mux(&t, &a, &b);
        let mut p = st.finish(&m);
        crate::rewrite::fixpoint(&mut p, const_fold);
        assert_eq!(eval(&p, &[]).unwrap(), Value::F64(1.5));
        assert!(p.body.stmts.is_empty(), "{p}");
    }

    #[test]
    fn cse_dedupes_across_scopes() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        // len(x) computed at top level and again inside the loop body.
        let n = st.len(&x);
        let out = st.collect(&n, |st, i| {
            let n2 = st.len(&x); // duplicate of n
            let _ = &n2;
            let last = st.lit_i(1);
            let idx = st.sub(&n2, &last);
            let e = st.read(&x, &idx);
            let xi = st.read(&x, i);
            st.add(&e, &xi)
        });
        let mut p = st.finish(&out);
        let before = eval(&p, &[("x", Value::f64_arr(vec![1.0, 2.0, 4.0]))]).unwrap();
        let r = cse(&mut p);
        assert!(r.applied >= 1, "inner len(x) should fold into outer: {r:?}");
        assert!(typecheck::infer(&p).is_ok());
        assert_eq!(
            eval(&p, &[("x", Value::f64_arr(vec![1.0, 2.0, 4.0]))]).unwrap(),
            before
        );
    }

    #[test]
    fn scalar_replace_tuples() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::F64, LayoutHint::Local);
        let y = st.input("y", Ty::F64, LayoutHint::Local);
        let t = st.tuple(&[&x, &y]);
        let a = st.tuple_get(&t, 0);
        let b = st.tuple_get(&t, 1);
        let s = st.add(&a, &b);
        let mut p = st.finish(&s);
        let r = scalar_replace(&mut p);
        assert_eq!(r.applied, 2);
        dce(&mut p);
        assert!(typecheck::infer(&p).is_ok());
        // Tuple construction eliminated entirely.
        assert!(!format!("{p}").contains("._"), "{p}");
        assert_eq!(
            eval(&p, &[("x", Value::F64(1.0)), ("y", Value::F64(2.0))]).unwrap(),
            Value::F64(3.0)
        );
    }

    #[test]
    fn scalar_replace_structs() {
        let mut st = Stage::new();
        let d = st.input("d", Ty::arr(Ty::F64), LayoutHint::Local);
        let r2 = st.lit_i(2);
        let c3 = st.lit_i(3);
        let m = st.matrix_from_parts(&d, &r2, &c3);
        let rows = m.rows(&mut st);
        let mut p = st.finish(&rows);
        let rep = scalar_replace(&mut p);
        assert!(rep.applied >= 1);
        dce(&mut p);
        assert!(typecheck::infer(&p).is_ok());
        assert_eq!(
            eval(&p, &[("d", Value::f64_arr(vec![0.0; 6]))]).unwrap(),
            Value::I64(2)
        );
        assert!(!format!("{p}").contains("MatrixF64 {"), "{p}");
    }

    #[test]
    fn dce_removes_unused_loop() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let _unused = st.map(&x, |st, e| st.mul(e, e));
        let s = st.sum(&x);
        let mut p = st.finish(&s);
        assert_eq!(count_loops(&p), 2);
        let r = dce(&mut p);
        assert!(r.changed());
        assert_eq!(count_loops(&p), 1);
        assert!(typecheck::infer(&p).is_ok());
        assert_eq!(
            eval(&p, &[("x", Value::f64_arr(vec![1.0, 2.0]))]).unwrap(),
            Value::F64(3.0)
        );
    }

    #[test]
    fn dce_keeps_effectful_externs() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::F64, LayoutHint::Local);
        let _p = st.extern_call("print", &[&x], Ty::Unit, true, false);
        let mut p = st.finish(&x);
        dce(&mut p);
        assert!(format!("{p}").contains("extern! print"), "{p}");
    }

    #[test]
    fn prune_dead_inputs() {
        let mut st = Stage::new();
        let _unused = st.input("unused", Ty::arr(Ty::F64), LayoutHint::Local);
        let x = st.input("x", Ty::F64, LayoutHint::Local);
        let mut p = st.finish(&x);
        let r = prune_inputs(&mut p);
        assert_eq!(r.applied, 1);
        assert_eq!(p.inputs.len(), 1);
        assert_eq!(p.inputs[0].name, "x");
    }
}
