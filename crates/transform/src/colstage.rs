//! Column staging: materialize projected fields of a record collection as
//! primitive columns ahead of the loops that consume them.
//!
//! [`crate::soa::run`] splits a `Coll[Struct]` *input* into per-field array
//! inputs, but refuses whenever a whole record escapes — and the runtime
//! (pre-compile) recipe skips it entirely because the input signature must
//! stay stable. Both cases leave fused loops reading boxed records
//! (`aos(i).field`), which the kernel tier cannot batch: the element read is
//! vector-class, so the loop falls back to scalar bytecode.
//!
//! This pass recovers the column layout without touching the signature: for
//! each `Coll[Struct]` input whose elements are projected inside loops, it
//! inserts one multi-generator `Collect` loop that peels the used fields
//! into primitive columns in a single pass, then rewrites the in-loop
//! `StructGet`s to typed column reads. The original record reads stay
//! behind for cleanup's DCE; the input itself is never modified, so staging
//! is sound even when whole records escape elsewhere.
//!
//! The staging loop reads `aos(i)` for `i < len(aos)` only, and copies field
//! values verbatim (no arithmetic), so results — including float bits and
//! out-of-bounds faults in the consumers, which hit the same index against a
//! column of the same length — are unchanged.
//!
//! Cost gate: a materialization pass over the data only pays for itself when
//! it unlocks more than one projection site, so single-site candidates are
//! declined and counted as rejections.

use crate::rewrite::PassReport;
use dmll_core::visit::{def_blocks, def_blocks_mut, for_each_exp_shallow};
use dmll_core::{Block, Def, Exp, Gen, Multiloop, Program, Stmt, StructTy, Sym, Ty};
use std::collections::{BTreeSet, HashMap};

/// Stage projected fields of every eligible `Coll[Struct]` input into
/// primitive columns before the first loop that consumes them.
pub fn run(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    let candidates: Vec<(Sym, String, StructTy)> = program
        .inputs
        .iter()
        .filter_map(|i| match &i.ty {
            Ty::Arr(elem) => match elem.as_ref() {
                Ty::Struct(sty) => Some((i.sym, i.name.clone(), sty.clone())),
                _ => None,
            },
            _ => None,
        })
        .collect();
    for (aos, name, sty) in candidates {
        stage_input(program, aos, &name, &sty, &mut report);
    }
    report
}

/// A projection-only record read inside a loop: `r = aos(idx)` whose result
/// is consumed exclusively by `StructGet`s.
struct ReadSite {
    index: Exp,
    fields: Vec<String>,
}

fn stage_input(
    program: &mut Program,
    aos: Sym,
    name: &str,
    sty: &StructTy,
    report: &mut PassReport,
) {
    // Find record reads under each top-level loop statement. Reads whose
    // result escapes a StructGet (compared, stored, returned) are left
    // alone — staging is per-site, so partial coverage is fine.
    let mut sites: HashMap<Sym, ReadSite> = HashMap::new();
    let mut first_loop: Option<usize> = None;
    for (ti, stmt) in program.body.stmts.iter().enumerate() {
        if !matches!(stmt.def, Def::Loop(_)) {
            continue;
        }
        let mut reads: HashMap<Sym, Exp> = HashMap::new();
        for b in def_blocks(&stmt.def) {
            collect_reads(b, aos, &mut reads);
        }
        for (r, index) in reads {
            if let Some(fields) = projection_only_fields(&program.body, r) {
                if !fields.is_empty() {
                    first_loop.get_or_insert(ti);
                    sites.insert(r, ReadSite { index, fields });
                }
            }
        }
    }
    let Some(first_loop) = first_loop else { return };

    let used_fields: BTreeSet<&str> = sites
        .values()
        .flat_map(|s| s.fields.iter().map(String::as_str))
        .collect();
    let n_sites: usize = sites.values().map(|s| s.fields.len()).sum();
    if n_sites < 2 {
        report.reject(format!(
            "column staging: {name} has a single projection site, \
             not worth a materialization pass"
        ));
        return;
    }

    // One multi-generator Collect loop peels all used fields in a single
    // pass over the records; sty order keeps output deterministic.
    let staged: Vec<&(String, Ty)> = sty
        .fields
        .iter()
        .filter(|(f, _)| used_fields.contains(f.as_str()))
        .collect();
    let n = program.fresh();
    let mut cols: HashMap<String, Sym> = HashMap::new();
    let mut lhs = Vec::new();
    let mut gens = Vec::new();
    for (field, _) in &staged {
        let col = program.fresh();
        cols.insert(field.clone(), col);
        lhs.push(col);
        let i = program.fresh();
        let r = program.fresh();
        let v = program.fresh();
        let mut value = Block::ret(vec![i], Exp::Sym(v));
        value.stmts.push(Stmt::one(
            r,
            Def::ArrayRead {
                arr: Exp::Sym(aos),
                index: Exp::Sym(i),
            },
        ));
        value.stmts.push(Stmt::one(
            v,
            Def::StructGet {
                obj: Exp::Sym(r),
                field: field.clone(),
            },
        ));
        gens.push(Gen::Collect { cond: None, value });
    }
    program
        .body
        .stmts
        .insert(first_loop, Stmt::one(n, Def::ArrayLen(Exp::Sym(aos))));
    program.body.stmts.insert(
        first_loop + 1,
        Stmt {
            lhs,
            def: Def::Loop(Multiloop {
                size: Exp::Sym(n),
                gens,
            }),
        },
    );

    // Retarget each site's StructGets at the columns. The record read
    // itself stays; cleanup's DCE drops it once unused.
    let mut body = std::mem::replace(&mut program.body, Block::ret(vec![], Exp::unit()));
    rewrite(&mut body, &sites, &cols);
    program.body = body;

    report.record(format!(
        "column staging: materialized {} columns of {name} for {n_sites} projection sites",
        staged.len()
    ));
}

/// Gather `r = aos(idx)` reads in `b` and below.
fn collect_reads(b: &Block, aos: Sym, reads: &mut HashMap<Sym, Exp>) {
    for stmt in &b.stmts {
        if let Def::ArrayRead { arr, index } = &stmt.def {
            if arr.as_sym() == Some(aos) && index.as_sym() != Some(aos) {
                reads.insert(stmt.lhs[0], index.clone());
            }
        }
        for nb in def_blocks(&stmt.def) {
            collect_reads(nb, aos, reads);
        }
    }
}

/// The fields projected from `r`, or `None` if any use of `r` is not a
/// `StructGet`.
fn projection_only_fields(body: &Block, r: Sym) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut ok = true;
    fn scan(b: &Block, r: Sym, fields: &mut Vec<String>, ok: &mut bool) {
        for stmt in &b.stmts {
            match &stmt.def {
                Def::StructGet { obj, field } if obj.as_sym() == Some(r) => {
                    fields.push(field.clone());
                }
                other => {
                    for_each_exp_shallow(other, &mut |e| {
                        if e.as_sym() == Some(r) {
                            *ok = false;
                        }
                    });
                    for nb in def_blocks(other) {
                        scan(nb, r, fields, ok);
                    }
                }
            }
        }
        if b.result.as_sym() == Some(r) {
            *ok = false;
        }
    }
    scan(body, r, &mut fields, &mut ok);
    ok.then_some(fields)
}

/// Rewrite `StructGet`s over staged reads into column reads.
fn rewrite(b: &mut Block, sites: &HashMap<Sym, ReadSite>, cols: &HashMap<String, Sym>) {
    for stmt in &mut b.stmts {
        let new_def = match &stmt.def {
            Def::StructGet { obj, field } => obj
                .as_sym()
                .filter(|o| sites.contains_key(o))
                .map(|o| Def::ArrayRead {
                    arr: Exp::Sym(cols[field]),
                    index: sites[&o].index.clone(),
                }),
            _ => None,
        };
        if let Some(d) = new_def {
            stmt.def = d;
        }
        for nb in def_blocks_mut(&mut stmt.def) {
            rewrite(nb, sites, cols);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::{typecheck, LayoutHint};
    use dmll_frontend::Stage;
    use dmll_interp::{eval, Value};
    use std::sync::Arc;

    fn item_ty() -> StructTy {
        StructTy::new(
            "Item",
            vec![
                ("qty".into(), Ty::F64),
                ("price".into(), Ty::F64),
                ("status".into(), Ty::I64),
            ],
        )
    }

    fn items_value() -> Value {
        let rows = [(2.0, 10.0, 1i64), (3.0, 20.0, 0), (4.0, 30.0, 1)];
        Value::boxed_arr(
            rows.iter()
                .map(|(q, p, s)| {
                    Value::Struct(Arc::new(dmll_interp::StructVal {
                        ty: Arc::new(item_ty()),
                        fields: vec![Value::F64(*q), Value::F64(*p), Value::I64(*s)],
                    }))
                })
                .collect(),
        )
    }

    /// sum of qty*price over items with status == 1; reads the record
    /// twice (cond + value), so 3 projection sites total.
    fn query() -> Program {
        let mut st = Stage::new();
        let items = st.input(
            "items",
            Ty::arr(Ty::Struct(item_ty())),
            LayoutHint::Partitioned,
        );
        let n = st.len(&items);
        let zero = st.lit_f(0.0);
        let items2 = items.clone();
        let total = st.reduce_if(
            &n,
            Some(move |st: &mut Stage, i: &dmll_frontend::Val| {
                let it = st.read(&items2, i);
                let status = st.field(&it, "status");
                let one = st.lit_i(1);
                st.eq(&status, &one)
            }),
            move |st, i| {
                let it = st.read(&items, i);
                let q = st.field(&it, "qty");
                let p = st.field(&it, "price");
                st.mul(&q, &p)
            },
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        st.finish(&total)
    }

    #[test]
    fn stages_used_fields_and_preserves_output() {
        let mut p = query();
        let p0 = p.clone();
        let rep = run(&mut p);
        assert_eq!(rep.applied, 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        // Input signature untouched.
        assert_eq!(p.inputs.len(), 1);
        // One staging loop with one gen per *used* field (price, qty,
        // status — all three project here).
        let staged = p
            .body
            .stmts
            .iter()
            .filter_map(|s| match &s.def {
                Def::Loop(ml) => Some(ml.gens.len()),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert_eq!(staged.len(), 2, "staging loop + original loop:\n{p}");
        assert_eq!(staged[0], 3, "{p}");
        let before = eval(&p0, &[("items", items_value())]).unwrap();
        let after = eval(&p, &[("items", items_value())]).unwrap();
        assert_eq!(before, after);
        assert_eq!(after, Value::F64(2.0 * 10.0 + 4.0 * 30.0));
    }

    #[test]
    fn single_site_is_declined() {
        let mut st = Stage::new();
        let items = st.input(
            "items",
            Ty::arr(Ty::Struct(item_ty())),
            LayoutHint::Partitioned,
        );
        let n = st.len(&items);
        let zero = st.lit_f(0.0);
        let total = st.reduce_if(
            &n,
            None::<fn(&mut Stage, &dmll_frontend::Val) -> dmll_frontend::Val>,
            move |st, i| {
                let it = st.read(&items, i);
                st.field(&it, "qty")
            },
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let mut p = st.finish(&total);
        let rep = run(&mut p);
        assert_eq!(rep.applied, 0);
        assert_eq!(rep.rejected, 1, "{rep:?}");
    }

    #[test]
    fn escaping_record_read_is_skipped() {
        // The record itself is passed whole to an extern: that read must
        // not be staged, and with no other sites the pass does nothing.
        let mut st = Stage::new();
        let items = st.input(
            "items",
            Ty::arr(Ty::Struct(item_ty())),
            LayoutHint::Partitioned,
        );
        let n = st.len(&items);
        let zero = st.lit_i(0);
        let total = st.reduce_if(
            &n,
            None::<fn(&mut Stage, &dmll_frontend::Val) -> dmll_frontend::Val>,
            move |st, i| {
                let it = st.read(&items, i);
                st.extern_call("inspect", &[&it], Ty::I64, false, false)
            },
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let mut p = st.finish(&total);
        let rep = run(&mut p);
        assert_eq!(rep.applied, 0);
        assert_eq!(rep.rejected, 0, "{rep:?}");
    }

    #[test]
    fn top_level_reads_are_left_alone() {
        // A straight-line projection outside any loop gains nothing from
        // a materialization pass.
        let mut st = Stage::new();
        let items = st.input(
            "items",
            Ty::arr(Ty::Struct(item_ty())),
            LayoutHint::Partitioned,
        );
        let zero = st.lit_i(0);
        let it = st.read(&items, &zero);
        let q = st.field(&it, "qty");
        let p2 = st.field(&it, "price");
        let out = st.add(&q, &p2);
        let mut p = st.finish(&out);
        let rep = run(&mut p);
        assert_eq!(rep.applied, 0);
    }
}
