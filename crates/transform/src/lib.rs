#![warn(missing_docs)]

//! # DMLL transformations
//!
//! The optimization passes of the paper, §3 (locality-enhancing
//! transformations) and §5 (data structure optimizations):
//!
//! | Paper name | Module |
//! |---|---|
//! | Pipeline fusion (generalized `Collect`-consumer rule) | [`fusion`] |
//! | Horizontal fusion (multiple generators, one traversal) | [`horizontal`] |
//! | GroupBy-Reduce (Fig. 3) | [`groupby_reduce`] |
//! | Conditional Reduce (Fig. 3) | [`conditional_reduce`] |
//! | Column-to-Row / Row-to-Column Reduce (Fig. 3) | [`interchange`] |
//! | AoS→SoA, dead-field elimination, struct unwrapping | [`soa`], [`cleanup`] |
//! | CSE, DCE, constant folding | [`cleanup`] |
//! | Loop-invariant code motion | [`code_motion`] |
//!
//! All passes rewrite a [`dmll_core::Program`] in place and report how many
//! times they fired; [`pipeline::Optimizer`] sequences them into per-target
//! recipes (CPU / NUMA / cluster / GPU) and keeps the optimization log that
//! the evaluation's Table 2 reports per benchmark.
//!
//! Fusion decisions are cost-guided rather than greedy: [`selector`]
//! enumerates legal fusion sites and [`cost`] scores them with a
//! memory-traffic / register-pressure model; only winning sets are
//! rewritten, and declined candidates are reported as rejections.
//!
//! Every pass is semantics-preserving; the test suites verify this by
//! interpreting programs before and after on random inputs.

pub mod cleanup;
pub mod code_motion;
pub mod colstage;
pub mod conditional_reduce;
pub(crate) mod cost;
pub mod dnc;
pub mod fusion;
pub mod groupby_reduce;
pub mod horizontal;
pub mod interchange;
pub mod pipeline;
pub mod rewrite;
pub mod selector;
pub mod soa;

pub use pipeline::{optimize, optimize_runtime, optimize_unfused, OptReport, Optimizer, Target};
pub use rewrite::PassReport;
