//! The GroupBy-Reduce rule (Figure 3):
//!
//! ```text
//! A = BucketCollect_s(c)(k)(f1)                 H = BucketReduce_s(c)(k)(f2(f1))(r)
//! Collect_A(_)(i => Reduce_{A(i)}(_)(f2)(r)) →  Collect_H(_)(i => H(i))
//! ```
//!
//! Instead of materializing every bucket and then reducing each one, the
//! values are reduced *as they are assigned to buckets*, in a single
//! traversal. The consuming `Collect` keeps any remaining enclosing context
//! (e.g. the division after a sum when averaging groups); when the context
//! is empty the identity loop is removed by
//! [`crate::cleanup`]'s copy elimination.

use crate::rewrite::PassReport;
use dmll_core::rebind::Rebinder;
use dmll_core::visit::{count_uses, def_blocks, for_each_exp_deep, for_each_exp_deep_mut};
use dmll_core::{Block, Def, Exp, Gen, Program, Stmt, Sym};
use std::collections::HashMap;

/// Run the GroupBy-Reduce rule everywhere it matches.
pub fn run(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    while let Some(site) = find(program) {
        let note = format!(
            "groupby-reduce: fused BucketCollect {} with per-bucket Reduce",
            site.group_sym
        );
        apply(program, site);
        report.record(note);
    }
    report
}

struct Site {
    /// Path to the block containing the BucketCollect.
    path: Vec<(usize, usize)>,
    g_idx: usize,
    vals_idx: usize,
    outer_idx: usize,
    group_sym: Sym,
    /// Indices, inside the outer collect's value block, of
    /// `bucket = vals(j)`, `m = len(bucket)` and the inner reduce statement.
    bucket_idx: usize,
    len_idx: usize,
    reduce_idx: usize,
    /// True when the bucket length is also used by the remaining context
    /// (`e.count`): the rewrite adds a fused count BucketReduce.
    needs_count: bool,
}

fn block_at_mut<'a>(p: &'a mut Program, path: &[(usize, usize)]) -> &'a mut Block {
    let mut b = &mut p.body;
    for &(si, bi) in path {
        b = dmll_core::visit::def_blocks_mut(&mut b.stmts[si].def)
            .into_iter()
            .nth(bi)
            .expect("valid path");
    }
    b
}

fn find(program: &Program) -> Option<Site> {
    let mut uses = HashMap::new();
    count_uses(&program.body, &mut uses);
    find_in(&program.body, &mut Vec::new(), &uses)
}

fn find_in(
    block: &Block,
    path: &mut Vec<(usize, usize)>,
    uses: &HashMap<Sym, usize>,
) -> Option<Site> {
    'outer: for (g_idx, stmt_g) in block.stmts.iter().enumerate() {
        let Def::Loop(ml_g) = &stmt_g.def else {
            continue;
        };
        let Some(Gen::BucketCollect { .. }) = ml_g.only_gen() else {
            continue;
        };
        if stmt_g.lhs.len() != 1 {
            continue;
        }
        let g = stmt_g.lhs[0];

        // Find `vals = bucketValues(g)` in the same block; every other use
        // of g must be bucketKeys/bucketLen (they survive the rewrite).
        let mut vals_idx = None;
        let mut bucket_values_count = 0;
        for (i, s) in block.stmts.iter().enumerate() {
            if let Def::BucketValues(e) = &s.def {
                if e.as_sym() == Some(g) {
                    bucket_values_count += 1;
                    vals_idx = Some(i);
                }
            }
        }
        if bucket_values_count != 1 {
            continue;
        }
        let vals_idx = vals_idx.expect("found above");
        let vals = block.stmts[vals_idx].lhs[0];
        // g's other uses must be keys/len only. Count all g uses and the
        // safe ones we can account for.
        let mut g_safe = 0;
        for b in all_blocks(block) {
            for s in &b.stmts {
                match &s.def {
                    Def::BucketKeys(e) | Def::BucketLen(e) if e.as_sym() == Some(g) => g_safe += 1,
                    _ => {}
                }
            }
        }
        if uses.get(&g).copied().unwrap_or(0) != g_safe + 1 {
            continue;
        }

        // Find the consuming Collect: size = len(vals).
        for (outer_idx, stmt_o) in block.stmts.iter().enumerate().skip(vals_idx + 1) {
            let Def::Loop(ml_o) = &stmt_o.def else {
                continue;
            };
            let Some(Gen::Collect { cond: None, value }) = ml_o.only_gen() else {
                continue;
            };
            let Some(n) = ml_o.size.as_sym() else {
                continue;
            };
            let Some(n_idx) = block.stmt_index_defining(n) else {
                continue;
            };
            let Def::ArrayLen(e) = &block.stmts[n_idx].def else {
                continue;
            };
            if e.as_sym() != Some(vals) {
                continue;
            }
            // Inside the value block: bucket = vals(j); m = len(bucket);
            // rr = Reduce over m consuming bucket element-wise.
            let j = value.params[0];
            let Some((bucket_idx, len_idx, reduce_idx, needs_count)) =
                match_bucket_reduce(value, vals, j)
            else {
                continue;
            };
            // vals must be used exactly twice: the len and the bucket read.
            if uses.get(&vals).copied().unwrap_or(0) != 2 {
                continue 'outer;
            }
            return Some(Site {
                path: path.to_vec(),
                g_idx,
                vals_idx,
                outer_idx,
                group_sym: g,
                bucket_idx,
                len_idx,
                reduce_idx,
                needs_count,
            });
        }
    }
    for (si, stmt) in block.stmts.iter().enumerate() {
        for (bi, nb) in def_blocks(&stmt.def).into_iter().enumerate() {
            path.push((si, bi));
            if let Some(site) = find_in(nb, path, uses) {
                return Some(site);
            }
            path.pop();
        }
    }
    None
}

fn all_blocks(b: &Block) -> Vec<&Block> {
    let mut out = vec![b];
    let mut i = 0;
    while i < out.len() {
        let cur = out[i];
        for s in &cur.stmts {
            out.extend(def_blocks(&s.def));
        }
        i += 1;
    }
    out
}

/// Match the `bucket = vals(j); m = len(bucket); rr = Reduce_m(_)(f2)(r)`
/// triple inside the consumer's value block.
fn match_bucket_reduce(value: &Block, vals: Sym, j: Sym) -> Option<(usize, usize, usize, bool)> {
    let bucket_idx = value.stmts.iter().position(|s| {
        matches!(&s.def, Def::ArrayRead { arr, index }
            if arr.as_sym() == Some(vals) && index.as_sym() == Some(j))
    })?;
    let bucket = value.stmts[bucket_idx].lhs[0];
    let len_idx = value
        .stmts
        .iter()
        .position(|s| matches!(&s.def, Def::ArrayLen(e) if e.as_sym() == Some(bucket)))?;
    let m = value.stmts[len_idx].lhs[0];
    let reduce_idx = value.stmts.iter().position(|s| {
        if let Def::Loop(ml) = &s.def {
            if ml.size.as_sym() != Some(m) {
                return false;
            }
            matches!(ml.only_gen(), Some(Gen::Reduce { cond: None, .. }))
        } else {
            false
        }
    })?;
    // Safety checks.
    let Def::Loop(ml_r) = &value.stmts[reduce_idx].def else {
        unreachable!()
    };
    let Some(Gen::Reduce {
        value: f2,
        reducer: r,
        init,
        ..
    }) = ml_r.only_gen()
    else {
        unreachable!()
    };
    // f2 reads bucket only at its own param and uses the param only through
    // bucket (positions within a bucket have no analogue after the rewrite).
    let t = f2.params[0];
    if !reads_only_at(f2, bucket, t) || !param_only_through(f2, bucket, t) {
        return None;
    }
    if dmll_core::visit::uses_sym(r, bucket) || dmll_core::visit::uses_sym(r, j) {
        return None;
    }
    // f2, r and init must not capture anything bound in the consumer's value
    // block (they are about to move to the BucketCollect's position).
    let local: std::collections::BTreeSet<Sym> = value
        .params
        .iter()
        .copied()
        .chain(value.stmts.iter().flat_map(|s| s.lhs.iter().copied()))
        .collect();
    let mut captured = false;
    for blk in [f2, r] {
        for s in dmll_core::visit::free_syms(blk) {
            if s != bucket && local.contains(&s) {
                captured = true;
            }
        }
    }
    if let Some(Exp::Sym(s)) = init {
        if local.contains(s) {
            captured = true;
        }
    }
    // Every use of bucket must be a read inside f2 or the len statement;
    // the length itself (`e.count`) may flow into the remaining context —
    // the rewrite then emits a second, horizontally fused count
    // BucketReduce, exactly as the paper's Figure 5 does.
    let mut bucket_uses = 0;
    let mut m_uses = 0;
    for_each_exp_deep(value, &mut |e| {
        if e.as_sym() == Some(bucket) {
            bucket_uses += 1;
        }
        if e.as_sym() == Some(m) {
            m_uses += 1;
        }
    });
    let reads_in_f2 = {
        let mut n = 0;
        for_each_exp_deep(f2, &mut |e| {
            if e.as_sym() == Some(bucket) {
                n += 1;
            }
        });
        n
    };
    if captured || bucket_uses != reads_in_f2 + 1 || m_uses < 1 {
        return None;
    }
    let needs_count = m_uses > 1;
    Some((bucket_idx, len_idx, reduce_idx, needs_count))
}

fn reads_only_at(b: &Block, arr: Sym, idx: Sym) -> bool {
    let mut ok = true;
    fn walk(b: &Block, arr: Sym, idx: Sym, ok: &mut bool) {
        for s in &b.stmts {
            match &s.def {
                Def::ArrayRead { arr: a, index } if a.as_sym() == Some(arr) => {
                    if index.as_sym() != Some(idx) {
                        *ok = false;
                    }
                }
                other => {
                    dmll_core::visit::for_each_exp_shallow(other, &mut |e| {
                        if e.as_sym() == Some(arr) {
                            *ok = false;
                        }
                    });
                    for nb in def_blocks(other) {
                        walk(nb, arr, idx, ok);
                    }
                }
            }
        }
        if b.result.as_sym() == Some(arr) {
            *ok = false;
        }
    }
    walk(b, arr, idx, &mut ok);
    ok
}

fn param_only_through(b: &Block, arr: Sym, param: Sym) -> bool {
    let mut ok = true;
    fn walk(b: &Block, arr: Sym, param: Sym, ok: &mut bool) {
        for s in &b.stmts {
            match &s.def {
                Def::ArrayRead { arr: a, .. } if a.as_sym() == Some(arr) => {}
                other => {
                    dmll_core::visit::for_each_exp_shallow(other, &mut |e| {
                        if e.as_sym() == Some(param) {
                            *ok = false;
                        }
                    });
                    for nb in def_blocks(other) {
                        walk(nb, arr, param, ok);
                    }
                }
            }
        }
        if b.result.as_sym() == Some(param) {
            *ok = false;
        }
    }
    walk(b, arr, param, &mut ok);
    ok
}

fn apply(program: &mut Program, site: Site) {
    // Extract the pieces (clones) before mutating.
    let block = block_at_mut(program, &site.path);
    let Def::Loop(ml_g) = &block.stmts[site.g_idx].def else {
        unreachable!()
    };
    let Some(Gen::BucketCollect {
        cond,
        key,
        value: f1,
    }) = ml_g.only_gen().cloned()
    else {
        unreachable!()
    };
    let outer_stmt = block.stmts[site.outer_idx].clone();
    let Def::Loop(ml_o) = &outer_stmt.def else {
        unreachable!()
    };
    let Some(Gen::Collect { value: vb, .. }) = ml_o.only_gen() else {
        unreachable!()
    };
    let Def::Loop(ml_r) = &vb.stmts[site.reduce_idx].def else {
        unreachable!()
    };
    let Some(Gen::Reduce {
        value: f2,
        reducer: r,
        init,
        ..
    }) = ml_r.only_gen().cloned()
    else {
        unreachable!()
    };
    let bucket = vb.stmts[site.bucket_idx].lhs[0];
    let rr_syms = vb.stmts[site.reduce_idx].lhs.clone();
    let vals = block.stmts[site.vals_idx].lhs[0];

    // Composed value: params [i]; v = f1(i); f2 with bucket(t) -> v.
    let composed = {
        let i = program.fresh();
        let prologue = Rebinder::new(program).inline_block(&f1, &[Exp::Sym(i)]);
        let v_exp = prologue.result.clone();
        let dead = program.fresh();
        let mut body = {
            let mut rb = Rebinder::new(program);
            // Map the inner index param to a dead symbol; every use of it is
            // inside bucket reads, which we replace below.
            rb.map(f2.params[0], Exp::Sym(dead));
            let mut b = rb.rebind_block(&f2);
            b.params.clear();
            (b, dead)
        };
        replace_bucket_reads(&mut body.0, bucket, &v_exp);
        let mut stmts = prologue.stmts;
        stmts.append(&mut body.0.stmts);
        Block {
            params: vec![i],
            stmts,
            result: body.0.result,
        }
    };
    let new_reducer = Rebinder::new(program).rebind_block(&r);

    // When the context also consumes `e.count`, emit a second,
    // horizontally fused count BucketReduce over the same keys — the `cs`
    // of the paper's Figure 5.
    let count_gen = if site.needs_count {
        let key2 = Rebinder::new(program).rebind_block(&key);
        let cond2 = cond
            .as_ref()
            .map(|c| Rebinder::new(program).rebind_block(c));
        let dead = program.fresh();
        let a = program.fresh();
        let b = program.fresh();
        let sum = program.fresh();
        Some(Gen::BucketReduce {
            cond: cond2,
            key: key2,
            value: Block::ret(vec![dead], Exp::i64(1)),
            reducer: Block {
                params: vec![a, b],
                stmts: vec![Stmt::one(sum, Def::prim2(dmll_core::PrimOp::Add, a, b))],
                result: Exp::Sym(sum),
            },
            init: Some(Exp::i64(0)),
        })
    } else {
        None
    };
    let cnt_sym = program.fresh();
    let cnt_vals_sym = program.fresh();

    // Swap the BucketCollect for a BucketReduce in place (plus the count
    // generator when needed).
    let block = block_at_mut(program, &site.path);
    if let Def::Loop(ml_g) = &mut block.stmts[site.g_idx].def {
        ml_g.gens[0] = Gen::BucketReduce {
            cond,
            key,
            value: composed,
            reducer: new_reducer,
            init,
        };
        if let Some(cg) = count_gen {
            ml_g.gens.push(cg);
            block.stmts[site.g_idx].lhs.push(cnt_sym);
        }
    }

    // Rewrite the consumer's value block: drop bucket/reduce, replace with
    // rr = vals(j); the length (if consumed by the context) becomes a read
    // of the fused per-bucket counts.
    if let Def::Loop(ml_o) = &mut block.stmts[site.outer_idx].def {
        let vb = ml_o.gens[0].value_mut();
        let j = vb.params[0];
        vb.stmts[site.reduce_idx] = Stmt {
            lhs: rr_syms,
            def: Def::ArrayRead {
                arr: Exp::Sym(vals),
                index: Exp::Sym(j),
            },
        };
        if site.needs_count {
            let m = vb.stmts[site.len_idx].lhs[0];
            vb.stmts[site.len_idx] = Stmt::one(
                m,
                Def::ArrayRead {
                    arr: Exp::Sym(cnt_vals_sym),
                    index: Exp::Sym(j),
                },
            );
            vb.stmts.remove(site.bucket_idx);
        } else {
            let mut remove = [site.bucket_idx, site.len_idx];
            remove.sort_unstable();
            for idx in remove.into_iter().rev() {
                vb.stmts.remove(idx);
            }
        }
    }
    if site.needs_count {
        block.stmts.insert(
            site.vals_idx + 1,
            Stmt::one(cnt_vals_sym, Def::BucketValues(Exp::Sym(cnt_sym))),
        );
    }
}

fn replace_bucket_reads(b: &mut Block, bucket: Sym, v_exp: &Exp) {
    let mut subst: HashMap<Sym, Exp> = HashMap::new();
    fn walk(b: &mut Block, bucket: Sym, v_exp: &Exp, subst: &mut HashMap<Sym, Exp>) {
        let mut removed = Vec::new();
        for (idx, stmt) in b.stmts.iter_mut().enumerate() {
            match &stmt.def {
                Def::ArrayRead { arr, .. } if arr.as_sym() == Some(bucket) => {
                    subst.insert(stmt.lhs[0], v_exp.clone());
                    removed.push(idx);
                }
                _ => {
                    for nb in dmll_core::visit::def_blocks_mut(&mut stmt.def) {
                        walk(nb, bucket, v_exp, subst);
                    }
                }
            }
        }
        for idx in removed.into_iter().rev() {
            b.stmts.remove(idx);
        }
    }
    walk(b, bucket, v_exp, &mut subst);
    if !subst.is_empty() {
        for_each_exp_deep_mut(b, &mut |e| {
            if let Exp::Sym(s) = e {
                if let Some(rep) = subst.get(s) {
                    *e = rep.clone();
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::fixpoint;
    use dmll_core::{typecheck, LayoutHint, Ty};
    use dmll_frontend::Stage;
    use dmll_interp::{eval, Value};

    /// lineItems.groupBy(status).map(group => group.sum) — §3.2's example.
    fn aggregation_query() -> Program {
        let mut st = Stage::new();
        let qty = st.input("quantity", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let status = st.input("status", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let groups = group_by_paired(&mut st, &qty, &status);
        let vals = st.bucket_values(&groups);
        let sums = st.map(&vals, |st, bucket| st.sum(bucket));
        let keys = st.bucket_keys(&groups);
        let pair = st.tuple(&[&keys, &sums]);
        st.finish(&pair)
    }

    /// groupBy over a pair of (value, key) arrays: buckets of `qty` values
    /// keyed by the matching `status` (a Table 1 "multiple collections"
    /// grouping).
    fn group_by_paired(
        st: &mut Stage,
        qty: &dmll_frontend::Val,
        status: &dmll_frontend::Val,
    ) -> dmll_frontend::Val {
        let n = st.len(qty);
        let (q, s) = (qty.clone(), status.clone());
        st.bucket_collect(&n, move |st, i| st.read(&s, i), move |st, i| st.read(&q, i))
    }

    #[test]
    fn aggregation_becomes_bucket_reduce() {
        let mut p = aggregation_query();
        let p0 = p.clone();
        let rep = fixpoint(&mut p, run);
        assert_eq!(rep.applied, 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        let s = p.to_string();
        assert!(s.contains("BucketReduce"), "{s}");
        assert!(!s.contains("BucketCollect"), "{s}");
        let inputs = [
            (
                "quantity",
                Value::f64_arr(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
            ),
            ("status", Value::i64_arr(vec![2, 1, 2, 1, 2, 7])),
        ];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn context_preserved_for_group_average() {
        // groups.map(g => g.sum / g.count as double): the division remains
        // in the collect context. We stage sum and a following division by a
        // constant to keep a nontrivial context.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let groups = st.group_by(&x, |st, e| {
            let t = st.lit_f(10.0);
            let d = st.div(e, &t);
            st.f2i(&d)
        });
        let vals = st.bucket_values(&groups);
        let out = st.map(&vals, |st, bucket| {
            let s = st.sum(bucket);
            let two = st.lit_f(2.0);
            st.div(&s, &two) // context after the reduce
        });
        let mut p = st.finish(&out);
        let p0 = p.clone();
        let rep = fixpoint(&mut p, run);
        assert_eq!(rep.applied, 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        let inputs = [(
            "x",
            Value::f64_arr(vec![1.0, 11.0, 21.0, 2.0, 12.0, 22.0, 3.0]),
        )];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn bucket_count_group_by_reduce() {
        // Counting group sizes: f2 is the constant 1 function.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let groups = st.group_by(&x, |st, e| {
            let k = st.lit_i(4);
            st.rem(e, &k)
        });
        let vals = st.bucket_values(&groups);
        let counts = st.map(&vals, |st, bucket| {
            let n = st.len(bucket);
            let _ = &n;
            let one = st.lit_i(1);
            let bucket = bucket.clone();
            // sum of ones = count
            let m = st.len(&bucket);
            st.reduce(
                &m,
                move |_st, _t| one.clone(),
                |st, a, b| st.add(a, b),
                None,
            )
        });
        let mut p = st.finish(&counts);
        // The value block has an extra len(bucket) use (n), making
        // bucket_uses != reads+1 — the conservative matcher must refuse.
        let rep = fixpoint(&mut p, run);
        assert_eq!(rep.applied, 0, "conservative: extra bucket use: {p}");
    }

    #[test]
    fn min_per_group() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let groups = st.group_by(&x, |st, e| {
            let t = st.lit_f(100.0);
            let d = st.div(e, &t);
            st.f2i(&d)
        });
        let vals = st.bucket_values(&groups);
        let mins = st.map(&vals, |st, bucket| {
            st.reduce_elems(bucket, |st, a, b| st.min(a, b))
        });
        let mut p = st.finish(&mins);
        let p0 = p.clone();
        let rep = fixpoint(&mut p, run);
        assert_eq!(rep.applied, 1, "{p}");
        let inputs = [("x", Value::f64_arr(vec![105.0, 203.0, 101.0, 207.0, 102.0]))];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn group_average_emits_fused_count_reduce() {
        // groups.map(e => e.sum / e.count) — Figure 5's ss/cs pair: the
        // rewrite emits a second horizontally fused count BucketReduce.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let groups = st.group_by(&x, |st, e| {
            let t = st.lit_f(10.0);
            let d = st.div(e, &t);
            st.f2i(&d)
        });
        let vals = st.bucket_values(&groups);
        let avgs = st.map(&vals, |st, bucket| {
            let s = st.sum(bucket);
            let n = st.len(bucket);
            let nf = st.i2f(&n);
            st.div(&s, &nf)
        });
        let keys = st.bucket_keys(&groups);
        let pair = st.tuple(&[&keys, &avgs]);
        let mut p = st.finish(&pair);
        let p0 = p.clone();
        // CSE first merges the two len(bucket) uses into one symbol, the
        // shape the matcher expects.
        crate::cleanup::cse(&mut p);
        let rep = fixpoint(&mut p, run);
        assert_eq!(rep.applied, 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        let printed = p.to_string();
        assert_eq!(
            printed.matches("BucketReduce").count(),
            2,
            "sum and count share one traversal: {printed}"
        );
        assert!(!printed.contains("BucketCollect"), "{printed}");
        let inputs = [("x", Value::f64_arr(vec![1.0, 2.0, 11.0, 12.0, 13.0, 21.0]))];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn grouped_elements_used_directly_blocks_rule() {
        // The consumer returns the bucket itself (not a reduce of it): no
        // transformation applies.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let groups = st.group_by(&x, |st, e| {
            let k = st.lit_i(2);
            st.rem(e, &k)
        });
        let vals = st.bucket_values(&groups);
        let mut p = st.finish(&vals);
        let rep = fixpoint(&mut p, run);
        assert_eq!(rep.applied, 0);
    }
}
