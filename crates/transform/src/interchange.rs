//! The reversible loop-interchange pair of Figure 3.
//!
//! **Column-to-Row Reduce** (for CPUs and clusters):
//!
//! ```text
//! Collect_s1(_)(i => Reduce_s2(c)(f)(r))  →  R = Reduce_s2(c)(fv)(rv)
//!                                            Collect_s1(_)(i => R(i))
//! ```
//!
//! Instead of constructing a vector of sums, compute a **sum of vectors**:
//! traverse the big dimension (`s2`, e.g. the samples of logistic
//! regression) once, reducing whole `s1`-vectors element-wise. `fv` and `rv`
//! are the vectorized `f` and `r`, built by wrapping each scalar function in
//! a `Collect`.
//!
//! **Row-to-Column Reduce** (for GPUs) is the exact inverse: it splits a
//! vector reduction back into per-element scalar reductions, because GPU
//! code generation can only keep fixed-size (scalar) reduction temporaries
//! in shared memory. The two rules are mutually inverse, which the tests
//! verify by round-tripping.

use crate::rewrite::PassReport;
use dmll_core::rebind::Rebinder;
use dmll_core::typecheck;
use dmll_core::visit::{def_blocks, free_syms};
use dmll_core::{Block, Def, Exp, Gen, Multiloop, Program, Stmt, Sym, Ty};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Column-to-Row
// ---------------------------------------------------------------------------

/// Apply Column-to-Row Reduce everywhere it matches.
pub fn column_to_row(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    while let Some(site) = find_c2r(program) {
        let note = format!(
            "column-to-row: vectorized inner Reduce {} over the outer range",
            site.rr_sym
        );
        apply_c2r(program, site);
        report.record(note);
    }
    report
}

struct C2rSite {
    path: Vec<(usize, usize)>,
    /// Outer collect statement index in that block.
    l_idx: usize,
    /// Inner reduce statement index in the outer collect's value block.
    reduce_idx: usize,
    rr_sym: Sym,
}

fn block_at_mut<'a>(p: &'a mut Program, path: &[(usize, usize)]) -> &'a mut Block {
    let mut b = &mut p.body;
    for &(si, bi) in path {
        b = dmll_core::visit::def_blocks_mut(&mut b.stmts[si].def)
            .into_iter()
            .nth(bi)
            .expect("valid path");
    }
    b
}

fn shallow_bound(b: &Block) -> BTreeSet<Sym> {
    b.params
        .iter()
        .copied()
        .chain(b.stmts.iter().flat_map(|s| s.lhs.iter().copied()))
        .collect()
}

fn invariant(e: &Exp, bound: &BTreeSet<Sym>) -> bool {
    e.as_sym().is_none_or(|s| !bound.contains(&s))
}

fn find_c2r(program: &Program) -> Option<C2rSite> {
    let tys = typecheck::infer(program).ok()?;
    fn go(
        block: &Block,
        path: &mut Vec<(usize, usize)>,
        tys: &dmll_core::typecheck::TypeMap,
    ) -> Option<C2rSite> {
        for (l_idx, stmt) in block.stmts.iter().enumerate() {
            let Def::Loop(ml) = &stmt.def else { continue };
            let Some(Gen::Collect {
                cond: None,
                value: ob,
            }) = ml.only_gen()
            else {
                continue;
            };
            if let Some(reduce_idx) = match_c2r_inner(ob, tys) {
                return Some(C2rSite {
                    path: path.to_vec(),
                    l_idx,
                    reduce_idx,
                    rr_sym: ob.stmts[reduce_idx].lhs[0],
                });
            }
        }
        for (si, stmt) in block.stmts.iter().enumerate() {
            for (bi, nb) in def_blocks(&stmt.def).into_iter().enumerate() {
                path.push((si, bi));
                if let Some(site) = go(nb, path, tys) {
                    return Some(site);
                }
                path.pop();
            }
        }
        None
    }
    go(&program.body, &mut Vec::new(), &tys)
}

fn match_c2r_inner(ob: &Block, tys: &dmll_core::typecheck::TypeMap) -> Option<usize> {
    let bound = shallow_bound(ob);
    let i = ob.params[0];
    for (idx, stmt) in ob.stmts.iter().enumerate() {
        let Def::Loop(ml) = &stmt.def else { continue };
        let Some(Gen::Reduce {
            cond,
            value: f,
            reducer: r,
            init,
        }) = ml.only_gen()
        else {
            continue;
        };
        if stmt.lhs.len() != 1 {
            continue;
        }
        // Scalar reductions only: vectorizing a vector reduce would nest
        // another level, which Row-to-Column owns.
        if !matches!(tys.get(&stmt.lhs[0]), Some(Ty::I64) | Some(Ty::F64)) {
            continue;
        }
        // Size, condition, reducer and identity must be outer-invariant.
        if !invariant(&ml.size, &bound) {
            continue;
        }
        if let Some(c) = cond {
            if free_syms(c).iter().any(|s| bound.contains(s)) {
                continue;
            }
        }
        if free_syms(r).iter().any(|s| bound.contains(s)) {
            continue;
        }
        if let Some(e) = init {
            if !invariant(e, &bound) {
                continue;
            }
        }
        // The value may reference the outer index `i` but nothing else bound
        // in the outer body.
        if free_syms(f).iter().any(|s| *s != i && bound.contains(s)) {
            continue;
        }
        return Some(idx);
    }
    None
}

fn apply_c2r(program: &mut Program, site: C2rSite) {
    // Clone the pieces.
    let (s1, outer_param, s2, cond, f, r, init) = {
        let block = block_at_mut(program, &site.path);
        let Def::Loop(ml_o) = &block.stmts[site.l_idx].def else {
            unreachable!()
        };
        let Some(Gen::Collect { value: ob, .. }) = ml_o.only_gen() else {
            unreachable!()
        };
        let Def::Loop(ml_r) = &ob.stmts[site.reduce_idx].def else {
            unreachable!()
        };
        let Some(Gen::Reduce {
            cond,
            value: f,
            reducer: r,
            init,
        }) = ml_r.only_gen()
        else {
            unreachable!()
        };
        (
            ml_o.size.clone(),
            ob.params[0],
            ml_r.size.clone(),
            cond.clone(),
            f.clone(),
            r.clone(),
            init.clone(),
        )
    };

    // fv(j) = Collect_s1(i2 => f[i -> i2, j_param -> j]).
    let fv = {
        let j = program.fresh();
        let i2 = program.fresh();
        let inner_value = {
            let mut rb = Rebinder::new(program);
            rb.map(f.params[0], Exp::Sym(j));
            rb.map(outer_param, Exp::Sym(i2));
            let mut b = rb.rebind_block(&f);
            b.params = vec![i2];
            b
        };
        let vec_out = program.fresh();
        Block {
            params: vec![j],
            stmts: vec![Stmt::one(
                vec_out,
                Def::Loop(Multiloop::single(
                    s1.clone(),
                    Gen::Collect {
                        cond: None,
                        value: inner_value,
                    },
                )),
            )],
            result: Exp::Sym(vec_out),
        }
    };

    // rv(a, b) = Collect_s1(t => r(a(t), b(t))).
    let rv = {
        let a = program.fresh();
        let b = program.fresh();
        let t = program.fresh();
        let at = program.fresh();
        let bt = program.fresh();
        let combined = {
            let mut rb = Rebinder::new(program);
            rb.map(r.params[0], Exp::Sym(at));
            rb.map(r.params[1], Exp::Sym(bt));
            let mut blk = rb.rebind_block(&r);
            blk.params.clear();
            blk
        };
        let mut zip_stmts = vec![
            Stmt::one(
                at,
                Def::ArrayRead {
                    arr: Exp::Sym(a),
                    index: Exp::Sym(t),
                },
            ),
            Stmt::one(
                bt,
                Def::ArrayRead {
                    arr: Exp::Sym(b),
                    index: Exp::Sym(t),
                },
            ),
        ];
        zip_stmts.extend(combined.stmts);
        let zip_value = Block {
            params: vec![t],
            stmts: zip_stmts,
            result: combined.result,
        };
        let zipped = program.fresh();
        Block {
            params: vec![a, b],
            stmts: vec![Stmt::one(
                zipped,
                Def::Loop(Multiloop::single(
                    s1.clone(),
                    Gen::Collect {
                        cond: None,
                        value: zip_value,
                    },
                )),
            )],
            result: Exp::Sym(zipped),
        }
    };

    // Optional vector identity: ivec = Collect_s1(_ => init).
    let mut prefix_stmts = Vec::new();
    let vec_init = init.map(|iexp| {
        let dead = program.fresh();
        let ivec = program.fresh();
        prefix_stmts.push(Stmt::one(
            ivec,
            Def::Loop(Multiloop::single(
                s1.clone(),
                Gen::Collect {
                    cond: None,
                    value: Block::ret(vec![dead], iexp),
                },
            )),
        ));
        Exp::Sym(ivec)
    });

    let new_cond = cond.map(|c| Rebinder::new(program).rebind_block(&c));
    let big_r = program.fresh();
    prefix_stmts.push(Stmt::one(
        big_r,
        Def::Loop(Multiloop::single(
            s2,
            Gen::Reduce {
                cond: new_cond,
                value: fv,
                reducer: rv,
                init: vec_init,
            },
        )),
    ));

    // Splice: insert the prefix before the outer collect, and replace the
    // inner reduce with R(i).
    let block = block_at_mut(program, &site.path);
    if let Def::Loop(ml_o) = &mut block.stmts[site.l_idx].def {
        let ob = ml_o.gens[0].value_mut();
        let i = ob.params[0];
        ob.stmts[site.reduce_idx] = Stmt::one(
            site.rr_sym,
            Def::ArrayRead {
                arr: Exp::Sym(big_r),
                index: Exp::Sym(i),
            },
        );
    }
    block.stmts.splice(site.l_idx..site.l_idx, prefix_stmts);
}

// ---------------------------------------------------------------------------
// Row-to-Column
// ---------------------------------------------------------------------------

/// Apply Row-to-Column Reduce everywhere it matches (the GPU direction).
pub fn row_to_column(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    while let Some(site) = find_r2c(program) {
        let note = format!(
            "row-to-column: split vector Reduce {} into scalar reduces",
            site.rr_sym
        );
        apply_r2c(program, site);
        report.record(note);
    }
    report
}

struct R2cSite {
    path: Vec<(usize, usize)>,
    /// The vector-reduce statement index.
    l_idx: usize,
    rr_sym: Sym,
    /// Index of the collect stmt inside fv.
    fv_collect_idx: usize,
    /// Init decomposition: Some(scalar exp) if the vector identity is a
    /// constant collect, None if there is no identity.
    scalar_init: Option<Exp>,
    /// Statement index of the init-producing loop (to leave for DCE).
    _init_idx: Option<usize>,
}

fn find_r2c(program: &Program) -> Option<R2cSite> {
    fn go(block: &Block, path: &mut Vec<(usize, usize)>) -> Option<R2cSite> {
        for (l_idx, stmt) in block.stmts.iter().enumerate() {
            if let Some(site) = match_r2c(block, l_idx, stmt) {
                return Some(R2cSite {
                    path: path.to_vec(),
                    l_idx,
                    ..site
                });
            }
        }
        for (si, stmt) in block.stmts.iter().enumerate() {
            for (bi, nb) in def_blocks(&stmt.def).into_iter().enumerate() {
                path.push((si, bi));
                if let Some(site) = go(nb, path) {
                    return Some(site);
                }
                path.pop();
            }
        }
        None
    }
    go(&program.body, &mut Vec::new())
}

fn match_r2c(block: &Block, _l_idx: usize, stmt: &Stmt) -> Option<R2cSite> {
    let Def::Loop(ml) = &stmt.def else {
        return None;
    };
    let Some(Gen::Reduce {
        cond: _,
        value: fv,
        reducer: rv,
        init,
    }) = ml.only_gen()
    else {
        return None;
    };
    if stmt.lhs.len() != 1 {
        return None;
    }
    // fv must end in a collect over s1 (with possible per-j preamble).
    let vec_sym = fv.result.as_sym()?;
    let fv_collect_idx = fv.stmt_index_defining(vec_sym)?;
    let Def::Loop(ml_f) = &fv.stmts[fv_collect_idx].def else {
        return None;
    };
    let Some(Gen::Collect {
        cond: None,
        value: _,
    }) = ml_f.only_gen()
    else {
        return None;
    };
    let s1 = ml_f.size.clone();
    // The preamble must not consume the collect output (it cannot, SSA) and
    // the collect output must only be the result.
    let mut vec_uses = 0;
    dmll_core::visit::for_each_exp_deep(fv, &mut |e| {
        if e.as_sym() == Some(vec_sym) {
            vec_uses += 1;
        }
    });
    if vec_uses != 1 {
        return None;
    }
    // The collect size must be invariant with respect to fv itself (it
    // becomes the new outer range); loop-invariant code motion normalizes
    // programs into this form.
    if let Some(s) = s1.as_sym() {
        let fv_bound: BTreeSet<Sym> = fv
            .params
            .iter()
            .copied()
            .chain(fv.stmts.iter().flat_map(|st| st.lhs.iter().copied()))
            .collect();
        if fv_bound.contains(&s) {
            return None;
        }
    }
    // rv must be a zipWith-collect over the same size applying a scalar
    // combine; besides the zip loop it may only compute len(a)/len(b).
    let (a, b) = (rv.params[0], rv.params[1]);
    let zip_sym = rv.result.as_sym()?;
    let mut len_syms: BTreeSet<Sym> = BTreeSet::new();
    let mut zip_stmt = None;
    for s in &rv.stmts {
        match &s.def {
            Def::ArrayLen(e) if e.as_sym() == Some(a) || e.as_sym() == Some(b) => {
                len_syms.insert(s.lhs[0]);
            }
            Def::Loop(_) if s.lhs.contains(&zip_sym) => zip_stmt = Some(s),
            _ => return None,
        }
    }
    let zip_stmt = zip_stmt?;
    let Def::Loop(ml_z) = &zip_stmt.def else {
        return None;
    };
    let Some(Gen::Collect {
        cond: None,
        value: zv,
    }) = ml_z.only_gen()
    else {
        return None;
    };
    // Zip size: syntactically s1, or the length of either operand (the
    // "iff size(a1) == size(b1) == s2" premise of the rule).
    let size_matches = ml_z.size == s1 || ml_z.size.as_sym().is_some_and(|s| len_syms.contains(&s));
    if !size_matches {
        return None;
    }
    // zv: t => r(a(t), b(t)) — reads of a and b at t only, t used only
    // through them.
    let t = zv.params[0];
    let mut reads = 0;
    let mut bad = false;
    for s in &zv.stmts {
        match &s.def {
            Def::ArrayRead { arr, index }
                if (arr.as_sym() == Some(a) || arr.as_sym() == Some(b)) =>
            {
                if index.as_sym() != Some(t) {
                    bad = true;
                }
                reads += 1;
            }
            other => {
                dmll_core::visit::for_each_exp_shallow(other, &mut |e| {
                    if let Exp::Sym(s) = e {
                        if *s == t || *s == a || *s == b {
                            bad = true;
                        }
                    }
                });
                for nb in def_blocks(other) {
                    if free_syms(nb).iter().any(|s| *s == t || *s == a || *s == b) {
                        bad = true;
                    }
                }
            }
        }
    }
    if bad || reads != 2 {
        return None;
    }
    // Init: none, or a constant collect over s1 defined in this block.
    let (scalar_init, init_idx) = match init {
        None => (None, None),
        Some(Exp::Const(_)) => return None, // a vector identity cannot be scalar
        Some(Exp::Sym(isym)) => {
            let idx = block.stmt_index_defining(*isym)?;
            let Def::Loop(ml_i) = &block.stmts[idx].def else {
                return None;
            };
            let Some(Gen::Collect {
                cond: None,
                value: iv,
            }) = ml_i.only_gen()
            else {
                return None;
            };
            if !iv.stmts.is_empty() {
                return None;
            }
            if iv.result.as_sym() == Some(iv.params[0]) {
                return None;
            }
            if ml_i.size != s1 {
                return None;
            }
            (Some(iv.result.clone()), Some(idx))
        }
    };
    Some(R2cSite {
        path: Vec::new(),
        l_idx: 0,
        rr_sym: stmt.lhs[0],
        fv_collect_idx,
        scalar_init,
        _init_idx: init_idx,
    })
}

fn apply_r2c(program: &mut Program, site: R2cSite) {
    let (s1, s2, cond, fv, rv, rr_sym) = {
        let block = block_at_mut(program, &site.path);
        let Def::Loop(ml) = &block.stmts[site.l_idx].def else {
            unreachable!()
        };
        let Some(Gen::Reduce {
            cond,
            value: fv,
            reducer: rv,
            ..
        }) = ml.only_gen()
        else {
            unreachable!()
        };
        let Def::Loop(ml_f) = &fv.stmts[site.fv_collect_idx].def else {
            unreachable!()
        };
        (
            ml_f.size.clone(),
            ml.size.clone(),
            cond.clone(),
            fv.clone(),
            rv.clone(),
            site.rr_sym,
        )
    };

    // Extract f(i, j) from the fv preamble plus the inner collect value.
    //
    // When the preamble feeds the element function through a single value
    // (e.g. logistic regression's per-sample hypothesis), *fission* it into
    // a standalone precompute pass instead of inlining — inlining would
    // recompute per-(i, j) work that the vectorized form did once per j.
    let (f_template, precompute) = {
        let Def::Loop(ml_f) = &fv.stmts[site.fv_collect_idx].def else {
            unreachable!()
        };
        let Some(Gen::Collect { value: fb, .. }) = ml_f.only_gen() else {
            unreachable!()
        };
        let preamble: Vec<Stmt> = fv
            .stmts
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != site.fv_collect_idx)
            .map(|(_, s)| s.clone())
            .collect();
        let preamble_lhs: std::collections::BTreeSet<Sym> = preamble
            .iter()
            .flat_map(|s| s.lhs.iter().copied())
            .collect();
        let used: Vec<Sym> = {
            let mut used = std::collections::BTreeSet::new();
            dmll_core::visit::for_each_exp_deep(fb, &mut |e| {
                if let Exp::Sym(s) = e {
                    if preamble_lhs.contains(s) {
                        used.insert(*s);
                    }
                }
            });
            used.into_iter().collect()
        };
        // Which preamble statements transitively involve a loop (expensive
        // to recompute per element)?
        let mut loop_dep: std::collections::BTreeSet<Sym> = std::collections::BTreeSet::new();
        for s in &preamble {
            let mut dep = matches!(s.def, Def::Loop(_));
            dmll_core::visit::for_each_exp_shallow(&s.def, &mut |e| {
                if let Exp::Sym(sym) = e {
                    if loop_dep.contains(sym) {
                        dep = true;
                    }
                }
            });
            for nb in dmll_core::visit::def_blocks(&s.def) {
                if dmll_core::visit::free_syms(nb)
                    .iter()
                    .any(|sym| loop_dep.contains(sym))
                {
                    dep = true;
                }
            }
            if dep {
                loop_dep.extend(s.lhs.iter().copied());
            }
        }
        // Expensive values are packaged in the precompute pass; cheap scalar
        // chains (e.g. the affine row base `j * cols`) are recomputed per
        // element so index expressions stay affine for the stencil analysis.
        let packaged: Vec<Sym> = used
            .iter()
            .copied()
            .filter(|u| loop_dep.contains(u))
            .collect();
        let cheap_stmts: Vec<Stmt> = preamble
            .iter()
            .filter(|s| s.lhs.iter().all(|l| !loop_dep.contains(l)))
            .cloned()
            .collect();
        let used = packaged;
        if !used.is_empty() {
            // Fission: pre = Collect_s2(jp => preamble; (used…)), then the
            // per-element function reads its per-j values from `pre`.
            let jp = program.fresh();
            let value = {
                let packed = program.fresh();
                let mut stmts = preamble;
                stmts.push(Stmt::one(
                    packed,
                    Def::TupleNew(used.iter().map(|u| Exp::Sym(*u)).collect()),
                ));
                let mut rb = Rebinder::new(program);
                rb.map(fv.params[0], Exp::Sym(jp));
                let mut b = rb.rebind_block(&Block {
                    params: vec![fv.params[0]],
                    stmts,
                    result: Exp::Sym(packed),
                });
                b.params = vec![jp];
                b
            };
            let pre = program.fresh();
            let pre_stmt = Stmt::one(
                pre,
                Def::Loop(Multiloop::single(
                    s2.clone(),
                    Gen::Collect { cond: None, value },
                )),
            );
            // f(j, i): uval = pre(j); per-component projections; fb.
            let uval = program.fresh();
            let mut stmts = vec![Stmt::one(
                uval,
                Def::ArrayRead {
                    arr: Exp::Sym(pre),
                    index: Exp::Sym(fv.params[0]),
                },
            )];
            let mut subst = std::collections::HashMap::new();
            for (k, u) in used.iter().enumerate() {
                let proj = program.fresh();
                stmts.push(Stmt::one(
                    proj,
                    Def::TupleGet {
                        tuple: Exp::Sym(uval),
                        index: k,
                    },
                ));
                subst.insert(*u, Exp::Sym(proj));
            }
            stmts.extend(cheap_stmts);
            stmts.extend(fb.stmts.clone());
            let mut template = Block {
                params: vec![fv.params[0], fb.params[0]],
                stmts,
                result: fb.result.clone(),
            };
            dmll_core::rebind::subst_in_block(&mut template, &subst);
            (template, Some(pre_stmt))
        } else {
            let mut stmts: Vec<Stmt> = preamble;
            stmts.extend(fb.stmts.clone());
            (
                Block {
                    params: vec![fv.params[0], fb.params[0]],
                    stmts,
                    result: fb.result.clone(),
                },
                None,
            )
        }
    };

    // Extract the scalar combine r(x, y) from rv's zip body.
    let r_template = {
        let zip_stmt = rv
            .stmts
            .iter()
            .find(|s| matches!(s.def, Def::Loop(_)))
            .expect("matched zip loop");
        let Def::Loop(ml_z) = &zip_stmt.def else {
            unreachable!()
        };
        let Some(Gen::Collect { value: zv, .. }) = ml_z.only_gen() else {
            unreachable!()
        };
        let (a, b) = (rv.params[0], rv.params[1]);
        // Identify the two reads and their bound symbols.
        let mut na = None;
        let mut nb = None;
        let mut stmts = Vec::new();
        for s in &zv.stmts {
            match &s.def {
                Def::ArrayRead { arr, .. } if arr.as_sym() == Some(a) => na = Some(s.lhs[0]),
                Def::ArrayRead { arr, .. } if arr.as_sym() == Some(b) => nb = Some(s.lhs[0]),
                Def::ArrayLen(e) if e.as_sym() == Some(a) || e.as_sym() == Some(b) => {}
                _ => stmts.push(s.clone()),
            }
        }
        Block {
            params: vec![na.expect("read of a"), nb.expect("read of b")],
            stmts,
            result: zv.result.clone(),
        }
    };

    // Build the outer collect.
    let i2 = program.fresh();
    let j2 = program.fresh();
    let inner_value = {
        let mut rb = Rebinder::new(program);
        rb.map(f_template.params[0], Exp::Sym(j2));
        rb.map(f_template.params[1], Exp::Sym(i2));
        let mut blk = rb.rebind_block(&f_template);
        blk.params = vec![j2];
        blk
    };
    let inner_reducer = {
        let mut rb = Rebinder::new(program);

        rb.rebind_block(&r_template)
    };
    let new_cond = cond.map(|c| Rebinder::new(program).rebind_block(&c));
    let rr2 = program.fresh();
    let outer_value = Block {
        params: vec![i2],
        stmts: vec![Stmt::one(
            rr2,
            Def::Loop(Multiloop::single(
                s2,
                Gen::Reduce {
                    cond: new_cond,
                    value: inner_value,
                    reducer: inner_reducer,
                    init: site.scalar_init.clone(),
                },
            )),
        )],
        result: Exp::Sym(rr2),
    };
    let block = block_at_mut(program, &site.path);
    block.stmts[site.l_idx] = Stmt::one(
        rr_sym,
        Def::Loop(Multiloop::single(
            s1,
            Gen::Collect {
                cond: None,
                value: outer_value,
            },
        )),
    );
    if let Some(pre_stmt) = precompute {
        block.stmts.insert(site.l_idx, pre_stmt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::fixpoint;
    use dmll_core::printer::count_loops;
    use dmll_core::LayoutHint;
    use dmll_frontend::Stage;
    use dmll_interp::{eval, Value};

    /// Textbook logistic-regression gradient shape: for each feature j,
    /// sum over samples i of x(i,j) * (y(i) - x(i,0)).
    fn logreg_like() -> Program {
        let mut st = Stage::new();
        let x = st.input_matrix("x", LayoutHint::Partitioned);
        let y = st.input("y", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let cols = x.cols(&mut st);
        let rows = x.rows(&mut st);
        let zero = st.lit_f(0.0);
        let grad = st.collect(&cols, |st, j| {
            let j = j.clone();
            let x = x.clone();
            let y = y.clone();
            st.reduce(
                &rows,
                move |st, i| {
                    let xij = x.get(st, i, &j);
                    let yi = st.read(&y, i);
                    let z = st.lit_i(0);
                    let xi0 = x.get(st, i, &z);
                    let d = st.sub(&yi, &xi0);
                    st.mul(&xij, &d)
                },
                |st, a, b| st.add(a, b),
                Some(&zero),
            )
        });
        st.finish(&grad)
    }

    fn logreg_inputs() -> Vec<(&'static str, Value)> {
        vec![
            (
                "x",
                Value::matrix(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], 3, 3),
            ),
            ("y", Value::f64_arr(vec![0.5, 1.5, -0.5])),
        ]
    }

    #[test]
    fn column_to_row_vectorizes() {
        let mut p = logreg_like();
        let p0 = p.clone();
        let rep = fixpoint(&mut p, column_to_row);
        assert_eq!(rep.applied, 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        let inputs = logreg_inputs();
        let before = eval(&p0, &inputs).unwrap();
        let after = eval(&p, &inputs).unwrap();
        assert_eq!(before, after);
        // The transformed program reduces collections: the reducer contains
        // a nested Collect (vectorized add).
        let s = p.to_string();
        assert!(s.contains("reduce (x"), "{s}");
    }

    #[test]
    fn row_to_column_inverts() {
        let mut p = logreg_like();
        let p0 = p.clone();
        fixpoint(&mut p, column_to_row);
        let loops_mid = count_loops(&p);
        let rep = fixpoint(&mut p, row_to_column);
        assert_eq!(rep.applied, 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        let inputs = logreg_inputs();
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
        // Round-trip restores a nested scalar-reduce structure; the
        // leftover identity collect and the dead vector identity disappear
        // under copy elimination + DCE.
        crate::cleanup::dce(&mut p);
        fixpoint(&mut p, crate::cleanup::copy_elim);
        crate::cleanup::dce(&mut p);
        let loops_after = count_loops(&p);
        assert!(
            loops_after < loops_mid,
            "inverse removed the vector machinery: {loops_mid} -> {loops_after}"
        );
        assert_eq!(count_loops(&p), 2, "{p}");
        let inputs2 = logreg_inputs();
        assert_eq!(eval(&p0, &inputs2).unwrap(), eval(&p, &inputs2).unwrap());
    }

    #[test]
    fn roundtrip_preserves_semantics_on_random_matrices() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let rows = rng.gen_range(1..8);
            let cols = rng.gen_range(1..6);
            let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let yv: Vec<f64> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let inputs = vec![
                ("x", Value::matrix(data, rows, cols)),
                ("y", Value::f64_arr(yv)),
            ];
            let p0 = logreg_like();
            let mut p1 = p0.clone();
            fixpoint(&mut p1, column_to_row);
            let mut p2 = p1.clone();
            fixpoint(&mut p2, row_to_column);
            let r0 = eval(&p0, &inputs).unwrap();
            let r1 = eval(&p1, &inputs).unwrap();
            let r2 = eval(&p2, &inputs).unwrap();
            // Identical data traversals up to float reassociation; with the
            // same reduction order the results are bit-equal here.
            assert_eq!(r0, r2, "round trip");
            // Vectorized version reassociates identically too (same order).
            assert_eq!(r0, r1, "vectorized");
        }
    }

    #[test]
    fn reduce_depending_on_outer_locals_not_matched() {
        // The inner reduce's value uses a per-i temporary besides i itself:
        // conservative matcher refuses.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let n = st.len(&x);
        let k = st.lit_i(4);
        let out = st.collect(&k, |st, i| {
            let fi = st.i2f(i);
            let scale = st.mul(&fi, &fi); // bound in outer body, not i itself
            let x = x.clone();
            let zero = st.lit_f(0.0);
            st.reduce(
                &n,
                move |st, jj| {
                    let xj = st.read(&x, jj);
                    st.mul(&xj, &scale)
                },
                |st, a, b| st.add(a, b),
                Some(&zero),
            )
        });
        let mut p = st.finish(&out);
        let rep = fixpoint(&mut p, column_to_row);
        assert_eq!(rep.applied, 0, "{p}");
    }

    #[test]
    fn vector_reduce_without_collect_shape_not_matched_by_r2c() {
        // A scalar reduce is not a candidate for Row-to-Column.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let s = st.sum(&x);
        let mut p = st.finish(&s);
        let rep = fixpoint(&mut p, row_to_column);
        assert_eq!(rep.applied, 0);
    }

    #[test]
    fn kmeans_vector_sum_row_to_column() {
        // A directly staged vector reduction (sum of matrix rows) splits
        // into per-column scalar sums for the GPU.
        let mut st = Stage::new();
        let m = st.input_matrix("m", LayoutHint::Partitioned);
        let rows = m.rows(&mut st);
        let sum = st.reduce(
            &rows,
            |st, i| m.row(st, i),
            |st, a, b| st.vec_add(a, b),
            None,
        );
        let mut p = st.finish(&sum);
        let p0 = p.clone();
        // Normalize: hoist the loop-invariant `m.cols` that `row` stages
        // inside the reduce value, so the collect size is visible outside.
        fixpoint(&mut p, crate::code_motion::run);
        let rep = fixpoint(&mut p, row_to_column);
        assert_eq!(rep.applied, 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        let inputs = [(
            "m",
            Value::matrix(vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0], 2, 3),
        )];
        let before = eval(&p0, &inputs).unwrap();
        let after = eval(&p, &inputs).unwrap();
        assert_eq!(before, after);
        assert_eq!(after.to_f64_vec().unwrap(), vec![11.0, 22.0, 33.0]);
    }
}

#[cfg(test)]
mod fission_tests {
    use super::*;
    use crate::rewrite::fixpoint;
    use dmll_core::LayoutHint;
    use dmll_frontend::Stage;
    use dmll_interp::{eval, Value};

    /// A vectorized reduce whose per-j preamble contains an expensive inner
    /// loop (a dot product), feeding the element function — the logistic
    /// regression shape after Column-to-Row + code motion.
    fn vectorized_with_preamble() -> dmll_core::Program {
        let mut st = Stage::new();
        let x = st.input_matrix("x", LayoutHint::Partitioned);
        let y = st.input("y", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let cols = x.cols(&mut st);
        let rows = x.rows(&mut st);
        let grad = st.reduce(
            &rows,
            |st, j| {
                // Per-row preamble: err = y(j) - dot(row j, row j).
                let x2 = x.clone();
                let yj = st.read(&y, j);
                let zero = st.lit_f(0.0);
                let j2 = j.clone();
                let x3 = x2.clone();
                let dot = st.reduce(
                    &cols,
                    move |st, t| {
                        let a = x3.get(st, &j2, t);
                        st.mul(&a, &a)
                    },
                    |st, a, b| st.add(a, b),
                    Some(&zero),
                );
                let err = st.sub(&yj, &dot);
                // Element function: x(j, i) * err over the columns.
                let j3 = j.clone();
                st.collect(&cols, move |st, i| {
                    let v = x2.get(st, &j3, i);
                    st.mul(&v, &err)
                })
            },
            |st, a, b| st.vec_add(a, b),
            None,
        );
        st.finish(&grad)
    }

    #[test]
    fn expensive_preamble_is_fissioned_into_precompute_pass() {
        let mut p = vectorized_with_preamble();
        let p0 = p.clone();
        fixpoint(&mut p, crate::code_motion::run);
        let loops_before = dmll_core::printer::count_loops(&p);
        let rep = fixpoint(&mut p, row_to_column);
        assert_eq!(rep.applied, 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        // A standalone precompute collect appears at top level, and the
        // element function reads a tuple projection from it.
        let printed = p.to_string();
        assert!(printed.contains("._0"), "tuple projection: {printed}");
        let top_loops = p
            .body
            .stmts
            .iter()
            .filter(|s| matches!(s.def, Def::Loop(_)))
            .count();
        assert!(top_loops >= 2, "precompute + scalarized: {printed}");
        let _ = loops_before;
        // Semantics preserved.
        let inputs = [
            ("x", Value::matrix(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3)),
            ("y", Value::f64_arr(vec![10.0, -4.0])),
        ];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn cheap_preamble_is_inlined_not_fissioned() {
        // Preamble = an affine row base only: recomputed per element, no
        // precompute pass, and the index stays affine (Interval stencil).
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let rows = st.lit_i(4);
        let cols = st.lit_i(3);
        let sum = st.reduce(
            &rows,
            |st, j| {
                let base = st.mul(j, &cols); // cheap per-j preamble
                let x2 = x.clone();
                st.collect(&cols, move |st, i| {
                    let idx = st.add(&base, i);
                    st.read(&x2, &idx)
                })
            },
            |st, a, b| st.vec_add(a, b),
            None,
        );
        let mut p = st.finish(&sum);
        let p0 = p.clone();
        fixpoint(&mut p, crate::code_motion::run);
        let rep = fixpoint(&mut p, row_to_column);
        assert_eq!(rep.applied, 1, "{p}");
        assert!(!p.to_string().contains("._0"), "no tuple pass: {p}");
        let inputs = [("x", Value::f64_arr((0..12).map(|v| v as f64).collect()))];
        let before = eval(&p0, &inputs).unwrap();
        let after = eval(&p, &inputs).unwrap();
        assert_eq!(before, after);
        assert_eq!(
            after.to_f64_vec().unwrap(),
            vec![
                0.0 + 3.0 + 6.0 + 9.0,
                1.0 + 4.0 + 7.0 + 10.0,
                2.0 + 5.0 + 8.0 + 11.0
            ]
        );
    }
}
