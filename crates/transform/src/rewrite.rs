//! Pass infrastructure: reports, block walkers and fixpoint drivers.

use dmll_core::visit::def_blocks_mut;
use dmll_core::{Block, Program};

/// What a pass did to the program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PassReport {
    /// Number of individual rewrites applied.
    pub applied: usize,
    /// Human-readable notes (one per rewrite, used for optimization logs).
    pub notes: Vec<String>,
    /// Number of legal rewrite candidates the pass declined (cost model said
    /// the rewrite loses, or a resource budget would be exceeded).
    pub rejected: usize,
    /// One note per rejected candidate, explaining why it was declined.
    pub rejected_notes: Vec<String>,
}

impl PassReport {
    /// A report of zero rewrites.
    pub fn none() -> PassReport {
        PassReport::default()
    }

    /// True if the pass changed the program. Rejections are not changes:
    /// a pass that only declines candidates leaves the program untouched.
    pub fn changed(&self) -> bool {
        self.applied > 0
    }

    /// Record one rewrite.
    pub fn record(&mut self, note: impl Into<String>) {
        self.applied += 1;
        self.notes.push(note.into());
    }

    /// Record one legal-but-declined rewrite candidate.
    pub fn reject(&mut self, note: impl Into<String>) {
        self.rejected += 1;
        self.rejected_notes.push(note.into());
    }

    /// Merge another report into this one.
    pub fn absorb(&mut self, other: PassReport) {
        self.applied += other.applied;
        self.notes.extend(other.notes);
        self.rejected += other.rejected;
        self.rejected_notes.extend(other.rejected_notes);
    }
}

/// Apply `f` to every block in the program (the body and every generator
/// component block at any depth), outermost first.
pub fn for_each_block_mut(program: &mut Program, f: &mut impl FnMut(&mut Block)) {
    fn go(b: &mut Block, f: &mut impl FnMut(&mut Block)) {
        f(b);
        for stmt in &mut b.stmts {
            for nb in def_blocks_mut(&mut stmt.def) {
                go(nb, f);
            }
        }
    }
    let mut body = std::mem::replace(
        &mut program.body,
        Block::ret(vec![], dmll_core::Exp::unit()),
    );
    go(&mut body, f);
    program.body = body;
}

/// Run `pass` repeatedly until it stops changing the program (or the safety
/// bound of 64 iterations is hit), accumulating one report.
pub fn fixpoint(
    program: &mut Program,
    mut pass: impl FnMut(&mut Program) -> PassReport,
) -> PassReport {
    let mut total = PassReport::none();
    for _ in 0..64 {
        let r = pass(program);
        let changed = r.changed();
        total.absorb(r);
        if !changed {
            break;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::{LayoutHint, Ty};
    use dmll_frontend::Stage;

    #[test]
    fn report_accumulates() {
        let mut r = PassReport::none();
        assert!(!r.changed());
        r.record("a");
        r.record("b");
        assert_eq!(r.applied, 2);
        let mut r2 = PassReport::none();
        r2.record("c");
        r.absorb(r2);
        assert_eq!(r.applied, 3);
        assert_eq!(r.notes, vec!["a", "b", "c"]);
    }

    #[test]
    fn block_walker_sees_nested() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let s = st.map(&x, |st, e| st.mul(e, e));
        let t = st.sum(&s);
        let mut p = st.finish(&t);
        let mut n = 0;
        for_each_block_mut(&mut p, &mut |_| n += 1);
        // body + (map: value) + (sum: value, reducer) = 4
        assert_eq!(n, 4);
    }

    #[test]
    fn fixpoint_terminates() {
        let st = Stage::new();
        let a = st.lit_i(1);
        let mut p = st.finish(&a);
        let mut calls = 0;
        let r = fixpoint(&mut p, |_| {
            calls += 1;
            let mut r = PassReport::none();
            if calls < 3 {
                r.record("tick");
            }
            r
        });
        assert_eq!(calls, 3);
        assert_eq!(r.applied, 2);
    }
}
