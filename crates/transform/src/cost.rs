//! Memory-traffic / register-pressure cost model for fusion selection.
//!
//! The greedy Figure 3 rewriter fuses every legal producer→consumer pair.
//! That is usually right — eliminating an intermediate collection saves a
//! write, a read-back and an allocation per element — but it loses when the
//! producer's element function is inlined into *several* consumer component
//! blocks (condition, key and value each take their own copy), recomputing an
//! expensive body per copy, or when the merged loop would overflow the kernel
//! tier's register file and drop the whole loop back to the tree-walker.
//!
//! Following the ILP formulation of "Fusing Gathers with Integer Linear
//! Programming" (PAPERS.md) we phrase selection as: maximize the summed
//! per-site gain (traffic saved minus recompute added) subject to a register
//! budget per fused loop. Program sizes here are tiny, so the solver is an
//! exhaustive subset search (≤ [`EXHAUSTIVE_LIMIT`] candidate sites) with a
//! greedy fallback beyond that.

use crate::fusion::Site;
use dmll_core::visit::def_blocks;
use dmll_core::{Block, Def, Multiloop, Program, Sym};

/// Units of saved memory traffic per element when an intermediate collection
/// is eliminated: one store, one load back, and amortized allocation.
pub(crate) const TRAFFIC_SAVED: i64 = 3;

/// Assumed trip count of a nested loop inside a producer body (we have no
/// static sizes, so recomputing a nested loop is "expensive" by fiat).
const NEST_WEIGHT: usize = 16;

/// Register budget per fused loop. The bytecode compiler addresses registers
/// with `u16`, but well before that limit long kernels stop fitting hot in
/// cache; stay conservative.
pub(crate) const REG_BUDGET: usize = 256;

/// Candidate count up to which the selector enumerates all subsets.
const EXHAUSTIVE_LIMIT: usize = 16;

/// A scored fusion candidate.
#[derive(Clone, Debug)]
pub(crate) struct SiteCost {
    pub producer_sym: Sym,
    pub consumer_sym: Sym,
    /// Traffic saved minus recompute added, per element (positive = win).
    pub gain: i64,
    /// Estimated registers of the fused consumer loop.
    pub fused_regs: usize,
    /// Estimated registers of the consumer before fusion.
    pub consumer_regs: usize,
    /// Why the site was declined (filled in by the selector).
    pub reason: String,
}

/// Weighted *recompute* cost of a block: only work that is expensive to
/// redo counts — nested loops (trip count × body, `NEST_WEIGHT` each) and
/// transcendental math. Flat arithmetic, comparisons and field/array reads
/// are register-or-cache work, far cheaper than the DRAM traffic a fused
/// intermediate saves, so they cost zero (this is what lets Q1's wide
/// struct-projecting producer fuse into its many-component aggregation).
pub(crate) fn block_ops(b: &Block) -> usize {
    let mut n = 0;
    for stmt in &b.stmts {
        match &stmt.def {
            Def::Loop(ml) => n += NEST_WEIGHT * (1 + ml_ops(ml)),
            Def::Math { .. } => n += 1,
            d => {
                for nb in def_blocks(d) {
                    n += block_ops(nb);
                }
            }
        }
    }
    n
}

fn ml_ops(ml: &Multiloop) -> usize {
    ml.gens.iter().map(|g| g.blocks().iter().map(|b| block_ops(b)).sum::<usize>()).sum()
}

/// Rough register estimate for a multiloop: one register per statement and
/// parameter across every component block, plus loop bookkeeping.
pub(crate) fn ml_regs(ml: &Multiloop) -> usize {
    fn block_regs(b: &Block) -> usize {
        let mut n = b.params.len() + b.stmts.len();
        for stmt in &b.stmts {
            for nb in def_blocks(&stmt.def) {
                n += block_regs(nb);
            }
        }
        n
    }
    2 + ml.gens.iter().map(|g| g.blocks().iter().map(|b| block_regs(b)).sum::<usize>()).sum::<usize>()
}

/// The component blocks of `ml` that take the loop index and read `a`:
/// each of these receives its own inlined copy of the producer body.
fn reading_components(ml: &Multiloop, a: Sym) -> usize {
    let mut n = 0;
    for gen in &ml.gens {
        let mut blocks: Vec<&Block> = Vec::new();
        if let Some(c) = gen.cond() {
            blocks.push(c);
        }
        if let Some(k) = gen.key() {
            blocks.push(k);
        }
        blocks.push(gen.value());
        for b in blocks {
            if block_reads(b, a) {
                n += 1;
            }
        }
    }
    n
}

fn block_reads(b: &Block, a: Sym) -> bool {
    let mut found = false;
    dmll_core::visit::for_each_exp_deep(b, &mut |e| {
        if e.as_sym() == Some(a) {
            found = true;
        }
    });
    found
}

/// Score one legal fusion site under the traffic/recompute model.
pub(crate) fn score_site(program: &Program, site: &Site) -> SiteCost {
    let block = crate::fusion::block_at(program, &site.path);
    let Def::Loop(ml_a) = &block.stmts[site.producer_idx].def else {
        unreachable!("site points at a producer loop")
    };
    let Def::Loop(ml_b) = &block.stmts[site.consumer_idx].def else {
        unreachable!("site points at a consumer loop")
    };
    let producer_ops = ml_ops(ml_a);
    let copies = reading_components(ml_b, site.producer_sym).max(1);
    let recompute = producer_ops as i64 * (copies as i64 - 1);
    let gain = TRAFFIC_SAVED - recompute;
    let consumer_regs = ml_regs(ml_b);
    let producer_regs = ml_regs(ml_a);
    // Each reading component inlines its own copy of the producer body.
    let fused_regs = consumer_regs + copies * producer_regs;
    SiteCost {
        producer_sym: site.producer_sym,
        consumer_sym: site.consumer_sym,
        gain,
        fused_regs,
        consumer_regs,
        reason: String::new(),
    }
}

/// Split candidates into (chosen, rejected). Chosen is the subset maximizing
/// total gain subject to the per-consumer register budget; exhaustive for
/// small candidate counts, greedy-by-gain beyond [`EXHAUSTIVE_LIMIT`].
pub(crate) fn select(cands: Vec<SiteCost>) -> (Vec<SiteCost>, Vec<SiteCost>) {
    if cands.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let chosen_mask = if cands.len() <= EXHAUSTIVE_LIMIT {
        best_subset(&cands)
    } else {
        greedy_subset(&cands)
    };
    let mut chosen = Vec::new();
    let mut rejected = Vec::new();
    for (i, mut c) in cands.into_iter().enumerate() {
        if chosen_mask & (1u32 << i) != 0 {
            chosen.push(c);
        } else {
            c.reason = if c.gain < 0 {
                format!(
                    "cost model: recompute of producer {} across consumer {} components \
                     outweighs traffic saved (gain {})",
                    c.producer_sym, c.consumer_sym, c.gain
                )
            } else {
                format!(
                    "register budget: fusing {} into {} needs ~{} registers (budget {})",
                    c.producer_sym, c.consumer_sym, c.fused_regs, REG_BUDGET
                )
            };
            rejected.push(c);
        }
    }
    (chosen, rejected)
}

/// True when every chosen site fits the register budget, accounting for
/// several producers fusing into the same consumer loop.
fn feasible(cands: &[SiteCost], mask: u32) -> bool {
    // Sites sharing a consumer stack their producer copies onto one loop.
    let mut per_consumer: Vec<(Sym, usize)> = Vec::new();
    for (i, c) in cands.iter().enumerate() {
        if mask & (1u32 << i) == 0 {
            continue;
        }
        let added = c.fused_regs - c.consumer_regs;
        match per_consumer.iter_mut().find(|(s, _)| *s == c.consumer_sym) {
            Some((_, regs)) => *regs += added,
            None => per_consumer.push((c.consumer_sym, c.consumer_regs + added)),
        }
    }
    per_consumer.iter().all(|(_, regs)| *regs <= REG_BUDGET)
}

fn subset_gain(cands: &[SiteCost], mask: u32) -> i64 {
    cands
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1u32 << i) != 0)
        .map(|(_, c)| c.gain)
        .sum()
}

/// Exhaustive subset search: the ILP objective solved by enumeration.
fn best_subset(cands: &[SiteCost]) -> u32 {
    let n = cands.len();
    let mut best_mask = 0u32;
    let mut best_gain = 0i64;
    for mask in 0..(1u32 << n) {
        if !feasible(cands, mask) {
            continue;
        }
        let g = subset_gain(cands, mask);
        // Prefer larger subsets on ties so zero-gain fusions (still one
        // fewer pass over memory) are taken.
        if g > best_gain || (g == best_gain && mask.count_ones() > best_mask.count_ones()) {
            best_gain = g;
            best_mask = mask;
        }
    }
    best_mask
}

/// Greedy fallback: take sites by descending gain while they win and fit.
fn greedy_subset(cands: &[SiteCost]) -> u32 {
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cands[i].gain));
    let mut mask = 0u32;
    for i in order {
        if cands[i].gain < 0 {
            break;
        }
        let trial = mask | (1u32 << i);
        if feasible(cands, trial) {
            mask = trial;
        }
    }
    mask
}

/// Gate for horizontal fusion: merging two loops is free in traffic terms
/// (strictly fewer passes over memory) but concentrates registers; decline
/// merges that would overflow the budget and force a tree-walk fallback.
pub(crate) fn horizontal_ok(a: &Multiloop, b: &Multiloop) -> Result<(), String> {
    let merged = ml_regs(a) + ml_regs(b);
    if merged <= REG_BUDGET {
        Ok(())
    } else {
        Err(format!(
            "register budget: merging loops needs ~{merged} registers (budget {REG_BUDGET})"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(p: u32, c: u32, gain: i64, fused_regs: usize) -> SiteCost {
        SiteCost {
            producer_sym: Sym(p),
            consumer_sym: Sym(c),
            gain,
            fused_regs,
            consumer_regs: 8,
            reason: String::new(),
        }
    }

    #[test]
    fn positive_gains_all_chosen() {
        let (chosen, rejected) = select(vec![cand(1, 2, 3, 20), cand(3, 4, 1, 20)]);
        assert_eq!(chosen.len(), 2);
        assert!(rejected.is_empty());
    }

    #[test]
    fn negative_gain_rejected_with_reason() {
        let (chosen, rejected) = select(vec![cand(1, 2, 3, 20), cand(3, 4, -5, 20)]);
        assert_eq!(chosen.len(), 1);
        assert_eq!(rejected.len(), 1);
        assert!(rejected[0].reason.contains("cost model"), "{}", rejected[0].reason);
    }

    #[test]
    fn register_budget_rejects_oversized_site() {
        let (chosen, rejected) = select(vec![cand(1, 2, 3, REG_BUDGET + 100)]);
        assert!(chosen.is_empty());
        assert_eq!(rejected.len(), 1);
        assert!(rejected[0].reason.contains("register budget"), "{}", rejected[0].reason);
    }

    #[test]
    fn shared_consumer_budget_is_cumulative() {
        // Two producers into one consumer: each fits alone, not together.
        let a = cand(1, 9, 5, 160); // adds 152 regs
        let b = cand(2, 9, 4, 160); // adds 152 regs -> 8 + 304 > 256
        let (chosen, rejected) = select(vec![a, b]);
        assert_eq!(chosen.len(), 1);
        assert_eq!(chosen[0].producer_sym, Sym(1), "higher gain wins the slot");
        assert_eq!(rejected.len(), 1);
    }

    #[test]
    fn zero_gain_still_chosen() {
        let (chosen, rejected) = select(vec![cand(1, 2, 0, 20)]);
        assert_eq!(chosen.len(), 1);
        assert!(rejected.is_empty());
    }
}
