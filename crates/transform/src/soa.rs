//! Array-of-structs → struct-of-arrays (§5, *Distributed Data Structures*).
//!
//! An input collection of records whose elements are only ever read and then
//! projected (`lineitems(i).quantity`) is split into one primitive array per
//! field (`lineitems.quantity(i)`), "reducing complex data structures to
//! simple arrays of primitives". Together with dead-input pruning
//! ([`crate::cleanup::prune_inputs`]) this also performs dead **field**
//! elimination: fields never projected simply become unused inputs.
//!
//! The pass refuses (soundly) whenever a whole record value escapes — is
//! compared, stored into another structure, or returned — since then the
//! record representation is observable.

use crate::rewrite::PassReport;
use dmll_core::visit::{def_blocks, def_blocks_mut};
use dmll_core::{Block, Def, Exp, Program, StructTy, Sym, Ty};
use std::collections::HashMap;

/// Split every eligible `Coll[Struct]` input into per-field array inputs
/// named `<input>.<field>`.
pub fn run(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    let candidates: Vec<(Sym, String, StructTy, dmll_core::LayoutHint)> = program
        .inputs
        .iter()
        .filter_map(|i| match &i.ty {
            Ty::Arr(elem) => match elem.as_ref() {
                Ty::Struct(sty) => Some((i.sym, i.name.clone(), sty.clone(), i.layout)),
                _ => None,
            },
            _ => None,
        })
        .collect();
    for (sym, name, sty, layout) in candidates {
        if !usage_is_projection_only(&program.body, sym) {
            continue;
        }
        split_input(program, sym, &name, &sty, layout);
        report.record(format!(
            "aos-to-soa: split input {name} into {} field arrays",
            sty.fields.len()
        ));
    }
    report
}

/// Check that every use of `aos` is `ArrayLen(aos)` or `ArrayRead(aos, _)`
/// whose result is consumed exclusively by `StructGet`s.
fn usage_is_projection_only(body: &Block, aos: Sym) -> bool {
    // Gather read result symbols, then verify their uses.
    let mut read_syms = Vec::new();
    let mut ok = true;
    fn scan(b: &Block, aos: Sym, read_syms: &mut Vec<Sym>, ok: &mut bool) {
        for stmt in &b.stmts {
            match &stmt.def {
                Def::ArrayRead { arr, .. } if arr.as_sym() == Some(aos) => {
                    read_syms.push(stmt.lhs[0]);
                }
                Def::ArrayLen(e) if e.as_sym() == Some(aos) => {}
                other => {
                    dmll_core::visit::for_each_exp_shallow(other, &mut |e| {
                        if e.as_sym() == Some(aos) {
                            *ok = false;
                        }
                    });
                    for nb in def_blocks(other) {
                        scan(nb, aos, read_syms, ok);
                    }
                }
            }
            // The index operand of a read may mention aos? No: it is an Exp;
            // handled by the shallow scan above for non-read defs; for the
            // read def itself check the index.
            if let Def::ArrayRead { arr, index } = &stmt.def {
                if arr.as_sym() == Some(aos) && index.as_sym() == Some(aos) {
                    *ok = false;
                }
            }
        }
        if b.result.as_sym() == Some(aos) {
            *ok = false;
        }
    }
    scan(body, aos, &mut read_syms, &mut ok);
    if !ok {
        return false;
    }
    // Each read result must be used only as a StructGet receiver.
    for r in read_syms {
        let mut total = 0usize;
        let mut as_get = 0usize;
        fn count(b: &Block, r: Sym, total: &mut usize, as_get: &mut usize) {
            for stmt in &b.stmts {
                match &stmt.def {
                    Def::StructGet { obj, .. } if obj.as_sym() == Some(r) => {
                        *total += 1;
                        *as_get += 1;
                    }
                    other => {
                        dmll_core::visit::for_each_exp_shallow(other, &mut |e| {
                            if e.as_sym() == Some(r) {
                                *total += 1;
                            }
                        });
                        for nb in def_blocks(other) {
                            count(nb, r, total, as_get);
                        }
                    }
                }
            }
            if b.result.as_sym() == Some(r) {
                *total += 1;
            }
        }
        count(body, r, &mut total, &mut as_get);
        if total != as_get {
            return false;
        }
    }
    true
}

fn split_input(
    program: &mut Program,
    aos: Sym,
    name: &str,
    sty: &StructTy,
    layout: dmll_core::LayoutHint,
) {
    // New per-field inputs.
    let field_syms: HashMap<String, Sym> = sty
        .fields
        .iter()
        .map(|(f, ft)| {
            let s = program.add_input(format!("{name}.{f}"), Ty::arr(ft.clone()), layout);
            (f.clone(), s)
        })
        .collect();
    let first_field = field_syms[&sty.fields[0].0];

    // Pass 1: find reads `r = aos(idx)` and remember their index exps.
    let mut reads: HashMap<Sym, Exp> = HashMap::new();
    fn collect_reads(b: &Block, aos: Sym, reads: &mut HashMap<Sym, Exp>) {
        for stmt in &b.stmts {
            if let Def::ArrayRead { arr, index } = &stmt.def {
                if arr.as_sym() == Some(aos) {
                    reads.insert(stmt.lhs[0], index.clone());
                }
            }
            for nb in def_blocks(&stmt.def) {
                collect_reads(nb, aos, reads);
            }
        }
    }
    collect_reads(&program.body, aos, &mut reads);

    // Pass 2: rewrite StructGets, lens, and drop the struct reads.
    fn rewrite(
        b: &mut Block,
        aos: Sym,
        first_field: Sym,
        reads: &HashMap<Sym, Exp>,
        field_syms: &HashMap<String, Sym>,
    ) {
        b.stmts
            .retain(|s| !matches!(&s.def, Def::ArrayRead { arr, .. } if arr.as_sym() == Some(aos)));
        for stmt in &mut b.stmts {
            let new_def = match &stmt.def {
                Def::StructGet { obj, field } => obj
                    .as_sym()
                    .and_then(|o| reads.get(&o).map(|idx| (o, idx)))
                    .map(|(_, idx)| Def::ArrayRead {
                        arr: Exp::Sym(field_syms[field]),
                        index: idx.clone(),
                    }),
                Def::ArrayLen(e) if e.as_sym() == Some(aos) => {
                    Some(Def::ArrayLen(Exp::Sym(first_field)))
                }
                _ => None,
            };
            if let Some(d) = new_def {
                stmt.def = d;
            }
            for nb in def_blocks_mut(&mut stmt.def) {
                rewrite(nb, aos, first_field, reads, field_syms);
            }
        }
    }
    let mut body = std::mem::replace(&mut program.body, Block::ret(vec![], Exp::unit()));
    rewrite(&mut body, aos, first_field, &reads, &field_syms);
    program.body = body;
    program.inputs.retain(|i| i.sym != aos);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cleanup::prune_inputs;
    use dmll_core::{typecheck, LayoutHint};
    use dmll_frontend::Stage;
    use dmll_interp::{eval, Value};
    use std::sync::Arc;

    fn item_ty() -> StructTy {
        StructTy::new(
            "LineItem",
            vec![
                ("quantity".into(), Ty::F64),
                ("price".into(), Ty::F64),
                ("status".into(), Ty::I64),
            ],
        )
    }

    /// sum of quantity over items with status == 1.
    fn query() -> Program {
        let mut st = Stage::new();
        let items = st.input(
            "items",
            Ty::arr(Ty::Struct(item_ty())),
            LayoutHint::Partitioned,
        );
        let n = st.len(&items);
        let zero = st.lit_f(0.0);
        let items2 = items.clone();
        let total = st.reduce_if(
            &n,
            Some(move |st: &mut Stage, i: &dmll_frontend::Val| {
                let it = st.read(&items2, i);
                let status = st.field(&it, "status");
                let one = st.lit_i(1);
                st.eq(&status, &one)
            }),
            move |st, i| {
                let it = st.read(&items, i);
                st.field(&it, "quantity")
            },
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        st.finish(&total)
    }

    fn items_value() -> Value {
        let rows = [(2.0, 10.0, 1i64), (3.0, 20.0, 0), (4.0, 30.0, 1)];
        Value::boxed_arr(
            rows.iter()
                .map(|(q, p, s)| {
                    Value::Struct(Arc::new(dmll_interp::StructVal {
                        ty: Arc::new(item_ty()),
                        fields: vec![Value::F64(*q), Value::F64(*p), Value::I64(*s)],
                    }))
                })
                .collect(),
        )
    }

    fn soa_inputs() -> Vec<(&'static str, Value)> {
        vec![
            ("items.quantity", Value::f64_arr(vec![2.0, 3.0, 4.0])),
            ("items.price", Value::f64_arr(vec![10.0, 20.0, 30.0])),
            ("items.status", Value::i64_arr(vec![1, 0, 1])),
        ]
    }

    #[test]
    fn input_splits_into_field_arrays() {
        let mut p = query();
        let p0 = p.clone();
        let rep = run(&mut p);
        assert_eq!(rep.applied, 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        assert_eq!(p.inputs.len(), 3);
        assert!(p.input("items.quantity").is_some());
        // Semantics preserved given the equivalent SoA data.
        let before = eval(&p0, &[("items", items_value())]).unwrap();
        let after = eval(&p, &soa_inputs()).unwrap();
        assert_eq!(before, after);
        assert_eq!(after, Value::F64(6.0));
    }

    #[test]
    fn dead_field_elimination_drops_price() {
        let mut p = query();
        run(&mut p);
        let rep = prune_inputs(&mut p);
        assert_eq!(rep.applied, 1, "{rep:?}");
        assert!(p.input("items.price").is_none(), "price never projected");
        assert_eq!(p.inputs.len(), 2);
        // Still runs without the dead field.
        let out = eval(
            &p,
            &[
                ("items.quantity", Value::f64_arr(vec![2.0, 3.0, 4.0])),
                ("items.status", Value::i64_arr(vec![1, 0, 1])),
            ],
        )
        .unwrap();
        assert_eq!(out, Value::F64(6.0));
    }

    #[test]
    fn escaping_struct_blocks_soa() {
        // The program returns the raw record collection: representation is
        // observable, so the pass must refuse.
        let mut st = Stage::new();
        let items = st.input(
            "items",
            Ty::arr(Ty::Struct(item_ty())),
            LayoutHint::Partitioned,
        );
        let mut p = st.finish(&items);
        let rep = run(&mut p);
        assert_eq!(rep.applied, 0);
        assert_eq!(p.inputs.len(), 1);
    }

    #[test]
    fn whole_element_use_blocks_soa() {
        // An element is passed to an extern whole.
        let mut st = Stage::new();
        let items = st.input(
            "items",
            Ty::arr(Ty::Struct(item_ty())),
            LayoutHint::Partitioned,
        );
        let zero = st.lit_i(0);
        let first = st.read(&items, &zero);
        let out = st.extern_call("inspect", &[&first], Ty::I64, false, false);
        let mut p = st.finish(&out);
        let rep = run(&mut p);
        assert_eq!(rep.applied, 0);
    }

    #[test]
    fn non_struct_arrays_untouched() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let s = st.sum(&x);
        let mut p = st.finish(&s);
        let rep = run(&mut p);
        assert_eq!(rep.applied, 0);
    }
}
