//! Pipeline (vertical) fusion: the generalized `Collect`-consumer rule.
//!
//! ```text
//! C = Collect_s(c1)(f1)                      G_s(c1 & c2(f1))(k(f1))(f2(f1))(r)
//! G_C(c2)(i => k(C(i)))(i => f2(C(i)))(r) →
//! ```
//!
//! Any generator `G` (collect, reduce, bucket-collect, bucket-reduce) that
//! consumes a `Collect` element-wise is fused with it, eliminating the
//! intermediate collection. This single rule captures map-map, map-reduce,
//! filter-groupBy and every other traditional pipeline-fusion pairing.
//!
//! Safety conditions enforced here:
//!
//! * the intermediate collection is consumed **only** by the one downstream
//!   loop (plus the `len` feeding that loop's size);
//! * every read is at the consumer's own loop index;
//! * if the producer has a condition (filter), the consumer must use its
//!   index *only* through the producer (a filtered collection's indices do
//!   not align with any other collection).

use crate::rewrite::PassReport;
use dmll_core::rebind::Rebinder;
use dmll_core::visit::{count_uses, def_blocks, for_each_exp_deep_mut};
use dmll_core::{Block, Def, Exp, Gen, Multiloop, Program, Stmt, Sym};
use std::collections::HashMap;

/// Run fusion to a local fixpoint (each successful fusion re-scans, since it
/// exposes new producer/consumer pairs).
pub fn run(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    while let Some(site) = find_site(program) {
        let note = format!(
            "pipeline-fused producer {} into consumer {}",
            site.producer_sym, site.consumer_sym
        );
        apply(program, &site);
        report.record(note);
    }
    report
}

/// A fusable producer/consumer pair, identified by a path of block indices
/// from the program body plus statement indices within that block.
pub(crate) struct Site {
    /// Block path: sequence of (stmt index, block index within the def) to
    /// descend from the program body.
    pub(crate) path: Vec<(usize, usize)>,
    pub(crate) producer_idx: usize,
    pub(crate) consumer_idx: usize,
    /// Statement index of `n = len(producer)` when the consumer's size is
    /// that symbol.
    len_idx: Option<usize>,
    pub(crate) producer_sym: Sym,
    pub(crate) consumer_sym: Sym,
}

pub(crate) fn block_at<'a>(program: &'a Program, path: &[(usize, usize)]) -> &'a Block {
    let mut b = &program.body;
    for &(si, bi) in path {
        b = def_blocks(&b.stmts[si].def)[bi];
    }
    b
}

fn block_at_mut<'a>(program: &'a mut Program, path: &[(usize, usize)]) -> &'a mut Block {
    let mut b = &mut program.body;
    for &(si, bi) in path {
        b = dmll_core::visit::def_blocks_mut(&mut b.stmts[si].def)
            .into_iter()
            .nth(bi)
            .expect("path valid");
    }
    b
}

fn find_site(program: &Program) -> Option<Site> {
    find_sites(program).into_iter().next()
}

/// Enumerate every legal fusion site in the program at its current state.
/// The cost-guided selector scores these; the greedy [`run`] takes the first.
pub(crate) fn find_sites(program: &Program) -> Vec<Site> {
    let mut uses = HashMap::new();
    count_uses(&program.body, &mut uses);
    let mut sites = Vec::new();
    collect_in_block(&program.body, &mut Vec::new(), &uses, &mut sites);
    sites
}

fn collect_in_block(
    block: &Block,
    path: &mut Vec<(usize, usize)>,
    uses: &HashMap<Sym, usize>,
    out: &mut Vec<Site>,
) {
    for (a_idx, stmt_a) in block.stmts.iter().enumerate() {
        if let Some(site) = match_producer(block, a_idx, stmt_a, path, uses) {
            out.push(site);
        }
    }
    for (si, stmt) in block.stmts.iter().enumerate() {
        for (bi, nb) in def_blocks(&stmt.def).into_iter().enumerate() {
            path.push((si, bi));
            collect_in_block(nb, path, uses, out);
            path.pop();
        }
    }
}

fn match_producer(
    block: &Block,
    a_idx: usize,
    stmt_a: &Stmt,
    path: &[(usize, usize)],
    uses: &HashMap<Sym, usize>,
) -> Option<Site> {
    let Def::Loop(ml_a) = &stmt_a.def else {
        return None;
    };
    let Some(Gen::Collect { cond: c1, .. }) = ml_a.only_gen() else {
        return None;
    };
    if stmt_a.lhs.len() != 1 {
        return None;
    }
    let a = stmt_a.lhs[0];
    let filtered = c1.is_some();

    for (b_idx, stmt_b) in block.stmts.iter().enumerate().skip(a_idx + 1) {
        let Def::Loop(ml_b) = &stmt_b.def else {
            continue;
        };
        if ml_b.gens.is_empty() {
            continue;
        }
        // Size must be len(a) or (unfiltered) the producer's own size.
        let mut len_idx = None;
        let size_ok = if !filtered && ml_b.size == ml_a.size {
            true
        } else if let Some(n) = ml_b.size.as_sym() {
            match block.stmt_index_defining(n) {
                Some(li) => match &block.stmts[li].def {
                    Def::ArrayLen(e) if e.as_sym() == Some(a) => {
                        len_idx = Some(li);
                        true
                    }
                    _ => false,
                },
                None => false,
            }
        } else {
            false
        };
        if !size_ok {
            continue;
        }
        if !consumer_reads_ok(ml_b, a, filtered) {
            continue;
        }
        // All uses of `a` program-wide must be the consumer's reads plus
        // (optionally) the single len statement.
        let reads_in_b = count_reads_of(ml_b, a);
        let expected = reads_in_b + usize::from(len_idx.is_some());
        if uses.get(&a).copied().unwrap_or(0) != expected {
            continue;
        }
        // The len symbol must be replaceable: single-use, or unfiltered (in
        // which case other uses are rewritten to the producer size).
        if let Some(li) = len_idx {
            let n = block.stmts[li].lhs[0];
            let n_uses = uses.get(&n).copied().unwrap_or(0);
            if n_uses != 1 && filtered {
                continue;
            }
        }
        return Some(Site {
            path: path.to_vec(),
            producer_idx: a_idx,
            consumer_idx: b_idx,
            len_idx,
            producer_sym: a,
            consumer_sym: stmt_b.lhs.first().copied().unwrap_or(a),
        });
    }
    None
}

/// Every occurrence of `a` inside the consumer loop must be a read at the
/// owning component block's parameter. If the producer is filtered, the
/// parameter additionally must not be used for anything else.
fn consumer_reads_ok(ml: &Multiloop, a: Sym, filtered: bool) -> bool {
    if ml.size.as_sym() == Some(a) {
        return false;
    }
    for gen in &ml.gens {
        // The reducer never takes the loop index; any access to `a` there
        // blocks fusion.
        if let Some(r) = gen.reducer() {
            if dmll_core::visit::uses_sym(r, a) {
                return false;
            }
        }
        for b in index_blocks(gen) {
            let param = b.params[0];
            if !reads_ok_in_block(b, a, param, filtered) {
                return false;
            }
        }
    }
    true
}

/// The component blocks of a generator that take the loop index.
fn index_blocks(gen: &Gen) -> Vec<&Block> {
    let mut out = Vec::new();
    if let Some(c) = gen.cond() {
        out.push(c);
    }
    if let Some(k) = gen.key() {
        out.push(k);
    }
    out.push(gen.value());
    out
}

fn reads_ok_in_block(b: &Block, a: Sym, param: Sym, filtered: bool) -> bool {
    let mut ok = true;
    fn walk(b: &Block, a: Sym, param: Sym, filtered: bool, ok: &mut bool) {
        for stmt in &b.stmts {
            match &stmt.def {
                Def::ArrayRead { arr, index } if arr.as_sym() == Some(a) => {
                    if index.as_sym() != Some(param) {
                        *ok = false;
                    }
                }
                other => {
                    dmll_core::visit::for_each_exp_shallow(other, &mut |e| {
                        if e.as_sym() == Some(a) {
                            *ok = false;
                        }
                        if filtered && e.as_sym() == Some(param) {
                            *ok = false;
                        }
                    });
                    for nb in def_blocks(other) {
                        walk(nb, a, param, filtered, ok);
                    }
                }
            }
        }
        if (filtered && b.result.as_sym() == Some(param)) || b.result.as_sym() == Some(a) {
            *ok = false;
        }
    }
    walk(b, a, param, filtered, &mut ok);
    ok
}

fn count_reads_of(ml: &Multiloop, a: Sym) -> usize {
    let mut n = 0;
    for gen in &ml.gens {
        for b in gen.blocks() {
            dmll_core::visit::for_each_exp_deep(b, &mut |e| {
                if e.as_sym() == Some(a) {
                    n += 1;
                }
            });
        }
    }
    n
}

pub(crate) fn apply(program: &mut Program, site: &Site) {
    let block = block_at(program, &site.path);
    let stmt_a = block.stmts[site.producer_idx].clone();
    let stmt_b = block.stmts[site.consumer_idx].clone();
    let Def::Loop(ml_a) = &stmt_a.def else {
        unreachable!()
    };
    let Def::Loop(ml_b) = &stmt_b.def else {
        unreachable!()
    };
    let Some(Gen::Collect {
        cond: c1,
        value: f1,
    }) = ml_a.only_gen().cloned()
    else {
        unreachable!()
    };
    let consumer_gens = ml_b.gens.clone();
    let a = site.producer_sym;
    let size = ml_a.size.clone();

    // Build one fused component: prologue computes v = f1(j), then the
    // original component runs with reads `a(j)` aliased to v.
    fn fuse_component(program: &mut Program, f1: &Block, h: &Block, a: Sym, size: &Exp) -> Block {
        let j = program.fresh();
        let prologue = Rebinder::new(program).inline_block(f1, &[Exp::Sym(j)]);
        let v_exp = prologue.result.clone();
        let mut body = {
            let mut rb = Rebinder::new(program);
            rb.map(h.params[0], Exp::Sym(j));
            let mut b = rb.rebind_block(h);
            b.params.clear();
            b
        };
        replace_reads(&mut body, a, j, &v_exp, size);
        let mut stmts = prologue.stmts;
        stmts.append(&mut body.stmts);
        Block {
            params: vec![j],
            stmts,
            result: body.result,
        }
    }

    let mut fused_gens = Vec::with_capacity(consumer_gens.len());
    for g in &consumer_gens {
        let fused_cond = match (&c1, g.cond()) {
            (None, None) => None,
            (Some(c), None) => Some(Rebinder::new(program).rebind_block(c)),
            (None, Some(c2)) => Some(fuse_component(program, &f1, c2, a, &size)),
            (Some(c), Some(c2)) => {
                // params [j]: c1v = c(j); v = f1(j); c2v = c2 with a(j) -> v;
                // result = c1v && c2v.
                let j = program.fresh();
                let c1b = Rebinder::new(program).inline_block(c, &[Exp::Sym(j)]);
                let c1v = c1b.result.clone();
                let mut prologue = Rebinder::new(program).inline_block(&f1, &[Exp::Sym(j)]);
                let v_exp = prologue.result.clone();
                let mut c2b = {
                    let mut rb = Rebinder::new(program);
                    rb.map(c2.params[0], Exp::Sym(j));
                    let mut b = rb.rebind_block(c2);
                    b.params.clear();
                    b
                };
                replace_reads(&mut c2b, a, j, &v_exp, &size);
                let c2v = c2b.result.clone();
                let both = program.fresh();
                let mut stmts = c1b.stmts;
                stmts.append(&mut prologue.stmts);
                stmts.append(&mut c2b.stmts);
                stmts.push(Stmt::one(
                    both,
                    Def::prim2(dmll_core::PrimOp::And, c1v, c2v),
                ));
                Some(Block {
                    params: vec![j],
                    stmts,
                    result: Exp::Sym(both),
                })
            }
        };

        let fused_gen = match g {
            Gen::Collect { value, .. } => Gen::Collect {
                cond: fused_cond,
                value: fuse_component(program, &f1, value, a, &size),
            },
            Gen::Reduce {
                value,
                reducer,
                init,
                ..
            } => Gen::Reduce {
                cond: fused_cond,
                value: fuse_component(program, &f1, value, a, &size),
                reducer: Rebinder::new(program).rebind_block(reducer),
                init: init.clone(),
            },
            Gen::BucketCollect { key, value, .. } => Gen::BucketCollect {
                cond: fused_cond,
                key: fuse_component(program, &f1, key, a, &size),
                value: fuse_component(program, &f1, value, a, &size),
            },
            Gen::BucketReduce {
                key,
                value,
                reducer,
                init,
                ..
            } => Gen::BucketReduce {
                cond: fused_cond,
                key: fuse_component(program, &f1, key, a, &size),
                value: fuse_component(program, &f1, value, a, &size),
                reducer: Rebinder::new(program).rebind_block(reducer),
                init: init.clone(),
            },
        };
        fused_gens.push(fused_gen);
    }

    let filtered = c1.is_some();
    let block = block_at_mut(program, &site.path);
    block.stmts[site.consumer_idx].def = Def::Loop(Multiloop {
        size: size.clone(),
        gens: fused_gens,
    });

    // Drop the producer and handle the length statement.
    let mut to_remove = vec![site.producer_idx];
    if let Some(li) = site.len_idx {
        let n = block.stmts[li].lhs[0];
        to_remove.push(li);
        if !filtered {
            // n = len(a) becomes the producer size everywhere else.
            for stmt in block.stmts.iter_mut() {
                dmll_core::visit::for_each_exp_shallow_mut(&mut stmt.def, &mut |e| {
                    if e.as_sym() == Some(n) {
                        *e = size.clone();
                    }
                });
                for nb in dmll_core::visit::def_blocks_mut(&mut stmt.def) {
                    for_each_exp_deep_mut(nb, &mut |e| {
                        if e.as_sym() == Some(n) {
                            *e = size.clone();
                        }
                    });
                }
            }
            if block.result.as_sym() == Some(n) {
                block.result = size.clone();
            }
        }
    }
    to_remove.sort_unstable();
    for idx in to_remove.into_iter().rev() {
        block.stmts.remove(idx);
    }
}

fn replace_reads(b: &mut Block, a: Sym, j: Sym, v_exp: &Exp, size: &Exp) {
    let mut subst: HashMap<Sym, Exp> = HashMap::new();
    fn walk(b: &mut Block, a: Sym, j: Sym, v_exp: &Exp, size: &Exp, subst: &mut HashMap<Sym, Exp>) {
        let mut removed = Vec::new();
        for (idx, stmt) in b.stmts.iter_mut().enumerate() {
            match &stmt.def {
                Def::ArrayRead { arr, index }
                    if arr.as_sym() == Some(a) && index.as_sym() == Some(j) =>
                {
                    subst.insert(stmt.lhs[0], v_exp.clone());
                    removed.push(idx);
                }
                Def::ArrayLen(e) if e.as_sym() == Some(a) => {
                    subst.insert(stmt.lhs[0], size.clone());
                    removed.push(idx);
                }
                _ => {
                    for nb in dmll_core::visit::def_blocks_mut(&mut stmt.def) {
                        walk(nb, a, j, v_exp, size, subst);
                    }
                }
            }
        }
        for idx in removed.into_iter().rev() {
            b.stmts.remove(idx);
        }
    }
    walk(b, a, j, v_exp, size, &mut subst);
    if !subst.is_empty() {
        for_each_exp_deep_mut(b, &mut |e| {
            if let Exp::Sym(s) = e {
                if let Some(rep) = subst.get(s) {
                    *e = rep.clone();
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::fixpoint;
    use dmll_core::printer::count_loops;
    use dmll_core::{typecheck, LayoutHint, Ty};
    use dmll_frontend::Stage;
    use dmll_interp::{eval, Value};

    fn check_same(p0: &Program, p1: &Program, inputs: &[(&str, Value)]) {
        let before = eval(p0, inputs).unwrap();
        let after = eval(p1, inputs).unwrap();
        assert_eq!(before, after, "fusion changed semantics");
    }

    #[test]
    fn map_map_fuses_to_one_loop() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let a = st.map(&x, |st, e| {
            let two = st.lit_f(2.0);
            st.mul(e, &two)
        });
        let b = st.map(&a, |st, e| {
            let one = st.lit_f(1.0);
            st.add(e, &one)
        });
        let mut p = st.finish(&b);
        let p0 = p.clone();
        let r = fixpoint(&mut p, run);
        assert_eq!(r.applied, 1, "{r:?}");
        assert_eq!(count_loops(&p), 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        check_same(&p0, &p, &[("x", Value::f64_arr(vec![1.0, -2.0, 3.0]))]);
    }

    #[test]
    fn map_reduce_fuses() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let a = st.map(&x, |st, e| st.mul(e, e));
        let s = st.sum(&a);
        let mut p = st.finish(&s);
        let p0 = p.clone();
        fixpoint(&mut p, run);
        assert_eq!(count_loops(&p), 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        check_same(&p0, &p, &[("x", Value::f64_arr(vec![1.0, 2.0, 3.0]))]);
    }

    #[test]
    fn filter_sum_fuses_with_condition() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let pos = st.filter(&x, |st, e| {
            let zero = st.lit_f(0.0);
            st.gt(e, &zero)
        });
        let s = st.sum(&pos);
        let mut p = st.finish(&s);
        let p0 = p.clone();
        let r = fixpoint(&mut p, run);
        assert_eq!(r.applied, 1);
        assert_eq!(count_loops(&p), 1, "{p}");
        assert!(p.to_string().contains("cond ("), "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        check_same(
            &p0,
            &p,
            &[("x", Value::f64_arr(vec![1.0, -2.0, 3.0, -4.0, 5.0]))],
        );
    }

    #[test]
    fn filter_group_by_fuses() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let big = st.filter(&x, |st, e| {
            let t = st.lit_i(10);
            st.gt(e, &t)
        });
        let g = st.group_by(&big, |st, e| {
            let h = st.lit_i(100);
            st.rem(e, &h)
        });
        let keys = st.bucket_keys(&g);
        let mut p = st.finish(&keys);
        let p0 = p.clone();
        let r = fixpoint(&mut p, run);
        assert_eq!(r.applied, 1);
        assert_eq!(count_loops(&p), 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        check_same(
            &p0,
            &p,
            &[("x", Value::i64_arr(vec![5, 112, 13, 212, 9, 112, 45]))],
        );
    }

    #[test]
    fn three_stage_pipeline_fuses_fully() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let a = st.map(&x, |st, e| {
            let c = st.lit_f(0.5);
            st.mul(e, &c)
        });
        let b = st.map(&a, |st, e| st.math(dmll_core::MathFn::Exp, e));
        let s = st.sum(&b);
        let mut p = st.finish(&s);
        let p0 = p.clone();
        fixpoint(&mut p, run);
        assert_eq!(count_loops(&p), 1, "{p}");
        check_same(&p0, &p, &[("x", Value::f64_arr(vec![0.1, 0.9, 2.0]))]);
    }

    #[test]
    fn shared_intermediate_not_fused() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let a = st.map(&x, |st, e| st.mul(e, e));
        let s1 = st.sum(&a);
        let s2 = st.reduce_elems(&a, |st, p, q| st.max(p, q));
        let total = st.add(&s1, &s2);
        let mut p = st.finish(&total);
        let p0 = p.clone();
        let r = fixpoint(&mut p, run);
        assert_eq!(r.applied, 0, "shared producer must not fuse: {p}");
        assert_eq!(count_loops(&p), 3);
        check_same(&p0, &p, &[("x", Value::f64_arr(vec![1.0, 2.0, 3.0]))]);
    }

    #[test]
    fn filtered_zip_not_fused() {
        // zipWith over (filter(x), y): consumer uses its index into another
        // collection, so fusing with the filter would misalign indices.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let y = st.input("y", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let pos = st.filter(&x, |st, e| {
            let zero = st.lit_f(0.0);
            st.gt(e, &zero)
        });
        let z = st.zip_with(&pos, &y, |st, a, b| st.add(a, b));
        let mut p = st.finish(&z);
        let r = fixpoint(&mut p, run);
        assert_eq!(r.applied, 0, "{p}");
    }

    #[test]
    fn unfiltered_zip_fuses() {
        // zipWith over (map(x), y): index alignment is preserved, fusion ok.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let y = st.input("y", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let m = st.map(&x, |st, e| st.mul(e, e));
        let z = st.zip_with(&m, &y, |st, a, b| st.add(a, b));
        let mut p = st.finish(&z);
        let p0 = p.clone();
        let r = fixpoint(&mut p, run);
        assert_eq!(r.applied, 1, "{p}");
        assert_eq!(count_loops(&p), 1);
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        check_same(
            &p0,
            &p,
            &[
                ("x", Value::f64_arr(vec![1.0, 2.0, 3.0])),
                ("y", Value::f64_arr(vec![10.0, 20.0, 30.0])),
            ],
        );
    }

    #[test]
    fn fusion_inside_nested_block() {
        // A map-sum pipeline staged inside an outer collect's body fuses too.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let n = st.lit_i(3);
        let out = st.collect(&n, |st, i| {
            let if64 = st.i2f(i);
            let scaled = st.map(&x, move |st, e| st.mul(e, &if64));
            st.sum(&scaled)
        });
        let mut p = st.finish(&out);
        let p0 = p.clone();
        let r = fixpoint(&mut p, run);
        assert_eq!(r.applied, 1, "{p}");
        assert_eq!(count_loops(&p), 2, "outer collect + fused inner: {p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        check_same(&p0, &p, &[("x", Value::f64_arr(vec![1.0, 2.0]))]);
    }
}
