//! The Conditional Reduce rule (Figure 3):
//!
//! ```text
//! Collect_s1(_)(i =>                       H = BucketReduce_s2(_)(g)(f)(r)
//!   Reduce_s2(j => g(j) == h(i))(f)(r)) →  Collect_s1(_)(i => H(h(i)))
//! ```
//!
//! An inner reduction whose *predicate* depends on the outer loop index is
//! conditionally reducing a subset of a dataset per outer iteration —
//! traversing the whole dataset once per outer index. The rule breaks the
//! dependency by pre-computing **all** partial reductions in a single pass
//! (each keyed by `g(j)`) and turning the inner loop into a bucket lookup.
//!
//! This is the transformation that makes the shared-memory formulation of
//! k-means distributable: the per-cluster sums and counts become one
//! `BucketReduce` over the partitioned matrix instead of one full traversal
//! per cluster.

use crate::rewrite::PassReport;
use dmll_core::rebind::Rebinder;
use dmll_core::visit::{def_blocks, free_syms};
use dmll_core::{Block, Def, Exp, Gen, Multiloop, PrimOp, Program, Stmt, Sym};
use std::collections::BTreeSet;

/// Run the Conditional Reduce rule everywhere it matches.
pub fn run(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    while let Some(site) = find(program) {
        let note = format!(
            "conditional-reduce: hoisted predicated Reduce {} into a BucketReduce",
            site.rr_sym
        );
        apply(program, site);
        report.record(note);
    }
    report
}

/// A match site.
struct Site {
    /// Path from the program body to the block containing the outer loop.
    path: Vec<(usize, usize)>,
    /// Index of the outer loop statement in that block.
    l_idx: usize,
    /// Which component block of the outer loop holds the reduce
    /// (index into `def_blocks`).
    comp_idx: usize,
    /// Index of the inner reduce statement within that component block.
    reduce_idx: usize,
    rr_sym: Sym,
    /// Statement indices (in the cond block) of the key chain (j-dependent).
    jdep: Vec<usize>,
    /// Statement indices of the residual (outer-dependent) chain.
    jindep: Vec<usize>,
    /// Which operand of the Eq is the key side (0 or 1).
    key_operand: usize,
    /// Index of the statement defining the Eq within the cond block.
    eq_idx: usize,
}

fn block_at_mut<'a>(p: &'a mut Program, path: &[(usize, usize)]) -> &'a mut Block {
    let mut b = &mut p.body;
    for &(si, bi) in path {
        b = dmll_core::visit::def_blocks_mut(&mut b.stmts[si].def)
            .into_iter()
            .nth(bi)
            .expect("valid path");
    }
    b
}

fn find(program: &Program) -> Option<Site> {
    find_in(&program.body, &mut Vec::new())
}

fn find_in(block: &Block, path: &mut Vec<(usize, usize)>) -> Option<Site> {
    for (l_idx, stmt) in block.stmts.iter().enumerate() {
        if let Def::Loop(_) = &stmt.def {
            for (comp_idx, ob) in def_blocks(&stmt.def).into_iter().enumerate() {
                if let Some(site) = match_in_component(ob) {
                    return Some(Site {
                        path: path.to_vec(),
                        l_idx,
                        comp_idx,
                        ..site
                    });
                }
            }
        }
    }
    for (si, stmt) in block.stmts.iter().enumerate() {
        for (bi, nb) in def_blocks(&stmt.def).into_iter().enumerate() {
            path.push((si, bi));
            if let Some(site) = find_in(nb, path) {
                return Some(site);
            }
            path.pop();
        }
    }
    None
}

/// Shallow bound symbols of a block: its params plus top-level lhs.
fn shallow_bound(b: &Block) -> BTreeSet<Sym> {
    b.params
        .iter()
        .copied()
        .chain(b.stmts.iter().flat_map(|s| s.lhs.iter().copied()))
        .collect()
}

fn match_in_component(ob: &Block) -> Option<Site> {
    let ob_bound = shallow_bound(ob);
    for (reduce_idx, stmt) in ob.stmts.iter().enumerate() {
        let Def::Loop(ml) = &stmt.def else { continue };
        let Some(Gen::Reduce {
            cond: Some(cb),
            value: f,
            reducer: r,
            init,
        }) = ml.only_gen()
        else {
            continue;
        };
        if stmt.lhs.len() != 1 {
            continue;
        }
        // The inner size must not depend on the outer iteration.
        if let Some(s) = ml.size.as_sym() {
            if ob_bound.contains(&s) {
                continue;
            }
        }
        // The condition must be ... == ... with exactly one j-dependent side.
        let j = cb.params[0];
        let Some(res) = cb.result.as_sym() else {
            continue;
        };
        let Some(eq_idx) = cb.stmt_index_defining(res) else {
            continue;
        };
        let Def::Prim {
            op: PrimOp::Eq,
            args,
        } = &cb.stmts[eq_idx].def
        else {
            continue;
        };
        // Transitive j-dependency over the cond block's statements.
        let mut jdep_syms: BTreeSet<Sym> = BTreeSet::new();
        jdep_syms.insert(j);
        let mut jdep = Vec::new();
        let mut jindep = Vec::new();
        for (i, s) in cb.stmts.iter().enumerate() {
            if i == eq_idx {
                continue;
            }
            let uses = stmt_used_syms(s);
            if uses.iter().any(|u| jdep_syms.contains(u)) {
                jdep_syms.extend(s.lhs.iter().copied());
                jdep.push(i);
            } else {
                jindep.push(i);
            }
        }
        let dep = |e: &Exp| e.as_sym().is_some_and(|s| jdep_syms.contains(&s));
        let key_operand = match (dep(&args[0]), dep(&args[1])) {
            (true, false) => 0,
            (false, true) => 1,
            _ => continue,
        };
        // Everything that moves out (key chain, f, r, init) must not capture
        // outer-iteration state.
        let mut moved_free: BTreeSet<Sym> = BTreeSet::new();
        for &i in &jdep {
            moved_free.extend(stmt_used_syms(&cb.stmts[i]));
        }
        if let Some(s) = args[key_operand].as_sym() {
            moved_free.insert(s);
        }
        moved_free.extend(free_syms(f));
        moved_free.extend(free_syms(r));
        if let Some(Exp::Sym(s)) = init {
            moved_free.insert(*s);
        }
        moved_free.remove(&j);
        for &i in &jdep {
            for s in &cb.stmts[i].lhs {
                moved_free.remove(s);
            }
        }
        if moved_free.iter().any(|s| ob_bound.contains(s)) {
            continue;
        }
        // The residual (outer) side must not depend on j.
        if dep(&args[1 - key_operand]) {
            continue;
        }
        return Some(Site {
            path: Vec::new(),
            l_idx: 0,
            comp_idx: 0,
            reduce_idx,
            rr_sym: stmt.lhs[0],
            jdep,
            jindep,
            key_operand,
            eq_idx,
        });
    }
    None
}

fn stmt_used_syms(s: &Stmt) -> BTreeSet<Sym> {
    let mut used = BTreeSet::new();
    dmll_core::visit::for_each_exp_shallow(&s.def, &mut |e| {
        if let Exp::Sym(sym) = e {
            used.insert(*sym);
        }
    });
    for nb in def_blocks(&s.def) {
        used.extend(free_syms(nb));
    }
    used
}

fn apply(program: &mut Program, site: Site) {
    // Clone the pieces we need.
    let (inner_size, cb, f, r, init, rr_sym, jdep_stmts, jindep_stmts, key_exp, outer_exp) = {
        let block = block_at_mut(program, &site.path);
        let ob = dmll_core::visit::def_blocks_mut(&mut block.stmts[site.l_idx].def)
            .into_iter()
            .nth(site.comp_idx)
            .expect("component");
        let Def::Loop(ml) = &ob.stmts[site.reduce_idx].def else {
            unreachable!()
        };
        let Some(Gen::Reduce {
            cond: Some(cb),
            value: f,
            reducer: r,
            init,
        }) = ml.only_gen()
        else {
            unreachable!()
        };
        let Def::Prim { args, .. } = &cb.stmts[site.eq_idx].def else {
            unreachable!()
        };
        (
            ml.size.clone(),
            cb.clone(),
            f.clone(),
            r.clone(),
            init.clone(),
            ob.stmts[site.reduce_idx].lhs[0],
            site.jdep
                .iter()
                .map(|&i| cb.stmts[i].clone())
                .collect::<Vec<_>>(),
            site.jindep
                .iter()
                .map(|&i| cb.stmts[i].clone())
                .collect::<Vec<_>>(),
            args[site.key_operand].clone(),
            args[1 - site.key_operand].clone(),
        )
    };

    // Key block: the j-dependent chain ending in the key expression,
    // re-bound with a fresh parameter.
    let key_block = {
        let template = Block {
            params: vec![cb.params[0]],
            stmts: jdep_stmts,
            result: key_exp,
        };
        Rebinder::new(program).rebind_block(&template)
    };
    let value_block = Rebinder::new(program).rebind_block(&f);
    let reducer_block = Rebinder::new(program).rebind_block(&r);

    let h = program.fresh();
    let h_stmt = Stmt::one(
        h,
        Def::Loop(Multiloop::single(
            inner_size,
            Gen::BucketReduce {
                cond: None,
                key: key_block,
                value: value_block,
                reducer: reducer_block,
                init: init.clone(),
            },
        )),
    );

    // Rewrite: insert H before the outer loop; inside the component block,
    // replace the reduce with (residual stmts; rr = bucketGet(H, outer)).
    let block = block_at_mut(program, &site.path);
    let ob = dmll_core::visit::def_blocks_mut(&mut block.stmts[site.l_idx].def)
        .into_iter()
        .nth(site.comp_idx)
        .expect("component");
    let lookup = Stmt::one(
        rr_sym,
        Def::BucketGet {
            buckets: Exp::Sym(h),
            key: outer_exp,
            default: init,
        },
    );
    ob.stmts.splice(
        site.reduce_idx..=site.reduce_idx,
        jindep_stmts.into_iter().chain(std::iter::once(lookup)),
    );
    block.stmts.insert(site.l_idx, h_stmt);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::fixpoint;
    use dmll_core::printer::count_loops;
    use dmll_core::{typecheck, LayoutHint, Ty};
    use dmll_frontend::Stage;
    use dmll_interp::{eval, Value};

    /// The canonical shape: for each cluster i, sum the data points
    /// assigned to it.
    fn conditional_sum_program() -> Program {
        let mut st = Stage::new();
        let data = st.input("data", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let assigned = st.input("assigned", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let k = st.lit_i(3);
        let n = st.len(&data);
        let zero = st.lit_f(0.0);
        let sums = st.collect(&k, |st, i| {
            let i = i.clone();
            st.reduce_if(
                &n,
                Some(move |st: &mut Stage, j: &dmll_frontend::Val| {
                    let aj = st.read(&assigned, j);
                    st.eq(&aj, &i)
                }),
                |st, j| st.read(&data, j),
                |st, a, b| st.add(a, b),
                Some(&zero),
            )
        });
        st.finish(&sums)
    }

    #[test]
    fn conditional_sum_becomes_bucket_reduce() {
        let mut p = conditional_sum_program();
        let p0 = p.clone();
        let rep = fixpoint(&mut p, run);
        assert_eq!(rep.applied, 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        let s = p.to_string();
        assert!(s.contains("BucketReduce"), "{s}");
        assert!(s.contains("bucketGetOrElse"), "{s}");
        // The dataset is now traversed once, not once per cluster.
        assert_eq!(count_loops(&p), 2, "bucket pass + lookup collect: {p}");
        let inputs = [
            ("data", Value::f64_arr(vec![1.0, 2.0, 3.0, 4.0, 5.0])),
            ("assigned", Value::i64_arr(vec![0, 1, 0, 2, 1])),
        ];
        let before = eval(&p0, &inputs).unwrap();
        let after = eval(&p, &inputs).unwrap();
        assert_eq!(before, after);
        assert_eq!(after.to_f64_vec().unwrap(), vec![4.0, 7.0, 4.0]);
    }

    #[test]
    fn empty_cluster_uses_identity_default() {
        let mut p = conditional_sum_program();
        let p0 = p.clone();
        fixpoint(&mut p, run);
        // Cluster 2 receives no points: both versions must produce 0.0.
        let inputs = [
            ("data", Value::f64_arr(vec![1.0, 2.0])),
            ("assigned", Value::i64_arr(vec![0, 1])),
        ];
        let before = eval(&p0, &inputs).unwrap();
        let after = eval(&p, &inputs).unwrap();
        assert_eq!(before, after);
        assert_eq!(after.to_f64_vec().unwrap(), vec![1.0, 2.0, 0.0]);
    }

    #[test]
    fn count_variant_transforms() {
        // Counting per-cluster membership: value is the constant 1.
        let mut st = Stage::new();
        let assigned = st.input("assigned", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let k = st.lit_i(4);
        let n = st.len(&assigned);
        let zero = st.lit_i(0);
        let counts = st.collect(&k, |st, i| {
            let i = i.clone();
            st.reduce_if(
                &n,
                Some(move |st: &mut Stage, j: &dmll_frontend::Val| {
                    let aj = st.read(&assigned, j);
                    st.eq(&aj, &i)
                }),
                |st, _j| st.lit_i(1),
                |st, a, b| st.add(a, b),
                Some(&zero),
            )
        });
        let mut p = st.finish(&counts);
        let p0 = p.clone();
        let rep = fixpoint(&mut p, run);
        assert_eq!(rep.applied, 1, "{p}");
        let inputs = [("assigned", Value::i64_arr(vec![0, 1, 1, 3, 1, 0]))];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn vector_valued_reduce_transforms() {
        // Summing rows of a matrix per cluster: the reduce is over vectors
        // (Coll[Double]), exercising collection-typed bucket values.
        let mut st = Stage::new();
        let m = st.input_matrix("matrix", LayoutHint::Partitioned);
        let assigned = st.input("assigned", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let k = st.lit_i(2);
        let rows = m.rows(&mut st);
        let sums = st.collect(&k, |st, i| {
            let i = i.clone();
            let m = m.clone();
            st.reduce_if(
                &rows,
                Some(move |st: &mut Stage, j: &dmll_frontend::Val| {
                    let aj = st.read(&assigned, j);
                    st.eq(&aj, &i)
                }),
                move |st, j| m.row(st, j),
                |st, a, b| st.vec_add(a, b),
                None,
            )
        });
        let mut p = st.finish(&sums);
        let p0 = p.clone();
        let rep = fixpoint(&mut p, run);
        assert_eq!(rep.applied, 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        let inputs = [
            (
                "matrix",
                Value::matrix(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2),
            ),
            ("assigned", Value::i64_arr(vec![0, 1, 0])),
        ];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn both_sides_j_dependent_not_matched() {
        let mut st = Stage::new();
        let a = st.input("a", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let n = st.len(&a);
        let k = st.lit_i(3);
        let zero = st.lit_i(0);
        let out = st.collect(&k, |st, _i| {
            st.reduce_if(
                &n,
                Some(|st: &mut Stage, j: &dmll_frontend::Val| {
                    let aj = st.read(&a, j);
                    st.eq(&aj, j) // both sides depend on j
                }),
                |st, j| st.read(&a, j),
                |st, x, y| st.add(x, y),
                Some(&zero),
            )
        });
        let mut p = st.finish(&out);
        let rep = fixpoint(&mut p, run);
        assert_eq!(rep.applied, 0);
    }

    #[test]
    fn value_capturing_outer_state_not_matched() {
        // f uses the outer index i: the partial reductions differ per outer
        // iteration, so no single pre-computation exists.
        let mut st = Stage::new();
        let a = st.input("a", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let n = st.len(&a);
        let k = st.lit_i(3);
        let zero = st.lit_i(0);
        let out = st.collect(&k, |st, i| {
            let i = i.clone();
            let i2 = i.clone();
            let a1 = a.clone();
            let a2 = a.clone();
            st.reduce_if(
                &n,
                Some(move |st: &mut Stage, j: &dmll_frontend::Val| {
                    let aj = st.read(&a1, j);
                    st.eq(&aj, &i)
                }),
                move |st, j| {
                    let aj = st.read(&a2, j);
                    st.add(&aj, &i2) // captures outer i
                },
                |st, x, y| st.add(x, y),
                Some(&zero),
            )
        });
        let mut p = st.finish(&out);
        let rep = fixpoint(&mut p, run);
        assert_eq!(rep.applied, 0, "{p}");
    }

    #[test]
    fn outer_side_computed_from_i_stays_in_outer_loop() {
        // Predicate assigned(j) == i*2: the residual computation i*2 stays
        // in the collect body, feeding the bucket lookup.
        let mut st = Stage::new();
        let data = st.input("data", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let assigned = st.input("assigned", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let k = st.lit_i(3);
        let n = st.len(&data);
        let zero = st.lit_f(0.0);
        let sums = st.collect(&k, |st, i| {
            let i = i.clone();
            st.reduce_if(
                &n,
                Some(move |st: &mut Stage, j: &dmll_frontend::Val| {
                    let aj = st.read(&assigned, j);
                    let two = st.lit_i(2);
                    let i2 = st.mul(&i, &two);
                    st.eq(&aj, &i2)
                }),
                |st, j| st.read(&data, j),
                |st, a, b| st.add(a, b),
                Some(&zero),
            )
        });
        let mut p = st.finish(&sums);
        let p0 = p.clone();
        let rep = fixpoint(&mut p, run);
        assert_eq!(rep.applied, 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        let inputs = [
            ("data", Value::f64_arr(vec![1.0, 2.0, 3.0, 4.0])),
            ("assigned", Value::i64_arr(vec![0, 2, 4, 2])),
        ];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn two_conditional_reduces_then_horizontal_fusion() {
        // k-means' sums and counts: after Conditional Reduce fires twice,
        // horizontal fusion must merge both BucketReduces into one traversal.
        let mut st = Stage::new();
        let data = st.input("data", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let assigned = st.input("assigned", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let k = st.lit_i(3);
        let n = st.len(&data);
        let fzero = st.lit_f(0.0);
        let izero = st.lit_i(0);
        let means = st.collect(&k, |st, i| {
            let i1 = i.clone();
            let i2 = i.clone();
            let as1 = assigned.clone();
            let as2 = assigned.clone();
            let sum = st.reduce_if(
                &n,
                Some(move |st: &mut Stage, j: &dmll_frontend::Val| {
                    let aj = st.read(&as1, j);
                    st.eq(&aj, &i1)
                }),
                |st, j| st.read(&data, j),
                |st, a, b| st.add(a, b),
                Some(&fzero),
            );
            let cnt = st.reduce_if(
                &n,
                Some(move |st: &mut Stage, j: &dmll_frontend::Val| {
                    let aj = st.read(&as2, j);
                    st.eq(&aj, &i2)
                }),
                |st, _j| st.lit_i(1),
                |st, a, b| st.add(a, b),
                Some(&izero),
            );
            let one = st.lit_i(1);
            let cnt1 = st.max(&cnt, &one);
            let cf = st.i2f(&cnt1);
            st.div(&sum, &cf)
        });
        let mut p = st.finish(&means);
        let p0 = p.clone();
        let rep = fixpoint(&mut p, run);
        assert_eq!(rep.applied, 2, "{p}");
        let hrep = fixpoint(&mut p, crate::horizontal::run);
        assert_eq!(hrep.applied, 1, "two BucketReduces share a pass: {p}");
        assert_eq!(count_loops(&p), 2, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        let inputs = [
            ("data", Value::f64_arr(vec![1.0, 3.0, 5.0, 7.0, 9.0, 11.0])),
            ("assigned", Value::i64_arr(vec![0, 0, 1, 1, 2, 2])),
        ];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }
}
