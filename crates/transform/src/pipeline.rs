//! The optimizer: sequences all passes into per-target recipes and keeps the
//! optimization log reported per benchmark in the paper's Table 2.

use crate::rewrite::{fixpoint, PassReport};
use dmll_core::Program;

/// The hardware target a program is being optimized for.
///
/// The nested-pattern rules are *locality* transformations, so which ones to
/// apply depends on the target (§3.2, Discussion): vectorizing reductions
/// (Column-to-Row) suits CPUs, NUMA machines and clusters — it exposes the
/// big-data dimension for partitioning — while GPUs want the inverse
/// (Row-to-Column) because only fixed-size reduction temporaries fit in
/// shared memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Target {
    /// Single multi-core machine, one memory region.
    Cpu,
    /// Multi-socket machine with non-uniform memory.
    Numa,
    /// Distributed cluster of machines.
    Cluster,
    /// GPU-accelerated execution.
    Gpu,
}

/// Which passes fired while optimizing one program, with the paper's
/// terminology — the "Optimizations" column of Table 2.
#[derive(Clone, Debug, Default)]
pub struct OptReport {
    /// `(paper name, times applied)` per pass, in recipe order.
    pub passes: Vec<(String, usize)>,
    /// Individual rewrite notes, for debugging and logs.
    pub notes: Vec<String>,
    /// `(paper name, distinct rejected candidates)` for cost-gated passes.
    /// Candidates are deduplicated by note across recipe rounds, so the
    /// count means "this many legal rewrites were declined", not "the
    /// selector looked at them this many times".
    pub rejections: Vec<(String, std::collections::BTreeSet<String>)>,
}

impl OptReport {
    fn add(&mut self, name: &str, rep: PassReport) {
        if rep.applied > 0 {
            match self.passes.iter_mut().find(|(n, _)| n == name) {
                Some((_, count)) => *count += rep.applied,
                None => self.passes.push((name.to_string(), rep.applied)),
            }
            self.notes.extend(rep.notes);
        }
        if rep.rejected > 0 {
            let idx = match self.rejections.iter().position(|(n, _)| n == name) {
                Some(i) => i,
                None => {
                    self.rejections
                        .push((name.to_string(), Default::default()));
                    self.rejections.len() - 1
                }
            };
            self.rejections[idx].1.extend(rep.rejected_notes);
        }
    }

    /// Times a pass (by paper name) was applied.
    pub fn applied(&self, name: &str) -> usize {
        self.passes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Distinct candidates a cost-gated pass (by paper name) declined.
    pub fn rejected(&self, name: &str) -> usize {
        self.rejections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, set)| set.len())
            .unwrap_or(0)
    }

    /// Total rewrites applied across all passes.
    pub fn applied_total(&self) -> usize {
        self.passes.iter().map(|(_, c)| c).sum()
    }

    /// Total distinct candidates declined across all passes.
    pub fn rejected_total(&self) -> usize {
        self.rejections.iter().map(|(_, set)| set.len()).sum()
    }

    /// All rejection notes, for logs and JSON.
    pub fn rejected_notes(&self) -> Vec<&str> {
        self.rejections
            .iter()
            .flat_map(|(_, set)| set.iter().map(|s| s.as_str()))
            .collect()
    }

    /// Comma-separated list of headline optimizations that fired (the
    /// cleanup passes are omitted, as in the paper's table).
    pub fn summary(&self) -> String {
        const HEADLINE: &[&str] = &[
            "GroupBy-Reduce",
            "Conditional Reduce",
            "Column-to-Row Reduce",
            "Row-to-Column Reduce",
            "pipeline fusion",
            "horizontal fusion",
            "AoS to SoA",
            "DFE",
            "CSE",
        ];
        let names: Vec<&str> = HEADLINE
            .iter()
            .copied()
            .filter(|n| self.applied(n) > 0)
            .collect();
        names.join(", ")
    }
}

/// The pass pipeline for one target.
#[derive(Clone, Copy, Debug)]
pub struct Optimizer {
    target: Target,
    /// Whether the Figure 3 structural rewrites (pipeline fusion,
    /// GroupBy-Reduce, Conditional Reduce, horizontal fusion) run. The
    /// unfused recipe keeps cleanup, SoA, interchange and DFE so the
    /// fused-vs-unfused bench comparison isolates fusion itself.
    structural: bool,
    /// Keep the program's input signature byte-for-byte: skip AoS→SoA
    /// input splitting and dead-input pruning. The interpreter's
    /// fuse-then-compile hook needs this — inputs are bound by name at
    /// run time, so a rewrite that renames or drops them would break
    /// every caller.
    preserve_inputs: bool,
}

impl Optimizer {
    /// An optimizer for the given target.
    pub fn new(target: Target) -> Optimizer {
        Optimizer {
            target,
            structural: true,
            preserve_inputs: false,
        }
    }

    /// An optimizer with the structural (Figure 3) rewrites disabled:
    /// the baseline for fused-vs-unfused comparisons.
    pub fn unfused(target: Target) -> Optimizer {
        Optimizer {
            target,
            structural: false,
            preserve_inputs: false,
        }
    }

    /// The runtime (pre-compile) recipe: all structural rewrites, but the
    /// input signature is left untouched so a program optimized just
    /// before execution still binds the same named inputs.
    pub fn runtime(target: Target) -> Optimizer {
        Optimizer {
            target,
            structural: true,
            preserve_inputs: true,
        }
    }

    /// The target this optimizer compiles for.
    pub fn target(&self) -> Target {
        self.target
    }

    /// Optimize `program` in place and report what fired.
    pub fn run(&self, program: &mut Program) -> OptReport {
        let mut report = OptReport::default();

        self.cleanup_round(program, &mut report);

        // Structural rounds: fuse, restructure nested patterns, repeat
        // until stable.
        for _ in 0..8 {
            let mut changed = false;
            changed |= self.structural_round(program, &mut report);
            changed |= self.cleanup_round(program, &mut report);
            if !changed {
                break;
            }
        }

        // Data-structure optimization: after fusion composes projections
        // into the consuming generators, record inputs become
        // projection-only and split into primitive columns ("reducing
        // complex data structures to simple arrays of primitives", §5).
        // Skipped when the input signature must stay stable.
        if !self.preserve_inputs {
            let soa = crate::soa::run(program);
            if soa.changed() {
                report.add("AoS to SoA", soa);
                self.structural_round(program, &mut report);
                self.cleanup_round(program, &mut report);
            }
        }

        // Target-specific interchange.
        match self.target {
            Target::Cpu | Target::Numa | Target::Cluster => {
                let rep = fixpoint(program, crate::interchange::column_to_row);
                let changed = rep.changed();
                report.add("Column-to-Row Reduce", rep);
                if changed {
                    self.cleanup_round(program, &mut report);
                    self.structural_round(program, &mut report);
                    self.cleanup_round(program, &mut report);
                }
            }
            Target::Gpu => {
                let rep = fixpoint(program, crate::interchange::row_to_column);
                let changed = rep.changed();
                report.add("Row-to-Column Reduce", rep);
                if changed {
                    self.cleanup_round(program, &mut report);
                }
            }
        }

        // Dead field elimination and final cleanup. Input pruning also
        // changes the signature, so it obeys the same gate as SoA.
        if !self.preserve_inputs {
            report.add("DFE", crate::cleanup::prune_inputs(program));
        }

        // Column staging: where SoA could not (or must not) split a record
        // input, stage its projected fields as primitive columns so the
        // fused loops can batch-certify. Runs after every fusion round so
        // a later rewrite cannot inline the staged columns back into
        // their consumers as record projections.
        if self.structural {
            let rep = crate::colstage::run(program);
            let changed = rep.changed();
            report.add("column staging", rep);
            if changed {
                self.cleanup_round(program, &mut report);
            }
        }
        self.cleanup_round(program, &mut report);

        // Divide-and-conquer certification: after all rewrites settle,
        // prove (or decline, with a typed reason) that each reduction
        // chain splits and merges associatively, so the executor may
        // decompose it across chunks, regions and cluster shards. The
        // GPU recipe skips it: row-to-column interchange keeps the big
        // dimension inside the loop, so chains are not split there.
        if matches!(self.target, Target::Cpu | Target::Numa | Target::Cluster) {
            report.add("Divide-and-Conquer Reduce", crate::dnc::run(program));
        }
        debug_assert!(
            dmll_core::typecheck::infer(program).is_ok(),
            "optimizer produced ill-typed IR:\n{program}"
        );
        report
    }

    fn structural_round(&self, program: &mut Program, report: &mut OptReport) -> bool {
        if !self.structural {
            return false;
        }
        let mut changed = false;
        // Pipeline fusion goes through the cost-guided selector: legal
        // sites the traffic/register model scores as losses stay unfused
        // and are reported as rejections.
        let rep = fixpoint(program, crate::selector::run);
        changed |= rep.changed();
        report.add("pipeline fusion", rep);

        let rep = fixpoint(program, crate::groupby_reduce::run);
        changed |= rep.changed();
        report.add("GroupBy-Reduce", rep);

        let rep = fixpoint(program, crate::conditional_reduce::run);
        changed |= rep.changed();
        report.add("Conditional Reduce", rep);

        let rep = fixpoint(program, crate::selector::horizontal_gated);
        changed |= rep.changed();
        report.add("horizontal fusion", rep);
        changed
    }

    fn cleanup_round(&self, program: &mut Program, report: &mut OptReport) -> bool {
        let mut changed = false;
        let rep = crate::cleanup::scalar_replace(program);
        changed |= rep.changed();
        report.add("struct unwrapping", rep);

        let rep = fixpoint(program, crate::cleanup::const_fold);
        changed |= rep.changed();
        report.add("constant folding", rep);

        let rep = crate::cleanup::cse(program);
        changed |= rep.changed();
        report.add("CSE", rep);

        let rep = fixpoint(program, crate::code_motion::run);
        changed |= rep.changed();
        report.add("code motion", rep);

        let rep = fixpoint(program, crate::cleanup::copy_elim);
        changed |= rep.changed();
        report.add("copy elimination", rep);

        let rep = crate::cleanup::dce(program);
        changed |= rep.changed();
        report.add("DCE", rep);
        changed
    }
}

/// Optimize `program` for `target` with the default recipe.
pub fn optimize(program: &mut Program, target: Target) -> OptReport {
    Optimizer::new(target).run(program)
}

/// Optimize `program` without the Figure 3 structural rewrites: cleanup,
/// SoA and interchange still run. This is the unfused baseline used by the
/// `kernels_tier` fused-vs-unfused comparison and the `--no-fuse` knob.
pub fn optimize_unfused(program: &mut Program, target: Target) -> OptReport {
    Optimizer::unfused(target).run(program)
}

/// Optimize `program` with the runtime (pre-compile) recipe: structural
/// rewrites and cleanup, input signature untouched. This is what the
/// interpreter's fuse-then-compile hook runs before kernel compilation.
pub fn optimize_runtime(program: &mut Program, target: Target) -> OptReport {
    Optimizer::runtime(target).run(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::printer::count_loops;
    use dmll_core::{typecheck, LayoutHint, Ty};
    use dmll_frontend::{MatrixVal, Stage, Val};
    use dmll_interp::{eval, Value};
    use rand::prelude::*;

    /// One full iteration of shared-memory k-means as in Figure 1 (top):
    /// assign each row to its nearest centroid, then recompute centroids by
    /// averaging the member rows via conditional reduces.
    fn kmeans_shared(k: i64) -> Program {
        let mut st = Stage::new();
        let matrix = st.input_matrix("matrix", LayoutHint::Partitioned);
        let clusters = st.input_matrix("clusters", LayoutHint::Local);
        let rows = matrix.rows(&mut st);
        let kv = st.lit_i(k);
        let assigned = st.collect(&rows, |st, i| {
            let dists = clusters.map_rows(st, |st, c| matrix.row_dist2(st, i, &clusters, c));
            st.min_index(&dists)
        });
        let izero = st.lit_i(0);
        let new_clusters = st.collect(&kv, |st, i| {
            let i1 = i.clone();
            let i2 = i.clone();
            let a1 = assigned.clone();
            let a2 = assigned.clone();
            let m = matrix.clone();
            let sum = st.reduce_if(
                &rows,
                Some(move |st: &mut Stage, j: &Val| {
                    let aj = st.read(&a1, j);
                    st.eq(&aj, &i1)
                }),
                move |st, j| m.row(st, j),
                |st, a, b| st.vec_add(a, b),
                None,
            );
            let cnt = st.reduce_if(
                &rows,
                Some(move |st: &mut Stage, j: &Val| {
                    let aj = st.read(&a2, j);
                    st.eq(&aj, &i2)
                }),
                |st, _j| st.lit_i(1),
                |st, a, b| st.add(a, b),
                Some(&izero),
            );
            let one = st.lit_i(1);
            let safe = st.max(&cnt, &one);
            let cf = st.i2f(&safe);
            st.map(&sum, move |st, s| st.div(s, &cf))
        });
        st.finish(&new_clusters)
    }

    fn kmeans_inputs(rows: usize, cols: usize, k: usize, seed: u64) -> Vec<(&'static str, Value)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-5.0..5.0)).collect();
        // Forgy initialization: centroids are the first k data rows, so every
        // centroid is nearest to at least its own point and no cluster is
        // empty (EmptyReduce) for any RNG stream.
        let cents: Vec<f64> = data[..k * cols].to_vec();
        vec![
            ("matrix", Value::matrix(data, rows, cols)),
            ("clusters", Value::matrix(cents, k, cols)),
        ]
    }

    #[test]
    fn kmeans_cluster_recipe_applies_paper_optimizations() {
        let mut p = kmeans_shared(3);
        let p0 = p.clone();
        let loops_before = count_loops(&p);
        let report = optimize(&mut p, Target::Cluster);
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        // The paper's Table 2 lists Conditional Reduce + pipeline fusion for
        // k-means (Row-to-Column applies on the GPU path).
        assert!(
            report.applied("Conditional Reduce") >= 2,
            "sum and count hoisted: {:?}",
            report.passes
        );
        assert!(
            report.applied("horizontal fusion") >= 1,
            "{:?}",
            report.passes
        );
        assert!(
            report.applied("pipeline fusion") >= 1,
            "{:?}",
            report.passes
        );
        let loops_after = count_loops(&p);
        assert!(
            loops_after < loops_before,
            "loops {loops_before} -> {loops_after}"
        );
        // Semantics: identical traversal order per reduction, so results are
        // bit-equal.
        let inputs = kmeans_inputs(40, 4, 3, 11);
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn kmeans_optimized_matches_on_many_seeds() {
        let mut p = kmeans_shared(4);
        let p0 = p.clone();
        optimize(&mut p, Target::Numa);
        for seed in 0..4 {
            let inputs = kmeans_inputs(25, 3, 4, seed);
            assert_eq!(
                eval(&p0, &inputs).unwrap(),
                eval(&p, &inputs).unwrap(),
                "seed {seed}"
            );
        }
    }

    /// TPC-H-Q1-like aggregation: sum(quantity) grouped by status.
    fn q1_like() -> Program {
        let mut st = Stage::new();
        let qty = st.input("qty", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let status = st.input("status", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let n = st.len(&qty);
        let s2 = status.clone();
        let q2 = qty.clone();
        let groups = st.bucket_collect(
            &n,
            move |st, i| st.read(&s2, i),
            move |st, i| st.read(&q2, i),
        );
        let vals = st.bucket_values(&groups);
        let sums = st.map(&vals, |st, b| st.sum(b));
        let keys = st.bucket_keys(&groups);
        let pair = st.tuple(&[&keys, &sums]);
        st.finish(&pair)
    }

    #[test]
    fn q1_recipe_single_traversal() {
        let mut p = q1_like();
        let p0 = p.clone();
        let report = optimize(&mut p, Target::Cpu);
        assert!(report.applied("GroupBy-Reduce") >= 1, "{:?}", report.passes);
        // One BucketReduce pass over the data; the identity collect over the
        // bucket values is copy-eliminated.
        assert_eq!(count_loops(&p), 1, "{p}");
        let inputs = [
            ("qty", Value::f64_arr(vec![1.0, 2.0, 3.0, 4.0, 5.0])),
            ("status", Value::i64_arr(vec![7, 8, 7, 9, 8])),
        ];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    /// Textbook logistic-regression gradient (Fig. 1 style, nested over
    /// features then samples).
    fn logreg() -> Program {
        let mut st = Stage::new();
        let x = st.input_matrix("x", LayoutHint::Partitioned);
        let y = st.input("y", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let theta = st.input("theta", Ty::arr(Ty::F64), LayoutHint::Local);
        let cols = x.cols(&mut st);
        let rows = x.rows(&mut st);
        let alpha = st.lit_f(0.1);
        let zero = st.lit_f(0.0);
        let new_theta = st.collect(&cols, |st, j| {
            let jc = j.clone();
            let x2 = x.clone();
            let y2 = y.clone();
            let th = theta.clone();
            let gradient = st.reduce(
                &rows,
                move |st, i| {
                    let xij = x2.get(st, i, &jc);
                    let yi = st.read(&y2, i);
                    let dot = x2.row_dot(st, i, &th);
                    let hyp = st.math(dmll_core::MathFn::Tanh, &dot);
                    let d = st.sub(&yi, &hyp);
                    st.mul(&xij, &d)
                },
                |st, a, b| st.add(a, b),
                Some(&zero),
            );
            let tj = st.read(&theta, j);
            let step = st.mul(&alpha, &gradient);
            st.add(&tj, &step)
        });
        st.finish(&new_theta)
    }

    fn logreg_inputs(seed: u64) -> Vec<(&'static str, Value)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (rows, cols) = (12, 4);
        vec![
            (
                "x",
                Value::matrix(
                    (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                    rows,
                    cols,
                ),
            ),
            (
                "y",
                Value::f64_arr((0..rows).map(|_| rng.gen_range(0.0..1.0)).collect()),
            ),
            (
                "theta",
                Value::f64_arr((0..cols).map(|_| rng.gen_range(-0.5..0.5)).collect()),
            ),
        ]
    }

    #[test]
    fn logreg_cluster_recipe_vectorizes() {
        let mut p = logreg();
        let p0 = p.clone();
        let report = optimize(&mut p, Target::Cluster);
        assert!(
            report.applied("Column-to-Row Reduce") >= 1,
            "{:?}",
            report.passes
        );
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        let inputs = logreg_inputs(3);
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn logreg_gpu_recipe_keeps_scalar_reduces() {
        // As written, the textbook form reduces scalars — already optimal
        // for the GPU; Row-to-Column has nothing to do.
        let mut p = logreg();
        let report = optimize(&mut p, Target::Gpu);
        assert_eq!(
            report.applied("Row-to-Column Reduce"),
            0,
            "{:?}",
            report.passes
        );
    }

    #[test]
    fn logreg_cluster_then_gpu_roundtrip() {
        // Cluster-of-GPUs flow (§3.2): Column-to-Row for distribution, then
        // Row-to-Column inside the per-node kernel.
        let mut p = logreg();
        let p0 = p.clone();
        optimize(&mut p, Target::Cluster);
        let report = Optimizer::new(Target::Gpu).run(&mut p);
        assert!(
            report.applied("Row-to-Column Reduce") >= 1,
            "{:?}",
            report.passes
        );
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        let inputs = logreg_inputs(9);
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn summary_names_match_paper_table() {
        let mut p = q1_like();
        let report = optimize(&mut p, Target::Cpu);
        let s = report.summary();
        assert!(s.contains("GroupBy-Reduce"), "{s}");
        assert!(!s.contains("DCE"), "cleanup passes are not headline: {s}");
    }

    #[test]
    fn optimizer_is_idempotent() {
        let mut p = kmeans_shared(3);
        optimize(&mut p, Target::Cluster);
        let printed = p.to_string();
        let report = optimize(&mut p, Target::Cluster);
        assert_eq!(
            report.applied("Conditional Reduce"),
            0,
            "second run finds nothing structural: {:?}",
            report.passes
        );
        assert_eq!(p.to_string(), printed, "stable under re-optimization");
    }

    #[test]
    fn gda_like_two_pass_stats() {
        // Gaussian discriminant analysis core: per-class mean of features —
        // conditional vector reduce keyed by the label.
        let mut st = Stage::new();
        let m = st.input_matrix("x", LayoutHint::Partitioned);
        let labels = st.input("y", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let rows = m.rows(&mut st);
        let two = st.lit_i(2);
        let izero = st.lit_i(0);
        let means = st.collect(&two, |st, c| {
            let c1 = c.clone();
            let c2 = c.clone();
            let l1 = labels.clone();
            let l2 = labels.clone();
            let mm = m.clone();
            let sum = st.reduce_if(
                &rows,
                Some(move |st: &mut Stage, j: &Val| {
                    let lj = st.read(&l1, j);
                    st.eq(&lj, &c1)
                }),
                move |st, j| mm.row(st, j),
                |st, a, b| st.vec_add(a, b),
                None,
            );
            let cnt = st.reduce_if(
                &rows,
                Some(move |st: &mut Stage, j: &Val| {
                    let lj = st.read(&l2, j);
                    st.eq(&lj, &c2)
                }),
                |st, _j| st.lit_i(1),
                |st, a, b| st.add(a, b),
                Some(&izero),
            );
            let one = st.lit_i(1);
            let safe = st.max(&cnt, &one);
            let cf = st.i2f(&safe);
            st.map(&sum, move |st, s| st.div(s, &cf))
        });
        let mut p = st.finish(&means);
        let p0 = p.clone();
        let report = optimize(&mut p, Target::Numa);
        assert!(
            report.applied("Conditional Reduce") >= 2,
            "{:?}",
            report.passes
        );
        let mut rng = StdRng::seed_from_u64(5);
        let (rows_n, cols_n) = (20, 3);
        let inputs = vec![
            (
                "x",
                Value::matrix(
                    (0..rows_n * cols_n)
                        .map(|_| rng.gen_range(-2.0..2.0))
                        .collect(),
                    rows_n,
                    cols_n,
                ),
            ),
            (
                "y",
                Value::i64_arr((0..rows_n).map(|_| rng.gen_range(0..2)).collect()),
            ),
        ];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn matrix_struct_inputs_survive() {
        // Matrices are Struct inputs (not Coll[Struct]); the SoA pass must
        // leave them alone and the recipe must still run end to end.
        let mut st = Stage::new();
        let m = st.input_matrix("m", LayoutHint::Partitioned);
        let s = m.sum_cols(&mut st);
        let mut p = st.finish(&s);
        let p0 = p.clone();
        optimize(&mut p, Target::Cpu);
        let inputs = [("m", Value::matrix(vec![1.0, 2.0, 3.0, 4.0], 2, 2))];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    fn _silence_unused(_: MatrixVal) {}
}
