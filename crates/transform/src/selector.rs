//! Cost-guided fusion selection: enumerate candidate fusion sites, score
//! them with the traffic/register model in [`crate::cost`], and rewrite only
//! the winning set.
//!
//! This replaces the greedy apply-everything order for the optimizer recipe:
//! [`run`] drives pipeline fusion through the selector, and
//! [`horizontal_gated`] runs horizontal fusion behind the register-budget
//! gate. Both report rejected candidates alongside applied rewrites so the
//! decision is visible in `OptReport` (and, downstream, in the bench JSON).

use crate::cost;
use crate::fusion;
use crate::rewrite::PassReport;
use dmll_core::{Program, Sym};
use std::collections::BTreeSet;

/// Cost-guided pipeline fusion. Repeatedly enumerates all legal sites,
/// selects the best feasible subset, applies the highest-gain site, and
/// re-enumerates (applying one site can expose or invalidate others).
/// Declined sites are reported once each.
pub fn run(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    let mut declined: BTreeSet<(Sym, Sym)> = BTreeSet::new();
    loop {
        let sites = fusion::find_sites(program);
        if sites.is_empty() {
            break;
        }
        let cands: Vec<cost::SiteCost> = sites
            .iter()
            .map(|s| cost::score_site(program, s))
            .collect();
        let (chosen, rejected) = cost::select(cands);
        for r in &rejected {
            if declined.insert((r.producer_sym, r.consumer_sym)) {
                report.reject(r.reason.clone());
            }
        }
        let Some(best) = chosen.into_iter().max_by_key(|c| c.gain) else {
            break;
        };
        let site = sites
            .iter()
            .find(|s| {
                s.producer_sym == best.producer_sym && s.consumer_sym == best.consumer_sym
            })
            .expect("chosen site came from this enumeration");
        report.record(format!(
            "pipeline-fused producer {} into consumer {} (gain {})",
            site.producer_sym, site.consumer_sym, best.gain
        ));
        fusion::apply(program, site);
    }
    report
}

/// Horizontal fusion behind the register-budget gate.
pub fn horizontal_gated(program: &mut Program) -> PassReport {
    crate::horizontal::run_gated(program, &mut |a, b| cost::horizontal_ok(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::fixpoint;
    use dmll_core::printer::count_loops;
    use dmll_core::{LayoutHint, MathFn, Ty};
    use dmll_frontend::Stage;
    use dmll_interp::{eval, Value};

    #[test]
    fn selector_matches_greedy_on_simple_pipeline() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let a = st.map(&x, |st, e| st.mul(e, e));
        let s = st.sum(&a);
        let mut p = st.finish(&s);
        let p0 = p.clone();
        let r = fixpoint(&mut p, run);
        assert_eq!(r.applied, 1, "{r:?}");
        assert_eq!(r.rejected, 0, "{r:?}");
        assert_eq!(count_loops(&p), 1, "{p}");
        let inputs = [("x", Value::f64_arr(vec![1.0, 2.0, 3.0]))];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    /// An expensive producer consumed by several component blocks of a
    /// bucket-reduce (key and value both read it): inlining recomputes the
    /// nested-loop body per component, so the model must decline.
    fn losing_fusion_program() -> Program {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let w = st.input("w", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        // Producer: per-element dot against the whole weight vector — a
        // nested reduce, expensive to recompute.
        let scores = st.map(&x, |st, e| {
            let e = e.clone();
            let w2 = w.clone();
            let prods = st.map(&w2, move |st, wi| {
                let s = st.mul(&e, wi);
                st.math(MathFn::Exp, &s)
            });
            st.sum(&prods)
        });
        // Consumer: bucket-reduce whose key AND value both read the score.
        let n = st.len(&scores);
        let s1 = scores.clone();
        let s2 = scores.clone();
        let g = st.bucket_reduce(
            &n,
            move |st, i| {
                let v = st.read(&s1, i);
                st.f2i(&v)
            },
            move |st, i| st.read(&s2, i),
            |st, a, b| st.add(a, b),
            None,
        );
        st.finish(&g)
    }

    #[test]
    fn selector_rejects_losing_fusion() {
        let mut p = losing_fusion_program();
        // CSE first so both reads refer to one collection symbol (as the
        // optimizer recipe would present it).
        crate::cleanup::cse(&mut p);
        let mut greedy_p = p.clone();
        let r = run(&mut p);
        assert!(r.rejected >= 1, "the decline is reported: {r:?}");
        assert!(
            r.rejected_notes.iter().any(|n| n.contains("cost model")),
            "{:?}",
            r.rejected_notes
        );
        // Sanity: the declined site is legal — the greedy rewriter takes
        // it, fusing strictly more. This pins that rejection is a cost
        // decision, not a legality failure.
        let g = fixpoint(&mut greedy_p, crate::fusion::run);
        assert!(g.applied > r.applied, "greedy {g:?} vs selected {r:?}");
        // The declined producer is still materialized as its own loop in
        // the selected program (greedy inlined it into the consumer).
        assert!(
            count_loops(&p) >= count_loops(&greedy_p),
            "{p}\nvs greedy\n{greedy_p}"
        );
    }

    #[test]
    fn rejected_fusion_preserves_semantics_when_forced() {
        // The declined fusion is still correct if taken; the model only
        // says it is slower. Check both paths agree.
        let mut fused = losing_fusion_program();
        let plain = fused.clone();
        crate::cleanup::cse(&mut fused);
        fixpoint(&mut fused, crate::fusion::run);
        let inputs = [
            ("x", Value::f64_arr(vec![0.5, -1.0, 2.0])),
            ("w", Value::f64_arr(vec![0.1, 0.2])),
        ];
        assert_eq!(eval(&plain, &inputs).unwrap(), eval(&fused, &inputs).unwrap());
    }

    #[test]
    fn horizontal_gate_passes_small_merges() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let total = st.sum(&x);
        let m = st.reduce_elems(&x, |st, a, b| st.max(a, b));
        let pair = st.tuple(&[&total, &m]);
        let mut p = st.finish(&pair);
        fixpoint(&mut p, crate::cleanup::cse);
        let r = fixpoint(&mut p, horizontal_gated);
        assert_eq!(r.applied, 1, "{p}");
        assert_eq!(r.rejected, 0);
        assert_eq!(count_loops(&p), 1, "{p}");
    }
}
