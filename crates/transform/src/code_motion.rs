//! Loop-invariant code motion.
//!
//! Pure statements inside a generator component block whose inputs are all
//! defined outside the multiloop are hoisted in front of the loop. Besides
//! the usual win (computing `matrix.cols` once rather than per element),
//! hoisting normalizes the IR so the interchange rules and the read-stencil
//! analysis see loop sizes and array operands as loop-invariant symbols.

use crate::rewrite::PassReport;
use dmll_core::visit::{def_blocks, free_syms};
use dmll_core::{Block, Def, Exp, Program, Stmt, Sym};
use std::collections::BTreeSet;

/// Hoist loop-invariant statements one nesting level per call; run under
/// [`crate::rewrite::fixpoint`] to bubble invariants through multiple
/// levels.
pub fn run(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    let mut body = std::mem::replace(&mut program.body, Block::ret(vec![], Exp::unit()));
    hoist_in_block(&mut body, &mut report);
    program.body = body;
    report
}

fn hoist_in_block(block: &mut Block, report: &mut PassReport) {
    // Children first, so inner invariants can later move further out on the
    // next fixpoint iteration.
    for stmt in &mut block.stmts {
        for nb in dmll_core::visit::def_blocks_mut(&mut stmt.def) {
            hoist_in_block(nb, report);
        }
    }
    let mut i = 0;
    while i < block.stmts.len() {
        if matches!(block.stmts[i].def, Def::Loop(_)) {
            let mut hoisted: Vec<Stmt> = Vec::new();
            if let Def::Loop(ml) = &mut block.stmts[i].def {
                for gen in &mut ml.gens {
                    for cb in gen.blocks_mut() {
                        hoist_from_component(cb, &mut hoisted);
                    }
                }
            }
            if !hoisted.is_empty() {
                report.record(format!(
                    "hoisted {} loop-invariant statement(s) out of loop {}",
                    hoisted.len(),
                    block.stmts[i]
                        .lhs
                        .first()
                        .map(|s| s.to_string())
                        .unwrap_or_default()
                ));
                let n = hoisted.len();
                block.stmts.splice(i..i, hoisted);
                i += n;
            }
        }
        i += 1;
    }
}

/// Uses of a statement: shallow expression operands plus free variables of
/// nested blocks.
fn stmt_uses(s: &Stmt) -> BTreeSet<Sym> {
    let mut used = BTreeSet::new();
    dmll_core::visit::for_each_exp_shallow(&s.def, &mut |e| {
        if let Exp::Sym(sym) = e {
            used.insert(*sym);
        }
    });
    for nb in def_blocks(&s.def) {
        used.extend(free_syms(nb));
    }
    used
}

fn hoist_from_component(cb: &mut Block, hoisted: &mut Vec<Stmt>) {
    // Bound-inside set starts as the params plus every statement lhs, and
    // shrinks as statements are marked hoistable in order.
    let mut bound: BTreeSet<Sym> = cb.params.iter().copied().collect();
    for s in &cb.stmts {
        bound.extend(s.lhs.iter().copied());
    }
    let mut keep: Vec<Stmt> = Vec::with_capacity(cb.stmts.len());
    for stmt in cb.stmts.drain(..) {
        let pure = !stmt.def.is_effectful();
        let invariant = pure && stmt_uses(&stmt).iter().all(|u| !bound.contains(u));
        if invariant {
            for s in &stmt.lhs {
                bound.remove(s);
            }
            hoisted.push(stmt);
        } else {
            keep.push(stmt);
        }
    }
    cb.stmts = keep;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::fixpoint;
    use dmll_core::{typecheck, LayoutHint, Ty};
    use dmll_frontend::Stage;
    use dmll_interp::{eval, Value};

    #[test]
    fn hoists_invariant_field_reads() {
        let mut st = Stage::new();
        let m = st.input_matrix("m", LayoutHint::Partitioned);
        let rows = m.rows(&mut st);
        // Each element recomputes m.cols and m.data inside the loop body.
        let sums = st.collect(&rows, |st, i| {
            let cols = m.cols(st);
            let zero = st.lit_f(0.0);
            let m = m.clone();
            let i = i.clone();
            st.reduce(
                &cols,
                move |st, j| m.get(st, &i, j),
                |st, a, b| st.add(a, b),
                Some(&zero),
            )
        });
        let mut p = st.finish(&sums);
        let p0 = p.clone();
        let rep = fixpoint(&mut p, run);
        assert!(rep.applied >= 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        // m.cols is now computed before the outer loop, not inside it.
        let printed = p.to_string();
        let outer_loop_pos = printed.find("loop(").unwrap();
        let cols_pos = printed.find(".cols").unwrap();
        assert!(cols_pos < outer_loop_pos, "{printed}");
        let inputs = [("m", Value::matrix(vec![1.0, 2.0, 3.0, 4.0], 2, 2))];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn does_not_hoist_index_dependent_work() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let out = st.map(&x, |st, e| st.mul(e, e));
        let mut p = st.finish(&out);
        let before = p.to_string();
        let rep = fixpoint(&mut p, run);
        assert_eq!(rep.applied, 0);
        assert_eq!(p.to_string(), before);
    }

    #[test]
    fn hoists_dependency_chains() {
        let mut st = Stage::new();
        let a = st.input("a", Ty::F64, LayoutHint::Local);
        let n = st.lit_i(4);
        let out = st.collect(&n, |st, i| {
            let b = st.mul(&a, &a); // invariant
            let c = st.add(&b, &a); // invariant, depends on b
            let fi = st.i2f(i);
            st.mul(&c, &fi)
        });
        let mut p = st.finish(&out);
        let p0 = p.clone();
        let rep = fixpoint(&mut p, run);
        assert!(rep.applied >= 1, "{p}");
        // Both invariant statements left the loop.
        if let Def::Loop(ml) = &p.body.stmts.last().unwrap().def {
            assert_eq!(ml.gens[0].value().stmts.len(), 2, "{p}");
        } else {
            panic!("last stmt should be the loop: {p}");
        }
        let inputs = [("a", Value::F64(1.5))];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn hoists_whole_invariant_inner_loops() {
        // An inner sum over y that ignores the outer index is hoisted
        // entirely out of the outer loop.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let y = st.input("y", Ty::arr(Ty::F64), LayoutHint::Local);
        let out = st.map(&x, |st, e| {
            let sy = st.sum(&y);
            st.add(e, &sy)
        });
        let mut p = st.finish(&out);
        let p0 = p.clone();
        let rep = fixpoint(&mut p, run);
        assert!(rep.applied >= 1, "{p}");
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        assert_eq!(
            p.body
                .stmts
                .iter()
                .filter(|s| matches!(s.def, Def::Loop(_)))
                .count(),
            2,
            "inner sum now at top level: {p}"
        );
        let inputs = [
            ("x", Value::f64_arr(vec![1.0, 2.0])),
            ("y", Value::f64_arr(vec![10.0, 20.0])),
        ];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }
}
