//! Property tests: every individual pass preserves program semantics on
//! randomly composed pipelines and random data, and produces well-typed IR.

use dmll_core::{typecheck, LayoutHint, Program, Ty};
use dmll_frontend::{Stage, Val};
use dmll_interp::{eval, Value};
use dmll_transform::rewrite::fixpoint;
use dmll_transform::PassReport;
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    MapScale,
    MapAffine,
    FilterPos,
    MapSquare,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::MapScale),
        Just(Op::MapAffine),
        Just(Op::FilterPos),
        Just(Op::MapSquare),
    ]
}

#[derive(Clone, Copy, Debug)]
enum Tail {
    Sum,
    MaxReduce,
    GroupSum,
}

fn tail_strategy() -> impl Strategy<Value = Tail> {
    prop_oneof![Just(Tail::Sum), Just(Tail::MaxReduce), Just(Tail::GroupSum)]
}

fn build(ops: &[Op], tail: Tail) -> Program {
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
    let mut cur: Val = x;
    for &op in ops {
        cur = match op {
            Op::MapScale => st.map(&cur, |st, e| {
                let c = st.lit_f(0.75);
                st.mul(e, &c)
            }),
            Op::MapAffine => st.map(&cur, |st, e| {
                let a = st.lit_f(2.0);
                let b = st.lit_f(-1.0);
                let m = st.mul(e, &a);
                st.add(&m, &b)
            }),
            Op::FilterPos => st.filter(&cur, |st, e| {
                let z = st.lit_f(0.0);
                st.gt(e, &z)
            }),
            Op::MapSquare => st.map(&cur, |st, e| st.mul(e, e)),
        };
    }
    let out = match tail {
        Tail::Sum => st.sum(&cur),
        Tail::MaxReduce => {
            let big = st.lit_f(-1e300);
            let n = st.len(&cur);
            let cur2 = cur.clone();
            st.reduce(
                &n,
                move |st, i| st.read(&cur2, i),
                |st, a, b| st.max(a, b),
                Some(&big),
            )
        }
        Tail::GroupSum => {
            let zero = st.lit_f(0.0);
            let g = st.group_by_reduce(
                &cur,
                |st, e| {
                    let ten = st.lit_f(10.0);
                    let d = st.div(e, &ten);
                    let f = st.math(dmll_core::MathFn::Floor, &d);
                    st.f2i(&f)
                },
                |_st, e| e.clone(),
                |st, a, b| st.add(a, b),
                Some(&zero),
            );
            let v = st.bucket_values(&g);
            st.sum(&v)
        }
    };
    st.finish(&out)
}

type Pass = (&'static str, fn(&mut Program) -> PassReport);

const PASSES: &[Pass] = &[
    ("const_fold", dmll_transform::cleanup::const_fold),
    ("cse", dmll_transform::cleanup::cse),
    ("scalar_replace", dmll_transform::cleanup::scalar_replace),
    ("dce", dmll_transform::cleanup::dce),
    ("copy_elim", dmll_transform::cleanup::copy_elim),
    ("code_motion", dmll_transform::code_motion::run),
    ("fusion", dmll_transform::fusion::run),
    ("horizontal", dmll_transform::horizontal::run),
    ("groupby_reduce", dmll_transform::groupby_reduce::run),
    (
        "conditional_reduce",
        dmll_transform::conditional_reduce::run,
    ),
    ("column_to_row", dmll_transform::interchange::column_to_row),
    ("row_to_column", dmll_transform::interchange::row_to_column),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Each pass, run alone to fixpoint, preserves results bit-for-bit on
    /// random pipelines and leaves the program well-typed.
    #[test]
    fn each_pass_is_semantics_preserving(
        ops in prop::collection::vec(op_strategy(), 0..4),
        tail in tail_strategy(),
        data in prop::collection::vec(-40.0f64..40.0, 1..50),
        pass_idx in 0usize..PASSES.len(),
    ) {
        let (name, pass) = PASSES[pass_idx];
        let p0 = build(&ops, tail);
        let mut p1 = p0.clone();
        fixpoint(&mut p1, pass);
        prop_assert!(typecheck::infer(&p1).is_ok(), "{name} broke typing");
        let before = eval(&p0, &[("x", Value::f64_arr(data.clone()))]).unwrap();
        let after = eval(&p1, &[("x", Value::f64_arr(data))]).unwrap();
        prop_assert_eq!(before, after, "{} changed semantics", name);
    }

    /// Random pass sequences compose safely.
    #[test]
    fn pass_sequences_compose(
        ops in prop::collection::vec(op_strategy(), 0..4),
        tail in tail_strategy(),
        data in prop::collection::vec(-40.0f64..40.0, 1..40),
        sequence in prop::collection::vec(0usize..PASSES.len(), 1..6),
    ) {
        let p0 = build(&ops, tail);
        let mut p1 = p0.clone();
        for &i in &sequence {
            fixpoint(&mut p1, PASSES[i].1);
        }
        prop_assert!(typecheck::infer(&p1).is_ok());
        let before = eval(&p0, &[("x", Value::f64_arr(data.clone()))]).unwrap();
        let after = eval(&p1, &[("x", Value::f64_arr(data))]).unwrap();
        prop_assert_eq!(before, after);
    }

    /// The full optimizer never leaves more loops than it found (fusion may
    /// only reduce traversal count for straight-line pipelines).
    #[test]
    fn optimizer_never_adds_traversals(
        ops in prop::collection::vec(op_strategy(), 0..4),
        tail in tail_strategy(),
    ) {
        let p0 = build(&ops, tail);
        let mut p1 = p0.clone();
        dmll_transform::pipeline::optimize(&mut p1, dmll_transform::Target::Cpu);
        let count = dmll_core::printer::count_loops;
        prop_assert!(count(&p1) <= count(&p0), "{} -> {}", count(&p0), count(&p1));
    }
}
