#![warn(missing_docs)]

//! # Heterogeneous code generation
//!
//! DMLL keeps each generator's condition / key / value / reduction functions
//! separate precisely so that code generation can *recompose* them per
//! target (§3.1). This crate demonstrates it with three source emitters:
//!
//! * [`cpp`] — C++-flavoured code: a collect guards a buffer append with the
//!   condition; buckets are maintained by **hashing** (`std::unordered_map`);
//!   loops carry OpenMP parallel-for annotations.
//! * [`scala`] — Scala-flavoured code for the JVM cluster comparison of
//!   §6.2: `while`-loop accumulators, `java.util.HashMap` buckets, and
//!   distributed-array annotations on partitioned inputs.
//! * [`cuda`] — CUDA-flavoured code: a collect becomes **two phases**
//!   (evaluate conditions and sizes up front, then scatter values to
//!   precomputed offsets); scalar reductions use shared-memory trees;
//!   buckets are maintained by **sorting**; non-scalar reductions are
//!   rejected with a pointer at the Row-to-Column Reduce rule.
//!
//! The output is human-readable source text; golden tests pin the structural
//! differences between the targets.
//!
//! One emitter is also *executable*: [`cpp::emit_kernel_entry`] lowers a
//! certified multiloop to an `extern "C"` function over SoA pointers, and
//! [`native`] compiles it with the system C++ compiler and `dlopen`s the
//! result — the interpreter's native execution tier.

pub mod cpp;
pub mod cuda;
mod exprs;
pub mod native;
pub mod scala;

pub use cpp::{emit_cpp, emit_kernel_entry};
pub use cuda::{emit_cuda, CudaError};
pub use native::{
    compile_and_load, find_compiler, NativeArr, NativeEntryFn, NativeGenOut, NativeIneligible,
    NativeLib, NativeVarTy,
};
pub use scala::emit_scala;
