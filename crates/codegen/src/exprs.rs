//! Shared scalar-expression emission for the source backends.

use dmll_core::{Const, Def, Exp, MathFn, PrimOp, Ty};

pub(crate) fn ty_name(ty: &Ty) -> String {
    match ty {
        Ty::I64 => "int64_t".into(),
        Ty::F64 => "double".into(),
        Ty::Bool => "bool".into(),
        Ty::Str => "std::string".into(),
        Ty::Unit => "void".into(),
        Ty::Arr(e) => format!("Coll<{}>", ty_name(e)),
        Ty::Buckets { key, value } => format!("Buckets<{}, {}>", ty_name(key), ty_name(value)),
        Ty::Tuple(ts) => {
            let inner: Vec<String> = ts.iter().map(ty_name).collect();
            format!("std::tuple<{}>", inner.join(", "))
        }
        Ty::Struct(s) => s.name.clone(),
    }
}

pub(crate) fn exp(e: &Exp) -> String {
    match e {
        Exp::Sym(s) => s.to_string(),
        Exp::Const(Const::I64(v)) => format!("{v}LL"),
        Exp::Const(Const::F64(v)) => {
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Exp::Const(Const::Bool(v)) => v.to_string(),
        Exp::Const(Const::Str(s)) => format!("{s:?}"),
        Exp::Const(Const::Unit) => "/*unit*/0".into(),
    }
}

fn math_name(f: MathFn) -> &'static str {
    match f {
        MathFn::Exp => "exp",
        MathFn::Log => "log",
        MathFn::Sqrt => "sqrt",
        MathFn::Abs => "fabs",
        MathFn::Sin => "sin",
        MathFn::Cos => "cos",
        MathFn::Tanh => "tanh",
        MathFn::Floor => "floor",
        MathFn::Ceil => "ceil",
    }
}

/// Emit the right-hand side of a scalar (non-loop) definition.
pub(crate) fn scalar_def(def: &Def) -> Option<String> {
    Some(match def {
        Def::Prim { op, args } => match op {
            PrimOp::Add => format!("{} + {}", exp(&args[0]), exp(&args[1])),
            PrimOp::Sub => format!("{} - {}", exp(&args[0]), exp(&args[1])),
            PrimOp::Mul => format!("{} * {}", exp(&args[0]), exp(&args[1])),
            PrimOp::Div => format!("{} / {}", exp(&args[0]), exp(&args[1])),
            PrimOp::Rem => format!("{} % {}", exp(&args[0]), exp(&args[1])),
            PrimOp::Min => format!("std::min({}, {})", exp(&args[0]), exp(&args[1])),
            PrimOp::Max => format!("std::max({}, {})", exp(&args[0]), exp(&args[1])),
            PrimOp::Neg => format!("-{}", exp(&args[0])),
            PrimOp::Eq => format!("{} == {}", exp(&args[0]), exp(&args[1])),
            PrimOp::Ne => format!("{} != {}", exp(&args[0]), exp(&args[1])),
            PrimOp::Lt => format!("{} < {}", exp(&args[0]), exp(&args[1])),
            PrimOp::Le => format!("{} <= {}", exp(&args[0]), exp(&args[1])),
            PrimOp::Gt => format!("{} > {}", exp(&args[0]), exp(&args[1])),
            PrimOp::Ge => format!("{} >= {}", exp(&args[0]), exp(&args[1])),
            PrimOp::And => format!("{} && {}", exp(&args[0]), exp(&args[1])),
            PrimOp::Or => format!("{} || {}", exp(&args[0]), exp(&args[1])),
            PrimOp::Not => format!("!{}", exp(&args[0])),
            PrimOp::Mux => format!("{} ? {} : {}", exp(&args[0]), exp(&args[1]), exp(&args[2])),
        },
        Def::Math { f, arg } => format!("{}({})", math_name(*f), exp(arg)),
        Def::Cast { to, value } => format!("({}){}", ty_name(to), exp(value)),
        Def::ArrayLen(e) => format!("{}.size()", exp(e)),
        Def::ArrayRead { arr, index } => format!("{}[{}]", exp(arr), exp(index)),
        Def::TupleNew(es) => {
            let parts: Vec<String> = es.iter().map(exp).collect();
            format!("std::make_tuple({})", parts.join(", "))
        }
        Def::TupleGet { tuple, index } => format!("std::get<{index}>({})", exp(tuple)),
        Def::StructNew { ty, fields } => {
            let parts: Vec<String> = fields.iter().map(exp).collect();
            format!("{}{{{}}}", ty.name, parts.join(", "))
        }
        Def::StructGet { obj, field } => format!("{}.{field}", exp(obj)),
        Def::Flatten(e) => format!("flatten({})", exp(e)),
        Def::BucketValues(e) => format!("{}.values", exp(e)),
        Def::BucketKeys(e) => format!("{}.keys", exp(e)),
        Def::BucketLen(e) => format!("{}.keys.size()", exp(e)),
        Def::BucketGet {
            buckets,
            key,
            default,
        } => match default {
            Some(d) => format!("{}.get_or({}, {})", exp(buckets), exp(key), exp(d)),
            None => format!("{}.get({})", exp(buckets), exp(key)),
        },
        Def::Extern { name, args, .. } => {
            let parts: Vec<String> = args.iter().map(exp).collect();
            format!("{name}({})", parts.join(", "))
        }
        Def::Loop(_) => return None,
    })
}
