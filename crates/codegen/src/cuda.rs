//! CUDA-flavoured code emission.
//!
//! The same generators compose differently on a GPU (§3.1):
//!
//! * a **conditional collect** cannot append to a shared buffer — emit two
//!   phases: evaluate every condition up front, exclusive-scan the flags to
//!   compute output offsets, then write values straight to their slots;
//! * a **scalar reduce** accumulates in `__shared__` memory with a tree
//!   reduction; a **non-scalar** (collection-valued) reduce is rejected with
//!   a [`CudaError::NonScalarReduce`] pointing at the Row-to-Column Reduce
//!   rule, mirroring the paper's code generator restriction;
//! * **buckets** are maintained by *sorting* rather than hashing: compute
//!   keys, sort by key, then segmented-reduce.

use crate::exprs::{exp, scalar_def, ty_name};
use dmll_core::typecheck::{self, TypeMap};
use dmll_core::{Block, Def, Gen, Program, Sym, Ty};
use std::fmt::Write;

/// Why CUDA generation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CudaError {
    /// A generator reduces collection values; apply Row-to-Column Reduce
    /// first (§3.2).
    NonScalarReduce {
        /// The loop output symbol.
        sym: Sym,
    },
}

impl std::fmt::Display for CudaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CudaError::NonScalarReduce { sym } => write!(
                f,
                "loop {sym} reduces non-scalar values; GPU shared memory holds only \
                 fixed-size reduction temporaries — apply the Row-to-Column Reduce rule"
            ),
        }
    }
}

impl std::error::Error for CudaError {}

/// Emit CUDA-flavoured kernels for every top-level multiloop plus a host
/// driver sketch.
///
/// # Errors
///
/// Returns [`CudaError::NonScalarReduce`] when a reduction's value type is
/// not scalar.
///
/// # Panics
///
/// Panics if the program fails to type-check.
pub fn emit_cuda(program: &Program) -> Result<String, CudaError> {
    let tys = typecheck::infer(program).expect("well-typed program");
    let mut kernels = String::new();
    let mut host = String::new();
    host.push_str("void dmll_host(/* device pointers for inputs */) {\n");
    for stmt in &program.body.stmts {
        if let Def::Loop(ml) = &stmt.def {
            for (gi, (gen, sym)) in ml.gens.iter().zip(&stmt.lhs).enumerate() {
                emit_gen(*sym, gi, gen, ml, &tys, &mut kernels, &mut host)?;
            }
        }
    }
    host.push_str("}\n");
    let mut out = String::from("#include <cuda_runtime.h>\n#include <math.h>\n\n");
    out.push_str(&kernels);
    out.push_str(&host);
    Ok(out)
}

fn emit_gen(
    sym: Sym,
    gi: usize,
    gen: &Gen,
    ml: &dmll_core::Multiloop,
    tys: &TypeMap,
    kernels: &mut String,
    host: &mut String,
) -> Result<(), CudaError> {
    let size = exp(&ml.size);
    match gen {
        Gen::Collect { cond: None, value } => {
            let _ = writeln!(
                kernels,
                "__global__ void kernel_{sym}_{gi}(double* out, int64_t n /*, inputs */) {{"
            );
            kernels.push_str("  int64_t _i = blockIdx.x * blockDim.x + threadIdx.x;\n");
            kernels.push_str("  if (_i >= n) return;\n");
            emit_value_body(value, tys, kernels);
            let _ = writeln!(kernels, "  out[_i] = {};", exp(&value.result));
            kernels.push_str("}\n\n");
            let _ = writeln!(
                host,
                "  kernel_{sym}_{gi}<<<({size} + 255) / 256, 256>>>({sym}_dev, {size});"
            );
        }
        Gen::Collect {
            cond: Some(c),
            value,
        } => {
            // Phase 1: evaluate the condition for every index.
            let _ = writeln!(
                kernels,
                "// two-phase conditional collect for {sym}\n__global__ void kernel_{sym}_{gi}_phase1(int* flags, int64_t n) {{"
            );
            kernels.push_str("  int64_t _i = blockIdx.x * blockDim.x + threadIdx.x;\n");
            kernels.push_str("  if (_i >= n) return;\n");
            emit_value_body(c, tys, kernels);
            let _ = writeln!(kernels, "  flags[_i] = ({}) ? 1 : 0;", exp(&c.result));
            kernels.push_str("}\n\n");
            // Phase 2: write values to scanned offsets.
            let _ = writeln!(
                kernels,
                "__global__ void kernel_{sym}_{gi}_phase2(const int* offsets, const int* flags, double* out, int64_t n) {{"
            );
            kernels.push_str("  int64_t _i = blockIdx.x * blockDim.x + threadIdx.x;\n");
            kernels.push_str("  if (_i >= n || !flags[_i]) return;\n");
            emit_value_body(value, tys, kernels);
            let _ = writeln!(kernels, "  out[offsets[_i]] = {};", exp(&value.result));
            kernels.push_str("}\n\n");
            let _ = writeln!(
                host,
                "  kernel_{sym}_{gi}_phase1<<<({size} + 255) / 256, 256>>>(flags_{sym}, {size});\n  exclusive_scan(flags_{sym}, offsets_{sym}, {size});  // allocate exactly\n  kernel_{sym}_{gi}_phase2<<<({size} + 255) / 256, 256>>>(offsets_{sym}, flags_{sym}, {sym}_dev, {size});"
            );
        }
        Gen::Reduce { value, reducer, .. } => {
            let vt = tys.get(&sym).cloned().unwrap_or(Ty::F64);
            if !vt.is_scalar() {
                return Err(CudaError::NonScalarReduce { sym });
            }
            let ct = ty_name(&vt);
            let _ = writeln!(
                kernels,
                "__global__ void kernel_{sym}_{gi}(({ct})* partials, int64_t n) {{"
            );
            let _ = writeln!(kernels, "  __shared__ {ct} sdata[256];");
            kernels.push_str("  int64_t _i = blockIdx.x * blockDim.x + threadIdx.x;\n");
            kernels.push_str("  if (_i < n) {\n");
            emit_value_body(value, tys, kernels);
            let _ = writeln!(kernels, "    sdata[threadIdx.x] = {};", exp(&value.result));
            kernels.push_str("  }\n  __syncthreads();\n");
            kernels.push_str("  for (int s = blockDim.x / 2; s > 0; s >>= 1) {\n");
            kernels.push_str("    if (threadIdx.x < s) {\n");
            let _ = writeln!(
                kernels,
                "      {ct} {} = sdata[threadIdx.x];",
                reducer.params[0]
            );
            let _ = writeln!(
                kernels,
                "      {ct} {} = sdata[threadIdx.x + s];",
                reducer.params[1]
            );
            for st in &reducer.stmts {
                if let Some(rhs) = scalar_def(&st.def) {
                    let _ = writeln!(kernels, "      {ct} {} = {};", st.lhs[0], rhs);
                }
            }
            let _ = writeln!(
                kernels,
                "      sdata[threadIdx.x] = {};",
                exp(&reducer.result)
            );
            kernels.push_str("    }\n    __syncthreads();\n  }\n");
            kernels.push_str("  if (threadIdx.x == 0) partials[blockIdx.x] = sdata[0];\n");
            kernels.push_str("}\n\n");
            let _ = writeln!(
                host,
                "  kernel_{sym}_{gi}<<<({size} + 255) / 256, 256>>>({sym}_partials, {size});  // then reduce partials"
            );
        }
        Gen::BucketCollect { key, .. } | Gen::BucketReduce { key, .. } => {
            // Sort-based bucket maintenance.
            let _ = writeln!(
                kernels,
                "// sort-based buckets for {sym}\n__global__ void kernel_{sym}_{gi}_keys(int64_t* keys, int64_t n) {{"
            );
            kernels.push_str("  int64_t _i = blockIdx.x * blockDim.x + threadIdx.x;\n");
            kernels.push_str("  if (_i >= n) return;\n");
            emit_value_body(key, tys, kernels);
            let _ = writeln!(kernels, "  keys[_i] = {};", exp(&key.result));
            kernels.push_str("}\n\n");
            let _ = writeln!(
                host,
                "  kernel_{sym}_{gi}_keys<<<({size} + 255) / 256, 256>>>(keys_{sym}, {size});\n  sort_by_key(keys_{sym}, values_{sym}, {size});  // buckets by sorting\n  segmented_reduce(keys_{sym}, values_{sym}, {sym}_dev, {size});"
            );
        }
    }
    Ok(())
}

fn emit_value_body(b: &Block, tys: &TypeMap, out: &mut String) {
    if let Some(p) = b.params.first() {
        let _ = writeln!(out, "  const int64_t {p} = _i;");
    }
    emit_stmts(b, tys, out, 1);
}

fn emit_stmts(b: &Block, tys: &TypeMap, out: &mut String, depth: usize) {
    let pad = "  ".repeat(depth);
    for stmt in &b.stmts {
        match &stmt.def {
            Def::Loop(ml) => {
                // Nested loops run sequentially inside the kernel thread.
                for (gen, sym) in ml.gens.iter().zip(&stmt.lhs) {
                    let ty = tys.get(sym).map(ty_name).unwrap_or_else(|| "double".into());
                    match gen {
                        Gen::Reduce { init, .. } => {
                            let init_s = init.as_ref().map(exp).unwrap_or_else(|| "0".into());
                            let _ = writeln!(out, "{pad}{ty} {sym} = {init_s};");
                        }
                        _ => {
                            let _ = writeln!(out, "{pad}{ty} {sym}; // device-local buffer");
                        }
                    }
                    let _ = writeln!(
                        out,
                        "{pad}for (int64_t _j = 0; _j < {}; ++_j) {{",
                        exp(&ml.size)
                    );
                    let v = gen.value();
                    if let Some(p) = v.params.first() {
                        let _ = writeln!(out, "{pad}  const int64_t {p} = _j;");
                    }
                    emit_stmts(v, tys, out, depth + 1);
                    match gen {
                        Gen::Reduce { reducer, .. } => {
                            let _ = writeln!(
                                out,
                                "{pad}  {{ auto {} = {sym}; auto {} = {};",
                                reducer.params[0],
                                reducer.params[1],
                                exp(&v.result)
                            );
                            emit_stmts(reducer, tys, out, depth + 2);
                            let _ = writeln!(out, "{pad}    {sym} = {}; }}", exp(&reducer.result));
                        }
                        _ => {
                            let _ = writeln!(out, "{pad}  {sym}[_j] = {};", exp(&v.result));
                        }
                    }
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            other => {
                if let Some(rhs) = scalar_def(other) {
                    let ty = tys
                        .get(&stmt.lhs[0])
                        .map(ty_name)
                        .unwrap_or_else(|| "auto".into());
                    let _ = writeln!(out, "{pad}{ty} {} = {rhs};", stmt.lhs[0]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::LayoutHint;
    use dmll_frontend::Stage;

    #[test]
    fn unconditional_collect_single_kernel() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let m = st.map(&x, |st, e| st.mul(e, e));
        let p = st.finish(&m);
        let code = emit_cuda(&p).unwrap();
        assert!(code.contains("__global__"), "{code}");
        assert!(
            code.contains("blockIdx.x * blockDim.x + threadIdx.x"),
            "{code}"
        );
        assert!(!code.contains("phase1"), "no scan needed: {code}");
    }

    #[test]
    fn conditional_collect_is_two_phase() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let f = st.filter(&x, |st, e| {
            let z = st.lit_f(0.0);
            st.gt(e, &z)
        });
        let p = st.finish(&f);
        let code = emit_cuda(&p).unwrap();
        assert!(code.contains("phase1"), "{code}");
        assert!(code.contains("phase2"), "{code}");
        assert!(code.contains("exclusive_scan"), "{code}");
        assert!(code.contains("out[offsets[_i]]"), "{code}");
    }

    #[test]
    fn scalar_reduce_uses_shared_memory() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let s = st.sum(&x);
        let p = st.finish(&s);
        let code = emit_cuda(&p).unwrap();
        assert!(code.contains("__shared__ double sdata[256]"), "{code}");
        assert!(code.contains("__syncthreads()"), "{code}");
    }

    #[test]
    fn vector_reduce_rejected_until_row_to_column() {
        let mut st = Stage::new();
        let m = st.input_matrix("m", LayoutHint::Partitioned);
        let rows = m.rows(&mut st);
        let m2 = m.clone();
        let s = st.reduce(
            &rows,
            move |st, i| m2.row(st, i),
            |st, a, b| st.vec_add(a, b),
            None,
        );
        let mut p = st.finish(&s);
        let err = emit_cuda(&p).unwrap_err();
        assert!(err.to_string().contains("Row-to-Column"), "{err}");
        // Apply the rule; generation now succeeds with a shared-memory
        // scalar reduction inside.
        dmll_transform::rewrite::fixpoint(&mut p, dmll_transform::code_motion::run);
        let rep =
            dmll_transform::rewrite::fixpoint(&mut p, dmll_transform::interchange::row_to_column);
        assert_eq!(rep.applied, 1);
        let code = emit_cuda(&p).unwrap();
        assert!(code.contains("__global__"), "{code}");
    }

    #[test]
    fn buckets_by_sorting() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let zero = st.lit_i(0);
        let g = st.group_by_reduce(
            &x,
            |st, e| {
                let k = st.lit_i(3);
                st.rem(e, &k)
            },
            |_st, e| e.clone(),
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let vals = st.bucket_values(&g);
        let p = st.finish(&vals);
        let code = emit_cuda(&p).unwrap();
        assert!(code.contains("sort_by_key"), "{code}");
        assert!(code.contains("segmented_reduce"), "{code}");
        assert!(!code.contains("unordered_map"), "no hashing on GPU: {code}");
    }
}
