//! Executable native backend: compile an emitted kernel to a shared object
//! with the system C++ compiler and `dlopen` it.
//!
//! [`crate::cpp::emit_kernel_entry`] lowers a certified multiloop to a
//! single `extern "C"` function over SoA pointers; this module owns the
//! other half of the tier — finding a compiler, driving it, loading the
//! resulting `.so`, and keeping the handle alive for the kernel cache.
//!
//! Everything here degrades, never fails: a missing compiler, a failed
//! compile, an unloadable object, or an unsupported platform each produce a
//! typed [`NativeIneligible`] that the interpreter counts and then falls
//! back to its batched tier, which is semantically complete.

use std::ffi::{c_void, CString};
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

/// The type of one kernel free variable at the native ABI boundary.
///
/// Scalars are passed in per-class argument arrays (`si`/`sf`/`sb`), arrays
/// as `(pointer, length)` pairs; within each class, ABI indices are assigned
/// in the order the variables appear in the emitter's `vars` slice, so the
/// caller must marshal in that same order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NativeVarTy {
    /// `i64` scalar, passed via `si`.
    I64,
    /// `f64` scalar, passed via `sf`.
    F64,
    /// `bool` scalar, passed via `sb` (nonzero = true).
    Bool,
    /// Unboxed `i64` array, passed via `arrs`.
    ArrI64,
    /// Unboxed `f64` array, passed via `arrs`.
    ArrF64,
    /// Unboxed `bool` array, passed via `arrs` (one byte per element).
    ArrBool,
}

/// Why a loop cannot (or could not) run on the native tier.
///
/// Every variant maps to a stable machine-readable key so fallbacks are
/// counted per reason, mirroring the batch tier's `BatchIneligible`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NativeIneligible {
    /// No C++ (or C) compiler found on `PATH` (and `DMLL_CXX` unset).
    CompilerUnavailable,
    /// The compiler ran but rejected the emitted source.
    CompileFailed(String),
    /// The produced shared object could not be loaded or resolved.
    LoadFailed(String),
    /// `dlopen` is only wired up on unix platforms.
    UnsupportedPlatform,
    /// The loop body contains a nested multiloop.
    NestedLoop,
    /// `BucketCollect` generators are not lowered (variable-size buckets).
    BucketCollect,
    /// Bucket keys must be `i64` for the open-addressing key table.
    UntypedBucketKey,
    /// A generator produces a non-scalar (boxed) element.
    NonScalarValue,
    /// Transcendental math (`exp`/`log`/`sin`/`cos`/`tanh`) is declined:
    /// libm results are not guaranteed bit-identical across languages.
    TranscendentalMath,
    /// A free variable is not a scalar or unboxed primitive array.
    UnsupportedFreeVar,
    /// Some other construct outside the lowered subset.
    UnsupportedOp(&'static str),
}

impl NativeIneligible {
    /// Stable machine-readable key for stats and JSON artifacts.
    pub fn key(&self) -> &'static str {
        match self {
            NativeIneligible::CompilerUnavailable => "compiler_unavailable",
            NativeIneligible::CompileFailed(_) => "compile_failed",
            NativeIneligible::LoadFailed(_) => "load_failed",
            NativeIneligible::UnsupportedPlatform => "unsupported_platform",
            NativeIneligible::NestedLoop => "nested_loop",
            NativeIneligible::BucketCollect => "bucket_collect",
            NativeIneligible::UntypedBucketKey => "untyped_bucket_key",
            NativeIneligible::NonScalarValue => "non_scalar_value",
            NativeIneligible::TranscendentalMath => "transcendental_math",
            NativeIneligible::UnsupportedFreeVar => "unsupported_free_var",
            NativeIneligible::UnsupportedOp(_) => "unsupported_op",
        }
    }
}

impl fmt::Display for NativeIneligible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NativeIneligible::CompileFailed(msg) => write!(f, "compile_failed: {msg}"),
            NativeIneligible::LoadFailed(msg) => write!(f, "load_failed: {msg}"),
            NativeIneligible::UnsupportedOp(what) => write!(f, "unsupported_op: {what}"),
            other => f.write_str(other.key()),
        }
    }
}

/// One array argument: base pointer and element count.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct NativeArr {
    /// Base of the unboxed element storage.
    pub ptr: *const c_void,
    /// Element count.
    pub len: i64,
}

/// Per-generator output slot.
///
/// The caller allocates every buffer (capacity = chunk length for collects,
/// bucket keys and values; `table_cap` slots for the key table, pre-filled
/// with `u32::MAX` sentinels) and reads back `count` plus the class-matching
/// scalar field after a successful call.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct NativeGenOut {
    /// Typed element buffer (collect values / bucket values).
    pub out: *mut c_void,
    /// Bucket keys, aligned with bucket slots.
    pub keys: *mut i64,
    /// Open-addressing key table (`u32::MAX` = empty), power-of-two size.
    pub table: *mut u32,
    /// Capacity of `table`.
    pub table_cap: i64,
    /// Elements collected / elements reduced / buckets created.
    pub count: i64,
    /// Scalar reduce result (`i64` class).
    pub ival: i64,
    /// Scalar reduce result (`f64` class).
    pub fval: f64,
    /// Scalar reduce result (`bool` class, 0/1).
    pub bval: u8,
}

/// The emitted entry point. Returns 0 on success; any nonzero return means
/// the kernel hit a condition whose semantics belong to the interpreter
/// (division by zero, overflow on `i64::MIN` edge cases, out-of-bounds
/// read) and the caller must re-run the range on the batched tier, which
/// reproduces the exact error or panic.
pub type NativeEntryFn = unsafe extern "C" fn(
    start: i64,
    end: i64,
    si: *const i64,
    sf: *const f64,
    sb: *const u8,
    arrs: *const NativeArr,
    outs: *mut NativeGenOut,
) -> i32;

/// A loaded native kernel: the shared object stays mapped for as long as
/// the owning kernel lives in the cache; dropping it unmaps the library and
/// removes the temporary artifacts.
#[derive(Debug)]
pub struct NativeLib {
    handle: *mut c_void,
    entry: NativeEntryFn,
    dir: PathBuf,
}

// The handle is only used for dlclose at drop; the entry is an immutable
// function pointer into a mapping that lives as long as `self`.
unsafe impl Send for NativeLib {}
unsafe impl Sync for NativeLib {}

impl NativeLib {
    /// The loaded entry point.
    pub fn entry(&self) -> NativeEntryFn {
        self.entry
    }
}

impl Drop for NativeLib {
    fn drop(&mut self) {
        #[cfg(unix)]
        unsafe {
            dl::dlclose(self.handle);
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Locate a usable C/C++ compiler: `DMLL_CXX` wins when set, then the
/// conventional driver names are searched on `PATH`.
pub fn find_compiler() -> Option<PathBuf> {
    if let Ok(cxx) = std::env::var("DMLL_CXX") {
        if !cxx.is_empty() {
            let p = PathBuf::from(&cxx);
            if is_executable(&p) {
                return Some(p);
            }
            if let Some(p) = which(&cxx) {
                return Some(p);
            }
        }
    }
    ["c++", "g++", "clang++", "cc", "gcc"].iter().find_map(|c| which(c))
}

fn which(name: &str) -> Option<PathBuf> {
    let path = std::env::var_os("PATH")?;
    std::env::split_paths(&path)
        .map(|d| d.join(name))
        .find(|p| is_executable(p))
}

#[cfg(unix)]
fn is_executable(p: &Path) -> bool {
    use std::os::unix::fs::PermissionsExt;
    std::fs::metadata(p).is_ok_and(|m| m.is_file() && m.permissions().mode() & 0o111 != 0)
}

#[cfg(not(unix))]
fn is_executable(p: &Path) -> bool {
    std::fs::metadata(p).is_ok_and(|m| m.is_file())
}

/// Compile `source` to a shared object and resolve `entry_name` in it.
///
/// The flags pin semantics, not speed tricks: `-ffp-contract=off` forbids
/// fused multiply-add (which would change float bit patterns vs the
/// interpreter) and there is deliberately no `-ffast-math`.
///
/// # Errors
///
/// Typed [`NativeIneligible`] for every failure mode; never panics on bad
/// toolchains.
pub fn compile_and_load(source: &str, entry_name: &str) -> Result<NativeLib, NativeIneligible> {
    #[cfg(not(unix))]
    {
        let _ = (source, entry_name);
        Err(NativeIneligible::UnsupportedPlatform)
    }
    #[cfg(unix)]
    {
        compile_and_load_unix(source, entry_name)
    }
}

#[cfg(unix)]
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

#[cfg(unix)]
fn compile_and_load_unix(source: &str, entry_name: &str) -> Result<NativeLib, NativeIneligible> {
    let compiler = find_compiler().ok_or(NativeIneligible::CompilerUnavailable)?;
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "dmll-native-{}-{id}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir)
        .map_err(|e| NativeIneligible::CompileFailed(format!("mkdir: {e}")))?;
    let src = dir.join("kernel.cpp");
    let so = dir.join("kernel.so");
    if let Err(e) = std::fs::write(&src, source) {
        let _ = std::fs::remove_dir_all(&dir);
        return Err(NativeIneligible::CompileFailed(format!("write source: {e}")));
    }
    let out = Command::new(&compiler)
        .arg("-O2")
        .arg("-fPIC")
        .arg("-shared")
        .arg("-x")
        .arg("c++")
        .arg("-ffp-contract=off")
        .arg(&src)
        .arg("-o")
        .arg(&so)
        .arg("-lm")
        .output();
    let out = match out {
        Ok(o) => o,
        Err(e) => {
            let _ = std::fs::remove_dir_all(&dir);
            return Err(NativeIneligible::CompileFailed(format!(
                "spawn {}: {e}",
                compiler.display()
            )));
        }
    };
    if !out.status.success() {
        let stderr = String::from_utf8_lossy(&out.stderr);
        let brief: String = stderr.chars().take(500).collect();
        let _ = std::fs::remove_dir_all(&dir);
        return Err(NativeIneligible::CompileFailed(brief));
    }
    match load_entry(&so, entry_name) {
        Ok((handle, entry)) => Ok(NativeLib { handle, entry, dir }),
        Err(e) => {
            let _ = std::fs::remove_dir_all(&dir);
            Err(e)
        }
    }
}

#[cfg(unix)]
fn load_entry(so: &Path, entry_name: &str) -> Result<(*mut c_void, NativeEntryFn), NativeIneligible> {
    use std::os::unix::ffi::OsStrExt;
    let c_path = CString::new(so.as_os_str().as_bytes())
        .map_err(|_| NativeIneligible::LoadFailed("path contains NUL".into()))?;
    let c_entry = CString::new(entry_name)
        .map_err(|_| NativeIneligible::LoadFailed("entry name contains NUL".into()))?;
    unsafe {
        let handle = dl::dlopen(c_path.as_ptr(), dl::RTLD_NOW);
        if handle.is_null() {
            return Err(NativeIneligible::LoadFailed(dl::error_string()));
        }
        let sym = dl::dlsym(handle, c_entry.as_ptr());
        if sym.is_null() {
            let msg = dl::error_string();
            dl::dlclose(handle);
            return Err(NativeIneligible::LoadFailed(msg));
        }
        let entry: NativeEntryFn = std::mem::transmute::<*mut c_void, NativeEntryFn>(sym);
        Ok((handle, entry))
    }
}

/// Raw `libdl` bindings — the functions live in libc on modern unix, so no
/// extra crate or link flag is needed.
#[cfg(unix)]
mod dl {
    use std::ffi::c_void;
    use std::os::raw::{c_char, c_int};

    pub const RTLD_NOW: c_int = 2;

    extern "C" {
        pub fn dlopen(filename: *const c_char, flag: c_int) -> *mut c_void;
        pub fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
        pub fn dlclose(handle: *mut c_void) -> c_int;
        fn dlerror() -> *mut c_char;
    }

    pub fn error_string() -> String {
        unsafe {
            let e = dlerror();
            if e.is_null() {
                "unknown dlopen error".into()
            } else {
                std::ffi::CStr::from_ptr(e).to_string_lossy().into_owned()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRIVIAL: &str = r#"
#include <stdint.h>
typedef struct { const void* ptr; int64_t len; } DmllArr;
typedef struct { void* out; int64_t* keys; uint32_t* table; int64_t table_cap;
                 int64_t count; int64_t ival; double fval; uint8_t bval; } DmllGenOut;
extern "C" int32_t dmll_test_entry(int64_t start, int64_t end, const int64_t* si,
    const double* sf, const uint8_t* sb, const DmllArr* arrs, DmllGenOut* outs) {
  (void)si; (void)sf; (void)sb; (void)arrs;
  int64_t acc = 0;
  for (int64_t i = start; i < end; ++i) acc += i;
  outs[0].ival = acc;
  outs[0].count = end - start;
  return 0;
}
"#;

    #[test]
    fn compiles_loads_and_runs_a_trivial_kernel() {
        if find_compiler().is_none() {
            return; // environment without a toolchain: covered by the
                    // expect-no-compiler CI job instead.
        }
        let lib = compile_and_load(TRIVIAL, "dmll_test_entry").expect("compile");
        let mut outs = [NativeGenOut {
            out: std::ptr::null_mut(),
            keys: std::ptr::null_mut(),
            table: std::ptr::null_mut(),
            table_cap: 0,
            count: 0,
            ival: 0,
            fval: 0.0,
            bval: 0,
        }];
        let rc = unsafe {
            (lib.entry())(
                0,
                10,
                std::ptr::null(),
                std::ptr::null(),
                std::ptr::null(),
                std::ptr::null(),
                outs.as_mut_ptr(),
            )
        };
        assert_eq!(rc, 0);
        assert_eq!(outs[0].ival, 45);
        assert_eq!(outs[0].count, 10);
    }

    #[test]
    fn missing_compiler_is_a_typed_fallback() {
        let saved = std::env::var_os("PATH");
        std::env::set_var("PATH", "");
        std::env::remove_var("DMLL_CXX");
        let got = find_compiler();
        if let Some(p) = saved {
            std::env::set_var("PATH", p);
        }
        assert!(got.is_none());
        assert_eq!(NativeIneligible::CompilerUnavailable.key(), "compiler_unavailable");
    }

    #[test]
    fn compile_failure_reports_stderr() {
        if find_compiler().is_none() {
            return;
        }
        let err = compile_and_load("this is not C++ at all {", "nope").unwrap_err();
        assert_eq!(err.key(), "compile_failed");
    }

    #[test]
    fn fallback_keys_are_stable() {
        for (e, k) in [
            (NativeIneligible::NestedLoop, "nested_loop"),
            (NativeIneligible::BucketCollect, "bucket_collect"),
            (NativeIneligible::UntypedBucketKey, "untyped_bucket_key"),
            (NativeIneligible::NonScalarValue, "non_scalar_value"),
            (NativeIneligible::TranscendentalMath, "transcendental_math"),
            (NativeIneligible::UnsupportedFreeVar, "unsupported_free_var"),
            (NativeIneligible::UnsupportedPlatform, "unsupported_platform"),
            (NativeIneligible::UnsupportedOp("x"), "unsupported_op"),
        ] {
            assert_eq!(e.key(), k);
        }
    }
}
