//! C++-flavoured code emission.
//!
//! Multiloops become sequential/OpenMP loops following Figure 2(b)'s
//! reference semantics: the condition guards a buffer append for collects,
//! buckets are maintained by **hashing**, and horizontally fused generators
//! share one traversal.

use crate::exprs::{exp, scalar_def, ty_name};
use dmll_core::typecheck::{self, TypeMap};
use dmll_core::{Block, Def, Gen, Program, StructTy, Ty};
use std::fmt::Write;

const PREAMBLE: &str = r#"#include <cstdint>
#include <cmath>
#include <string>
#include <vector>
#include <unordered_map>
#include <tuple>
#include <algorithm>

template <class T> using Coll = std::vector<T>;

// Bucket storage maintained by hashing (the CPU strategy).
template <class K, class V> struct Buckets {
  std::vector<K> keys;
  std::vector<V> values;
  std::unordered_map<K, size_t> index;
  size_t slot(const K& k) {
    auto it = index.find(k);
    if (it != index.end()) return it->second;
    index.emplace(k, keys.size());
    keys.push_back(k);
    values.emplace_back();
    return keys.size() - 1;
  }
  V get(const K& k) const { return values.at(index.at(k)); }
  V get_or(const K& k, V dflt) const {
    auto it = index.find(k);
    return it == index.end() ? dflt : values[it->second];
  }
};
"#;

/// Emit a complete C++-flavoured translation unit for the program.
///
/// # Panics
///
/// Panics if the program fails to type-check (emit after the optimizer,
/// which validates).
pub fn emit_cpp(program: &Program) -> String {
    let tys = typecheck::infer(program).expect("well-typed program");
    let mut out = String::new();
    out.push_str(PREAMBLE);
    out.push('\n');
    for sty in struct_types(program, &tys) {
        let _ = writeln!(out, "struct {} {{", sty.name);
        for (name, ty) in &sty.fields {
            let _ = writeln!(out, "  {} {};", ty_name(ty), name);
        }
        out.push_str("};\n\n");
    }
    // Entry point taking the annotated inputs.
    let params: Vec<String> = program
        .inputs
        .iter()
        .map(|i| format!("const {}& {} /* @{} */", ty_name(&i.ty), i.sym, i.layout))
        .collect();
    let ret_ty = dmll_core::typecheck::exp_ty(&program.body.result, &tys)
        .map(|t| ty_name(&t))
        .unwrap_or_else(|_| "void".into());
    let _ = writeln!(out, "{} dmll_main({}) {{", ret_ty, params.join(", "));
    emit_block_stmts(&program.body, 1, &tys, &mut out);
    let _ = writeln!(out, "  return {};", exp(&program.body.result));
    out.push_str("}\n");
    out
}

fn struct_types(program: &Program, tys: &TypeMap) -> Vec<StructTy> {
    let mut seen: Vec<StructTy> = Vec::new();
    let mut note = |t: &Ty| {
        collect_structs(t, &mut seen);
    };
    for i in &program.inputs {
        note(&i.ty);
    }
    for t in tys.values() {
        note(t);
    }
    seen
}

fn collect_structs(t: &Ty, seen: &mut Vec<StructTy>) {
    match t {
        Ty::Struct(s) => {
            if !seen.iter().any(|x| x == s) {
                seen.push(s.clone());
            }
            for (_, ft) in &s.fields {
                collect_structs(ft, seen);
            }
        }
        Ty::Arr(e) => collect_structs(e, seen),
        Ty::Buckets { key, value } => {
            collect_structs(key, seen);
            collect_structs(value, seen);
        }
        Ty::Tuple(ts) => ts.iter().for_each(|t| collect_structs(t, seen)),
        _ => {}
    }
}

fn pad(n: usize) -> String {
    "  ".repeat(n)
}

fn emit_block_stmts(b: &Block, indent: usize, tys: &TypeMap, out: &mut String) {
    for stmt in &b.stmts {
        match &stmt.def {
            Def::Loop(ml) => emit_loop(stmt, ml, indent, tys, out),
            other => {
                if let Some(rhs) = scalar_def(other) {
                    let ty = tys
                        .get(&stmt.lhs[0])
                        .map(ty_name)
                        .unwrap_or_else(|| "auto".into());
                    let _ = writeln!(out, "{}{} {} = {};", pad(indent), ty, stmt.lhs[0], rhs);
                }
            }
        }
    }
}

fn emit_loop(
    stmt: &dmll_core::Stmt,
    ml: &dmll_core::Multiloop,
    indent: usize,
    tys: &TypeMap,
    out: &mut String,
) {
    let p = pad(indent);
    // Accumulator declarations.
    for (gen, sym) in ml.gens.iter().zip(&stmt.lhs) {
        let ty = tys.get(sym).map(ty_name).unwrap_or_else(|| "auto".into());
        match gen {
            Gen::Collect { .. } => {
                let _ = writeln!(out, "{p}{ty} {sym};");
            }
            Gen::Reduce { init, .. } => match init {
                Some(i) => {
                    let _ = writeln!(out, "{p}{ty} {sym} = {};", exp(i));
                }
                None => {
                    let _ = writeln!(out, "{p}{ty} {sym}{{}}; bool {sym}_init = false;");
                }
            },
            Gen::BucketCollect { .. } | Gen::BucketReduce { .. } => {
                let _ = writeln!(out, "{p}{ty} {sym};");
            }
        }
    }
    let _ = writeln!(
        out,
        "{p}#pragma omp parallel for  // multiloop, {} generator(s)",
        ml.gens.len()
    );
    let _ = writeln!(
        out,
        "{p}for (int64_t _i = 0; _i < {}; ++_i) {{",
        exp(&ml.size)
    );
    for (gen, sym) in ml.gens.iter().zip(&stmt.lhs) {
        let _ = writeln!(out, "{}{{", pad(indent + 1));
        let body_indent = indent + 2;
        // Condition guards the whole generator body.
        if let Some(c) = gen.cond() {
            alias_param(c, body_indent, out);
            emit_block_stmts(c, body_indent, tys, out);
            let _ = writeln!(
                out,
                "{}if (!({})) continue;",
                pad(body_indent),
                exp(&c.result)
            );
        }
        if let Some(k) = gen.key() {
            alias_param(k, body_indent, out);
            emit_block_stmts(k, body_indent, tys, out);
        }
        let v = gen.value();
        alias_param(v, body_indent, out);
        emit_block_stmts(v, body_indent, tys, out);
        let value = exp(&v.result);
        match gen {
            Gen::Collect { .. } => {
                let _ = writeln!(out, "{}{sym}.push_back({value});", pad(body_indent));
            }
            Gen::Reduce { reducer, init, .. } => {
                if init.is_none() {
                    let _ = writeln!(
                        out,
                        "{}if (!{sym}_init) {{ {sym} = {value}; {sym}_init = true; continue; }}",
                        pad(body_indent)
                    );
                }
                emit_reduce_update(&format!("{sym}"), &value, reducer, body_indent, tys, out);
            }
            Gen::BucketCollect { key, .. } => {
                let _ = writeln!(
                    out,
                    "{}{sym}.values[{sym}.slot({})].push_back({value});",
                    pad(body_indent),
                    exp(&key.result)
                );
            }
            Gen::BucketReduce { key, reducer, .. } => {
                let _ = writeln!(
                    out,
                    "{}auto& _slot = {sym}.values[{sym}.slot({})];",
                    pad(body_indent),
                    exp(&key.result)
                );
                emit_reduce_update("_slot", &value, reducer, body_indent, tys, out);
            }
        }
        let _ = writeln!(out, "{}}}", pad(indent + 1));
    }
    let _ = writeln!(out, "{p}}}");
}

fn alias_param(b: &Block, indent: usize, out: &mut String) {
    if let Some(param) = b.params.first() {
        let _ = writeln!(out, "{}const int64_t {param} = _i;", pad(indent));
    }
}

fn emit_reduce_update(
    acc: &str,
    value: &str,
    reducer: &Block,
    indent: usize,
    tys: &TypeMap,
    out: &mut String,
) {
    let p = pad(indent);
    let _ = writeln!(out, "{p}{{  // reduction update");
    let _ = writeln!(out, "{p}  auto {} = {acc};", reducer.params[0]);
    let _ = writeln!(out, "{p}  auto {} = {value};", reducer.params[1]);
    emit_block_stmts(reducer, indent + 1, tys, out);
    let _ = writeln!(out, "{p}  {acc} = {};", exp(&reducer.result));
    let _ = writeln!(out, "{p}}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::LayoutHint;
    use dmll_frontend::Stage;

    #[test]
    fn map_emits_openmp_loop() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let m = st.map(&x, |st, e| st.mul(e, e));
        let p = st.finish(&m);
        let code = emit_cpp(&p);
        assert!(code.contains("#pragma omp parallel for"), "{code}");
        assert!(code.contains("for (int64_t _i = 0;"), "{code}");
        assert!(code.contains(".push_back("), "{code}");
        assert!(code.contains("Coll<double>"), "{code}");
    }

    #[test]
    fn filter_guards_append_with_condition() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let f = st.filter(&x, |st, e| {
            let z = st.lit_f(0.0);
            st.gt(e, &z)
        });
        let p = st.finish(&f);
        let code = emit_cpp(&p);
        assert!(code.contains("if (!("), "condition guard: {code}");
    }

    #[test]
    fn group_by_uses_hash_buckets() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let g = st.group_by(&x, |st, e| {
            let k = st.lit_i(5);
            st.rem(e, &k)
        });
        let keys = st.bucket_keys(&g);
        let p = st.finish(&keys);
        let code = emit_cpp(&p);
        assert!(code.contains("std::unordered_map"), "{code}");
        assert!(code.contains(".slot("), "{code}");
        assert!(code.contains("Buckets<int64_t, Coll<int64_t>>"), "{code}");
    }

    #[test]
    fn reduce_without_identity_uses_first_element() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let m = st.reduce_elems(&x, |st, a, b| st.max(a, b));
        let p = st.finish(&m);
        let code = emit_cpp(&p);
        assert!(code.contains("_init = false"), "{code}");
        assert!(code.contains("std::max("), "{code}");
    }

    #[test]
    fn matrix_struct_emitted() {
        let mut st = Stage::new();
        let m = st.input_matrix("m", LayoutHint::Partitioned);
        let r = m.rows(&mut st);
        let p = st.finish(&r);
        let code = emit_cpp(&p);
        assert!(code.contains("struct MatrixF64 {"), "{code}");
        assert!(code.contains("Coll<double> data;"), "{code}");
    }

    #[test]
    fn inputs_carry_layout_annotations() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let s = st.sum(&x);
        let p = st.finish(&s);
        let code = emit_cpp(&p);
        assert!(code.contains("@Partitioned"), "{code}");
        assert!(code.contains("return x"), "{code}");
    }
}
