//! C++-flavoured code emission.
//!
//! Multiloops become sequential/OpenMP loops following Figure 2(b)'s
//! reference semantics: the condition guards a buffer append for collects,
//! buckets are maintained by **hashing**, and horizontally fused generators
//! share one traversal.

use crate::exprs::{exp, scalar_def, ty_name};
use crate::native::{NativeIneligible, NativeVarTy};
use dmll_core::typecheck::{self, TypeMap};
use dmll_core::{Block, Const, Def, Exp, Gen, MathFn, Multiloop, PrimOp, Program, StructTy, Sym, Ty};
use std::collections::{HashMap, HashSet};
use std::fmt::Write;

const PREAMBLE: &str = r#"#include <cstdint>
#include <cmath>
#include <string>
#include <vector>
#include <unordered_map>
#include <tuple>
#include <algorithm>

template <class T> using Coll = std::vector<T>;

// Bucket storage maintained by hashing (the CPU strategy).
template <class K, class V> struct Buckets {
  std::vector<K> keys;
  std::vector<V> values;
  std::unordered_map<K, size_t> index;
  size_t slot(const K& k) {
    auto it = index.find(k);
    if (it != index.end()) return it->second;
    index.emplace(k, keys.size());
    keys.push_back(k);
    values.emplace_back();
    return keys.size() - 1;
  }
  V get(const K& k) const { return values.at(index.at(k)); }
  V get_or(const K& k, V dflt) const {
    auto it = index.find(k);
    return it == index.end() ? dflt : values[it->second];
  }
};
"#;

/// Emit a complete C++-flavoured translation unit for the program.
///
/// # Panics
///
/// Panics if the program fails to type-check (emit after the optimizer,
/// which validates).
pub fn emit_cpp(program: &Program) -> String {
    let tys = typecheck::infer(program).expect("well-typed program");
    let mut out = String::new();
    out.push_str(PREAMBLE);
    out.push('\n');
    for sty in struct_types(program, &tys) {
        let _ = writeln!(out, "struct {} {{", sty.name);
        for (name, ty) in &sty.fields {
            let _ = writeln!(out, "  {} {};", ty_name(ty), name);
        }
        out.push_str("};\n\n");
    }
    // Entry point taking the annotated inputs.
    let params: Vec<String> = program
        .inputs
        .iter()
        .map(|i| format!("const {}& {} /* @{} */", ty_name(&i.ty), i.sym, i.layout))
        .collect();
    let ret_ty = dmll_core::typecheck::exp_ty(&program.body.result, &tys)
        .map(|t| ty_name(&t))
        .unwrap_or_else(|_| "void".into());
    let _ = writeln!(out, "{} dmll_main({}) {{", ret_ty, params.join(", "));
    emit_block_stmts(&program.body, 1, &tys, &mut out);
    let _ = writeln!(out, "  return {};", exp(&program.body.result));
    out.push_str("}\n");
    out
}

fn struct_types(program: &Program, tys: &TypeMap) -> Vec<StructTy> {
    let mut seen: Vec<StructTy> = Vec::new();
    let mut note = |t: &Ty| {
        collect_structs(t, &mut seen);
    };
    for i in &program.inputs {
        note(&i.ty);
    }
    for t in tys.values() {
        note(t);
    }
    seen
}

fn collect_structs(t: &Ty, seen: &mut Vec<StructTy>) {
    match t {
        Ty::Struct(s) => {
            if !seen.iter().any(|x| x == s) {
                seen.push(s.clone());
            }
            for (_, ft) in &s.fields {
                collect_structs(ft, seen);
            }
        }
        Ty::Arr(e) => collect_structs(e, seen),
        Ty::Buckets { key, value } => {
            collect_structs(key, seen);
            collect_structs(value, seen);
        }
        Ty::Tuple(ts) => ts.iter().for_each(|t| collect_structs(t, seen)),
        _ => {}
    }
}

fn pad(n: usize) -> String {
    "  ".repeat(n)
}

fn emit_block_stmts(b: &Block, indent: usize, tys: &TypeMap, out: &mut String) {
    for stmt in &b.stmts {
        match &stmt.def {
            Def::Loop(ml) => emit_loop(stmt, ml, indent, tys, out),
            other => {
                if let Some(rhs) = scalar_def(other) {
                    let ty = tys
                        .get(&stmt.lhs[0])
                        .map(ty_name)
                        .unwrap_or_else(|| "auto".into());
                    let _ = writeln!(out, "{}{} {} = {};", pad(indent), ty, stmt.lhs[0], rhs);
                }
            }
        }
    }
}

fn emit_loop(
    stmt: &dmll_core::Stmt,
    ml: &dmll_core::Multiloop,
    indent: usize,
    tys: &TypeMap,
    out: &mut String,
) {
    let p = pad(indent);
    // Accumulator declarations.
    for (gen, sym) in ml.gens.iter().zip(&stmt.lhs) {
        let ty = tys.get(sym).map(ty_name).unwrap_or_else(|| "auto".into());
        match gen {
            Gen::Collect { .. } => {
                let _ = writeln!(out, "{p}{ty} {sym};");
            }
            Gen::Reduce { init, .. } => match init {
                Some(i) => {
                    let _ = writeln!(out, "{p}{ty} {sym} = {};", exp(i));
                }
                None => {
                    let _ = writeln!(out, "{p}{ty} {sym}{{}}; bool {sym}_init = false;");
                }
            },
            Gen::BucketCollect { .. } | Gen::BucketReduce { .. } => {
                let _ = writeln!(out, "{p}{ty} {sym};");
            }
        }
    }
    let _ = writeln!(
        out,
        "{p}#pragma omp parallel for  // multiloop, {} generator(s)",
        ml.gens.len()
    );
    let _ = writeln!(
        out,
        "{p}for (int64_t _i = 0; _i < {}; ++_i) {{",
        exp(&ml.size)
    );
    for (gen, sym) in ml.gens.iter().zip(&stmt.lhs) {
        let _ = writeln!(out, "{}{{", pad(indent + 1));
        let body_indent = indent + 2;
        // Condition guards the whole generator body.
        if let Some(c) = gen.cond() {
            alias_param(c, body_indent, out);
            emit_block_stmts(c, body_indent, tys, out);
            let _ = writeln!(
                out,
                "{}if (!({})) continue;",
                pad(body_indent),
                exp(&c.result)
            );
        }
        if let Some(k) = gen.key() {
            alias_param(k, body_indent, out);
            emit_block_stmts(k, body_indent, tys, out);
        }
        let v = gen.value();
        alias_param(v, body_indent, out);
        emit_block_stmts(v, body_indent, tys, out);
        let value = exp(&v.result);
        match gen {
            Gen::Collect { .. } => {
                let _ = writeln!(out, "{}{sym}.push_back({value});", pad(body_indent));
            }
            Gen::Reduce { reducer, init, .. } => {
                if init.is_none() {
                    let _ = writeln!(
                        out,
                        "{}if (!{sym}_init) {{ {sym} = {value}; {sym}_init = true; continue; }}",
                        pad(body_indent)
                    );
                }
                emit_reduce_update(&format!("{sym}"), &value, reducer, body_indent, tys, out);
            }
            Gen::BucketCollect { key, .. } => {
                let _ = writeln!(
                    out,
                    "{}{sym}.values[{sym}.slot({})].push_back({value});",
                    pad(body_indent),
                    exp(&key.result)
                );
            }
            Gen::BucketReduce { key, reducer, .. } => {
                let _ = writeln!(
                    out,
                    "{}auto& _slot = {sym}.values[{sym}.slot({})];",
                    pad(body_indent),
                    exp(&key.result)
                );
                emit_reduce_update("_slot", &value, reducer, body_indent, tys, out);
            }
        }
        let _ = writeln!(out, "{}}}", pad(indent + 1));
    }
    let _ = writeln!(out, "{p}}}");
}

fn alias_param(b: &Block, indent: usize, out: &mut String) {
    if let Some(param) = b.params.first() {
        let _ = writeln!(out, "{}const int64_t {param} = _i;", pad(indent));
    }
}

fn emit_reduce_update(
    acc: &str,
    value: &str,
    reducer: &Block,
    indent: usize,
    tys: &TypeMap,
    out: &mut String,
) {
    let p = pad(indent);
    let _ = writeln!(out, "{p}{{  // reduction update");
    let _ = writeln!(out, "{p}  auto {} = {acc};", reducer.params[0]);
    let _ = writeln!(out, "{p}  auto {} = {value};", reducer.params[1]);
    emit_block_stmts(reducer, indent + 1, tys, out);
    let _ = writeln!(out, "{p}  {acc} = {};", exp(&reducer.result));
    let _ = writeln!(out, "{p}}}");
}

// ---------------------------------------------------------------------------
// Executable kernel emission (the native tier's `extern "C"` ABI)
// ---------------------------------------------------------------------------

/// Fixed prelude of every emitted kernel translation unit.
///
/// The helpers pin the interpreter's exact scalar semantics: integer
/// add/sub/mul wrap (via unsigned arithmetic — signed overflow is UB in
/// C++), float constants are reconstructed bit-exactly from their IEEE
/// pattern, and float→int casts saturate like Rust's `as`.
const KERNEL_PREAMBLE: &str = r#"#include <stdint.h>
#include <math.h>
#include <string.h>

typedef struct { const void* ptr; int64_t len; } DmllArr;
typedef struct { void* out; int64_t* keys; uint32_t* table; int64_t table_cap;
                 int64_t count; int64_t ival; double fval; uint8_t bval; } DmllGenOut;

static inline double dmll_bits(uint64_t b) { double d; memcpy(&d, &b, 8); return d; }
static inline int64_t dmll_addi(int64_t a, int64_t b) {
  return (int64_t)((uint64_t)a + (uint64_t)b);
}
static inline int64_t dmll_subi(int64_t a, int64_t b) {
  return (int64_t)((uint64_t)a - (uint64_t)b);
}
static inline int64_t dmll_muli(int64_t a, int64_t b) {
  return (int64_t)((uint64_t)a * (uint64_t)b);
}
static inline int64_t dmll_f2i(double x) {
  if (x != x) return 0;
  if (x >= 9223372036854775808.0) return INT64_MAX;
  if (x < -9223372036854775808.0) return INT64_MIN;
  return (int64_t)x;
}
"#;

/// Scalar/array classes tracked while emitting a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NTy {
    I,
    F,
    B,
    AI,
    AF,
    AB,
}

impl NTy {
    fn c_name(self) -> &'static str {
        match self {
            NTy::I => "int64_t",
            NTy::F => "double",
            NTy::B => "bool",
            _ => unreachable!("arrays are never declared as scalars"),
        }
    }

    fn is_scalar(self) -> bool {
        matches!(self, NTy::I | NTy::F | NTy::B)
    }
}

struct KernelCtx {
    tys: HashMap<Sym, NTy>,
    out: String,
}

impl KernelCtx {
    fn line(&mut self, indent: usize, s: &str) {
        let _ = writeln!(self.out, "{}{s}", pad(indent));
    }
}

/// Emit a complete translation unit whose single `extern "C"` entry runs
/// `ml`'s generators over a `[start, end)` index range against SoA
/// pointers (see [`crate::native::NativeEntryFn`] for the ABI).
///
/// `vars` lists the loop's free variables in binding order; per ABI class,
/// argument indices are assigned in that order, so callers must marshal
/// identically. The emitter certifies independently of the interpreter's
/// batch tier: anything outside the exactly-reproducible scalar subset
/// (nested loops, boxed values, transcendental math, untyped bucket keys…)
/// is declined with a typed reason.
///
/// # Errors
///
/// [`NativeIneligible`] naming the first construct outside the subset.
pub fn emit_kernel_entry(
    ml: &Multiloop,
    vars: &[(Sym, NativeVarTy)],
    entry: &str,
) -> Result<String, NativeIneligible> {
    let mut ctx = KernelCtx {
        tys: HashMap::new(),
        out: String::new(),
    };
    // Free-variable bindings, in ABI order per class.
    let mut binds = String::new();
    let (mut ii, mut fi, mut bi, mut ai) = (0usize, 0usize, 0usize, 0usize);
    for (sym, vty) in vars {
        match vty {
            NativeVarTy::I64 => {
                let _ = writeln!(binds, "  const int64_t {sym} = si[{ii}];");
                ii += 1;
                ctx.tys.insert(*sym, NTy::I);
            }
            NativeVarTy::F64 => {
                let _ = writeln!(binds, "  const double {sym} = sf[{fi}];");
                fi += 1;
                ctx.tys.insert(*sym, NTy::F);
            }
            NativeVarTy::Bool => {
                let _ = writeln!(binds, "  const bool {sym} = sb[{bi}] != 0;");
                bi += 1;
                ctx.tys.insert(*sym, NTy::B);
            }
            NativeVarTy::ArrI64 | NativeVarTy::ArrF64 | NativeVarTy::ArrBool => {
                let (cty, nty) = match vty {
                    NativeVarTy::ArrI64 => ("int64_t", NTy::AI),
                    NativeVarTy::ArrF64 => ("double", NTy::AF),
                    _ => ("uint8_t", NTy::AB),
                };
                let _ = writeln!(
                    binds,
                    "  const {cty}* {sym} = (const {cty}*)arrs[{ai}].ptr; \
                     const int64_t {sym}_len = arrs[{ai}].len;"
                );
                ai += 1;
                ctx.tys.insert(*sym, nty);
            }
        }
    }

    // Per-generator accumulator declarations and loop bodies. Classes are
    // inferred while emitting, so generator bodies are produced first into
    // scratch strings and stitched after their accumulator declarations.
    let mut decls = String::new();
    let mut bodies = String::new();
    let mut backs = String::new();
    for (gi, gen) in ml.gens.iter().enumerate() {
        emit_native_gen(&mut ctx, gi, gen, &mut decls, &mut bodies, &mut backs)?;
    }

    let mut out = String::from(KERNEL_PREAMBLE);
    out.push('\n');
    let _ = writeln!(
        out,
        "extern \"C\" int32_t {entry}(int64_t start, int64_t end, const int64_t* si,"
    );
    let _ = writeln!(
        out,
        "    const double* sf, const uint8_t* sb, const DmllArr* arrs, DmllGenOut* outs) {{"
    );
    out.push_str("  (void)si; (void)sf; (void)sb; (void)arrs;\n");
    out.push_str(&binds);
    out.push_str(&decls);
    out.push_str("  for (int64_t dmll_i = start; dmll_i < end; ++dmll_i) {\n");
    out.push_str(&bodies);
    out.push_str("  }\n");
    out.push_str(&backs);
    out.push_str("  return 0;\n}\n");
    Ok(out)
}

/// Emit one generator: accumulator declarations into `decls`, the
/// per-element body into `bodies`, the post-loop writeback into `backs`.
fn emit_native_gen(
    ctx: &mut KernelCtx,
    gi: usize,
    gen: &Gen,
    decls: &mut String,
    bodies: &mut String,
    backs: &mut String,
) -> Result<(), NativeIneligible> {
    let (cond, key, value, reducer, init) = match gen {
        Gen::Collect { cond, value } => (cond.as_ref(), None, value, None, None),
        Gen::Reduce {
            cond,
            value,
            reducer,
            init,
        } => (cond.as_ref(), None, value, Some(reducer), init.as_ref()),
        Gen::BucketCollect { .. } => return Err(NativeIneligible::BucketCollect),
        Gen::BucketReduce {
            cond,
            key,
            value,
            reducer,
            init: _,
        } => (cond.as_ref(), Some(key), value, Some(reducer), None),
    };

    // Body: condition guard, then key/value evaluation, then accumulation,
    // all inside the generator's own scope. Every index-taking block's
    // parameter aliases the loop counter; aliases are deduplicated because
    // fused generators may share parameter symbols across blocks.
    let save = std::mem::take(&mut ctx.out);
    let mut declared: HashSet<Sym> = HashSet::new();
    ctx.line(2, &format!("{{ // generator {gi}"));
    let mut indent = 3;
    if let Some(c) = cond {
        alias_index_param(ctx, c, indent, &mut declared);
        emit_native_block_stmts(ctx, c, indent)?;
        let (ce, ct) = native_exp(ctx, &c.result)?;
        if ct != NTy::B {
            return Err(NativeIneligible::UnsupportedOp("non-boolean condition"));
        }
        ctx.line(indent, &format!("if ({ce}) {{"));
        indent += 1;
    }
    let mut key_exp = None;
    if let Some(k) = key {
        alias_index_param(ctx, k, indent, &mut declared);
        emit_native_block_stmts(ctx, k, indent)?;
        let (ke, kt) = native_exp(ctx, &k.result)?;
        if kt != NTy::I {
            return Err(NativeIneligible::UntypedBucketKey);
        }
        key_exp = Some(ke);
    }
    alias_index_param(ctx, value, indent, &mut declared);
    emit_native_block_stmts(ctx, value, indent)?;
    let (ve, vt) = native_exp(ctx, &value.result)?;
    if !vt.is_scalar() {
        return Err(NativeIneligible::NonScalarValue);
    }
    let acc = format!("g{gi}_acc");
    let n = format!("g{gi}_n");
    match gen {
        Gen::Collect { .. } => {
            let store = if vt == NTy::B {
                format!("g{gi}_out[{n}] = (uint8_t)(({ve}) ? 1 : 0); {n} += 1;")
            } else {
                format!("g{gi}_out[{n}] = {ve}; {n} += 1;")
            };
            ctx.line(indent, &store);
        }
        Gen::Reduce { .. } => {
            let red = reducer.expect("reduce has reducer");
            if init.is_some() {
                // With an explicit identity the first accepted element
                // folds `r(init, x)`, which the seeded accumulator already
                // expresses: fold unconditionally.
                emit_native_reducer(ctx, red, &acc, &ve, vt, indent)?;
            } else {
                ctx.line(indent, &format!("if ({n} == 0) {{ {acc} = {ve}; }} else {{"));
                emit_native_reducer(ctx, red, &acc, &ve, vt, indent + 1)?;
                ctx.line(indent, "}");
            }
            ctx.line(indent, &format!("{n} += 1;"));
        }
        Gen::BucketReduce { .. } => {
            let red = reducer.expect("bucket reduce has reducer");
            let ke = key_exp.expect("bucket reduce has key");
            ctx.line(indent, &format!("const int64_t g{gi}_k = {ke};"));
            ctx.line(indent, &format!("int64_t g{gi}_slot; int g{gi}_new = 0;"));
            ctx.line(indent, "{");
            ctx.line(
                indent + 1,
                &format!("uint64_t h = (uint64_t)g{gi}_k * 0x9E3779B97F4A7C15ULL;"),
            );
            ctx.line(indent + 1, &format!("uint64_t p = (h >> 33) & g{gi}_mask;"));
            ctx.line(indent + 1, "for (;;) {");
            ctx.line(indent + 2, &format!("uint32_t e = g{gi}_tab[p];"));
            ctx.line(
                indent + 2,
                &format!(
                    "if (e == 0xFFFFFFFFu) {{ g{gi}_slot = {n}; g{gi}_tab[p] = \
                     (uint32_t)g{gi}_slot; g{gi}_keys[g{gi}_slot] = g{gi}_k; {n} += 1; \
                     g{gi}_new = 1; break; }}"
                ),
            );
            ctx.line(
                indent + 2,
                &format!("if (g{gi}_keys[e] == g{gi}_k) {{ g{gi}_slot = (int64_t)e; break; }}"),
            );
            ctx.line(indent + 2, &format!("p = (p + 1) & g{gi}_mask;"));
            ctx.line(indent + 1, "}");
            ctx.line(indent, "}");
            // First occurrence stores the raw value (the interpreter never
            // consults a BucketReduce identity); later ones fold.
            let slot = format!("g{gi}_vals[g{gi}_slot]");
            ctx.line(indent, &format!("if (g{gi}_new) {{ {slot} = {ve}; }} else {{"));
            emit_native_reducer(ctx, red, &slot, &ve, vt, indent + 1)?;
            ctx.line(indent, "}");
        }
        Gen::BucketCollect { .. } => unreachable!("declined above"),
    }
    if cond.is_some() {
        indent -= 1;
        ctx.line(indent, "}");
    }
    ctx.line(2, "}");
    let body = std::mem::replace(&mut ctx.out, save);
    bodies.push_str(&body);

    // Accumulator declarations and writeback, now that `vt` is known.
    match gen {
        Gen::Collect { .. } => {
            let cty = if vt == NTy::B { "uint8_t" } else { vt.c_name() };
            let _ = writeln!(
                decls,
                "  {cty}* g{gi}_out = ({cty}*)outs[{gi}].out; int64_t {n} = 0;"
            );
            let _ = writeln!(backs, "  outs[{gi}].count = {n};");
        }
        Gen::Reduce { init, .. } => {
            let seed = match init {
                Some(e) => native_exp(ctx, e)?.0,
                None => match vt {
                    NTy::I => "0".into(),
                    NTy::F => "0.0".into(),
                    _ => "false".into(),
                },
            };
            let _ = writeln!(decls, "  {} {acc} = {seed}; int64_t {n} = 0;", vt.c_name());
            let field = match vt {
                NTy::I => format!("outs[{gi}].ival = {acc};"),
                NTy::F => format!("outs[{gi}].fval = {acc};"),
                _ => format!("outs[{gi}].bval = {acc} ? 1 : 0;"),
            };
            let _ = writeln!(backs, "  {field} outs[{gi}].count = {n};");
        }
        Gen::BucketReduce { .. } => {
            let cty = if vt == NTy::B { "uint8_t" } else { vt.c_name() };
            let _ = writeln!(
                decls,
                "  int64_t* g{gi}_keys = outs[{gi}].keys; {cty}* g{gi}_vals = \
                 ({cty}*)outs[{gi}].out; uint32_t* g{gi}_tab = outs[{gi}].table; \
                 uint64_t g{gi}_mask = (uint64_t)(outs[{gi}].table_cap - 1); \
                 int64_t {n} = 0;"
            );
            let _ = writeln!(backs, "  outs[{gi}].count = {n};");
        }
        Gen::BucketCollect { .. } => unreachable!("declined above"),
    }
    Ok(())
}

/// Declare the block's index parameter as an alias of the loop counter,
/// once per generator even when blocks share the symbol.
fn alias_index_param(ctx: &mut KernelCtx, b: &Block, indent: usize, declared: &mut HashSet<Sym>) {
    if let Some(p) = b.params.first() {
        if declared.insert(*p) {
            ctx.tys.insert(*p, NTy::I);
            ctx.line(indent, &format!("const int64_t {p} = dmll_i;"));
        }
    }
}

/// Inline a two-parameter reducer block: `acc = r(acc, x)`, in its own
/// scope so parameter and statement symbols cannot collide with the
/// generator scope.
fn emit_native_reducer(
    ctx: &mut KernelCtx,
    red: &Block,
    acc: &str,
    x: &str,
    vt: NTy,
    indent: usize,
) -> Result<(), NativeIneligible> {
    if red.params.len() != 2 {
        return Err(NativeIneligible::UnsupportedOp("reducer arity"));
    }
    let (a, b) = (red.params[0], red.params[1]);
    ctx.tys.insert(a, vt);
    ctx.tys.insert(b, vt);
    ctx.line(indent, "{");
    ctx.line(indent + 1, &format!("const {} {a} = {acc};", vt.c_name()));
    ctx.line(indent + 1, &format!("const {} {b} = {x};", vt.c_name()));
    emit_native_block_stmts(ctx, red, indent + 1)?;
    let (re, rt) = native_exp(ctx, &red.result)?;
    if rt != vt {
        return Err(NativeIneligible::UnsupportedOp("reducer class mismatch"));
    }
    ctx.line(indent + 1, &format!("{acc} = {re};"));
    ctx.line(indent, "}");
    Ok(())
}

fn emit_native_block_stmts(
    ctx: &mut KernelCtx,
    b: &Block,
    indent: usize,
) -> Result<(), NativeIneligible> {
    for stmt in &b.stmts {
        emit_native_stmt(ctx, stmt, indent)?;
    }
    Ok(())
}

fn emit_native_stmt(
    ctx: &mut KernelCtx,
    stmt: &dmll_core::Stmt,
    indent: usize,
) -> Result<(), NativeIneligible> {
    let lhs = stmt.lhs[0];
    let (code, ty) = match &stmt.def {
        Def::Prim { op, args } => native_prim(ctx, *op, args)?,
        Def::Math { f, arg } => {
            let (a, at) = native_exp(ctx, arg)?;
            if at != NTy::F {
                return Err(NativeIneligible::UnsupportedOp("math on non-float"));
            }
            // Only correctly-rounded (sqrt) or exact (fabs/floor/ceil)
            // functions are bit-identical across libm and Rust; the
            // transcendentals are not guaranteed to match.
            let f = match f {
                MathFn::Sqrt => "sqrt",
                MathFn::Abs => "fabs",
                MathFn::Floor => "floor",
                MathFn::Ceil => "ceil",
                _ => return Err(NativeIneligible::TranscendentalMath),
            };
            (format!("{f}({a})"), NTy::F)
        }
        Def::Cast { to, value } => {
            let (v, vt) = native_exp(ctx, value)?;
            match (to, vt) {
                (Ty::I64, NTy::I) | (Ty::F64, NTy::F) => (v, vt),
                (Ty::I64, NTy::F) => (format!("dmll_f2i({v})"), NTy::I),
                (Ty::F64, NTy::I) => (format!("(double){v}"), NTy::F),
                _ => return Err(NativeIneligible::UnsupportedOp("cast")),
            }
        }
        Def::ArrayLen(e) => {
            let s = native_arr_sym(ctx, e)?;
            (format!("{s}_len"), NTy::I)
        }
        Def::ArrayRead { arr, index } => {
            let s = native_arr_sym(ctx, arr)?;
            let at = ctx.tys[&s];
            let (ix, ixt) = native_exp(ctx, index)?;
            if ixt != NTy::I {
                return Err(NativeIneligible::UnsupportedOp("non-integer index"));
            }
            ctx.line(
                indent,
                &format!("if ((uint64_t)({ix}) >= (uint64_t){s}_len) return 1;"),
            );
            match at {
                NTy::AI => (format!("{s}[{ix}]"), NTy::I),
                NTy::AF => (format!("{s}[{ix}]"), NTy::F),
                NTy::AB => (format!("({s}[{ix}] != 0)"), NTy::B),
                _ => return Err(NativeIneligible::UnsupportedOp("boxed array read")),
            }
        }
        Def::Loop(_) => return Err(NativeIneligible::NestedLoop),
        Def::TupleNew(_) | Def::TupleGet { .. } => {
            return Err(NativeIneligible::UnsupportedOp("tuple"))
        }
        Def::StructNew { .. } | Def::StructGet { .. } => {
            return Err(NativeIneligible::UnsupportedOp("struct"))
        }
        Def::Flatten(_) => return Err(NativeIneligible::UnsupportedOp("flatten")),
        Def::BucketValues(_) | Def::BucketKeys(_) | Def::BucketLen(_) | Def::BucketGet { .. } => {
            return Err(NativeIneligible::UnsupportedOp("bucket op"))
        }
        Def::Extern { .. } => return Err(NativeIneligible::UnsupportedOp("extern")),
    };
    ctx.tys.insert(lhs, ty);
    ctx.line(indent, &format!("const {} {lhs} = {code};", ty.c_name()));
    Ok(())
}

/// Lower one primitive application, inserting fault guards (`return 1`)
/// wherever the interpreter would raise an error or panic: division and
/// remainder by zero, `i64::MIN / -1`, and `-i64::MIN`.
fn native_prim(
    ctx: &mut KernelCtx,
    op: PrimOp,
    args: &[Exp],
) -> Result<(String, NTy), NativeIneligible> {
    let mut ops = Vec::with_capacity(args.len());
    for a in args {
        ops.push(native_exp(ctx, a)?);
    }
    let same = |i: usize, j: usize| ops[i].1 == ops[j].1;
    let bad = NativeIneligible::UnsupportedOp("operand classes");
    Ok(match op {
        PrimOp::Add | PrimOp::Sub | PrimOp::Mul => {
            if !same(0, 1) {
                return Err(bad);
            }
            match ops[0].1 {
                NTy::I => {
                    let f = match op {
                        PrimOp::Add => "dmll_addi",
                        PrimOp::Sub => "dmll_subi",
                        _ => "dmll_muli",
                    };
                    (format!("{f}({}, {})", ops[0].0, ops[1].0), NTy::I)
                }
                NTy::F => {
                    let c = match op {
                        PrimOp::Add => "+",
                        PrimOp::Sub => "-",
                        _ => "*",
                    };
                    (format!("({} {c} {})", ops[0].0, ops[1].0), NTy::F)
                }
                _ => return Err(bad),
            }
        }
        PrimOp::Div | PrimOp::Rem => {
            if !same(0, 1) {
                return Err(bad);
            }
            let c = if op == PrimOp::Div { "/" } else { "%" };
            match ops[0].1 {
                NTy::I => {
                    // Division by zero is the interpreter's error; MIN / -1
                    // is its (overflow) panic. Both defer to the fallback.
                    ctx.line(
                        0,
                        &format!(
                            "  if (({b}) == 0) return 1; if (({a}) == INT64_MIN && ({b}) == \
                             -1) return 1;",
                            a = ops[0].0,
                            b = ops[1].0
                        ),
                    );
                    (format!("(({}) {c} ({}))", ops[0].0, ops[1].0), NTy::I)
                }
                NTy::F if op == PrimOp::Div => {
                    (format!("(({}) / ({}))", ops[0].0, ops[1].0), NTy::F)
                }
                _ => return Err(bad),
            }
        }
        PrimOp::Min | PrimOp::Max => {
            if !same(0, 1) || ops[0].1 != NTy::I {
                // Float min/max tie-breaking on signed zeros is not pinned
                // down identically by Rust and libm; decline.
                return Err(NativeIneligible::UnsupportedOp("non-integer min/max"));
            }
            let c = if op == PrimOp::Min { "<" } else { ">" };
            (
                format!(
                    "((({a}) {c} ({b})) ? ({a}) : ({b}))",
                    a = ops[0].0,
                    b = ops[1].0
                ),
                NTy::I,
            )
        }
        PrimOp::Neg => match ops[0].1 {
            NTy::I => {
                ctx.line(0, &format!("  if (({}) == INT64_MIN) return 1;", ops[0].0));
                (format!("(-({}))", ops[0].0), NTy::I)
            }
            NTy::F => (format!("(-({}))", ops[0].0), NTy::F),
            _ => return Err(bad),
        },
        PrimOp::Eq | PrimOp::Ne => {
            if !same(0, 1) || !ops[0].1.is_scalar() {
                return Err(bad);
            }
            let c = if op == PrimOp::Eq { "==" } else { "!=" };
            (format!("(({}) {c} ({}))", ops[0].0, ops[1].0), NTy::B)
        }
        PrimOp::Lt | PrimOp::Le | PrimOp::Gt | PrimOp::Ge => {
            if !same(0, 1) || !matches!(ops[0].1, NTy::I | NTy::F) {
                return Err(bad);
            }
            let c = match op {
                PrimOp::Lt => "<",
                PrimOp::Le => "<=",
                PrimOp::Gt => ">",
                _ => ">=",
            };
            (format!("(({}) {c} ({}))", ops[0].0, ops[1].0), NTy::B)
        }
        PrimOp::And | PrimOp::Or => {
            if ops[0].1 != NTy::B || ops[1].1 != NTy::B {
                return Err(bad);
            }
            let c = if op == PrimOp::And { "&&" } else { "||" };
            (format!("(({}) {c} ({}))", ops[0].0, ops[1].0), NTy::B)
        }
        PrimOp::Not => {
            if ops[0].1 != NTy::B {
                return Err(bad);
            }
            (format!("(!({}))", ops[0].0), NTy::B)
        }
        PrimOp::Mux => {
            if ops[0].1 != NTy::B || !same(1, 2) || !ops[1].1.is_scalar() {
                return Err(bad);
            }
            (
                format!("(({}) ? ({}) : ({}))", ops[0].0, ops[1].0, ops[2].0),
                ops[1].1,
            )
        }
    })
}

fn native_exp(ctx: &KernelCtx, e: &Exp) -> Result<(String, NTy), NativeIneligible> {
    match e {
        Exp::Sym(s) => match ctx.tys.get(s) {
            Some(t) if t.is_scalar() => Ok((s.to_string(), *t)),
            Some(_) => Err(NativeIneligible::NonScalarValue),
            None => Err(NativeIneligible::UnsupportedOp("unbound symbol")),
        },
        Exp::Const(Const::I64(v)) => {
            let s = if *v == i64::MIN {
                "INT64_MIN".to_string()
            } else {
                format!("{v}LL")
            };
            Ok((s, NTy::I))
        }
        // Bit-exact reconstruction: decimal literals cannot be trusted to
        // round-trip every IEEE pattern through the C++ lexer.
        Exp::Const(Const::F64(v)) => Ok((format!("dmll_bits(0x{:016X}ULL)", v.to_bits()), NTy::F)),
        Exp::Const(Const::Bool(v)) => Ok((if *v { "true" } else { "false" }.into(), NTy::B)),
        Exp::Const(Const::Str(_)) | Exp::Const(Const::Unit) => {
            Err(NativeIneligible::UnsupportedOp("string or unit constant"))
        }
    }
}

fn native_arr_sym(ctx: &KernelCtx, e: &Exp) -> Result<Sym, NativeIneligible> {
    let Exp::Sym(s) = e else {
        return Err(NativeIneligible::UnsupportedOp("constant array"));
    };
    match ctx.tys.get(s) {
        Some(NTy::AI | NTy::AF | NTy::AB) => Ok(*s),
        _ => Err(NativeIneligible::UnsupportedFreeVar),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::LayoutHint;
    use dmll_frontend::Stage;

    #[test]
    fn map_emits_openmp_loop() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let m = st.map(&x, |st, e| st.mul(e, e));
        let p = st.finish(&m);
        let code = emit_cpp(&p);
        assert!(code.contains("#pragma omp parallel for"), "{code}");
        assert!(code.contains("for (int64_t _i = 0;"), "{code}");
        assert!(code.contains(".push_back("), "{code}");
        assert!(code.contains("Coll<double>"), "{code}");
    }

    #[test]
    fn filter_guards_append_with_condition() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let f = st.filter(&x, |st, e| {
            let z = st.lit_f(0.0);
            st.gt(e, &z)
        });
        let p = st.finish(&f);
        let code = emit_cpp(&p);
        assert!(code.contains("if (!("), "condition guard: {code}");
    }

    #[test]
    fn group_by_uses_hash_buckets() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let g = st.group_by(&x, |st, e| {
            let k = st.lit_i(5);
            st.rem(e, &k)
        });
        let keys = st.bucket_keys(&g);
        let p = st.finish(&keys);
        let code = emit_cpp(&p);
        assert!(code.contains("std::unordered_map"), "{code}");
        assert!(code.contains(".slot("), "{code}");
        assert!(code.contains("Buckets<int64_t, Coll<int64_t>>"), "{code}");
    }

    #[test]
    fn reduce_without_identity_uses_first_element() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let m = st.reduce_elems(&x, |st, a, b| st.max(a, b));
        let p = st.finish(&m);
        let code = emit_cpp(&p);
        assert!(code.contains("_init = false"), "{code}");
        assert!(code.contains("std::max("), "{code}");
    }

    #[test]
    fn matrix_struct_emitted() {
        let mut st = Stage::new();
        let m = st.input_matrix("m", LayoutHint::Partitioned);
        let r = m.rows(&mut st);
        let p = st.finish(&r);
        let code = emit_cpp(&p);
        assert!(code.contains("struct MatrixF64 {"), "{code}");
        assert!(code.contains("Coll<double> data;"), "{code}");
    }

    /// Extract the single top-level multiloop from a staged program.
    fn top_loop(p: &Program) -> Multiloop {
        p.body
            .stmts
            .iter()
            .find_map(|s| match &s.def {
                Def::Loop(ml) => Some(ml.clone()),
                _ => None,
            })
            .expect("program has a loop")
    }

    #[test]
    fn kernel_entry_emits_extern_c_over_soa_pointers() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let a = st.map(&x, |st, e| st.mul(e, e));
        let s = st.sum(&a);
        let p = st.finish(&s);
        // The fused shape: find whichever loop the stage produced first and
        // bind its free array var.
        let ml = top_loop(&p);
        let arr_sym = p.inputs[0].sym;
        let code =
            emit_kernel_entry(&ml, &[(arr_sym, NativeVarTy::ArrF64)], "dmll_k").expect("eligible");
        assert!(code.contains("extern \"C\" int32_t dmll_k"), "{code}");
        assert!(code.contains("const double*"), "{code}");
        assert!(code.contains("return 1;"), "bounds guard: {code}");
    }

    #[test]
    fn kernel_entry_declines_nested_loops_and_transcendentals() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let e = st.map(&x, |st, v| st.math(dmll_core::MathFn::Exp, v));
        let p = st.finish(&e);
        let ml = top_loop(&p);
        let err = emit_kernel_entry(&ml, &[(p.inputs[0].sym, NativeVarTy::ArrF64)], "k")
            .expect_err("exp declines");
        assert_eq!(err.key(), "transcendental_math");
    }

    #[test]
    fn emitted_kernel_compiles_and_matches_a_hand_rollup() {
        use crate::native::{compile_and_load, find_compiler, NativeArr, NativeGenOut};
        if find_compiler().is_none() {
            return;
        }
        // sum(x * x) over a f64 column: one Reduce generator with init 0.0.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let a = st.map(&x, |st, e| st.mul(e, e));
        let s = st.sum(&a);
        let p = st.finish(&s);
        // Grab the *first* loop (the map); run it and check collect output.
        let ml = top_loop(&p);
        let arr_sym = p.inputs[0].sym;
        let code =
            emit_kernel_entry(&ml, &[(arr_sym, NativeVarTy::ArrF64)], "dmll_k").expect("eligible");
        let lib = compile_and_load(&code, "dmll_k").expect("compiles");
        let data: Vec<f64> = vec![1.5, -2.0, 3.25, 0.0];
        let arrs = [NativeArr {
            ptr: data.as_ptr().cast(),
            len: data.len() as i64,
        }];
        let mut out_buf: Vec<f64> = Vec::with_capacity(data.len());
        let mut outs = vec![NativeGenOut {
            out: out_buf.as_mut_ptr().cast(),
            keys: std::ptr::null_mut(),
            table: std::ptr::null_mut(),
            table_cap: 0,
            count: 0,
            ival: 0,
            fval: 0.0,
            bval: 0,
        }];
        let rc = unsafe {
            (lib.entry())(
                0,
                data.len() as i64,
                std::ptr::null(),
                std::ptr::null(),
                std::ptr::null(),
                arrs.as_ptr(),
                outs.as_mut_ptr(),
            )
        };
        assert_eq!(rc, 0);
        assert_eq!(outs[0].count, 4);
        unsafe { out_buf.set_len(4) };
        assert_eq!(out_buf, vec![2.25, 4.0, 10.5625, 0.0]);
    }

    #[test]
    fn inputs_carry_layout_annotations() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let s = st.sum(&x);
        let p = st.finish(&s);
        let code = emit_cpp(&p);
        assert!(code.contains("@Partitioned"), "{code}");
        assert!(code.contains("return x"), "{code}");
    }
}
