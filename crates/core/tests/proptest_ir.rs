//! Property tests over the IR utilities: free/bound variable computation,
//! use counting, and rebinding.

use dmll_core::rebind::Rebinder;
use dmll_core::visit::{bound_syms, count_uses, free_syms};
use dmll_core::*;
use proptest::prelude::*;
use std::collections::HashMap;

/// A recipe for one statement in a random straight-line block over f64s.
#[derive(Clone, Debug)]
enum StmtRecipe {
    /// Binary op over two previous values (indices are taken modulo the
    /// number of available values).
    Bin(u8, usize, usize),
    /// Math function of a previous value.
    Math(u8, usize),
    /// A nested collect loop whose body multiplies a previous value by the
    /// loop index.
    Nested(usize),
}

fn recipe_strategy() -> impl Strategy<Value = StmtRecipe> {
    prop_oneof![
        (0u8..4, any::<usize>(), any::<usize>()).prop_map(|(o, a, b)| StmtRecipe::Bin(o, a, b)),
        (0u8..3, any::<usize>()).prop_map(|(f, a)| StmtRecipe::Math(f, a)),
        any::<usize>().prop_map(StmtRecipe::Nested),
    ]
}

/// Build a random (but well-formed) program from recipes. Returns the
/// program; its body has one input and a chain of statements.
fn build(recipes: &[StmtRecipe]) -> Program {
    let mut p = Program::new();
    let x = p.add_input("x", Ty::F64, LayoutHint::Local);
    let mut avail: Vec<Sym> = vec![x];
    let mut stmts = Vec::new();
    for r in recipes {
        match r {
            StmtRecipe::Bin(op, a, b) => {
                let ops = [PrimOp::Add, PrimOp::Sub, PrimOp::Mul, PrimOp::Max];
                let s = p.fresh();
                stmts.push(Stmt::one(
                    s,
                    Def::prim2(
                        ops[*op as usize % ops.len()],
                        avail[a % avail.len()],
                        avail[b % avail.len()],
                    ),
                ));
                avail.push(s);
            }
            StmtRecipe::Math(f, a) => {
                let fns = [MathFn::Abs, MathFn::Tanh, MathFn::Cos];
                let s = p.fresh();
                stmts.push(Stmt::one(
                    s,
                    Def::Math {
                        f: fns[*f as usize % fns.len()],
                        arg: Exp::Sym(avail[a % avail.len()]),
                    },
                ));
                avail.push(s);
            }
            StmtRecipe::Nested(a) => {
                let i = p.fresh();
                let cast = p.fresh();
                let prod = p.fresh();
                let captured = avail[a % avail.len()];
                let value = Block {
                    params: vec![i],
                    stmts: vec![
                        Stmt::one(
                            cast,
                            Def::Cast {
                                to: Ty::F64,
                                value: Exp::Sym(i),
                            },
                        ),
                        Stmt::one(prod, Def::prim2(PrimOp::Mul, cast, captured)),
                    ],
                    result: Exp::Sym(prod),
                };
                let out = p.fresh();
                stmts.push(Stmt::one(
                    out,
                    Def::Loop(Multiloop::single(
                        Exp::i64(4),
                        Gen::Collect { cond: None, value },
                    )),
                ));
                // Loops produce arrays; keep chaining on scalars only, but
                // record a use through len to keep the loop live.
                let n = p.fresh();
                stmts.push(Stmt::one(n, Def::ArrayLen(Exp::Sym(out))));
                let nf = p.fresh();
                stmts.push(Stmt::one(
                    nf,
                    Def::Cast {
                        to: Ty::F64,
                        value: Exp::Sym(n),
                    },
                ));
                avail.push(nf);
            }
        }
    }
    let result = *avail.last().expect("at least the input");
    p.body = Block {
        params: vec![],
        stmts,
        result: Exp::Sym(result),
    };
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random programs type-check, and their free variables are exactly the
    /// inputs they use.
    #[test]
    fn generated_programs_are_well_formed(recipes in prop::collection::vec(recipe_strategy(), 1..12)) {
        let p = build(&recipes);
        prop_assert!(typecheck::infer(&p).is_ok());
        let free = free_syms(&p.body);
        for s in &free {
            prop_assert!(p.input_by_sym(*s).is_some(), "free {s} must be an input");
        }
        // Free and bound are disjoint.
        let bound = bound_syms(&p.body);
        prop_assert!(free.is_disjoint(&bound));
    }

    /// Rebinding allocates only fresh symbols, preserves free variables,
    /// and preserves structure (statement count, loop count).
    #[test]
    fn rebind_preserves_shape(recipes in prop::collection::vec(recipe_strategy(), 1..12)) {
        let mut p = build(&recipes);
        let body = p.body.clone();
        let watermark = p.next_sym_id();
        let rebound = Rebinder::new(&mut p).rebind_block(&body);
        for s in bound_syms(&rebound) {
            prop_assert!(s.0 >= watermark, "{s} is not fresh");
        }
        prop_assert_eq!(free_syms(&rebound), free_syms(&body));
        prop_assert_eq!(rebound.stmts.len(), body.stmts.len());
        let loops = |b: &Block| {
            let mut n = 0;
            dmll_core::visit::for_each_def_deep(b, &mut |d| {
                if matches!(d, Def::Loop(_)) {
                    n += 1;
                }
            });
            n
        };
        prop_assert_eq!(loops(&rebound), loops(&body));
    }

    /// Use counts equal the number of symbol occurrences: every counted
    /// symbol is either bound or free, and binders are not uses.
    #[test]
    fn use_counts_are_consistent(recipes in prop::collection::vec(recipe_strategy(), 1..12)) {
        let p = build(&recipes);
        let mut counts = HashMap::new();
        count_uses(&p.body, &mut counts);
        let bound = bound_syms(&p.body);
        let free = free_syms(&p.body);
        for s in counts.keys() {
            prop_assert!(bound.contains(s) || free.contains(s));
        }
        // The result is a use.
        if let Exp::Sym(r) = &p.body.result {
            prop_assert!(counts.get(r).copied().unwrap_or(0) >= 1);
        }
    }

    /// Two consecutive rebinds produce disjoint binder sets (global symbol
    /// uniqueness is preserved under transformation).
    #[test]
    fn double_rebind_disjoint(recipes in prop::collection::vec(recipe_strategy(), 1..8)) {
        let mut p = build(&recipes);
        let body = p.body.clone();
        let a = Rebinder::new(&mut p).rebind_block(&body);
        let b = Rebinder::new(&mut p).rebind_block(&body);
        prop_assert!(bound_syms(&a).is_disjoint(&bound_syms(&b)));
    }
}
