//! Symbols, constants and atomic expressions.

use std::fmt;
use std::sync::Arc;

/// A globally unique symbol naming the result of a statement or a block
/// parameter.
///
/// Symbols are allocated from [`crate::Program::fresh`] and are never reused
/// within a program, which lets analyses key side tables by `Sym` without
/// worrying about scoping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A compile-time constant.
///
/// `F64` constants compare and hash by bit pattern so that [`Const`] can be
/// used as a key during common-subexpression elimination.
#[derive(Clone, Debug)]
pub enum Const {
    /// 64-bit signed integer (also used for loop indices and sizes).
    I64(i64),
    /// 64-bit IEEE float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Interned string constant.
    Str(Arc<str>),
    /// The unit value.
    Unit,
}

impl Const {
    /// The integer value, if this constant is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Const::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean value, if this constant is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Const::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The float value, if this constant is an `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Const::F64(v) => Some(*v),
            _ => None,
        }
    }
}

impl PartialEq for Const {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Const::I64(a), Const::I64(b)) => a == b,
            (Const::F64(a), Const::F64(b)) => a.to_bits() == b.to_bits(),
            (Const::Bool(a), Const::Bool(b)) => a == b,
            (Const::Str(a), Const::Str(b)) => a == b,
            (Const::Unit, Const::Unit) => true,
            _ => false,
        }
    }
}

impl Eq for Const {}

impl std::hash::Hash for Const {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Const::I64(v) => v.hash(state),
            Const::F64(v) => v.to_bits().hash(state),
            Const::Bool(v) => v.hash(state),
            Const::Str(v) => v.hash(state),
            Const::Unit => {}
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::I64(v) => write!(f, "{v}"),
            Const::F64(v) => write!(f, "{v:?}"),
            Const::Bool(v) => write!(f, "{v}"),
            Const::Str(v) => write!(f, "{v:?}"),
            Const::Unit => write!(f, "()"),
        }
    }
}

impl From<i64> for Const {
    fn from(v: i64) -> Self {
        Const::I64(v)
    }
}

impl From<f64> for Const {
    fn from(v: f64) -> Self {
        Const::F64(v)
    }
}

impl From<bool> for Const {
    fn from(v: bool) -> Self {
        Const::Bool(v)
    }
}

/// An atomic expression: either a constant or a reference to a symbol.
///
/// All structured computation lives in [`crate::Def`]s; `Exp` is what
/// statement operands are made of.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Exp {
    /// A literal constant.
    Const(Const),
    /// A reference to a previously bound symbol.
    Sym(Sym),
}

impl Exp {
    /// Integer literal shorthand.
    pub fn i64(v: i64) -> Exp {
        Exp::Const(Const::I64(v))
    }

    /// Float literal shorthand.
    pub fn f64(v: f64) -> Exp {
        Exp::Const(Const::F64(v))
    }

    /// Boolean literal shorthand.
    pub fn bool(v: bool) -> Exp {
        Exp::Const(Const::Bool(v))
    }

    /// The unit literal.
    pub fn unit() -> Exp {
        Exp::Const(Const::Unit)
    }

    /// The referenced symbol, if any.
    pub fn as_sym(&self) -> Option<Sym> {
        match self {
            Exp::Sym(s) => Some(*s),
            Exp::Const(_) => None,
        }
    }

    /// The constant, if this expression is a literal.
    pub fn as_const(&self) -> Option<&Const> {
        match self {
            Exp::Const(c) => Some(c),
            Exp::Sym(_) => None,
        }
    }

    /// True if this expression is the literal `true` (the "always" condition
    /// written `_` in the paper).
    pub fn is_true(&self) -> bool {
        matches!(self, Exp::Const(Const::Bool(true)))
    }
}

impl From<Sym> for Exp {
    fn from(s: Sym) -> Self {
        Exp::Sym(s)
    }
}

impl From<Const> for Exp {
    fn from(c: Const) -> Self {
        Exp::Const(c)
    }
}

impl fmt::Display for Exp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exp::Const(c) => write!(f, "{c}"),
            Exp::Sym(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sym_display() {
        assert_eq!(Sym(7).to_string(), "x7");
        assert_eq!(format!("{:?}", Sym(7)), "x7");
    }

    #[test]
    fn const_eq_by_bits() {
        assert_eq!(Const::F64(1.5), Const::F64(1.5));
        assert_ne!(Const::F64(0.0), Const::F64(-0.0));
        assert_eq!(Const::F64(f64::NAN), Const::F64(f64::NAN));
        assert_ne!(Const::I64(1), Const::F64(1.0));
    }

    #[test]
    fn const_hash_consistent_with_eq() {
        let mut set = HashSet::new();
        set.insert(Const::F64(2.0));
        assert!(set.contains(&Const::F64(2.0)));
        assert!(!set.contains(&Const::F64(-2.0)));
    }

    #[test]
    fn exp_helpers() {
        assert!(Exp::bool(true).is_true());
        assert!(!Exp::bool(false).is_true());
        assert_eq!(Exp::i64(3).as_const(), Some(&Const::I64(3)));
        assert_eq!(Exp::Sym(Sym(1)).as_sym(), Some(Sym(1)));
        assert_eq!(Exp::i64(3).as_sym(), None);
    }

    #[test]
    fn const_accessors() {
        assert_eq!(Const::I64(4).as_i64(), Some(4));
        assert_eq!(Const::Bool(true).as_bool(), Some(true));
        assert_eq!(Const::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(Const::I64(4).as_bool(), None);
    }

    #[test]
    fn exp_display() {
        assert_eq!(Exp::i64(42).to_string(), "42");
        assert_eq!(Exp::f64(1.0).to_string(), "1.0");
        assert_eq!(Exp::Sym(Sym(3)).to_string(), "x3");
        assert_eq!(Exp::unit().to_string(), "()");
    }
}
