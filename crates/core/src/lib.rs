#![warn(missing_docs)]

//! # DMLL core intermediate representation
//!
//! This crate defines the **Distributed Multiloop Language** (DMLL), the
//! intermediate language introduced by Brown et al. in *"Have Abstraction and
//! Eat Performance, Too: Optimized Heterogeneous Computing with Parallel
//! Patterns"* (CGO 2016).
//!
//! A DMLL program is a structured, scoped IR. Ordinary computation is a list
//! of single-assignment statements inside [`Block`]s; data parallelism is
//! expressed by the *multiloop* ([`Multiloop`]): a single-dimensional
//! traversal of a fixed-size integer range carrying one or more *generators*
//! ([`Gen`]) that accumulate loop outputs:
//!
//! * [`Gen::Collect`] — accumulates every produced value into a collection
//!   (generalizes `map`, `zipWith`, `filter`, `flatMap`),
//! * [`Gen::Reduce`] — on-the-fly reduction with an associative operator,
//! * [`Gen::BucketCollect`] — collects values into buckets indexed by a key
//!   function (`groupBy`),
//! * [`Gen::BucketReduce`] — reduces values per bucket as they arrive.
//!
//! Each generator keeps its *condition*, *key*, *value* and *reduction*
//! functions as **separate** blocks rather than one fused body. Keeping the
//! components separated is what lets downstream passes recompose them
//! differently per hardware target (e.g. a buffer-append collect on CPU
//! versus a two-phase size-then-write collect on GPU).
//!
//! ## Example
//!
//! Building `x.map(e => e * 2.0)` by hand (the `dmll-frontend` crate offers
//! a far more convenient staging API):
//!
//! ```
//! use dmll_core::*;
//!
//! let mut p = Program::new();
//! let x = p.add_input("x", Ty::Arr(Box::new(Ty::F64)), LayoutHint::Local);
//!
//! // Collect over x's size: i => x(i) * 2.0
//! let i = p.fresh();
//! let xi = p.fresh();
//! let doubled = p.fresh();
//! let value = Block {
//!     params: vec![i],
//!     stmts: vec![
//!         Stmt::one(xi, Def::ArrayRead { arr: Exp::Sym(x), index: Exp::Sym(i) }),
//!         Stmt::one(doubled, Def::Prim { op: PrimOp::Mul,
//!             args: vec![Exp::Sym(xi), Exp::Const(Const::F64(2.0))] }),
//!     ],
//!     result: Exp::Sym(doubled),
//! };
//! let len = p.fresh();
//! let mapped = p.fresh();
//! let body_stmts = vec![
//!     Stmt::one(len, Def::ArrayLen(Exp::Sym(x))),
//!     Stmt::one(mapped, Def::Loop(Multiloop {
//!         size: Exp::Sym(len),
//!         gens: vec![Gen::Collect { cond: None, value }],
//!     })),
//! ];
//! p.body = Block { params: vec![], stmts: body_stmts, result: Exp::Sym(mapped) };
//! assert!(typecheck::infer(&p).is_ok());
//! ```

pub mod block;
pub mod def;
pub mod error;
pub mod exp;
pub mod gen;
pub mod printer;
pub mod program;
pub mod rebind;
pub mod ty;
pub mod typecheck;
pub mod visit;

pub use block::Block;
pub use def::{Def, MathFn, PrimOp, Stmt};
pub use error::{CoreError, CoreResult};
pub use exp::{Const, Exp, Sym};
pub use gen::{Gen, Multiloop};
pub use program::{Input, LayoutHint, Program};
pub use ty::{StructTy, Ty};
