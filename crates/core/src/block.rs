//! Scoped statement blocks.

use crate::def::{Def, Stmt};
use crate::exp::{Exp, Sym};

/// A lexically scoped sequence of single-assignment statements ending in a
/// result expression.
///
/// Blocks are the bodies of generator functions (condition, key, value,
/// reduction) and of the program itself. A block may refer to symbols bound
/// in enclosing scopes; those are its *free variables*
/// (see [`crate::visit::free_syms`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Parameters bound on entry (e.g. the loop index `i`, or the `(a, b)`
    /// pair of a reduction function).
    pub params: Vec<Sym>,
    /// Statements in dependency order.
    pub stmts: Vec<Stmt>,
    /// The block's value.
    pub result: Exp,
}

impl Block {
    /// A block with no statements that simply returns `result`.
    pub fn ret(params: Vec<Sym>, result: impl Into<Exp>) -> Block {
        Block {
            params,
            stmts: Vec::new(),
            result: result.into(),
        }
    }

    /// A parameterless block returning the constant `true` — the "always"
    /// condition written `_` in the paper.
    pub fn always(param: Sym) -> Block {
        Block::ret(vec![param], Exp::bool(true))
    }

    /// Append a statement binding a fresh symbol and return that symbol.
    pub fn push(&mut self, sym: Sym, def: Def) -> Sym {
        self.stmts.push(Stmt::one(sym, def));
        sym
    }

    /// Find the statement defining `sym`, if it is bound in this block
    /// (not searching nested blocks).
    pub fn stmt_defining(&self, sym: Sym) -> Option<&Stmt> {
        self.stmts.iter().find(|s| s.lhs.contains(&sym))
    }

    /// Index of the statement defining `sym` at this block's top level.
    pub fn stmt_index_defining(&self, sym: Sym) -> Option<usize> {
        self.stmts.iter().position(|s| s.lhs.contains(&sym))
    }

    /// True when the block is exactly `params => true`.
    pub fn is_always_true(&self) -> bool {
        self.stmts.is_empty() && self.result.is_true()
    }

    /// True when the block immediately returns one of its parameters
    /// (an identity function).
    pub fn is_identity(&self) -> bool {
        self.stmts.is_empty()
            && self
                .result
                .as_sym()
                .is_some_and(|s| self.params.contains(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::PrimOp;

    #[test]
    fn always_true() {
        let b = Block::always(Sym(0));
        assert!(b.is_always_true());
        assert_eq!(b.params, vec![Sym(0)]);
    }

    #[test]
    fn identity_detection() {
        let b = Block::ret(vec![Sym(1)], Sym(1));
        assert!(b.is_identity());
        let b2 = Block::ret(vec![Sym(1)], Sym(2));
        assert!(!b2.is_identity());
        let b3 = Block::ret(vec![Sym(1)], Exp::i64(0));
        assert!(!b3.is_identity());
    }

    #[test]
    fn stmt_lookup() {
        let mut b = Block::ret(vec![Sym(0)], Sym(2));
        b.push(Sym(2), Def::prim2(PrimOp::Add, Sym(0), Exp::i64(1)));
        assert!(b.stmt_defining(Sym(2)).is_some());
        assert_eq!(b.stmt_index_defining(Sym(2)), Some(0));
        assert!(b.stmt_defining(Sym(9)).is_none());
    }
}
