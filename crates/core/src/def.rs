//! Statement right-hand sides: the DMLL operation set.

use crate::exp::{Exp, Sym};
use crate::gen::Multiloop;
use crate::ty::{StructTy, Ty};
use std::fmt;

/// Primitive scalar (and polymorphic) operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// Addition (`I64`/`F64`).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder (`I64`).
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic negation.
    Neg,
    /// Equality (any scalar or string type).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
    /// Logical not.
    Not,
    /// Polymorphic select: `mux(c, a, b)` is `a` when `c`, else `b`.
    ///
    /// Both branches are evaluated; DMLL multiloop bodies are pure so this is
    /// only a (potential) efficiency concern, never a semantic one.
    Mux,
}

impl PrimOp {
    /// Number of operands the operator expects.
    pub fn arity(self) -> usize {
        match self {
            PrimOp::Neg | PrimOp::Not => 1,
            PrimOp::Mux => 3,
            _ => 2,
        }
    }

    /// True if the operator returns `Bool` regardless of operand type.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            PrimOp::Eq | PrimOp::Ne | PrimOp::Lt | PrimOp::Le | PrimOp::Gt | PrimOp::Ge
        )
    }

    /// True for operators that are associative and commutative when applied
    /// to exact types — used to recognize reduction operators.
    pub fn is_assoc_comm(self) -> bool {
        matches!(
            self,
            PrimOp::Add | PrimOp::Mul | PrimOp::Min | PrimOp::Max | PrimOp::And | PrimOp::Or
        )
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
            PrimOp::Rem => "%",
            PrimOp::Min => "min",
            PrimOp::Max => "max",
            PrimOp::Neg => "neg",
            PrimOp::Eq => "==",
            PrimOp::Ne => "!=",
            PrimOp::Lt => "<",
            PrimOp::Le => "<=",
            PrimOp::Gt => ">",
            PrimOp::Ge => ">=",
            PrimOp::And => "&&",
            PrimOp::Or => "||",
            PrimOp::Not => "!",
            PrimOp::Mux => "mux",
        };
        write!(f, "{s}")
    }
}

/// Unary math functions over `F64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MathFn {
    /// `e^x`.
    Exp,
    /// Natural logarithm.
    Log,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Hyperbolic tangent.
    Tanh,
    /// Round toward negative infinity.
    Floor,
    /// Round toward positive infinity.
    Ceil,
}

impl fmt::Display for MathFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MathFn::Exp => "exp",
            MathFn::Log => "log",
            MathFn::Sqrt => "sqrt",
            MathFn::Abs => "abs",
            MathFn::Sin => "sin",
            MathFn::Cos => "cos",
            MathFn::Tanh => "tanh",
            MathFn::Floor => "floor",
            MathFn::Ceil => "ceil",
        };
        write!(f, "{s}")
    }
}

/// The right-hand side of a statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Def {
    /// Primitive operator application.
    Prim {
        /// The operator.
        op: PrimOp,
        /// Operands (`op.arity()` of them).
        args: Vec<Exp>,
    },
    /// Unary math function over `F64`.
    Math {
        /// The function.
        f: MathFn,
        /// The argument.
        arg: Exp,
    },
    /// Numeric conversion.
    Cast {
        /// Target type (`I64` or `F64`).
        to: Ty,
        /// The value to convert.
        value: Exp,
    },
    /// Length of a collection.
    ArrayLen(Exp),
    /// Random-access read: `arr(index)`.
    ArrayRead {
        /// The collection being read.
        arr: Exp,
        /// The index.
        index: Exp,
    },
    /// Tuple construction.
    TupleNew(Vec<Exp>),
    /// Tuple projection.
    TupleGet {
        /// The tuple.
        tuple: Exp,
        /// Zero-based component index.
        index: usize,
    },
    /// Record construction; `fields` are in `ty.fields` order.
    StructNew {
        /// The struct type being constructed.
        ty: StructTy,
        /// Field values, in declaration order.
        fields: Vec<Exp>,
    },
    /// Record field read.
    StructGet {
        /// The record.
        obj: Exp,
        /// Field name.
        field: String,
    },
    /// Concatenate a collection of collections (`flatMap` = map + flatten;
    /// Fig. 2's collect "may produce zero or more values at each
    /// iteration").
    Flatten(Exp),
    /// Dense per-bucket values of a bucket-generator result, in bucket
    /// (first-seen key) order.
    BucketValues(Exp),
    /// The key of each bucket, aligned with [`Def::BucketValues`].
    BucketKeys(Exp),
    /// Number of buckets.
    BucketLen(Exp),
    /// Lookup of the bucket with the given key; yields `default` when the
    /// key never occurred (e.g. an empty cluster in k-means).
    BucketGet {
        /// The bucket collection.
        buckets: Exp,
        /// Key to look up.
        key: Exp,
        /// Value produced for missing keys; a missing key with no default is
        /// a runtime error.
        default: Option<Exp>,
    },
    /// A multiloop. The statement binds one symbol per generator.
    Loop(Multiloop),
    /// An opaque external operation (file readers, RNG, printing…).
    ///
    /// Externs model §4.3's "arbitrary sequential code": the partitioning
    /// analysis refuses to distribute through them unless whitelisted.
    Extern {
        /// External function name.
        name: String,
        /// Arguments.
        args: Vec<Exp>,
        /// Result type.
        ret: Ty,
        /// True if the operation has side effects (never reordered/CSEd).
        effectful: bool,
        /// True if the partitioning analysis may silently accept this op
        /// consuming partitioned data (paper example: reading a size field).
        whitelisted: bool,
    },
}

impl Def {
    /// Convenience constructor for a binary primitive.
    pub fn prim2(op: PrimOp, a: impl Into<Exp>, b: impl Into<Exp>) -> Def {
        Def::Prim {
            op,
            args: vec![a.into(), b.into()],
        }
    }

    /// Convenience constructor for a unary primitive.
    pub fn prim1(op: PrimOp, a: impl Into<Exp>) -> Def {
        Def::Prim {
            op,
            args: vec![a.into()],
        }
    }

    /// The multiloop, if this definition is a loop.
    pub fn as_loop(&self) -> Option<&Multiloop> {
        match self {
            Def::Loop(ml) => Some(ml),
            _ => None,
        }
    }

    /// Mutable access to the multiloop, if this definition is a loop.
    pub fn as_loop_mut(&mut self) -> Option<&mut Multiloop> {
        match self {
            Def::Loop(ml) => Some(ml),
            _ => None,
        }
    }

    /// True if the definition may have observable side effects and must not
    /// be removed, duplicated or reordered.
    pub fn is_effectful(&self) -> bool {
        matches!(
            self,
            Def::Extern {
                effectful: true,
                ..
            }
        )
    }
}

/// A single-assignment statement: `lhs… = def`.
///
/// Every non-loop definition binds exactly one symbol. A [`Def::Loop`] binds
/// one symbol **per generator**, which is how horizontally fused loops return
/// multiple disjoint outputs from a single traversal.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// Bound symbols.
    pub lhs: Vec<Sym>,
    /// The definition.
    pub def: Def,
}

impl Stmt {
    /// A statement binding a single symbol.
    pub fn one(sym: Sym, def: Def) -> Stmt {
        Stmt {
            lhs: vec![sym],
            def,
        }
    }

    /// The single bound symbol.
    ///
    /// # Panics
    ///
    /// Panics if the statement binds zero or several symbols.
    pub fn sym(&self) -> Sym {
        assert_eq!(
            self.lhs.len(),
            1,
            "statement binds {} symbols, expected 1",
            self.lhs.len()
        );
        self.lhs[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::Sym;

    #[test]
    fn prim_arity() {
        assert_eq!(PrimOp::Add.arity(), 2);
        assert_eq!(PrimOp::Not.arity(), 1);
        assert_eq!(PrimOp::Mux.arity(), 3);
    }

    #[test]
    fn prim_classification() {
        assert!(PrimOp::Lt.is_comparison());
        assert!(!PrimOp::Add.is_comparison());
        assert!(PrimOp::Add.is_assoc_comm());
        assert!(!PrimOp::Sub.is_assoc_comm());
    }

    #[test]
    fn stmt_one() {
        let s = Stmt::one(Sym(1), Def::prim2(PrimOp::Add, Exp::i64(1), Exp::i64(2)));
        assert_eq!(s.sym(), Sym(1));
    }

    #[test]
    #[should_panic(expected = "expected 1")]
    fn stmt_sym_panics_on_multi() {
        let s = Stmt {
            lhs: vec![Sym(1), Sym(2)],
            def: Def::ArrayLen(Exp::Sym(Sym(0))),
        };
        s.sym();
    }

    #[test]
    fn effectful_detection() {
        let pure = Def::Extern {
            name: "len".into(),
            args: vec![],
            ret: Ty::I64,
            effectful: false,
            whitelisted: true,
        };
        let eff = Def::Extern {
            name: "print".into(),
            args: vec![],
            ret: Ty::Unit,
            effectful: true,
            whitelisted: false,
        };
        assert!(!pure.is_effectful());
        assert!(eff.is_effectful());
    }

    #[test]
    fn display_ops() {
        assert_eq!(PrimOp::Add.to_string(), "+");
        assert_eq!(MathFn::Sqrt.to_string(), "sqrt");
    }
}
