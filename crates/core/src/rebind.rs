//! Deep cloning of IR fragments with fresh symbols and substitution.
//!
//! Transformations routinely inline one generator's component function into
//! another (pipeline fusion), or duplicate a function wrapped in a new loop
//! (the vectorized `fv`/`rv` of the Column-to-Row rule). Both need the same
//! machinery: clone a [`Block`], give every binder a fresh symbol so global
//! uniqueness is preserved, and remap selected free variables (typically a
//! parameter to an argument expression).

use crate::block::Block;
use crate::def::Stmt;
use crate::exp::{Exp, Sym};
use crate::program::Program;
use crate::visit::{def_blocks_mut, for_each_exp_shallow_mut};
use std::collections::HashMap;

/// A rebinding session over one [`Program`]'s symbol generator.
pub struct Rebinder<'p> {
    program: &'p mut Program,
    subst: HashMap<Sym, Exp>,
}

impl<'p> Rebinder<'p> {
    /// Start a rebinding session.
    pub fn new(program: &'p mut Program) -> Rebinder<'p> {
        Rebinder {
            program,
            subst: HashMap::new(),
        }
    }

    /// Map a symbol (usually a block parameter) to a replacement expression.
    pub fn map(&mut self, from: Sym, to: impl Into<Exp>) -> &mut Self {
        self.subst.insert(from, to.into());
        self
    }

    /// Clone `block`, freshening every binder (params and statement lhs,
    /// recursively) and applying the substitution to free variables.
    ///
    /// The returned block is safe to splice anywhere in the program: none of
    /// its bound symbols collide with existing ones.
    pub fn rebind_block(&mut self, block: &Block) -> Block {
        let mut b = block.clone();
        self.freshen(&mut b);
        b
    }

    /// Clone `block` dropping its parameters, remapping each parameter to
    /// the corresponding argument expression. The classic "inline a function
    /// at a call site" operation: the result has no params and can be
    /// spliced into a surrounding block.
    ///
    /// # Panics
    ///
    /// Panics if `args.len()` differs from `block.params.len()`.
    pub fn inline_block(&mut self, block: &Block, args: &[Exp]) -> Block {
        assert_eq!(
            block.params.len(),
            args.len(),
            "inline_block: arity mismatch"
        );
        for (p, a) in block.params.iter().zip(args) {
            self.subst.insert(*p, a.clone());
        }
        let mut b = self.rebind_block(block);
        b.params.clear();
        b
    }

    fn freshen(&mut self, block: &mut Block) {
        // Fresh names for params (unless already substituted away by
        // inline_block, in which case the mapping wins and the param is
        // still renamed — it just becomes dead).
        for p in &mut block.params {
            if !self.subst.contains_key(p) {
                let fresh = self.program.fresh();
                self.subst.insert(*p, Exp::Sym(fresh));
                *p = fresh;
            }
        }
        for stmt in &mut block.stmts {
            self.rewrite_stmt_exps(stmt);
            for s in &mut stmt.lhs {
                let fresh = self.program.fresh();
                self.subst.insert(*s, Exp::Sym(fresh));
                *s = fresh;
            }
        }
        if let Exp::Sym(s) = &block.result {
            if let Some(rep) = self.subst.get(s) {
                block.result = rep.clone();
            }
        }
    }

    fn rewrite_stmt_exps(&mut self, stmt: &mut Stmt) {
        let subst = &self.subst;
        for_each_exp_shallow_mut(&mut stmt.def, &mut |e| {
            if let Exp::Sym(s) = e {
                if let Some(rep) = subst.get(s) {
                    *e = rep.clone();
                }
            }
        });
        for b in def_blocks_mut(&mut stmt.def) {
            self.freshen(b);
        }
    }
}

/// Substitute free occurrences of symbols in-place **without** freshening
/// binders. Only safe when the block will replace the original (no
/// duplication).
pub fn subst_in_block(block: &mut Block, subst: &HashMap<Sym, Exp>) {
    crate::visit::for_each_exp_deep_mut(block, &mut |e| {
        if let Exp::Sym(s) = e {
            if let Some(rep) = subst.get(s) {
                *e = rep.clone();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::{Def, PrimOp};
    use crate::gen::{Gen, Multiloop};
    use crate::visit::{bound_syms, free_syms, uses_sym};

    fn program_with_counter(n: u32) -> Program {
        let mut p = Program::new();
        p.reserve_syms(n);
        p
    }

    /// block(i = x0) { x1 = i + x9; result x1 }  — x9 free
    fn simple_block() -> Block {
        Block {
            params: vec![Sym(0)],
            stmts: vec![Stmt::one(Sym(1), Def::prim2(PrimOp::Add, Sym(0), Sym(9)))],
            result: Exp::Sym(Sym(1)),
        }
    }

    #[test]
    fn rebind_freshens_binders_keeps_free() {
        let mut p = program_with_counter(100);
        let b = simple_block();
        let nb = Rebinder::new(&mut p).rebind_block(&b);
        // New binders allocated at >= 100.
        for s in bound_syms(&nb) {
            assert!(s.0 >= 100, "binder {s} should be fresh");
        }
        // Free variable x9 untouched.
        assert!(free_syms(&nb).contains(&Sym(9)));
        // Result points at the renamed statement.
        assert_eq!(nb.result.as_sym(), Some(nb.stmts[0].sym()));
    }

    #[test]
    fn inline_replaces_param() {
        let mut p = program_with_counter(100);
        let b = simple_block();
        let inlined = Rebinder::new(&mut p).inline_block(&b, &[Exp::i64(5)]);
        assert!(inlined.params.is_empty());
        // The add now reads the literal 5.
        match &inlined.stmts[0].def {
            Def::Prim {
                op: PrimOp::Add,
                args,
            } => {
                assert_eq!(args[0], Exp::i64(5));
                assert_eq!(args[1], Exp::Sym(Sym(9)));
            }
            other => panic!("unexpected def {other:?}"),
        }
    }

    #[test]
    fn rebind_recurses_into_loops() {
        let mut p = program_with_counter(100);
        let inner = simple_block();
        let outer = Block {
            params: vec![Sym(20)],
            stmts: vec![Stmt::one(
                Sym(21),
                Def::Loop(Multiloop::single(
                    Sym(20),
                    Gen::Collect {
                        cond: None,
                        value: inner,
                    },
                )),
            )],
            result: Exp::Sym(Sym(21)),
        };
        let nb = Rebinder::new(&mut p).rebind_block(&outer);
        for s in bound_syms(&nb) {
            assert!(s.0 >= 100);
        }
        // The nested loop's size must reference the renamed outer param.
        let renamed_param = nb.params[0];
        match &nb.stmts[0].def {
            Def::Loop(ml) => assert_eq!(ml.size.as_sym(), Some(renamed_param)),
            other => panic!("unexpected def {other:?}"),
        }
    }

    #[test]
    fn rebind_twice_yields_disjoint_symbols() {
        let mut p = program_with_counter(100);
        let b = simple_block();
        let c1 = Rebinder::new(&mut p).rebind_block(&b);
        let c2 = Rebinder::new(&mut p).rebind_block(&b);
        let s1 = bound_syms(&c1);
        let s2 = bound_syms(&c2);
        assert!(s1.is_disjoint(&s2));
    }

    #[test]
    fn subst_in_place() {
        let mut b = simple_block();
        let mut m = HashMap::new();
        m.insert(Sym(9), Exp::i64(7));
        subst_in_block(&mut b, &m);
        assert!(!uses_sym(&b, Sym(9)));
    }
}
