//! Error types for IR construction and validation.

use std::fmt;

/// Errors produced while validating or manipulating DMLL IR.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// A type error with a human-readable description.
    Type(String),
    /// Structurally malformed IR (wrong lhs arity, unbound symbol, …).
    Malformed(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Type(msg) => write!(f, "type error: {msg}"),
            CoreError::Malformed(msg) => write!(f, "malformed IR: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias for results carrying [`CoreError`].
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(CoreError::Type("wat".into()).to_string(), "type error: wat");
        assert_eq!(
            CoreError::Malformed("x".into()).to_string(),
            "malformed IR: x"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync>(_: E) {}
        takes_err(CoreError::Type("t".into()));
    }
}
