//! Multiloops and their generators (Figure 2 of the paper).

use crate::block::Block;
use crate::exp::Exp;
use std::fmt;

/// Which kind of generator a [`Gen`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GenKind {
    /// Accumulates all generated values into a collection.
    Collect,
    /// On-the-fly reduction with an associative operator.
    Reduce,
    /// Collects values into buckets indexed by key.
    BucketCollect,
    /// Reduces values per bucket as they arrive.
    BucketReduce,
}

impl fmt::Display for GenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GenKind::Collect => "Collect",
            GenKind::Reduce => "Reduce",
            GenKind::BucketCollect => "BucketCollect",
            GenKind::BucketReduce => "BucketReduce",
        };
        write!(f, "{s}")
    }
}

/// A generator: the high-level structure of a multiloop body.
///
/// Each generator keeps the user-defined component functions separate —
/// condition `c`, key `k`, value `f` and reduction `r` in the paper's
/// notation — so that code generation can recompose them per target.
/// `cond = None` is the always-true condition (written `_` in the paper).
///
/// All of `cond`, `key` and `value` take the loop index as their single
/// parameter; `reducer` takes two accumulands `(a, b)`.
#[derive(Clone, Debug, PartialEq)]
pub enum Gen {
    /// `Collect_s(c)(f) : Coll[V]` — generalizes map, zipWith, filter and
    /// flatMap.
    Collect {
        /// Condition `c`; `None` means always true.
        cond: Option<Block>,
        /// Value function `f`.
        value: Block,
    },
    /// `Reduce_s(c)(f)(r) : V`.
    ///
    /// The reduction starts from the first accepted element (the paper's
    /// `identity[V]`); `init` optionally supplies an explicit identity used
    /// for empty reductions and for parallel chunk seeding.
    Reduce {
        /// Condition `c`; `None` means always true.
        cond: Option<Block>,
        /// Value function `f`.
        value: Block,
        /// Associative reduction `r(a, b)`.
        reducer: Block,
        /// Optional explicit identity element.
        init: Option<Exp>,
    },
    /// `BucketCollect_s(c)(k)(f) : Buckets[K, Coll[V]]` — `groupBy` when the
    /// value function is the identity.
    BucketCollect {
        /// Condition `c`; `None` means always true.
        cond: Option<Block>,
        /// Key function `k`.
        key: Block,
        /// Value function `f`.
        value: Block,
    },
    /// `BucketReduce_s(c)(k)(f)(r) : Buckets[K, V]`.
    BucketReduce {
        /// Condition `c`; `None` means always true.
        cond: Option<Block>,
        /// Key function `k`.
        key: Block,
        /// Value function `f`.
        value: Block,
        /// Associative reduction `r(a, b)`.
        reducer: Block,
        /// Optional explicit identity element.
        init: Option<Exp>,
    },
}

impl Gen {
    /// The generator's kind.
    pub fn kind(&self) -> GenKind {
        match self {
            Gen::Collect { .. } => GenKind::Collect,
            Gen::Reduce { .. } => GenKind::Reduce,
            Gen::BucketCollect { .. } => GenKind::BucketCollect,
            Gen::BucketReduce { .. } => GenKind::BucketReduce,
        }
    }

    /// The condition block, if one is present.
    pub fn cond(&self) -> Option<&Block> {
        match self {
            Gen::Collect { cond, .. }
            | Gen::Reduce { cond, .. }
            | Gen::BucketCollect { cond, .. }
            | Gen::BucketReduce { cond, .. } => cond.as_ref(),
        }
    }

    /// The value function `f`.
    pub fn value(&self) -> &Block {
        match self {
            Gen::Collect { value, .. }
            | Gen::Reduce { value, .. }
            | Gen::BucketCollect { value, .. }
            | Gen::BucketReduce { value, .. } => value,
        }
    }

    /// Mutable access to the value function.
    pub fn value_mut(&mut self) -> &mut Block {
        match self {
            Gen::Collect { value, .. }
            | Gen::Reduce { value, .. }
            | Gen::BucketCollect { value, .. }
            | Gen::BucketReduce { value, .. } => value,
        }
    }

    /// The key function `k` of a bucket generator.
    pub fn key(&self) -> Option<&Block> {
        match self {
            Gen::BucketCollect { key, .. } | Gen::BucketReduce { key, .. } => Some(key),
            _ => None,
        }
    }

    /// The reduction function `r` of a reducing generator.
    pub fn reducer(&self) -> Option<&Block> {
        match self {
            Gen::Reduce { reducer, .. } | Gen::BucketReduce { reducer, .. } => Some(reducer),
            _ => None,
        }
    }

    /// All component blocks, in `cond, key, value, reducer` order.
    pub fn blocks(&self) -> Vec<&Block> {
        let mut out = Vec::with_capacity(4);
        if let Some(c) = self.cond() {
            out.push(c);
        }
        if let Some(k) = self.key() {
            out.push(k);
        }
        out.push(self.value());
        if let Some(r) = self.reducer() {
            out.push(r);
        }
        out
    }

    /// All component blocks, mutable.
    pub fn blocks_mut(&mut self) -> Vec<&mut Block> {
        match self {
            Gen::Collect { cond, value } => {
                let mut v: Vec<&mut Block> = Vec::new();
                if let Some(c) = cond.as_mut() {
                    v.push(c);
                }
                v.push(value);
                v
            }
            Gen::Reduce {
                cond,
                value,
                reducer,
                ..
            } => {
                let mut v: Vec<&mut Block> = Vec::new();
                if let Some(c) = cond.as_mut() {
                    v.push(c);
                }
                v.push(value);
                v.push(reducer);
                v
            }
            Gen::BucketCollect { cond, key, value } => {
                let mut v: Vec<&mut Block> = Vec::new();
                if let Some(c) = cond.as_mut() {
                    v.push(c);
                }
                v.push(key);
                v.push(value);
                v
            }
            Gen::BucketReduce {
                cond,
                key,
                value,
                reducer,
                ..
            } => {
                let mut v: Vec<&mut Block> = Vec::new();
                if let Some(c) = cond.as_mut() {
                    v.push(c);
                }
                v.push(key);
                v.push(value);
                v.push(reducer);
                v
            }
        }
    }

    /// True if this generator produces a partitionable (collection-shaped)
    /// output when its input range is partitioned — `Collect` does, the
    /// others produce results that Algorithm 1 treats as `Local`.
    pub fn output_is_partitionable(&self) -> bool {
        matches!(self, Gen::Collect { .. })
    }
}

/// A multiloop: a single-dimensional traversal of `0..size` whose body is a
/// set of generators that each accumulate one loop output.
///
/// A freshly staged multiloop has exactly one generator; horizontal fusion
/// merges loops over the same range into one multiloop with several
/// generators (returning multiple disjoint outputs from a single traversal).
#[derive(Clone, Debug, PartialEq)]
pub struct Multiloop {
    /// The iteration count (an `I64` expression).
    pub size: Exp,
    /// One generator per loop output.
    pub gens: Vec<Gen>,
}

impl Multiloop {
    /// A multiloop with a single generator.
    pub fn single(size: impl Into<Exp>, gen: Gen) -> Multiloop {
        Multiloop {
            size: size.into(),
            gens: vec![gen],
        }
    }

    /// The sole generator of a single-generator loop.
    pub fn only_gen(&self) -> Option<&Gen> {
        if self.gens.len() == 1 {
            Some(&self.gens[0])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::Sym;

    fn collect() -> Gen {
        Gen::Collect {
            cond: None,
            value: Block::ret(vec![Sym(0)], Sym(0)),
        }
    }

    #[test]
    fn kinds() {
        assert_eq!(collect().kind(), GenKind::Collect);
        assert_eq!(GenKind::BucketReduce.to_string(), "BucketReduce");
    }

    #[test]
    fn component_access() {
        let g = Gen::BucketReduce {
            cond: Some(Block::always(Sym(1))),
            key: Block::ret(vec![Sym(2)], Sym(2)),
            value: Block::ret(vec![Sym(3)], Sym(3)),
            reducer: Block::ret(vec![Sym(4), Sym(5)], Sym(4)),
            init: None,
        };
        assert!(g.cond().is_some());
        assert!(g.key().is_some());
        assert!(g.reducer().is_some());
        assert_eq!(g.blocks().len(), 4);
        let c = collect();
        assert!(c.cond().is_none());
        assert!(c.key().is_none());
        assert!(c.reducer().is_none());
        assert_eq!(c.blocks().len(), 1);
    }

    #[test]
    fn partitionable_outputs() {
        assert!(collect().output_is_partitionable());
        let r = Gen::Reduce {
            cond: None,
            value: Block::ret(vec![Sym(0)], Sym(0)),
            reducer: Block::ret(vec![Sym(1), Sym(2)], Sym(1)),
            init: None,
        };
        assert!(!r.output_is_partitionable());
    }

    #[test]
    fn single_loop() {
        let ml = Multiloop::single(Exp::i64(10), collect());
        assert!(ml.only_gen().is_some());
        let ml2 = Multiloop {
            size: Exp::i64(10),
            gens: vec![collect(), collect()],
        };
        assert!(ml2.only_gen().is_none());
    }
}
