//! Human-readable pretty printer for DMLL programs.
//!
//! The output is stable and is used in golden-style assertions throughout
//! the test suites (e.g. "after fusion the program contains exactly one
//! `loop`").

use crate::block::Block;
use crate::def::Def;
use crate::gen::Gen;
use crate::program::Program;
use std::fmt::Write;

/// Render a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for input in &p.inputs {
        let _ = writeln!(
            out,
            "input {} = {} : {} @ {}",
            input.sym, input.name, input.ty, input.layout
        );
    }
    print_block_inner(&p.body, 0, &mut out);
    out
}

/// Render a single block (at the given indentation depth).
pub fn print_block(b: &Block, indent: usize) -> String {
    let mut out = String::new();
    print_block_inner(b, indent, &mut out);
    out
}

fn pad(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn print_block_inner(b: &Block, indent: usize, out: &mut String) {
    for stmt in &b.stmts {
        pad(indent, out);
        let names: Vec<String> = stmt.lhs.iter().map(|s| s.to_string()).collect();
        let _ = write!(out, "{} = ", names.join(", "));
        print_def(&stmt.def, indent, out);
        out.push('\n');
    }
    pad(indent, out);
    let _ = writeln!(out, "=> {}", b.result);
}

fn print_fn(name: &str, b: &Block, indent: usize, out: &mut String) {
    pad(indent, out);
    let params: Vec<String> = b.params.iter().map(|s| s.to_string()).collect();
    if b.stmts.is_empty() {
        let _ = writeln!(out, "{name} ({}) => {}", params.join(", "), b.result);
    } else {
        let _ = writeln!(out, "{name} ({}) {{", params.join(", "));
        print_block_inner(b, indent + 1, out);
        pad(indent, out);
        out.push_str("}\n");
    }
}

fn print_gen(g: &Gen, indent: usize, out: &mut String) {
    pad(indent, out);
    let _ = writeln!(out, "{} {{", g.kind());
    if let Some(c) = g.cond() {
        print_fn("cond", c, indent + 1, out);
    }
    if let Some(k) = g.key() {
        print_fn("key", k, indent + 1, out);
    }
    print_fn("value", g.value(), indent + 1, out);
    if let Some(r) = g.reducer() {
        print_fn("reduce", r, indent + 1, out);
    }
    match g {
        Gen::Reduce { init: Some(i), .. } | Gen::BucketReduce { init: Some(i), .. } => {
            pad(indent + 1, out);
            let _ = writeln!(out, "init {i}");
        }
        _ => {}
    }
    pad(indent, out);
    out.push_str("}\n");
}

fn print_def(def: &Def, indent: usize, out: &mut String) {
    match def {
        Def::Prim { op, args } => {
            if args.len() == 2 && !matches!(op, crate::def::PrimOp::Min | crate::def::PrimOp::Max) {
                let _ = write!(out, "{} {op} {}", args[0], args[1]);
            } else {
                let strs: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                let _ = write!(out, "{op}({})", strs.join(", "));
            }
        }
        Def::Math { f, arg } => {
            let _ = write!(out, "{f}({arg})");
        }
        Def::Cast { to, value } => {
            let _ = write!(out, "cast[{to}]({value})");
        }
        Def::ArrayLen(e) => {
            let _ = write!(out, "len({e})");
        }
        Def::ArrayRead { arr, index } => {
            let _ = write!(out, "{arr}({index})");
        }
        Def::TupleNew(es) => {
            let strs: Vec<String> = es.iter().map(|e| e.to_string()).collect();
            let _ = write!(out, "({})", strs.join(", "));
        }
        Def::TupleGet { tuple, index } => {
            let _ = write!(out, "{tuple}._{index}");
        }
        Def::StructNew { ty, fields } => {
            let strs: Vec<String> = ty
                .fields
                .iter()
                .zip(fields)
                .map(|((n, _), e)| format!("{n}: {e}"))
                .collect();
            let _ = write!(out, "{} {{ {} }}", ty.name, strs.join(", "));
        }
        Def::StructGet { obj, field } => {
            let _ = write!(out, "{obj}.{field}");
        }
        Def::Flatten(e) => {
            let _ = write!(out, "flatten({e})");
        }
        Def::BucketValues(e) => {
            let _ = write!(out, "bucketValues({e})");
        }
        Def::BucketKeys(e) => {
            let _ = write!(out, "bucketKeys({e})");
        }
        Def::BucketLen(e) => {
            let _ = write!(out, "bucketLen({e})");
        }
        Def::BucketGet {
            buckets,
            key,
            default,
        } => match default {
            Some(d) => {
                let _ = write!(out, "bucketGetOrElse({buckets}, {key}, {d})");
            }
            None => {
                let _ = write!(out, "bucketGet({buckets}, {key})");
            }
        },
        Def::Loop(ml) => {
            let _ = writeln!(out, "loop({}) {{", ml.size);
            for g in &ml.gens {
                print_gen(g, indent + 1, out);
            }
            pad(indent, out);
            out.push('}');
        }
        Def::Extern {
            name,
            args,
            effectful,
            ..
        } => {
            let strs: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            let eff = if *effectful { "!" } else { "" };
            let _ = write!(out, "extern{eff} {name}({})", strs.join(", "));
        }
    }
}

/// Count the number of multiloops anywhere in a program — a common assertion
/// after fusion passes.
pub fn count_loops(p: &Program) -> usize {
    let mut n = 0;
    crate::visit::for_each_def_deep(&p.body, &mut |d| {
        if matches!(d, Def::Loop(_)) {
            n += 1;
        }
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::{PrimOp, Stmt};
    use crate::exp::{Exp, Sym};
    use crate::gen::Multiloop;
    use crate::program::LayoutHint;
    use crate::ty::Ty;

    #[test]
    fn prints_inputs_and_loops() {
        let mut p = Program::new();
        let x = p.add_input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let i = p.fresh();
        let xi = p.fresh();
        let value = Block {
            params: vec![i],
            stmts: vec![Stmt::one(
                xi,
                Def::ArrayRead {
                    arr: Exp::Sym(x),
                    index: Exp::Sym(i),
                },
            )],
            result: Exp::Sym(xi),
        };
        let n = p.fresh();
        let out = p.fresh();
        p.body = Block {
            params: vec![],
            stmts: vec![
                Stmt::one(n, Def::ArrayLen(Exp::Sym(x))),
                Stmt::one(
                    out,
                    Def::Loop(Multiloop::single(n, Gen::Collect { cond: None, value })),
                ),
            ],
            result: Exp::Sym(out),
        };
        let s = print_program(&p);
        assert!(
            s.contains("input x0 = x : Coll[Double] @ Partitioned"),
            "{s}"
        );
        assert!(s.contains("loop(x3)"), "{s}");
        assert!(s.contains("Collect {"), "{s}");
        assert!(s.contains("value (x1)"), "{s}");
        assert_eq!(count_loops(&p), 1);
    }

    #[test]
    fn prints_binary_ops_infix() {
        let mut out = String::new();
        print_def(&Def::prim2(PrimOp::Add, Sym(1), Exp::i64(2)), 0, &mut out);
        assert_eq!(out, "x1 + 2");
    }

    #[test]
    fn prints_min_as_call() {
        let mut out = String::new();
        print_def(&Def::prim2(PrimOp::Min, Sym(1), Sym(2)), 0, &mut out);
        assert_eq!(out, "min(x1, x2)");
    }
}
