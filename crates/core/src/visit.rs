//! IR traversal utilities: child blocks, expression walks, free variables
//! and use counting.

use crate::block::Block;
use crate::def::Def;
use crate::exp::{Exp, Sym};
use std::collections::{BTreeSet, HashMap};

/// The blocks nested directly inside a definition (generator component
/// functions for loops; none for scalar ops).
pub fn def_blocks(def: &Def) -> Vec<&Block> {
    match def {
        Def::Loop(ml) => ml.gens.iter().flat_map(|g| g.blocks()).collect(),
        _ => Vec::new(),
    }
}

/// Mutable version of [`def_blocks`].
pub fn def_blocks_mut(def: &mut Def) -> Vec<&mut Block> {
    match def {
        Def::Loop(ml) => ml.gens.iter_mut().flat_map(|g| g.blocks_mut()).collect(),
        _ => Vec::new(),
    }
}

/// Visit every expression appearing *directly* in a definition — operands,
/// multiloop sizes, generator `init` expressions — but not expressions inside
/// nested blocks.
pub fn for_each_exp_shallow(def: &Def, f: &mut impl FnMut(&Exp)) {
    match def {
        Def::Prim { args, .. } | Def::TupleNew(args) | Def::StructNew { fields: args, .. } => {
            args.iter().for_each(&mut *f)
        }
        Def::Math { arg, .. } | Def::Cast { value: arg, .. } => f(arg),
        Def::ArrayLen(e)
        | Def::TupleGet { tuple: e, .. }
        | Def::StructGet { obj: e, .. }
        | Def::Flatten(e)
        | Def::BucketValues(e)
        | Def::BucketKeys(e)
        | Def::BucketLen(e) => f(e),
        Def::ArrayRead { arr, index } => {
            f(arr);
            f(index);
        }
        Def::BucketGet {
            buckets,
            key,
            default,
        } => {
            f(buckets);
            f(key);
            if let Some(d) = default {
                f(d);
            }
        }
        Def::Loop(ml) => {
            f(&ml.size);
            for g in &ml.gens {
                match g {
                    crate::gen::Gen::Reduce { init: Some(i), .. }
                    | crate::gen::Gen::BucketReduce { init: Some(i), .. } => f(i),
                    _ => {}
                }
            }
        }
        Def::Extern { args, .. } => args.iter().for_each(&mut *f),
    }
}

/// Mutable version of [`for_each_exp_shallow`].
pub fn for_each_exp_shallow_mut(def: &mut Def, f: &mut impl FnMut(&mut Exp)) {
    match def {
        Def::Prim { args, .. } | Def::TupleNew(args) | Def::StructNew { fields: args, .. } => {
            args.iter_mut().for_each(&mut *f)
        }
        Def::Math { arg, .. } | Def::Cast { value: arg, .. } => f(arg),
        Def::ArrayLen(e)
        | Def::TupleGet { tuple: e, .. }
        | Def::StructGet { obj: e, .. }
        | Def::Flatten(e)
        | Def::BucketValues(e)
        | Def::BucketKeys(e)
        | Def::BucketLen(e) => f(e),
        Def::ArrayRead { arr, index } => {
            f(arr);
            f(index);
        }
        Def::BucketGet {
            buckets,
            key,
            default,
        } => {
            f(buckets);
            f(key);
            if let Some(d) = default {
                f(d);
            }
        }
        Def::Loop(ml) => {
            f(&mut ml.size);
            for g in &mut ml.gens {
                match g {
                    crate::gen::Gen::Reduce { init: Some(i), .. }
                    | crate::gen::Gen::BucketReduce { init: Some(i), .. } => f(i),
                    _ => {}
                }
            }
        }
        Def::Extern { args, .. } => args.iter_mut().for_each(&mut *f),
    }
}

/// Visit every expression in a block, recursing into nested blocks.
pub fn for_each_exp_deep(block: &Block, f: &mut impl FnMut(&Exp)) {
    for stmt in &block.stmts {
        for_each_exp_shallow(&stmt.def, f);
        for b in def_blocks(&stmt.def) {
            for_each_exp_deep(b, f);
        }
    }
    f(&block.result);
}

/// Rewrite every expression in a block in place, recursing into nested
/// blocks.
pub fn for_each_exp_deep_mut(block: &mut Block, f: &mut impl FnMut(&mut Exp)) {
    for stmt in &mut block.stmts {
        for_each_exp_shallow_mut(&mut stmt.def, f);
        for b in def_blocks_mut(&mut stmt.def) {
            for_each_exp_deep_mut(b, f);
        }
    }
    f(&mut block.result);
}

/// Visit every definition in a block, recursing into nested blocks,
/// in statement order (outer statements before their nested blocks).
pub fn for_each_def_deep(block: &Block, f: &mut impl FnMut(&Def)) {
    for stmt in &block.stmts {
        f(&stmt.def);
        for b in def_blocks(&stmt.def) {
            for_each_def_deep(b, f);
        }
    }
}

fn collect_free(block: &Block, bound: &mut Vec<Sym>, free: &mut BTreeSet<Sym>) {
    let depth = bound.len();
    bound.extend(block.params.iter().copied());
    for stmt in &block.stmts {
        let mut note = |e: &Exp| {
            if let Exp::Sym(s) = e {
                if !bound.contains(s) {
                    free.insert(*s);
                }
            }
        };
        for_each_exp_shallow(&stmt.def, &mut note);
        for b in def_blocks(&stmt.def) {
            collect_free(b, bound, free);
        }
        bound.extend(stmt.lhs.iter().copied());
    }
    if let Exp::Sym(s) = &block.result {
        if !bound.contains(s) {
            free.insert(*s);
        }
    }
    bound.truncate(depth);
}

/// The free variables of a block: symbols referenced but bound neither by
/// the block's parameters nor by any statement within it (at any depth).
pub fn free_syms(block: &Block) -> BTreeSet<Sym> {
    let mut free = BTreeSet::new();
    collect_free(block, &mut Vec::new(), &mut free);
    free
}

/// Count how many times each symbol is referenced anywhere inside `block`
/// (deep). Block results count as uses; bindings do not.
pub fn count_uses(block: &Block, counts: &mut HashMap<Sym, usize>) {
    for_each_exp_deep(block, &mut |e| {
        if let Exp::Sym(s) = e {
            *counts.entry(*s).or_insert(0) += 1;
        }
    });
}

/// All symbols bound anywhere inside a block (params and statement lhs,
/// deep).
pub fn bound_syms(block: &Block) -> BTreeSet<Sym> {
    let mut out = BTreeSet::new();
    fn go(b: &Block, out: &mut BTreeSet<Sym>) {
        out.extend(b.params.iter().copied());
        for stmt in &b.stmts {
            out.extend(stmt.lhs.iter().copied());
            for nb in def_blocks(&stmt.def) {
                go(nb, out);
            }
        }
    }
    go(block, &mut out);
    out
}

/// True when `block` (deep) references `sym`.
pub fn uses_sym(block: &Block, sym: Sym) -> bool {
    let mut found = false;
    for_each_exp_deep(block, &mut |e| {
        if e.as_sym() == Some(sym) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::{Def, PrimOp, Stmt};
    use crate::gen::{Gen, Multiloop};

    /// Builds: block(params=[]) { x2 = x0 + 1; x3 = loop(x2) { collect i:
    /// x4 => x4 * x1 }; result x3 }
    fn sample() -> Block {
        let value = Block {
            params: vec![Sym(4)],
            stmts: vec![Stmt::one(Sym(5), Def::prim2(PrimOp::Mul, Sym(4), Sym(1)))],
            result: Exp::Sym(Sym(5)),
        };
        Block {
            params: vec![],
            stmts: vec![
                Stmt::one(Sym(2), Def::prim2(PrimOp::Add, Sym(0), Exp::i64(1))),
                Stmt::one(
                    Sym(3),
                    Def::Loop(Multiloop::single(
                        Sym(2),
                        Gen::Collect { cond: None, value },
                    )),
                ),
            ],
            result: Exp::Sym(Sym(3)),
        }
    }

    #[test]
    fn free_variables() {
        let b = sample();
        let free = free_syms(&b);
        assert!(free.contains(&Sym(0)), "x0 is free");
        assert!(free.contains(&Sym(1)), "x1 is free inside nested block");
        assert!(!free.contains(&Sym(2)), "x2 is bound");
        assert!(!free.contains(&Sym(4)), "x4 is a nested param");
        assert!(!free.contains(&Sym(5)), "x5 is bound in the nested block");
    }

    #[test]
    fn use_counting() {
        let b = sample();
        let mut counts = HashMap::new();
        count_uses(&b, &mut counts);
        assert_eq!(counts.get(&Sym(2)), Some(&1), "loop size use");
        assert_eq!(counts.get(&Sym(4)), Some(&1));
        assert_eq!(counts.get(&Sym(3)), Some(&1), "block result use");
        assert_eq!(counts.get(&Sym(9)), None);
    }

    #[test]
    fn bound_symbols() {
        let b = sample();
        let bound = bound_syms(&b);
        for s in [2u32, 3, 4, 5] {
            assert!(bound.contains(&Sym(s)), "x{s} should be bound");
        }
        assert!(!bound.contains(&Sym(0)));
    }

    #[test]
    fn uses_sym_deep() {
        let b = sample();
        assert!(uses_sym(&b, Sym(1)));
        assert!(!uses_sym(&b, Sym(7)));
    }

    #[test]
    fn shallow_visit_sees_loop_size_not_body() {
        let b = sample();
        let loop_def = &b.stmts[1].def;
        let mut seen = Vec::new();
        for_each_exp_shallow(loop_def, &mut |e| seen.push(e.clone()));
        assert_eq!(seen, vec![Exp::Sym(Sym(2))]);
    }

    #[test]
    fn deep_mut_rewrites() {
        let mut b = sample();
        for_each_exp_deep_mut(&mut b, &mut |e| {
            if e.as_sym() == Some(Sym(1)) {
                *e = Exp::i64(42);
            }
        });
        assert!(!uses_sym(&b, Sym(1)));
    }

    #[test]
    fn def_deep_visits_nested() {
        let b = sample();
        let mut n = 0;
        for_each_def_deep(&b, &mut |_| n += 1);
        assert_eq!(n, 3, "add, loop, and nested mul");
    }
}
