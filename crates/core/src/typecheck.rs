//! Type inference and validation for DMLL programs.
//!
//! Because transformation passes rebuild blocks wholesale, types are not
//! stored in the IR; they are re-inferred on demand. [`infer`] walks the
//! whole program and returns a [`TypeMap`] assigning a type to every symbol
//! (inputs, parameters and statement results at any depth), failing with a
//! descriptive [`CoreError`] on ill-typed or structurally malformed IR.
//!
//! Every transformation test in `dmll-transform` re-runs the checker after
//! the pass, which is the project's main line of defence against rewrite
//! bugs.

use crate::block::Block;
use crate::def::{Def, PrimOp, Stmt};
use crate::error::{CoreError, CoreResult};
use crate::exp::{Const, Exp, Sym};
use crate::gen::Gen;
use crate::program::Program;
use crate::ty::Ty;
use std::collections::HashMap;

/// Symbol-to-type assignment for a whole program.
pub type TypeMap = HashMap<Sym, Ty>;

/// Infer the type of every symbol in the program.
///
/// # Errors
///
/// Returns [`CoreError::Type`] when an operation is applied to operands of
/// the wrong type, and [`CoreError::Malformed`] when the IR is structurally
/// broken (unbound symbol, wrong operator arity, loop statement whose
/// left-hand side arity differs from its generator count, …).
pub fn infer(program: &Program) -> CoreResult<TypeMap> {
    let mut env: TypeMap = HashMap::new();
    for input in &program.inputs {
        env.insert(input.sym, input.ty.clone());
    }
    if !program.body.params.is_empty() {
        return Err(CoreError::Malformed(
            "program body must not have parameters".into(),
        ));
    }
    check_block(&program.body, &[], &mut env)?;
    Ok(env)
}

/// Infer the result type of a single expression under an environment.
pub fn exp_ty(exp: &Exp, env: &TypeMap) -> CoreResult<Ty> {
    match exp {
        Exp::Const(c) => Ok(match c {
            Const::I64(_) => Ty::I64,
            Const::F64(_) => Ty::F64,
            Const::Bool(_) => Ty::Bool,
            Const::Str(_) => Ty::Str,
            Const::Unit => Ty::Unit,
        }),
        Exp::Sym(s) => env
            .get(s)
            .cloned()
            .ok_or_else(|| CoreError::Malformed(format!("unbound symbol {s}"))),
    }
}

fn check_block(block: &Block, param_tys: &[Ty], env: &mut TypeMap) -> CoreResult<Ty> {
    if block.params.len() != param_tys.len() {
        return Err(CoreError::Malformed(format!(
            "block has {} params, expected {}",
            block.params.len(),
            param_tys.len()
        )));
    }
    for (p, t) in block.params.iter().zip(param_tys) {
        env.insert(*p, t.clone());
    }
    for stmt in &block.stmts {
        check_stmt(stmt, env)?;
    }
    exp_ty(&block.result, env)
}

fn check_stmt(stmt: &Stmt, env: &mut TypeMap) -> CoreResult<()> {
    let tys = def_tys(&stmt.def, env)?;
    if stmt.lhs.len() != tys.len() {
        return Err(CoreError::Malformed(format!(
            "statement binds {} symbols but its definition produces {} values",
            stmt.lhs.len(),
            tys.len()
        )));
    }
    for (s, t) in stmt.lhs.iter().zip(tys) {
        env.insert(*s, t);
    }
    Ok(())
}

fn expect(cond: bool, msg: impl FnOnce() -> String) -> CoreResult<()> {
    if cond {
        Ok(())
    } else {
        Err(CoreError::Type(msg()))
    }
}

fn def_tys(def: &Def, env: &mut TypeMap) -> CoreResult<Vec<Ty>> {
    let one = |t: Ty| Ok(vec![t]);
    match def {
        Def::Prim { op, args } => {
            if args.len() != op.arity() {
                return Err(CoreError::Malformed(format!(
                    "{op} expects {} operands, got {}",
                    op.arity(),
                    args.len()
                )));
            }
            let ats: Vec<Ty> = args
                .iter()
                .map(|a| exp_ty(a, env))
                .collect::<CoreResult<_>>()?;
            one(prim_ty(*op, &ats)?)
        }
        Def::Math { f, arg } => {
            let t = exp_ty(arg, env)?;
            expect(t == Ty::F64, || {
                format!("math fn {f} needs Double, got {t}")
            })?;
            one(Ty::F64)
        }
        Def::Cast { to, value } => {
            let t = exp_ty(value, env)?;
            expect(t.is_numeric() && to.is_numeric(), || {
                format!("cast {t} -> {to} must be between numeric types")
            })?;
            one(to.clone())
        }
        Def::ArrayLen(e) => {
            let t = exp_ty(e, env)?;
            expect(matches!(t, Ty::Arr(_)), || {
                format!("length of non-collection {t}")
            })?;
            one(Ty::I64)
        }
        Def::ArrayRead { arr, index } => {
            let at = exp_ty(arr, env)?;
            let it = exp_ty(index, env)?;
            expect(it == Ty::I64, || format!("index must be Int, got {it}"))?;
            match at {
                Ty::Arr(e) => one(*e),
                other => Err(CoreError::Type(format!("read of non-collection {other}"))),
            }
        }
        Def::TupleNew(es) => {
            let ts: Vec<Ty> = es
                .iter()
                .map(|e| exp_ty(e, env))
                .collect::<CoreResult<_>>()?;
            one(Ty::Tuple(ts))
        }
        Def::TupleGet { tuple, index } => {
            let t = exp_ty(tuple, env)?;
            match t {
                Ty::Tuple(ts) if *index < ts.len() => one(ts[*index].clone()),
                Ty::Tuple(ts) => Err(CoreError::Type(format!(
                    "tuple index {index} out of range for arity {}",
                    ts.len()
                ))),
                other => Err(CoreError::Type(format!(
                    "projection from non-tuple {other}"
                ))),
            }
        }
        Def::StructNew { ty, fields } => {
            if fields.len() != ty.fields.len() {
                return Err(CoreError::Malformed(format!(
                    "struct {} has {} fields, got {}",
                    ty.name,
                    ty.fields.len(),
                    fields.len()
                )));
            }
            for (e, (name, ft)) in fields.iter().zip(&ty.fields) {
                let at = exp_ty(e, env)?;
                expect(&at == ft, || {
                    format!("field {}.{name}: expected {ft}, got {at}", ty.name)
                })?;
            }
            one(Ty::Struct(ty.clone()))
        }
        Def::StructGet { obj, field } => {
            let t = exp_ty(obj, env)?;
            match t {
                Ty::Struct(s) => s.field_ty(field).cloned().map(|t| vec![t]).ok_or_else(|| {
                    CoreError::Type(format!("struct {} has no field {field}", s.name))
                }),
                other => Err(CoreError::Type(format!(
                    "field read from non-struct {other}"
                ))),
            }
        }
        Def::Flatten(e) => match exp_ty(e, env)? {
            Ty::Arr(inner) => match *inner {
                Ty::Arr(elem) => one(Ty::Arr(elem)),
                other => Err(CoreError::Type(format!(
                    "flatten needs a collection of collections, got Coll[{other}]"
                ))),
            },
            other => Err(CoreError::Type(format!("flatten of {other}"))),
        },
        Def::BucketValues(e) => match exp_ty(e, env)? {
            Ty::Buckets { value, .. } => one(Ty::Arr(value)),
            other => Err(CoreError::Type(format!("bucketValues of {other}"))),
        },
        Def::BucketKeys(e) => match exp_ty(e, env)? {
            Ty::Buckets { key, .. } => one(Ty::Arr(key)),
            other => Err(CoreError::Type(format!("bucketKeys of {other}"))),
        },
        Def::BucketLen(e) => match exp_ty(e, env)? {
            Ty::Buckets { .. } => one(Ty::I64),
            other => Err(CoreError::Type(format!("bucketLen of {other}"))),
        },
        Def::BucketGet {
            buckets,
            key,
            default,
        } => {
            let bt = exp_ty(buckets, env)?;
            let kt = exp_ty(key, env)?;
            match bt {
                Ty::Buckets { key: bk, value } => {
                    expect(*bk == kt, || {
                        format!("bucket key type mismatch: {bk} vs {kt}")
                    })?;
                    if let Some(d) = default {
                        let dt = exp_ty(d, env)?;
                        expect(dt == *value, || {
                            format!("bucket default type mismatch: {value} vs {dt}")
                        })?;
                    }
                    one(*value)
                }
                other => Err(CoreError::Type(format!("bucketGet of {other}"))),
            }
        }
        Def::Loop(ml) => {
            let st = exp_ty(&ml.size, env)?;
            expect(st == Ty::I64, || format!("loop size must be Int, got {st}"))?;
            if ml.gens.is_empty() {
                return Err(CoreError::Malformed("multiloop with no generators".into()));
            }
            ml.gens.iter().map(|g| gen_ty(g, env)).collect()
        }
        Def::Extern { ret, args, .. } => {
            for a in args {
                exp_ty(a, env)?;
            }
            one(ret.clone())
        }
    }
}

fn gen_ty(gen: &Gen, env: &mut TypeMap) -> CoreResult<Ty> {
    if let Some(c) = gen.cond() {
        let ct = check_block(c, &[Ty::I64], env)?;
        expect(ct == Ty::Bool, || {
            format!("generator condition must return Bool, got {ct}")
        })?;
    }
    let vt = check_block(gen.value(), &[Ty::I64], env)?;
    let kt = match gen.key() {
        Some(k) => Some(check_block(k, &[Ty::I64], env)?),
        None => None,
    };
    if let Some(r) = gen.reducer() {
        let rt = check_block(r, &[vt.clone(), vt.clone()], env)?;
        expect(rt == vt, || {
            format!("reducer must return the value type {vt}, got {rt}")
        })?;
    }
    let init = match gen {
        Gen::Reduce { init, .. } | Gen::BucketReduce { init, .. } => init.as_ref(),
        _ => None,
    };
    if let Some(i) = init {
        let it = exp_ty(i, env)?;
        expect(it == vt, || {
            format!("reduce identity must have the value type {vt}, got {it}")
        })?;
    }
    Ok(match gen {
        Gen::Collect { .. } => Ty::arr(vt),
        Gen::Reduce { .. } => vt,
        Gen::BucketCollect { .. } => Ty::buckets(kt.expect("bucket has key"), Ty::arr(vt)),
        Gen::BucketReduce { .. } => Ty::buckets(kt.expect("bucket has key"), vt),
    })
}

fn prim_ty(op: PrimOp, args: &[Ty]) -> CoreResult<Ty> {
    use PrimOp::*;
    let same = |a: &Ty, b: &Ty| -> CoreResult<()> {
        expect(a == b, || format!("{op}: operand types differ: {a} vs {b}"))
    };
    match op {
        Add | Sub | Mul | Div | Min | Max => {
            same(&args[0], &args[1])?;
            expect(args[0].is_numeric(), || {
                format!("{op} needs numeric operands, got {}", args[0])
            })?;
            Ok(args[0].clone())
        }
        Rem => {
            same(&args[0], &args[1])?;
            expect(args[0] == Ty::I64, || {
                format!("% needs Int operands, got {}", args[0])
            })?;
            Ok(Ty::I64)
        }
        Neg => {
            expect(args[0].is_numeric(), || {
                format!("neg needs a numeric operand, got {}", args[0])
            })?;
            Ok(args[0].clone())
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            same(&args[0], &args[1])?;
            expect(
                args[0].is_scalar() || args[0] == Ty::Str || matches!(args[0], Ty::Tuple(_)),
                || format!("{op} cannot compare {}", args[0]),
            )?;
            Ok(Ty::Bool)
        }
        And | Or => {
            same(&args[0], &args[1])?;
            expect(args[0] == Ty::Bool, || {
                format!("{op} needs Bool operands, got {}", args[0])
            })?;
            Ok(Ty::Bool)
        }
        Not => {
            expect(args[0] == Ty::Bool, || {
                format!("! needs a Bool operand, got {}", args[0])
            })?;
            Ok(Ty::Bool)
        }
        Mux => {
            expect(args[0] == Ty::Bool, || {
                format!("mux condition must be Bool, got {}", args[0])
            })?;
            same(&args[1], &args[2])?;
            Ok(args[1].clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Multiloop;
    use crate::program::LayoutHint;

    fn map_reduce_program() -> Program {
        // x = input Coll[Double]
        // m = Collect_{len(x)}(_)(i => exp(x(i)))
        // r = Reduce_{len(m)}(_)(i => m(i))(+)
        let mut p = Program::new();
        let x = p.add_input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let i = p.fresh();
        let xi = p.fresh();
        let e = p.fresh();
        let value = Block {
            params: vec![i],
            stmts: vec![
                Stmt::one(
                    xi,
                    Def::ArrayRead {
                        arr: Exp::Sym(x),
                        index: Exp::Sym(i),
                    },
                ),
                Stmt::one(
                    e,
                    Def::Math {
                        f: crate::def::MathFn::Exp,
                        arg: Exp::Sym(xi),
                    },
                ),
            ],
            result: Exp::Sym(e),
        };
        let len = p.fresh();
        let m = p.fresh();
        let j = p.fresh();
        let mj = p.fresh();
        let rv = Block {
            params: vec![j],
            stmts: vec![Stmt::one(
                mj,
                Def::ArrayRead {
                    arr: Exp::Sym(m),
                    index: Exp::Sym(j),
                },
            )],
            result: Exp::Sym(mj),
        };
        let a = p.fresh();
        let b = p.fresh();
        let sum = p.fresh();
        let reducer = Block {
            params: vec![a, b],
            stmts: vec![Stmt::one(sum, Def::prim2(PrimOp::Add, a, b))],
            result: Exp::Sym(sum),
        };
        let mlen = p.fresh();
        let r = p.fresh();
        p.body = Block {
            params: vec![],
            stmts: vec![
                Stmt::one(len, Def::ArrayLen(Exp::Sym(x))),
                Stmt::one(
                    m,
                    Def::Loop(Multiloop::single(len, Gen::Collect { cond: None, value })),
                ),
                Stmt::one(mlen, Def::ArrayLen(Exp::Sym(m))),
                Stmt::one(
                    r,
                    Def::Loop(Multiloop::single(
                        mlen,
                        Gen::Reduce {
                            cond: None,
                            value: rv,
                            reducer,
                            init: Some(Exp::f64(0.0)),
                        },
                    )),
                ),
            ],
            result: Exp::Sym(r),
        };
        p
    }

    #[test]
    fn map_reduce_types() {
        let p = map_reduce_program();
        let tys = infer(&p).expect("well-typed");
        let m = p
            .body
            .stmts
            .iter()
            .find(|s| matches!(s.def, Def::Loop(_)))
            .unwrap()
            .sym();
        assert_eq!(tys[&m], Ty::arr(Ty::F64));
        let r = p.body.result.as_sym().unwrap();
        assert_eq!(tys[&r], Ty::F64);
    }

    #[test]
    fn unbound_symbol_rejected() {
        let mut p = Program::new();
        p.body = Block::ret(vec![], Sym(42));
        let err = infer(&p).unwrap_err();
        assert!(matches!(err, CoreError::Malformed(_)), "{err}");
    }

    #[test]
    fn bad_operand_types_rejected() {
        let mut p = Program::new();
        let s = p.fresh();
        p.body = Block {
            params: vec![],
            stmts: vec![Stmt::one(
                s,
                Def::prim2(PrimOp::Add, Exp::i64(1), Exp::f64(1.0)),
            )],
            result: Exp::Sym(s),
        };
        assert!(matches!(infer(&p), Err(CoreError::Type(_))));
    }

    #[test]
    fn loop_lhs_arity_checked() {
        let mut p = Program::new();
        let i = p.fresh();
        let value = Block::ret(vec![i], i);
        let s1 = p.fresh();
        let s2 = p.fresh();
        p.body = Block {
            params: vec![],
            stmts: vec![Stmt {
                lhs: vec![s1, s2],
                def: Def::Loop(Multiloop::single(
                    Exp::i64(4),
                    Gen::Collect { cond: None, value },
                )),
            }],
            result: Exp::Sym(s1),
        };
        let err = infer(&p).unwrap_err();
        assert!(matches!(err, CoreError::Malformed(_)), "{err}");
    }

    #[test]
    fn reducer_type_mismatch_rejected() {
        let mut p = Program::new();
        let i = p.fresh();
        let value = Block::ret(vec![i], i); // Int values
        let a = p.fresh();
        let b = p.fresh();
        // reducer returns Bool instead of Int
        let eq = p.fresh();
        let reducer = Block {
            params: vec![a, b],
            stmts: vec![Stmt::one(eq, Def::prim2(PrimOp::Eq, a, b))],
            result: Exp::Sym(eq),
        };
        let s = p.fresh();
        p.body = Block {
            params: vec![],
            stmts: vec![Stmt::one(
                s,
                Def::Loop(Multiloop::single(
                    Exp::i64(4),
                    Gen::Reduce {
                        cond: None,
                        value,
                        reducer,
                        init: None,
                    },
                )),
            )],
            result: Exp::Sym(s),
        };
        assert!(matches!(infer(&p), Err(CoreError::Type(_))));
    }

    #[test]
    fn bucket_types() {
        // BucketReduce over ints keyed by i % 3 summing i.
        let mut p = Program::new();
        let i = p.fresh();
        let k = p.fresh();
        let key = Block {
            params: vec![i],
            stmts: vec![Stmt::one(k, Def::prim2(PrimOp::Rem, i, Exp::i64(3)))],
            result: Exp::Sym(k),
        };
        let j = p.fresh();
        let value = Block::ret(vec![j], j);
        let a = p.fresh();
        let b = p.fresh();
        let s = p.fresh();
        let reducer = Block {
            params: vec![a, b],
            stmts: vec![Stmt::one(s, Def::prim2(PrimOp::Add, a, b))],
            result: Exp::Sym(s),
        };
        let out = p.fresh();
        let vals = p.fresh();
        let n = p.fresh();
        p.body = Block {
            params: vec![],
            stmts: vec![
                Stmt::one(
                    out,
                    Def::Loop(Multiloop::single(
                        Exp::i64(10),
                        Gen::BucketReduce {
                            cond: None,
                            key,
                            value,
                            reducer,
                            init: Some(Exp::i64(0)),
                        },
                    )),
                ),
                Stmt::one(vals, Def::BucketValues(Exp::Sym(out))),
                Stmt::one(n, Def::BucketLen(Exp::Sym(out))),
            ],
            result: Exp::Sym(vals),
        };
        let tys = infer(&p).expect("well-typed");
        assert_eq!(tys[&out], Ty::buckets(Ty::I64, Ty::I64));
        assert_eq!(tys[&vals], Ty::arr(Ty::I64));
        assert_eq!(tys[&n], Ty::I64);
    }

    #[test]
    fn mux_types() {
        let mut p = Program::new();
        let s = p.fresh();
        p.body = Block {
            params: vec![],
            stmts: vec![Stmt::one(
                s,
                Def::Prim {
                    op: PrimOp::Mux,
                    args: vec![Exp::bool(true), Exp::f64(1.0), Exp::f64(2.0)],
                },
            )],
            result: Exp::Sym(s),
        };
        let tys = infer(&p).unwrap();
        assert_eq!(tys[&s], Ty::F64);
    }
}
