//! The DMLL type language.

use std::fmt;

/// A named record type.
///
/// Struct types are nominal: two structs are the same type iff both name and
/// field list agree. The AoS→SoA and dead-field-elimination passes rewrite
/// values of these types into flat arrays of primitives.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StructTy {
    /// Type name (e.g. `"LineItem"`).
    pub name: String,
    /// Ordered `(field name, field type)` pairs.
    pub fields: Vec<(String, Ty)>,
}

impl StructTy {
    /// Create a struct type from name and fields.
    pub fn new(name: impl Into<String>, fields: Vec<(String, Ty)>) -> StructTy {
        StructTy {
            name: name.into(),
            fields,
        }
    }

    /// Look up the type of a field by name.
    pub fn field_ty(&self, field: &str) -> Option<&Ty> {
        self.fields.iter().find(|(n, _)| n == field).map(|(_, t)| t)
    }

    /// Position of a field within the struct.
    pub fn field_index(&self, field: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == field)
    }
}

/// The type of a DMLL expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE float.
    F64,
    /// Boolean.
    Bool,
    /// Immutable string.
    Str,
    /// The unit type.
    Unit,
    /// Fixed arity heterogeneous tuple.
    Tuple(Vec<Ty>),
    /// Variable-length homogeneous collection (`Coll[V]` in the paper).
    Arr(Box<Ty>),
    /// Result of a bucket generator: dense per-bucket values of the element
    /// type, plus the key directory that maps keys to bucket indices.
    ///
    /// `BucketCollect` produces `Buckets { key, value: Arr(V) }` and
    /// `BucketReduce` produces `Buckets { key, value: V }`.
    Buckets {
        /// Key type (`K` in the paper).
        key: Box<Ty>,
        /// Per-bucket value type.
        value: Box<Ty>,
    },
    /// Named record.
    Struct(StructTy),
}

impl Ty {
    /// Shorthand for `Arr`.
    pub fn arr(elem: Ty) -> Ty {
        Ty::Arr(Box::new(elem))
    }

    /// Shorthand for `Buckets`.
    pub fn buckets(key: Ty, value: Ty) -> Ty {
        Ty::Buckets {
            key: Box::new(key),
            value: Box::new(value),
        }
    }

    /// Element type if this is an array.
    pub fn elem(&self) -> Option<&Ty> {
        match self {
            Ty::Arr(e) => Some(e),
            _ => None,
        }
    }

    /// True for `I64`/`F64`/`Bool` — the types a GPU reduction can keep in
    /// shared memory (the motivation for the Row-to-Column Reduce rule).
    pub fn is_scalar(&self) -> bool {
        matches!(self, Ty::I64 | Ty::F64 | Ty::Bool)
    }

    /// True for numeric scalars.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Ty::I64 | Ty::F64)
    }

    /// Rough per-element byte width used by the runtime cost model.
    pub fn byte_width(&self) -> usize {
        match self {
            Ty::I64 | Ty::F64 => 8,
            Ty::Bool => 1,
            Ty::Str => 16,
            Ty::Unit => 0,
            Ty::Tuple(ts) => ts.iter().map(Ty::byte_width).sum(),
            // Arrays and buckets are headers; payload is accounted separately.
            Ty::Arr(_) | Ty::Buckets { .. } => 16,
            Ty::Struct(s) => s.fields.iter().map(|(_, t)| t.byte_width()).sum(),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I64 => write!(f, "Int"),
            Ty::F64 => write!(f, "Double"),
            Ty::Bool => write!(f, "Bool"),
            Ty::Str => write!(f, "String"),
            Ty::Unit => write!(f, "Unit"),
            Ty::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Ty::Arr(e) => write!(f, "Coll[{e}]"),
            Ty::Buckets { key, value } => write!(f, "Buckets[{key}, {value}]"),
            Ty::Struct(s) => write!(f, "{}", s.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Ty::arr(Ty::F64).to_string(), "Coll[Double]");
        assert_eq!(
            Ty::buckets(Ty::I64, Ty::arr(Ty::F64)).to_string(),
            "Buckets[Int, Coll[Double]]"
        );
        assert_eq!(
            Ty::Tuple(vec![Ty::I64, Ty::Bool]).to_string(),
            "(Int, Bool)"
        );
    }

    #[test]
    fn struct_lookup() {
        let s = StructTy::new(
            "LineItem",
            vec![("quantity".into(), Ty::F64), ("status".into(), Ty::I64)],
        );
        assert_eq!(s.field_ty("status"), Some(&Ty::I64));
        assert_eq!(s.field_index("quantity"), Some(0));
        assert_eq!(s.field_ty("missing"), None);
    }

    #[test]
    fn scalar_predicate() {
        assert!(Ty::F64.is_scalar());
        assert!(!Ty::arr(Ty::F64).is_scalar());
        assert!(Ty::I64.is_numeric());
        assert!(!Ty::Bool.is_numeric());
    }

    #[test]
    fn byte_widths() {
        assert_eq!(Ty::F64.byte_width(), 8);
        assert_eq!(Ty::Tuple(vec![Ty::I64, Ty::Bool]).byte_width(), 9);
        let s = StructTy::new("P", vec![("a".into(), Ty::F64), ("b".into(), Ty::F64)]);
        assert_eq!(Ty::Struct(s).byte_width(), 16);
    }

    #[test]
    fn elem_accessor() {
        assert_eq!(Ty::arr(Ty::I64).elem(), Some(&Ty::I64));
        assert_eq!(Ty::I64.elem(), None);
    }
}
