//! Whole programs and input declarations.

use crate::block::Block;
use crate::exp::{Exp, Sym};
use crate::ty::Ty;
use std::fmt;

/// The user-provided data layout annotation on a program input (§4.1).
///
/// The paper obtains this from annotations on data sources (file readers);
/// everything else is derived by the partitioning analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum LayoutHint {
    /// Allocate entirely in one memory region (default).
    #[default]
    Local,
    /// Spread across memory regions / machines.
    Partitioned,
}

impl fmt::Display for LayoutHint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutHint::Local => write!(f, "Local"),
            LayoutHint::Partitioned => write!(f, "Partitioned"),
        }
    }
}

/// A program input: a named, typed, layout-annotated data source.
#[derive(Clone, Debug, PartialEq)]
pub struct Input {
    /// The symbol the input binds.
    pub sym: Sym,
    /// Human-readable name (used by the interpreter to bind data and by the
    /// printers).
    pub name: String,
    /// The input's type.
    pub ty: Ty,
    /// User layout annotation.
    pub layout: LayoutHint,
}

/// A complete DMLL program: inputs plus a top-level block.
///
/// The program owns the symbol generator; all passes allocate fresh symbols
/// through [`Program::fresh`], which keeps symbols globally unique.
#[derive(Clone, Debug)]
pub struct Program {
    /// Declared inputs.
    pub inputs: Vec<Input>,
    /// Top-level computation; its free variables are exactly the input
    /// symbols.
    pub body: Block,
    next_sym: u32,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program {
            inputs: Vec::new(),
            body: Block::ret(vec![], Exp::unit()),
            next_sym: 0,
        }
    }

    /// Allocate a fresh, never-before-used symbol.
    pub fn fresh(&mut self) -> Sym {
        let s = Sym(self.next_sym);
        self.next_sym += 1;
        s
    }

    /// Declare an input and return its symbol.
    pub fn add_input(&mut self, name: impl Into<String>, ty: Ty, layout: LayoutHint) -> Sym {
        let sym = self.fresh();
        self.inputs.push(Input {
            sym,
            name: name.into(),
            ty,
            layout,
        });
        sym
    }

    /// Find an input by name.
    pub fn input(&self, name: &str) -> Option<&Input> {
        self.inputs.iter().find(|i| i.name == name)
    }

    /// Find the input bound to `sym`.
    pub fn input_by_sym(&self, sym: Sym) -> Option<&Input> {
        self.inputs.iter().find(|i| i.sym == sym)
    }

    /// The value of the symbol counter; symbols `>= next_sym_id()` are
    /// guaranteed unused.
    pub fn next_sym_id(&self) -> u32 {
        self.next_sym
    }

    /// Advance the symbol counter to at least `bound`. Useful when splicing
    /// externally constructed fragments into a program.
    pub fn reserve_syms(&mut self, bound: u32) {
        self.next_sym = self.next_sym.max(bound);
    }
}

impl Default for Program {
    fn default() -> Self {
        Program::new()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::printer::print_program(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_is_unique() {
        let mut p = Program::new();
        let a = p.fresh();
        let b = p.fresh();
        assert_ne!(a, b);
        assert_eq!(p.next_sym_id(), 2);
    }

    #[test]
    fn inputs_lookup() {
        let mut p = Program::new();
        let m = p.add_input("matrix", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let c = p.add_input("clusters", Ty::arr(Ty::F64), LayoutHint::Local);
        assert_eq!(p.input("matrix").unwrap().sym, m);
        assert_eq!(p.input_by_sym(c).unwrap().name, "clusters");
        assert_eq!(p.input("nope"), None);
        assert_eq!(p.input("matrix").unwrap().layout, LayoutHint::Partitioned);
    }

    #[test]
    fn reserve_only_grows() {
        let mut p = Program::new();
        p.fresh();
        p.reserve_syms(10);
        assert_eq!(p.next_sym_id(), 10);
        p.reserve_syms(5);
        assert_eq!(p.next_sym_id(), 10);
    }

    #[test]
    fn layout_default_is_local() {
        assert_eq!(LayoutHint::default(), LayoutHint::Local);
        assert_eq!(LayoutHint::Partitioned.to_string(), "Partitioned");
    }
}
