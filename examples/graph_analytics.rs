//! Graph analytics: PageRank (push and pull) and Triangle Counting.
//!
//! Demonstrates the part of the design space where partitioning is
//! *fundamentally* communication-bound: the pull model's neighbor gather is
//! an `Unknown` read stencil that no Figure 3 rule can repair, so the
//! analysis warns and the runtime falls back to trapped remote reads
//! (demonstrated live on a `DistArray`).
//!
//! ```sh
//! cargo run --example graph_analytics
//! ```

use dmll::apps::{pagerank, triangles};
use dmll::baselines::handopt;
use dmll::data::graph::rmat;
use dmll::runtime::{DistArray, Location, RuntimeError};

fn main() -> Result<(), RuntimeError> {
    let g = rmat(9, 8, 11);
    let n = g.num_vertices();
    println!("R-MAT graph: {} vertices, {} edges", n, g.num_edges());

    // Pull vs push: same ranks, different communication structure.
    let ranks = vec![1.0 / n as f64; n];
    let pull = pagerank::stage_pagerank_pull(0.85);
    let push = pagerank::stage_pagerank_push(0.85);
    let a = pagerank::run(&pull, &pagerank::inputs_pull(&g, &ranks)).expect("pull");
    let b = pagerank::run(&push, &pagerank::inputs_push(&g, &ranks)).expect("push");
    let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
    println!("pull vs push PageRank: |Δ| = {diff:.2e} (same computation, different model)");

    // The analysis recognizes the fundamental random access.
    let mut p = pagerank::stage_pagerank_pull(0.85);
    let analysis = dmll::analysis::analyze(&mut p);
    let ranks_sym = p.input("ranks").expect("ranks input").sym;
    println!(
        "pull-model ranks stencil: {:?}; warnings: {}",
        analysis.stencils.global_of(ranks_sym),
        analysis.partition.warnings.len()
    );

    // The distributed-array runtime traps exactly those non-local reads.
    let locations: Vec<Location> = (0..4).map(|s| Location { node: 0, socket: s }).collect();
    let dist_ranks = DistArray::partition(ranks.clone(), &locations);
    let me = Location { node: 0, socket: 0 };
    let mut sum = 0.0;
    for v in 0..64 {
        for &u in g.neighbors(v) {
            sum += dist_ranks.try_read(me, u as usize)?; // trapped when remote
        }
    }
    let (local, remote, bytes) = dist_ranks.stats().snapshot();
    println!(
        "gather from socket 0 over 64 vertices: {local} local reads, {remote} remote reads \
         ({bytes} bytes fetched), checksum {sum:.4}"
    );

    // Triangle counting, validated against the native intersection counter.
    let sym = g.symmetrized();
    let tri_program = triangles::stage_triangles();
    let got = triangles::run(&tri_program, &sym).expect("triangles");
    let want = handopt::triangles(&sym);
    assert_eq!(got, want);
    println!("triangles: {got} (matches the hand-optimized intersection count)");

    // Ten PageRank iterations to convergence.
    let mut r = vec![1.0 / n as f64; n];
    for _ in 0..10 {
        r = pagerank::run(&pull, &pagerank::inputs_pull(&g, &r)).expect("iterate");
    }
    let mut top: Vec<(usize, f64)> = r.iter().copied().enumerate().collect();
    top.sort_by(|x, y| y.1.total_cmp(&x.1));
    println!("top-5 vertices by rank: {:?}", &top[..5]);
    Ok(())
}
