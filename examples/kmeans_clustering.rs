//! k-means end to end — the paper's running example (Figure 1).
//!
//! Stages the shared-memory formulation, shows the Conditional Reduce +
//! fusion pipeline turning it into the distributed-friendly Figure 5 form,
//! then trains until convergence and validates against the hand-optimized
//! native implementation.
//!
//! ```sh
//! cargo run --example kmeans_clustering
//! ```

use dmll::apps::kmeans;
use dmll::baselines::handopt;
use dmll::data::matrix::gaussian_clusters;
use dmll::ir::printer::count_loops;
use dmll::transform::{pipeline, Target};

fn main() {
    let (rows, cols, k) = (600, 4, 4);
    let (x, seeds, truth) = gaussian_clusters(rows, cols, k, 0.3, 42);

    // Stage one iteration as the user writes it (Figure 1, top half).
    let mut program = kmeans::stage_kmeans(k as i64);
    println!("staged k-means: {} loops", count_loops(&program));

    // Optimize for a cluster: Conditional Reduce fires twice (sums and
    // counts), horizontal fusion merges them into one traversal, pipeline
    // fusion folds the assignment in — Figure 5.
    let report = pipeline::optimize(&mut program, Target::Cluster);
    println!("optimizations: {}", report.summary());
    println!("optimized k-means: {} loops", count_loops(&program));

    // Distribution analysis (Figure 4's conclusions).
    let analysis = dmll::analysis::analyze(&mut program);
    for input in &program.inputs {
        println!(
            "  {:10} -> {:?}",
            input.name,
            analysis.partition.layout_of(input.sym)
        );
    }

    // Iterate to convergence, validating every step against the native
    // implementation.
    let mut cents = seeds;
    for iter in 0..10 {
        let (next, assigned) = kmeans::run(&program, &x, &cents).expect("iteration");
        let (native_next, native_assigned) = handopt::kmeans_iter(&x, &cents);
        assert_eq!(assigned, native_assigned, "assignment mismatch at {iter}");
        let drift: f64 = next
            .data
            .iter()
            .zip(&native_next.data)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(drift < 1e-9, "centroid mismatch at {iter}: {drift}");
        let moved: f64 = next
            .data
            .iter()
            .zip(&cents.data)
            .map(|(a, b)| (a - b).abs())
            .sum();
        cents = next;
        println!("iter {iter}: centroid movement {moved:.6}");
        if moved < 1e-9 {
            break;
        }
    }

    // Agreement with the generating clusters.
    let (_, assigned) = kmeans::run(&program, &x, &cents).expect("final assignment");
    let agree = assigned.iter().zip(&truth).filter(|(a, t)| a == t).count();
    println!(
        "agreement with ground truth: {agree}/{rows} ({:.1}%)",
        100.0 * agree as f64 / rows as f64
    );
}
