//! Fault tolerance, end to end: a seeded `FaultPlan` kills a node and
//! drops remote reads mid-run, and the multiloop runtime recovers to
//! bit-identical results — because a multiloop "is agnostic to whether it
//! runs over the entire loop bounds or a subset of the loop bounds" (§5),
//! a dead chunk's subrange simply re-executes on a survivor.
//!
//! ```sh
//! cargo run --example fault_tolerance
//! ```

use dmll::frontend::Stage;
use dmll::interp::{eval_parallel, eval_parallel_report, ChunkFaults, ParallelOptions, Value};
use dmll::ir::{LayoutHint, Ty};
use dmll::runtime::schedule::node_directory;
use dmll::runtime::{
    plan_loop, simulate_loops_degraded, ClusterSpec, DistArray, ExecMode, FaultInjector,
    FaultModel, FaultPlan, Location, MachineSpec, RetryPolicy,
};
use std::sync::Arc;

fn main() {
    // A multiloop pipeline with an order-sensitive Collect and a Reduce.
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let scaled = st.map(&x, |st, e| {
        let three = st.lit_i(3);
        st.mul(e, &three)
    });
    let total = st.sum(&scaled);
    let pair = st.tuple(&[&scaled, &total]);
    let program = st.finish(&pair);
    let data: Vec<i64> = (0..100_000).rev().collect();

    // 1. Fault-free parallel run.
    let clean = eval_parallel(&program, &[("x", Value::i64_arr(data.clone()))], 4).unwrap();

    // 2. The same run with chunks 0 and 2 dying mid-loop as real worker
    //    panics; their subranges re-execute.
    let faults = ChunkFaults::fail_once([0, 2]).panicking();
    let opts = ParallelOptions::new(4).with_faults(faults);
    let (recovered, report) =
        eval_parallel_report(&program, &[("x", Value::i64_arr(data.clone()))], &opts).unwrap();
    println!("chunk recovery: {report:?}");
    println!(
        "recovered == fault-free: {} (Collect order preserved, bit-identical)",
        recovered == clean
    );
    assert_eq!(recovered, clean);

    // 3. Runtime layer: a scripted node death plus flaky network.
    let plan = FaultPlan::new(0xFA17).kill_node(1, 1).drop_remote_reads(0.3);
    let injector = Arc::new(FaultInjector::new(plan));
    let locations: Vec<Location> = (0..4).map(|node| Location { node, socket: 0 }).collect();
    let arr = DistArray::partition(data, &locations).with_faults(Arc::clone(&injector));

    // Everything reads from node 0, so 3/4 of reads are remote and exposed
    // to the 30% per-attempt drop rate. The default policy's 4 attempts
    // would still time out on ~0.3^4 ≈ 0.8% of reads — at 75k remote reads
    // that's hundreds of failures — so size the budget to the drop rate.
    let here = Location { node: 0, socket: 0 };
    let policy = RetryPolicy {
        max_attempts: 16,
        ..RetryPolicy::default()
    };
    let mut sum = 0i64;
    for i in 0..arr.len() {
        sum += arr.read_retrying(here, i, &policy).unwrap();
    }
    let stats = arr.stats().fault_snapshot();
    println!("flaky-network sum with retries: {sum}, {stats:?}");

    // Node 1 dies; replanning moves its iteration ranges to the survivors,
    // preserving coverage exactly.
    injector.advance_step();
    let cluster = ClusterSpec {
        nodes: 4,
        ..ClusterSpec::single(MachineSpec::m1_xlarge())
    };
    let dir = node_directory(&arr.directory());
    let schedule = plan_loop(arr.len() as i64, &cluster, Some(&dir), 2);
    let failed = injector.failed_nodes();
    let replanned = schedule.replan(&failed, &cluster, None).unwrap();
    println!(
        "node {failed:?} died at step {}: {} chunks reassigned, covers all {} iterations: {}",
        injector.step(),
        replanned.reassigned_chunks,
        arr.len(),
        replanned.covers(arr.len() as i64)
    );

    // 4. What does the failure cost? The degraded-mode simulator prices a
    //    20-node cluster losing 3 nodes halfway through.
    let mut p2 = program.clone();
    let analysis = dmll::analysis::analyze(&mut p2);
    let shapes = vec![("x", dmll::runtime::ShapeVal::i64_arr(2_000_000))];
    let profiles = dmll::runtime::profile_program(&p2, &analysis, &shapes, &Default::default());
    let sim = simulate_loops_degraded(
        &profiles,
        &ClusterSpec::amazon_20(),
        &ExecMode::Cluster,
        &FaultModel {
            failed_nodes: 3,
            completed_before_failure: 0.5,
            replan_overhead: 1e-3,
        },
    );
    println!(
        "degraded mode, 3 of 20 nodes lost: {:.4}s -> {:.4}s ({:.2}x slowdown, {:.4}s recovery)",
        sim.fault_free.total(),
        sim.degraded.total(),
        sim.slowdown(),
        sim.recovery_seconds()
    );
}
