//! TPC-H Query 1 end to end: the data-querying flagship.
//!
//! Shows the whole §3–§5 story on one program: a filter feeding five
//! grouped aggregations collapses into a single `BucketReduce` traversal,
//! the record input splits into primitive columns (AoS→SoA), the unused
//! columns disappear (dead field elimination), and the result matches the
//! hand-optimized native implementation. Also prints the generated C++.
//!
//! ```sh
//! cargo run --example tpch_query1
//! ```

use dmll::apps::q1;
use dmll::baselines::handopt;
use dmll::data::tpch;
use dmll::ir::printer::count_loops;
use dmll::transform::{pipeline, Target};

fn main() {
    let rows = tpch::gen_lineitems(50_000, 7);
    let cols = tpch::to_columns(&rows);

    let mut program = q1::stage_q1();
    println!(
        "staged Query 1: {} loops over Coll[LineItem]",
        count_loops(&program)
    );

    let report = pipeline::optimize(&mut program, Target::Cpu);
    println!("optimizations: {}", report.summary());
    println!("optimized Query 1: {} loop", count_loops(&program));
    println!(
        "inputs after AoS→SoA + DFE: {:?}",
        program
            .inputs
            .iter()
            .map(|i| i.name.as_str())
            .collect::<Vec<_>>()
    );

    let got = q1::run(&program, &cols).expect("query");
    let want = handopt::q1(&cols);
    println!("\nflag status      sum_qty   sum_disc_price      count");
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.count, w.count);
        assert!((g.sum_qty - w.sum_qty).abs() < 1e-6);
        println!(
            "{:>4} {:>6} {:>12.1} {:>16.2} {:>10}",
            g.key / 2,
            g.key % 2,
            g.sum_qty,
            g.sum_disc_price,
            g.count
        );
    }
    println!("\nvalidated against the hand-optimized implementation ✓");

    println!("\n=== generated C++ (bucket section) ===");
    let cpp = dmll::codegen::emit_cpp(&program);
    for line in cpp
        .lines()
        .filter(|l| l.contains("slot") || l.contains("pragma"))
    {
        println!("{line}");
    }
}
