//! Logistic regression across heterogeneous targets — the paper's
//! loop-interchange story (§3.2).
//!
//! The same textbook source is compiled three ways: as written (nested
//! scalar reductions), Column-to-Row vectorized for a cluster, and
//! Row-to-Column scalarized again for the GPU kernel — then simulated on
//! the paper's testbeds to show where each layout wins.
//!
//! ```sh
//! cargo run --example heterogeneous_logreg
//! ```

use dmll::apps::logreg;
use dmll::data::matrix::labeled_binary;
use dmll::runtime::{simulate_loops, ClusterSpec, ExecMode, GpuTuning, MachineSpec};
use dmll::transform::{pipeline, Target};
use dmll_bench::workloads::{profiles_without_repair, App, DataScale};

fn main() {
    // Train for real on small data, validating the three compiled forms
    // against each other.
    let (x, y) = labeled_binary(200, 6, 5);
    let theta0 = vec![0.0; 6];

    let textbook = logreg::stage_logreg(0.1);
    let mut cluster_form = logreg::stage_logreg(0.1);
    let report = pipeline::optimize(&mut cluster_form, Target::Cluster);
    println!("cluster recipe: {}", report.summary());
    let mut gpu_form = cluster_form.clone();
    let report = pipeline::optimize(&mut gpu_form, Target::Gpu);
    println!("gpu recipe:     {}", report.summary());

    let a = logreg::run(&textbook, &x, &y, &theta0).expect("textbook");
    let b = logreg::run(&cluster_form, &x, &y, &theta0).expect("cluster form");
    let c = logreg::run(&gpu_form, &x, &y, &theta0).expect("gpu form");
    let drift = |u: &[f64], v: &[f64]| -> f64 { u.iter().zip(v).map(|(p, q)| (p - q).abs()).sum() };
    println!(
        "three compiled forms agree: |textbook-cluster| = {:.2e}, |textbook-gpu| = {:.2e}",
        drift(&a, &b),
        drift(&a, &c)
    );

    // The CUDA backend accepts the scalarized form but rejects the
    // vectorized one.
    match dmll::codegen::emit_cuda(&cluster_form) {
        Err(e) => println!("\nCUDA on the vectorized form: {e}"),
        Ok(_) => println!("\nCUDA accepted the vectorized form"),
    }
    assert!(dmll::codegen::emit_cuda(&gpu_form).is_ok());
    println!("CUDA on the Row-to-Column form: ok (shared-memory scalar reduction)");

    // Simulated performance at paper scale (500k x 100).
    let scale = DataScale {
        rows: 500_000,
        cols: 100,
        buckets: 2,
    };
    let numa = ClusterSpec::single(MachineSpec::numa_4x12());
    let built = App::LogReg.build(Target::Cluster, &scale);
    let untrans = App::LogReg.build_untransformed(&scale);
    let t =
        |p: &[dmll::runtime::LoopProfile], mode: &ExecMode| simulate_loops(p, &numa, mode).total();
    println!("\nsimulated on the 4-socket machine (one gradient step):");
    println!(
        "  as written,   48 cores: {:>8.4}s",
        t(&untrans.profiles, &ExecMode::DmllNumaAware { cores: 48 })
    );
    println!(
        "  vectorized,   48 cores: {:>8.4}s",
        t(&built.profiles, &ExecMode::DmllNumaAware { cores: 48 })
    );
    let gpu_cluster = ClusterSpec::gpu_4();
    let mut gp = built.program.clone();
    pipeline::Optimizer::new(Target::Gpu).run(&mut gp);
    let gpu_profiles = profiles_without_repair(App::LogReg, &gp, &scale);
    let gpu_time = simulate_loops(
        &gpu_profiles,
        &gpu_cluster,
        &ExecMode::Gpu {
            tuning: GpuTuning { transposed: true },
            amortized_iters: 100.0,
        },
    )
    .total();
    println!("  scalarized on one GPU:  {gpu_time:>8.4}s (transposed, shared-memory reduce)");
}
