//! Quickstart: stage a data-parallel pipeline, optimize it, inspect what
//! the compiler did, and run it three ways (sequential interpreter,
//! multithreaded executor, C++ code generator).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dmll::frontend::Stage;
use dmll::interp::{eval, eval_parallel, Value};
use dmll::ir::printer::count_loops;
use dmll::ir::{LayoutHint, Ty};
use dmll::transform::{pipeline, Target};

fn main() {
    // 1. Stage: an implicitly parallel pipeline over a "partitioned" input,
    //    written exactly as the paper's Scala-like listings.
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
    let scaled = st.map(&x, |st, e| {
        let c = st.lit_f(0.5);
        st.mul(e, &c)
    });
    let positives = st.filter(&scaled, |st, e| {
        let zero = st.lit_f(0.0);
        st.gt(e, &zero)
    });
    let total = st.sum(&positives);
    let mut program = st.finish(&total);

    println!(
        "=== staged program ({} loops) ===\n{program}",
        count_loops(&program)
    );

    // 2. Optimize: pipeline fusion folds map → filter → sum into ONE
    //    traversal with the filter as the generator condition.
    let report = pipeline::optimize(&mut program, Target::Cpu);
    println!("=== optimizations: {} ===", report.summary());
    println!(
        "=== optimized program ({} loop) ===\n{program}",
        count_loops(&program)
    );

    // 3. Analyze: what would the distributed runtime do with it?
    let analysis = dmll::analysis::analyze(&mut program);
    for input in &program.inputs {
        println!(
            "input {:12} layout={:?} stencil={:?}",
            input.name,
            analysis.partition.layout_of(input.sym),
            analysis.stencils.global_of(input.sym),
        );
    }

    // 4. Execute, sequentially and with the chunked parallel executor.
    let data: Vec<f64> = (0..1_000_000).map(|i| ((i % 101) as f64) - 50.0).collect();
    let seq = eval(&program, &[("x", Value::f64_arr(data.clone()))]).expect("eval");
    let par = eval_parallel(&program, &[("x", Value::f64_arr(data))], 4).expect("eval");
    println!("\nsequential result: {seq}");
    println!("parallel (4 threads): {par}");

    // 5. Generate C++-flavoured code for the optimized program.
    let cpp = dmll::codegen::emit_cpp(&program);
    println!("\n=== generated C++ (first 30 lines) ===");
    for line in cpp.lines().take(30) {
        println!("{line}");
    }
}
