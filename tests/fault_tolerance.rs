//! End-to-end fault tolerance: a seeded `FaultPlan` kills nodes mid-loop,
//! and the system recovers to *bit-identical* results — because a multiloop
//! "is agnostic to whether it runs over the entire loop bounds or a subset
//! of the loop bounds" (§5), a dead chunk's subrange simply re-executes on
//! a survivor. The recovery cost is observable, not just logged:
//! `TransferStats` counts retries/failures, and the cost simulator's
//! degraded mode prices the slowdown.

use dmll::frontend::Stage;
use dmll::interp::{
    eval_parallel, eval_parallel_report, ChunkFaults, ParallelOptions, Value,
};
use dmll::ir::{LayoutHint, Ty};
use dmll::runtime::schedule::node_directory;
use dmll::runtime::{
    plan_loop, simulate_loops_degraded, ClusterSpec, DistArray, ExecMode, FaultInjector,
    FaultModel, FaultPlan, Location, MachineSpec, RetryPolicy, RuntimeError, SchedulePlan,
};
use std::sync::Arc;

const NODES: usize = 4;

fn cluster() -> ClusterSpec {
    ClusterSpec {
        nodes: NODES,
        ..ClusterSpec::single(MachineSpec::m1_xlarge())
    }
}

fn locations() -> Vec<Location> {
    (0..NODES).map(|node| Location { node, socket: 0 }).collect()
}

/// A multiloop pipeline with both a Collect output (order-sensitive) and a
/// Reduce output, over a partitioned input.
fn pipeline() -> dmll::ir::Program {
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let scaled = st.map(&x, |st, e| {
        let three = st.lit_i(3);
        st.mul(e, &three)
    });
    let total = st.sum(&scaled);
    let pair = st.tuple(&[&scaled, &total]);
    st.finish(&pair)
}

/// The FaultPlan is the single source of truth for which nodes die; the
/// interpreter maps dead nodes to their chunk indices (chunk i of a
/// node-aligned schedule runs on node i).
#[test]
fn node_loss_mid_loop_recovers_to_identical_results() {
    let program = pipeline();
    let data: Vec<i64> = (0..10_007).rev().collect();
    let clean = eval_parallel(&program, &[("x", Value::i64_arr(data.clone()))], NODES).unwrap();

    // Seeded plan: node 2 dies at step 1 (mid-loop, after work started).
    let plan = FaultPlan::new(0xFA17).kill_node(2, 1);
    let injector = FaultInjector::new(plan.clone());
    injector.advance_step();
    let dead = injector.failed_nodes();
    assert_eq!(dead, vec![2], "the scripted death is live mid-loop");

    let opts = ParallelOptions::new(NODES).with_faults(ChunkFaults::fail_once(dead).panicking());
    let (recovered, report) =
        eval_parallel_report(&program, &[("x", Value::i64_arr(data))], &opts).unwrap();
    assert_eq!(recovered, clean, "recovery is bit-identical (Collect order kept)");
    assert!(report.failed_executions >= 1, "{report:?}");
    assert!(report.reexecuted_chunks >= 1, "{report:?}");
}

/// Execute an element-wise sum over the distributed array following `plan`,
/// skipping chunks on nodes the injector has killed; returns the partial
/// sum and the chunks that were lost.
fn run_schedule(
    plan: &SchedulePlan,
    arr: &DistArray<i64>,
    injector: &FaultInjector,
    policy: &RetryPolicy,
) -> (i64, Vec<usize>) {
    let mut sum = 0i64;
    let mut lost = Vec::new();
    for (ci, chunk) in plan.chunks.iter().enumerate() {
        if injector.node_is_down(chunk.node) {
            lost.push(ci);
            continue;
        }
        let here = Location {
            node: chunk.node,
            socket: 0,
        };
        for i in chunk.range.0..chunk.range.1 {
            sum += arr.read_retrying(here, i as usize, policy).unwrap();
        }
    }
    (sum, lost)
}

/// Full runtime-side story: an aligned schedule starts, a node dies
/// mid-loop, the survivors take over the dead node's iteration ranges via
/// `replan` against the post-failure directory, and the total matches the
/// fault-free run exactly.
#[test]
fn replan_after_node_death_matches_fault_free_sum() {
    let data: Vec<i64> = (0..20_000).map(|i| i * 7 % 1_003).collect();
    let expected: i64 = data.iter().sum();

    let cluster = cluster();
    let plan_seeded = FaultPlan::new(99).kill_node(1, 1);
    let injector = Arc::new(FaultInjector::new(plan_seeded));

    let arr = DistArray::partition(data.clone(), &locations()).with_faults(Arc::clone(&injector));
    let dir = node_directory(&arr.directory());
    let schedule = plan_loop(20_000, &cluster, Some(&dir), 2);
    assert!(schedule.aligned_to_data);

    // The loop starts; after one scheduling step node 1 is gone.
    injector.advance_step();
    let policy = RetryPolicy::default();
    let (partial, lost) = run_schedule(&schedule, &arr, &injector, &policy);
    assert!(!lost.is_empty(), "node 1's chunks were lost mid-loop");

    // Recovery: the input is re-partitioned across the survivors (the
    // paper's runtime re-loads partitioned input on survivors; no lineage
    // needed), the schedule is replanned against the new directory, and
    // only the lost subranges re-execute.
    let failed = injector.failed_nodes();
    assert_eq!(failed, vec![1]);
    let survivors: Vec<Location> = locations()
        .into_iter()
        .filter(|l| !failed.contains(&l.node))
        .collect();
    let arr2 = DistArray::partition(data, &survivors);
    let dir2 = node_directory(&arr2.directory());
    let replanned = schedule.replan(&failed, &cluster, Some(&dir2)).unwrap();
    assert!(replanned.covers(20_000));
    assert!(replanned.reassigned_chunks > 0, "work moved off the dead node");

    let mut recovered = 0i64;
    for &ci in &lost {
        let chunk = replanned.chunks[ci];
        assert!(!failed.contains(&chunk.node));
        let here = Location {
            node: chunk.node,
            socket: 0,
        };
        for i in chunk.range.0..chunk.range.1 {
            recovered += arr2.read_retrying(here, i as usize, &policy).unwrap();
        }
    }
    assert_eq!(partial + recovered, expected, "identical to the fault-free run");

    // The failure was observed, not silent: reads that reached the dead
    // node were counted as failures... none here because the schedule was
    // aligned (dead chunks were skipped, not read remotely). Force one to
    // check the counter:
    let here = Location { node: 0, socket: 0 };
    let idx = dir[1].0 as usize; // owned by dead node 1
    let err = arr.read_retrying(here, idx, &policy).unwrap_err();
    assert_eq!(err, RuntimeError::NodeFailed { node: 1 });
    assert!(arr.stats().fault_snapshot().failed_reads >= 1);
}

/// Transient remote-read drops: the retry layer pays backoff but recovers
/// every read, and each counter surfaces in `TransferStats`.
#[test]
fn transient_drops_are_retried_and_counted() {
    let data: Vec<i64> = (0..4_000).collect();
    let expected: i64 = data.iter().sum();
    let injector = Arc::new(FaultInjector::new(
        FaultPlan::new(7).drop_remote_reads(0.4),
    ));
    let arr = DistArray::partition(data, &locations()).with_faults(injector);

    // A deliberately misaligned schedule: everything reads from node 0, so
    // 3/4 of the reads are remote and exposed to drops.
    let here = Location { node: 0, socket: 0 };
    let policy = RetryPolicy {
        max_attempts: 16,
        base_backoff_nanos: 500,
        max_backoff_nanos: 8_000,
    };
    let mut sum = 0i64;
    for i in 0..4_000 {
        sum += arr.read_retrying(here, i, &policy).unwrap();
    }
    assert_eq!(sum, expected, "every read eventually succeeded");
    let stats = arr.stats().fault_snapshot();
    assert!(stats.retries > 100, "{stats:?}");
    assert!(stats.recovered_reads > 100, "{stats:?}");
    assert_eq!(stats.failed_reads, 0, "{stats:?}");
    assert!(stats.backoff_nanos > 0, "{stats:?}");
    let (local, remote, _) = arr.stats().snapshot();
    assert!(remote > local, "misalignment made most reads remote");
}

/// The degraded-mode simulator prices the recovery: losing nodes mid-run
/// costs real time, scaling with how many died, and the replan overhead is
/// visible in the breakdown.
#[test]
fn degraded_mode_cost_surfaces_recovery() {
    let mut program = pipeline();
    let analysis = dmll::analysis::analyze(&mut program);
    let inputs = vec![("x", dmll::runtime::ShapeVal::i64_arr(2_000_000))];
    let profiles =
        dmll::runtime::profile_program(&program, &analysis, &inputs, &Default::default());
    assert!(!profiles.is_empty());

    let amazon = ClusterSpec::amazon_20();
    let mut last = 1.0;
    for failed in [1usize, 4, 10] {
        let sim = simulate_loops_degraded(
            &profiles,
            &amazon,
            &ExecMode::Cluster,
            &FaultModel {
                failed_nodes: failed,
                completed_before_failure: 0.5,
                replan_overhead: 1e-3,
            },
        );
        assert!(
            sim.slowdown() > last,
            "losing {failed} nodes: slowdown {:.4} must exceed {last:.4}",
            sim.slowdown()
        );
        assert!(sim.recovery_seconds() > 0.0);
        assert!(
            sim.degraded.overhead > sim.fault_free.overhead,
            "replan overhead is visible in the breakdown"
        );
        last = sim.slowdown();
    }
}

/// Losing every node degrades to local execution instead of aborting.
#[test]
fn total_cluster_loss_degrades_to_local() {
    std::env::set_var("DMLL_QUIET", "1");
    let c = cluster();
    let local = c.degrade(&(0..NODES).collect::<Vec<_>>());
    assert_eq!(local.nodes, 1);
    let plan = plan_loop(1_000, &local, None, 1);
    assert!(plan.covers(1_000));
}
