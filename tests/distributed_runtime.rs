//! §5 runtime claims, executed for real on the functional runtime
//! structures: directory-based distributed arrays with trapped remote
//! reads, and the hierarchical scheduler that "moves the computation to the
//! data".

use dmll::runtime::schedule::node_directory;
use dmll::runtime::{plan_loop, ClusterSpec, DistArray, Location, MachineSpec, RuntimeError};

fn cluster() -> ClusterSpec {
    ClusterSpec {
        nodes: 4,
        ..ClusterSpec::single(MachineSpec::m1_xlarge())
    }
}

/// All locations of the 4-node cluster (one socket each).
fn locations() -> Vec<Location> {
    (0..4).map(|node| Location { node, socket: 0 }).collect()
}

/// Execute an element-wise loop over a distributed array according to a
/// schedule plan, reading each index from the executing chunk's location,
/// and report the remote-read count. Reads go through the fallible path so
/// injected cluster faults would surface as typed `RuntimeError`s, not
/// panics.
fn execute_elementwise(
    plan: &dmll::runtime::SchedulePlan,
    arr: &DistArray<f64>,
) -> Result<(f64, u64), RuntimeError> {
    let mut sum = 0.0;
    for chunk in &plan.chunks {
        let here = Location {
            node: chunk.node,
            socket: 0,
        };
        for i in chunk.range.0..chunk.range.1 {
            sum += arr.try_read(here, i as usize)?;
        }
    }
    let (_, remote, _) = arr.stats().snapshot();
    Ok((sum, remote))
}

#[test]
fn aligned_schedule_has_zero_remote_reads() -> Result<(), RuntimeError> {
    let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
    let expected: f64 = data.iter().sum();
    let arr = DistArray::partition(data, &locations());
    let dir = node_directory(&arr.directory());
    let plan = plan_loop(10_000, &cluster(), Some(&dir), 2);
    assert!(plan.aligned_to_data);
    assert!(plan.covers(10_000));
    let (sum, remote) = execute_elementwise(&plan, &arr)?;
    assert_eq!(sum, expected);
    assert_eq!(remote, 0, "computation moved to the data: all reads local");
    Ok(())
}

#[test]
fn misaligned_schedule_traps_remote_reads() -> Result<(), RuntimeError> {
    // The same loop scheduled obliviously (even split, but the data is
    // skewed toward node 0) must fetch remotely — and still be correct.
    let data: Vec<f64> = (0..10_000).map(|i| (i % 97) as f64).collect();
    let expected: f64 = data.iter().sum();
    // Skewed ownership: node 0 holds 70% of the data.
    let skewed_locs: Vec<Location> = (0..10)
        .map(|i| Location {
            node: if i < 7 { 0 } else { i - 6 },
            socket: 0,
        })
        .collect();
    let arr = DistArray::partition(data, &skewed_locs);
    // Even split across nodes ignores the directory.
    let plan = plan_loop(10_000, &cluster(), None, 1);
    assert!(!plan.aligned_to_data);
    let (sum, remote) = execute_elementwise(&plan, &arr)?;
    assert_eq!(sum, expected, "remote reads are transparent");
    assert!(
        remote > 1000,
        "oblivious placement pays communication: {remote}"
    );

    // Aligned against the skewed directory: node 0 takes 70% of the work
    // and nothing is remote.
    let arr2 = DistArray::partition((0..10_000).map(|i| (i % 97) as f64).collect(), &skewed_locs);
    let dir = node_directory(&arr2.directory());
    let plan2 = plan_loop(10_000, &cluster(), Some(&dir), 1);
    let (sum2, remote2) = execute_elementwise(&plan2, &arr2)?;
    assert_eq!(sum2, expected);
    assert_eq!(remote2, 0);
    let node0: i64 = plan2
        .chunks
        .iter()
        .filter(|c| c.node == 0)
        .map(|c| c.range.1 - c.range.0)
        .sum();
    assert_eq!(node0, 7_000, "work follows the skewed data");
    Ok(())
}

#[test]
fn directory_is_broadcast_knowledge() -> Result<(), RuntimeError> {
    // Every physical instance can resolve any index's owner purely from the
    // directory, as §5 requires.
    let data: Vec<i64> = (0..1_001).collect();
    let arr = DistArray::partition(data, &locations());
    let dir = arr.directory();
    for i in (0..1_001).step_by(13) {
        let owner = arr.try_owner(i)?;
        let from_dir = dir
            .iter()
            .find(|(s, e, _)| *s <= i && i < *e)
            .map(|(_, _, l)| *l)
            .expect("covered");
        assert_eq!(owner, from_dir);
    }
    Ok(())
}

#[test]
fn gather_style_access_counts_match_cost_model_expectations() -> Result<(), RuntimeError> {
    // A gather with uniformly random targets from one node of a p-node
    // cluster should see ~ (p-1)/p of reads remote — the fraction the cost
    // model charges for Unknown stencils.
    let n = 20_000usize;
    let data: Vec<f64> = vec![1.0; n];
    let arr = DistArray::partition(data, &locations());
    let me = Location { node: 0, socket: 0 };
    let mut x = 123456789u64;
    for _ in 0..n {
        // xorshift
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let idx = (x % n as u64) as usize;
        arr.try_read(me, idx)?;
    }
    let (local, remote, _) = arr.stats().snapshot();
    let frac = remote as f64 / (local + remote) as f64;
    assert!(
        (frac - 0.75).abs() < 0.03,
        "expected ~3/4 remote from one of four nodes, got {frac:.3}"
    );
    Ok(())
}
