//! Property-based tests: for randomly generated data (and randomly chosen
//! pipeline shapes), the optimizer never changes program results, the
//! parallel executor agrees with the sequential one, and staged programs
//! agree with direct Rust computations.

use dmll::frontend::{Stage, Val};
use dmll::interp::{eval, eval_parallel, Value};
use dmll::ir::{LayoutHint, Ty};
use dmll::transform::{pipeline, Target};
use proptest::prelude::*;

/// A small algebra of pipeline stages to compose random programs from.
#[derive(Clone, Copy, Debug)]
enum Op {
    Scale,
    Offset,
    Square,
    FilterPositive,
    FilterSmall,
}

fn apply_staged(st: &mut Stage, arr: &Val, op: Op) -> Val {
    match op {
        Op::Scale => st.map(arr, |st, e| {
            let c = st.lit_f(1.5);
            st.mul(e, &c)
        }),
        Op::Offset => st.map(arr, |st, e| {
            let c = st.lit_f(-2.0);
            st.add(e, &c)
        }),
        Op::Square => st.map(arr, |st, e| st.mul(e, e)),
        Op::FilterPositive => st.filter(arr, |st, e| {
            let z = st.lit_f(0.0);
            st.gt(e, &z)
        }),
        Op::FilterSmall => st.filter(arr, |st, e| {
            let c = st.lit_f(100.0);
            st.lt(e, &c)
        }),
    }
}

fn apply_native(data: Vec<f64>, op: Op) -> Vec<f64> {
    match op {
        Op::Scale => data.into_iter().map(|v| v * 1.5).collect(),
        Op::Offset => data.into_iter().map(|v| v + -2.0).collect(),
        Op::Square => data.into_iter().map(|v| v * v).collect(),
        Op::FilterPositive => data.into_iter().filter(|v| *v > 0.0).collect(),
        Op::FilterSmall => data.into_iter().filter(|v| *v < 100.0).collect(),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Scale),
        Just(Op::Offset),
        Just(Op::Square),
        Just(Op::FilterPositive),
        Just(Op::FilterSmall),
    ]
}

fn build_program(ops: &[Op]) -> dmll::ir::Program {
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
    let mut cur = x;
    for &op in ops {
        cur = apply_staged(&mut st, &cur, op);
    }
    let total = st.sum(&cur);
    st.finish(&total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The optimizer (any target) preserves the result of random pipelines
    /// on random data, bit for bit.
    #[test]
    fn optimizer_preserves_random_pipelines(
        ops in prop::collection::vec(op_strategy(), 1..5),
        data in prop::collection::vec(-50.0f64..50.0, 0..60),
        target_idx in 0usize..4,
    ) {
        let target = [Target::Cpu, Target::Numa, Target::Cluster, Target::Gpu][target_idx];
        let p0 = build_program(&ops);
        let mut p1 = p0.clone();
        pipeline::optimize(&mut p1, target);
        let before = eval(&p0, &[("x", Value::f64_arr(data.clone()))]).unwrap();
        let after = eval(&p1, &[("x", Value::f64_arr(data))]).unwrap();
        prop_assert_eq!(before, after);
    }

    /// Staged pipelines compute exactly what the equivalent Rust iterator
    /// chain computes.
    #[test]
    fn staged_matches_native_iterators(
        ops in prop::collection::vec(op_strategy(), 1..5),
        data in prop::collection::vec(-50.0f64..50.0, 0..60),
    ) {
        let p = build_program(&ops);
        let got = eval(&p, &[("x", Value::f64_arr(data.clone()))]).unwrap();
        let mut cur = data;
        for &op in &ops {
            cur = apply_native(cur, op);
        }
        let want: f64 = cur.iter().sum();
        // Numeric equality (0.0 == -0.0); the folds run in the same order.
        let got = got.as_f64().expect("float result");
        prop_assert!(got == want, "{} vs {}", got, want);
    }

    /// The chunked parallel executor is exact for integer programs at any
    /// thread count.
    #[test]
    fn parallel_matches_sequential_int(
        data in prop::collection::vec(-1000i64..1000, 0..300),
        threads in 1usize..6,
        modulus in 2i64..9,
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let m = st.lit_i(modulus);
        let zero = st.lit_i(0);
        let groups = st.group_by_reduce(
            &x,
            move |st, e| {
                let r = st.rem(e, &m);
                // keys must be non-negative for stable grouping of negatives
                let mm = st.mul(&m, &m);
                let shifted = st.add(&r, &mm);
                st.rem(&shifted, &m)
            },
            |_st, e| e.clone(),
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let keys = st.bucket_keys(&groups);
        let vals = st.bucket_values(&groups);
        let pair = st.tuple(&[&keys, &vals]);
        let p = st.finish(&pair);
        let seq = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        let par = eval_parallel(&p, &[("x", Value::i64_arr(data))], threads).unwrap();
        prop_assert_eq!(seq, par);
    }

    /// k-means: staged assignment equals the native assignment for random
    /// matrices and centroids.
    #[test]
    fn kmeans_assignment_matches_native(
        rows in 1usize..25,
        cols in 1usize..5,
        k in 1usize..5,
        seed in 0u64..500,
    ) {
        let m = dmll::data::matrix::uniform(rows, cols, -5.0, 5.0, seed);
        let c = dmll::data::matrix::uniform(k, cols, -5.0, 5.0, seed + 1);
        let p = dmll::apps::kmeans::stage_kmeans(k as i64);
        match dmll::apps::kmeans::run(&p, &m, &c) {
            Ok((_, got)) => {
                let (_, want) = dmll::baselines::handopt::kmeans_iter(&m, &c);
                prop_assert_eq!(got, want);
            }
            // An empty cluster is an empty vector reduce without identity —
            // the paper's semantics; the native baseline instead emits the
            // zero centroid, so the comparison is skipped.
            Err(dmll::interp::EvalError::EmptyReduce) => {}
            Err(other) => return Err(TestCaseError::fail(format!("{other}"))),
        }
    }

    /// Distributed arrays: partitioning over any location count preserves
    /// content and the directory is exact.
    #[test]
    fn distarray_partition_roundtrip(
        data in prop::collection::vec(any::<i64>(), 0..200),
        parts in 1usize..9,
    ) {
        use dmll::runtime::{DistArray, Location};
        let locs: Vec<Location> = (0..parts)
            .map(|i| Location { node: i / 2, socket: i % 2 })
            .collect();
        let a = DistArray::partition(data.clone(), &locs);
        prop_assert_eq!(a.gather(), data.clone());
        for (start, end, loc) in a.directory() {
            for (i, &v) in data.iter().enumerate().take(end).skip(start) {
                prop_assert_eq!(a.try_owner(i), Ok(loc));
                prop_assert_eq!(a.try_read(loc, i), Ok(v));
            }
        }
        let (_, remote, _) = a.stats().snapshot();
        prop_assert_eq!(remote, 0, "owner-aligned reads are all local");
    }

    /// The hierarchical scheduler covers any loop size exactly once for any
    /// cluster shape.
    #[test]
    fn schedule_covers_exactly(
        iterations in 0i64..5_000,
        nodes in 1usize..6,
        chunks_per_core in 1usize..4,
    ) {
        use dmll::runtime::{plan_loop, ClusterSpec, MachineSpec};
        let cluster = ClusterSpec {
            nodes,
            ..ClusterSpec::single(MachineSpec::m1_xlarge())
        };
        let plan = plan_loop(iterations, &cluster, None, chunks_per_core);
        prop_assert!(plan.covers(iterations));
    }
}
