//! §3.2 Discussion: "it is important that this transformation facility be
//! extensible by DSL authors, power users, etc."
//!
//! This test implements a *domain-specific* rewrite rule outside the
//! compiler crates, using only the public IR/rewrite APIs, and runs it
//! through the same fixpoint driver as the built-in rules: a linear-algebra
//! DSL author strength-reduces `sum(map(x, e => e * c))` into
//! `c * sum(x)` (factoring a loop-invariant scale out of a reduction).

use dmll::ir::{Block, Def, Exp, Gen, PrimOp, Program, Stmt};
use dmll::transform::rewrite::{fixpoint, PassReport};

/// The custom rule: match a top-level fused loop
/// `Reduce_s(_)(i => x(i) * c)(+ with init 0.0)` where `c` is
/// loop-invariant, and rewrite it to `t = Reduce_s(_)(i => x(i))(+); t * c`.
fn factor_scale_out_of_sum(program: &mut Program) -> PassReport {
    let mut report = PassReport::none();
    // Pass 1 (immutable): find match sites and clone what we need.
    let mut matches: Vec<(usize, Exp, Exp, Exp, dmll::ir::Sym)> = Vec::new();
    for (idx, stmt) in program.body.stmts.iter().enumerate() {
        let Def::Loop(ml) = &stmt.def else { continue };
        let Some(Gen::Reduce {
            cond: None,
            value,
            reducer,
            init: Some(init),
        }) = ml.only_gen()
        else {
            continue;
        };
        // init must be 0.0 and the reducer a plain +.
        if init.as_const().and_then(|c| c.as_f64()) != Some(0.0) {
            continue;
        }
        let plus = reducer.stmts.len() == 1
            && matches!(
                &reducer.stmts[0].def,
                Def::Prim {
                    op: PrimOp::Add,
                    ..
                }
            );
        if !plus {
            continue;
        }
        // value: (i) { v = arr(i); p = v * c; => p } with c invariant.
        let [read, mul] = value.stmts.as_slice() else {
            continue;
        };
        let Def::ArrayRead { arr, index } = &read.def else {
            continue;
        };
        if index.as_sym() != Some(value.params[0]) {
            continue;
        }
        let Def::Prim {
            op: PrimOp::Mul,
            args,
        } = &mul.def
        else {
            continue;
        };
        let (lhs, rhs) = (&args[0], &args[1]);
        let (_, scale) = if lhs.as_sym() == Some(read.sym()) {
            (lhs, rhs)
        } else if rhs.as_sym() == Some(read.sym()) {
            (rhs, lhs)
        } else {
            continue;
        };
        // The scale must be loop-invariant (constant or defined outside).
        if let Some(s) = scale.as_sym() {
            if s == value.params[0] || s == read.sym() {
                continue;
            }
        }
        if value.result.as_sym() != Some(mul.sym()) {
            continue;
        }
        matches.push((idx, ml.size.clone(), arr.clone(), scale.clone(), stmt.sym()));
    }
    // Pass 2 (mutable): build `t = Reduce(i => arr(i)); out = t * scale`
    // with fresh symbols and splice it in.
    for (idx, size, arr, scale, out_sym) in matches.into_iter().rev() {
        let t = program.fresh();
        let i2 = program.fresh();
        let v2 = program.fresh();
        let a2 = program.fresh();
        let b2 = program.fresh();
        let s2 = program.fresh();
        let plain_sum = Stmt::one(
            t,
            Def::Loop(dmll::ir::Multiloop::single(
                size,
                Gen::Reduce {
                    cond: None,
                    value: Block {
                        params: vec![i2],
                        stmts: vec![Stmt::one(
                            v2,
                            Def::ArrayRead {
                                arr,
                                index: Exp::Sym(i2),
                            },
                        )],
                        result: Exp::Sym(v2),
                    },
                    reducer: Block {
                        params: vec![a2, b2],
                        stmts: vec![Stmt::one(s2, Def::prim2(PrimOp::Add, a2, b2))],
                        result: Exp::Sym(s2),
                    },
                    init: Some(Exp::f64(0.0)),
                },
            )),
        );
        let out = Stmt::one(out_sym, Def::prim2(PrimOp::Mul, t, scale));
        program.body.stmts.splice(idx..=idx, [plain_sum, out]);
        report.record("factored invariant scale out of a summation");
    }
    report
}

#[test]
fn dsl_author_rule_composes_with_builtin_passes() {
    use dmll::frontend::Stage;
    use dmll::interp::{eval, Value};
    use dmll::ir::{LayoutHint, Ty};

    // User program: sum(x.map(e => e * 3.5)).
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
    let scaled = st.map(&x, |st, e| {
        let c = st.lit_f(3.5);
        st.mul(e, &c)
    });
    let total = st.sum(&scaled);
    let mut p = st.finish(&total);
    let p0 = p.clone();

    // Built-in fusion first produces the fused multiply-sum the custom rule
    // targets; then the custom rule fires through the same driver.
    fixpoint(&mut p, dmll::transform::fusion::run);
    let custom = fixpoint(&mut p, factor_scale_out_of_sum);
    assert_eq!(custom.applied, 1, "{p}");
    assert!(dmll::ir::typecheck::infer(&p).is_ok(), "{p}");
    // The multiplication count dropped from n to 1.
    let printed = p.to_string();
    assert!(printed.contains("* 3.5"), "{printed}");

    let data: Vec<f64> = (0..100).map(|i| i as f64 * 0.25).collect();
    let before = eval(&p0, &[("x", Value::f64_arr(data.clone()))])
        .unwrap()
        .as_f64()
        .unwrap();
    let after = eval(&p, &[("x", Value::f64_arr(data))])
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(
        (before - after).abs() < 1e-9 * before.abs(),
        "{before} vs {after}"
    );
}

#[test]
fn custom_rule_ignores_non_matching_programs() {
    use dmll::frontend::Stage;
    use dmll::ir::{LayoutHint, Ty};

    // A max-reduce is not a sum: the rule must not fire.
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
    let m = st.reduce_elems(&x, |st, a, b| st.max(a, b));
    let mut p = st.finish(&m);
    let report = fixpoint(&mut p, factor_scale_out_of_sum);
    assert_eq!(report.applied, 0);
}
