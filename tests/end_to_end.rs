//! Cross-crate integration: staging → optimization → analysis → execution
//! → code generation for every benchmark application.

use dmll::analysis::DataLayout;
use dmll::ir::printer::count_loops;
use dmll::transform::{pipeline, Target};

#[test]
fn q1_full_pipeline_single_pass_soa_and_codegen() {
    let cols = dmll::data::tpch::to_columns(&dmll::data::tpch::gen_lineitems(2000, 11));
    let mut p = dmll::apps::q1::stage_q1();
    let want = dmll::apps::q1::run(&p, &cols).unwrap();

    let report = pipeline::optimize(&mut p, Target::Cluster);
    assert!(report.applied("horizontal fusion") >= 4);
    assert!(report.applied("AoS to SoA") == 1);
    assert_eq!(count_loops(&p), 1);

    let analysis = dmll::analysis::analyze(&mut p);
    // Every surviving column input is partitioned; no warnings.
    for input in &p.inputs {
        assert_eq!(
            analysis.partition.layout_of(input.sym),
            DataLayout::Partitioned,
            "{}",
            input.name
        );
    }
    assert!(
        !analysis.partition.has_warnings(),
        "{:?}",
        analysis.partition.warnings
    );

    let got = dmll::apps::q1::run(&p, &cols).unwrap();
    assert_eq!(got, want);

    // Both backends accept the optimized program.
    let cpp = dmll::codegen::emit_cpp(&p);
    assert!(cpp.contains("#pragma omp parallel for"));
    let cuda = dmll::codegen::emit_cuda(&p).unwrap();
    assert!(cuda.contains("sort_by_key"), "buckets by sorting on GPU");
}

#[test]
fn kmeans_figure5_structure_emerges() {
    // After the cluster recipe, the program must contain a horizontally
    // fused BucketReduce (sums + counts in one traversal) keyed by the
    // fused-in assignment — the hand-written Figure 5 shape.
    let mut p = dmll::apps::kmeans::stage_kmeans(5);
    pipeline::optimize(&mut p, Target::Cluster);
    let printed = p.to_string();
    let bucket_reduces = printed.matches("BucketReduce").count();
    assert!(bucket_reduces >= 2, "sums and counts: {printed}");
    assert!(
        printed.contains("bucketGet"),
        "lookup instead of re-traversal"
    );

    // And the distribution conclusions of Figure 4 hold.
    let analysis = dmll::analysis::analyze(&mut p);
    let matrix = p.input("matrix").unwrap().sym;
    let clusters = p.input("clusters").unwrap().sym;
    assert_eq!(
        analysis.partition.layout_of(matrix),
        DataLayout::Partitioned
    );
    assert_eq!(analysis.partition.layout_of(clusters), DataLayout::Local);
    // The centroid data (read inside the distributed loops via its
    // hoisted projections) is broadcast; everything broadcast is Local.
    assert!(!analysis.partition.broadcasts.is_empty());
    for b in &analysis.partition.broadcasts {
        assert_eq!(analysis.partition.layout_of(*b), DataLayout::Local);
    }
}

type StageFn = Box<dyn Fn() -> dmll::ir::Program>;

#[test]
fn every_app_survives_every_target_recipe() {
    let apps: Vec<(&str, StageFn)> = vec![
        ("q1", Box::new(dmll::apps::q1::stage_q1)),
        ("gene", Box::new(dmll::apps::gene::stage_gene)),
        ("gda", Box::new(dmll::apps::gda::stage_gda)),
        ("logreg", Box::new(|| dmll::apps::logreg::stage_logreg(0.1))),
        ("kmeans", Box::new(|| dmll::apps::kmeans::stage_kmeans(4))),
        (
            "pagerank_pull",
            Box::new(|| dmll::apps::pagerank::stage_pagerank_pull(0.85)),
        ),
        (
            "pagerank_push",
            Box::new(|| dmll::apps::pagerank::stage_pagerank_push(0.85)),
        ),
        (
            "triangles",
            Box::new(dmll::apps::triangles::stage_triangles),
        ),
        ("gibbs", Box::new(dmll::apps::gibbs::stage_gibbs_sweep)),
    ];
    for (name, stage) in apps {
        for target in [Target::Cpu, Target::Numa, Target::Cluster, Target::Gpu] {
            let mut p = stage();
            pipeline::optimize(&mut p, target);
            assert!(
                dmll::ir::typecheck::infer(&p).is_ok(),
                "{name} @ {target:?} produced ill-typed IR"
            );
        }
    }
}

#[test]
fn parallel_executor_agrees_with_sequential_on_apps() {
    use dmll::interp::{eval, eval_parallel};
    let cols = dmll::data::tpch::to_columns(&dmll::data::tpch::gen_lineitems(997, 3));
    let mut p = dmll::apps::q1::stage_q1();
    pipeline::optimize(&mut p, Target::Cpu);
    let inputs = dmll::apps::q1::inputs_for(&p, &cols);
    let borrowed: Vec<(&str, dmll::interp::Value)> = inputs
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    let seq = eval(&p, &borrowed).unwrap();
    for threads in [2, 3, 5] {
        let par = eval_parallel(&p, &borrowed, threads).unwrap();
        // Chunked reduction reassociates floating-point sums (as real
        // parallel hardware does): integers exact, floats within tolerance.
        let (dmll::interp::Value::Tuple(s), dmll::interp::Value::Tuple(q)) = (&seq, &par) else {
            panic!("tuple outputs expected");
        };
        for (a, b) in s.iter().zip(q.iter()) {
            if let (Some(x), Some(y)) = (a.to_i64_vec(), b.to_i64_vec()) {
                assert_eq!(x, y, "threads={threads}");
            } else {
                let (x, y) = (a.to_f64_vec().unwrap(), b.to_f64_vec().unwrap());
                for (u, v) in x.iter().zip(&y) {
                    assert!(
                        (u - v).abs() <= 1e-9 * (1.0 + u.abs()),
                        "threads={threads}: {u} vs {v}"
                    );
                }
            }
        }
    }
}

#[test]
fn gibbs_replicated_nested_parallel_structure() {
    let fg = dmll::data::factor::gen_factor_graph(80, 4, 3);
    let p = dmll::apps::gibbs::stage_gibbs_sweep();
    let marginals = dmll::apps::gibbs::run_replicated(&p, &fg, 4, 6, 17).unwrap();
    assert_eq!(marginals.len(), 80);
    assert!(marginals.iter().all(|m| (0.0..=1.0).contains(m)));
}
