#![warn(missing_docs)]

//! # DMLL: the Distributed Multiloop Language
//!
//! A from-scratch Rust implementation of *"Have Abstraction and Eat
//! Performance, Too: Optimized Heterogeneous Computing with Parallel
//! Patterns"* (Brown et al., CGO 2016): an intermediate language of
//! multiloops with `Collect` / `Reduce` / `BucketCollect` / `BucketReduce`
//! generators, locality-enhancing nested-pattern transformations, automatic
//! data-distribution analyses, and a heterogeneous (NUMA / cluster / GPU)
//! runtime and cost model.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`ir`] | `dmll-core` | the IR: multiloops, generators, programs |
//! | [`frontend`] | `dmll-frontend` | the implicitly parallel staging API |
//! | [`transform`] | `dmll-transform` | fusion, the Figure 3 rules, AoS→SoA, the per-target optimizer |
//! | [`analysis`] | `dmll-analysis` | read-stencil + partitioning analyses |
//! | [`interp`] | `dmll-interp` | reference sequential & multithreaded executors |
//! | [`runtime`] | `dmll-runtime` | distributed arrays, hierarchical scheduler, machine cost model |
//! | [`codegen`] | `dmll-codegen` | C++- and CUDA-flavoured source emitters |
//! | [`baselines`] | `dmll-baselines` | hand-optimized natives + Spark/PowerGraph/DimmWitted models |
//! | [`data`] | `dmll-data` | deterministic dataset generators |
//! | [`apps`] | `dmll-apps` | the eight evaluation workloads |
//!
//! ## Quickstart
//!
//! ```
//! use dmll::frontend::Stage;
//! use dmll::ir::{LayoutHint, Ty};
//! use dmll::interp::{eval, Value};
//! use dmll::transform::{pipeline, Target};
//!
//! // Stage: sum of squares over a partitioned dataset.
//! let mut st = Stage::new();
//! let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
//! let squares = st.map(&x, |st, e| st.mul(e, e));
//! let total = st.sum(&squares);
//! let mut program = st.finish(&total);
//!
//! // Optimize: the map fuses into the reduction (one traversal).
//! let report = pipeline::optimize(&mut program, Target::Cpu);
//! assert!(report.applied("pipeline fusion") >= 1);
//!
//! // Execute.
//! let out = eval(&program, &[("x", Value::f64_arr(vec![1.0, 2.0, 3.0]))])?;
//! assert_eq!(out, Value::F64(14.0));
//! # Ok::<(), dmll::interp::EvalError>(())
//! ```

pub use dmll_analysis as analysis;
pub use dmll_apps as apps;
pub use dmll_baselines as baselines;
pub use dmll_codegen as codegen;
pub use dmll_core as ir;
pub use dmll_data as data;
pub use dmll_frontend as frontend;
pub use dmll_interp as interp;
pub use dmll_runtime as runtime;
pub use dmll_transform as transform;
